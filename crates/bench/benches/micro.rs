//! M1 — micro-benchmarks of the DTX building blocks.
//!
//! These quantify the "lower lock management overhead" and "summarized
//! data structure" arguments of the paper at the component level: XML
//! parsing, DataGuide construction and matching, lock-request generation
//! per protocol, lock-table throughput, and wait-for-graph cycle checks.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dtx_dataguide::DataGuide;
use dtx_locks::{LockMode, LockTable, TxnId, TxnMode, WaitForGraph};
use dtx_xmark::generator::{generate, XmarkConfig};
use dtx_xml::Document;
use dtx_xpath::{eval, Query, UpdateOp};

fn xml_parse(c: &mut Criterion) {
    let mut group = c.benchmark_group("xml_parse");
    for size in [50_000usize, 200_000] {
        let doc = generate(XmarkConfig::sized(size, 1));
        group.throughput(Throughput::Bytes(doc.xml.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &doc.xml, |b, xml| {
            b.iter(|| Document::parse(black_box(xml)).unwrap())
        });
    }
    group.finish();
}

fn dataguide_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("dataguide_build");
    for size in [50_000usize, 200_000] {
        let parsed = generate(XmarkConfig::sized(size, 2)).parse();
        group.throughput(Throughput::Elements(parsed.node_count() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &parsed, |b, doc| {
            b.iter(|| DataGuide::build(black_box(doc)))
        });
    }
    group.finish();
}

fn xpath_eval(c: &mut Criterion) {
    let doc = generate(XmarkConfig::sized(200_000, 3)).parse();
    let queries = [
        ("child_path", "/site/people/person/name"),
        ("predicate", "/site/people/person[profile/age>40]/name"),
        ("descendant", "//item/name"),
    ];
    let mut group = c.benchmark_group("xpath_eval");
    for (name, q) in queries {
        let query = Query::parse(q).unwrap();
        group.bench_function(name, |b| {
            b.iter(|| eval(black_box(&doc), black_box(&query)))
        });
    }
    group.finish();
}

fn lock_requests_per_protocol(c: &mut Criterion) {
    let doc = generate(XmarkConfig::sized(100_000, 4)).parse();
    let guide = DataGuide::build(&doc);
    let query = Query::parse("/site/open_auctions/open_auction[id=7]/current").unwrap();
    let update = UpdateOp::Change {
        target: Query::parse("/site/open_auctions/open_auction[id=7]/current").unwrap(),
        new_value: "10".into(),
    };
    let mut group = c.benchmark_group("lock_requests");
    for kind in [
        dtx_locks::ProtocolKind::Xdgl,
        dtx_locks::ProtocolKind::Node2Pl,
        dtx_locks::ProtocolKind::DocLock,
    ] {
        let protocol = kind.instantiate();
        group.bench_function(format!("{}_query", kind.name()), |b| {
            b.iter_batched(
                || guide.clone(),
                |mut g| {
                    protocol.query_requests(black_box(&mut g), black_box(&query), TxnMode::ReadOnly)
                },
                criterion::BatchSize::SmallInput,
            )
        });
        group.bench_function(format!("{}_update", kind.name()), |b| {
            b.iter_batched(
                || guide.clone(),
                |mut g| {
                    protocol.update_requests(
                        black_box(&mut g),
                        black_box(&update),
                        TxnMode::Updating,
                    )
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn lock_table_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("lock_table");
    group.throughput(Throughput::Elements(1000));
    group.bench_function("acquire_release_1k_disjoint", |b| {
        b.iter(|| {
            let mut t = LockTable::new();
            for i in 0..1000u32 {
                t.try_acquire(TxnId(1), dtx_dataguide::GuideId(i), LockMode::IS);
            }
            t.release_all(TxnId(1));
        })
    });
    group.bench_function("acquire_1k_shared_hotspot", |b| {
        b.iter(|| {
            let mut t = LockTable::new();
            for i in 0..1000u64 {
                t.try_acquire(TxnId(i), dtx_dataguide::GuideId(0), LockMode::IS);
            }
            for i in 0..1000u64 {
                t.release_all(TxnId(i));
            }
        })
    });
    group.finish();
}

fn wfg_cycle_detection(c: &mut Criterion) {
    let mut group = c.benchmark_group("wfg");
    for n in [100u64, 1000] {
        // A long chain plus a closing edge: worst case for DFS.
        let mut g = WaitForGraph::new();
        for i in 0..n {
            g.add_edge(TxnId(i), TxnId(i + 1));
        }
        g.add_edge(TxnId(n), TxnId(0));
        group.bench_with_input(BenchmarkId::new("find_cycle", n), &g, |b, g| {
            b.iter(|| g.find_cycle())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    xml_parse,
    dataguide_build,
    xpath_eval,
    lock_requests_per_protocol,
    lock_table_throughput,
    wfg_cycle_detection
);
criterion_main!(benches);
