//! A2 — ablation: deadlock-detection period.
//!
//! The paper runs Algorithm 4 "periodically" without quantifying the
//! period. This sweep shows the trade-off: a short period resolves
//! distributed deadlocks quickly (lower response time for the waiters)
//! at the cost of more detector rounds (more wait-for-graph messages); a
//! long period lets cycles linger.

use dtx_bench::{header, ms, row, run, seed_from_args, ExpEnv};
use dtx_core::{Cluster, ClusterConfig, ProtocolKind};
use dtx_xmark::fragment::{allocate, fragment_doc, load_allocation, ReplicationMode};
use dtx_xmark::generator::{generate, XmarkConfig};
use dtx_xmark::workload::WorkloadConfig;
use std::time::Duration;

fn main() {
    let seed = seed_from_args();
    let clients = 30;
    let periods_ms = [10u64, 25, 50, 100, 250];
    println!("# A2 — deadlock-detector period sweep (XDGL)");
    println!("# 4 sites, partial replication, {clients} clients, 40% update txns");
    header(&[
        "period_ms",
        "mean_resp_ms",
        "deadlocks",
        "detector_runs",
        "committed",
    ]);
    for &period in &periods_ms {
        let env = ExpEnv::standard(ProtocolKind::Xdgl).with_seed(seed);
        let doc = generate(XmarkConfig::sized(env.base_bytes, env.seed));
        let frags = fragment_doc(&doc, env.sites as usize);
        let config = ClusterConfig::new(env.sites, env.protocol)
            .with_lan_profile()
            .with_deadlock_period(Duration::from_millis(period));
        let cluster = Cluster::start(config);
        let alloc = allocate(&doc, &frags, env.sites, ReplicationMode::Partial);
        load_allocation(&cluster, &alloc).expect("load allocation");
        let report = run(
            &cluster,
            &frags,
            WorkloadConfig::with_updates(clients, 40, seed),
        );
        row(&[
            period.to_string(),
            format!("{:.2}", ms(report.mean_response())),
            report.deadlocks().to_string(),
            cluster.metrics().detector_runs().to_string(),
            report.committed().to_string(),
        ]);
        cluster.shutdown();
    }
}
