//! Ablation: placement policies on a replicated read-heavy workload.
//!
//! Compares the four [`PolicyKind`]s under **total** replication (every
//! site holds a full copy — the setting where read placement has choices
//! to make). The headline column is `remote_msgs`: the seed's `primary`
//! policy fans every replicated read to all replicas (`|replicas| - 1`
//! remote dispatches per read), while the read-one policies serve each
//! read from a single replica — `locality` from the coordinator's own
//! copy, for zero remote messages on reads.
//!
//! `site_ops` shows where the load lands: `locality` keeps it at the
//! submission sites, `round-robin` and `hotness-aware` spread it evenly.

use dtx_bench::{header, ms, row, run, seed_from_args, setup, ExpEnv};
use dtx_core::{PolicyKind, ProtocolKind};
use dtx_xmark::fragment::ReplicationMode;
use dtx_xmark::workload::WorkloadConfig;

fn main() {
    let seed = seed_from_args();
    let clients = 16;
    let update_pct = 10;
    println!("# Ablation — placement policies (read-one vs write-all reads)");
    println!("# 4 sites, total replication, {clients} clients x 5 txns, {update_pct}% update txns");
    header(&[
        "policy",
        "committed",
        "submitted",
        "wall_ms",
        "mean_resp_ms",
        "remote_msgs",
        "net_msgs",
        "site_ops",
    ]);
    for policy in PolicyKind::ALL {
        let mut env = ExpEnv::standard(ProtocolKind::Xdgl).with_seed(seed);
        env.mode = ReplicationMode::Total;
        env.base_bytes /= 4; // keep the ablation CI-friendly
        let (cluster, frags) = setup(env.with_policy(policy));
        let report = run(
            &cluster,
            &frags,
            WorkloadConfig::with_updates(clients, update_pct, seed),
        );
        let metrics = cluster.metrics();
        let site_ops: Vec<String> = metrics
            .site_ops_snapshot()
            .iter()
            .map(|(s, n)| format!("{s}={n}"))
            .collect();
        row(&[
            policy.name().to_owned(),
            report.committed().to_string(),
            report.outcomes.len().to_string(),
            format!("{:.2}", ms(report.wall)),
            format!("{:.2}", ms(report.mean_response())),
            metrics.remote_msgs().to_string(),
            cluster.net_messages().to_string(),
            site_ops.join(","),
        ]);
        cluster.shutdown();
    }
}
