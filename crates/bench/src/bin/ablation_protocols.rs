//! A1 — ablation: lock granularity (XDGL vs Node2PL vs DocLock).
//!
//! DESIGN.md's design-choice #1: the paper's headline claim is that
//! DataGuide-granularity locking buys lower response time at the price of
//! more deadlocks. This ablation adds the third point the paper only
//! mentions in passing ("a traditional technique which makes use \[of\] a
//! complete lock on the document"): whole-document locking, the coarsest
//! end of the spectrum.

use dtx_bench::{header, ms, row, run, seed_from_args, setup, ExpEnv};
use dtx_core::ProtocolKind;
use dtx_xmark::workload::WorkloadConfig;

fn main() {
    let seed = seed_from_args();
    let clients = 30;
    println!("# A1 — protocol granularity ablation");
    println!("# 4 sites, partial replication, {clients} clients, 40% update txns");
    header(&[
        "protocol",
        "mean_resp_ms",
        "p95_ms",
        "deadlocks",
        "committed",
        "aborted",
    ]);
    for protocol in [
        ProtocolKind::Xdgl,
        ProtocolKind::Node2Pl,
        ProtocolKind::DocLock,
    ] {
        let (cluster, frags) = setup(ExpEnv::standard(protocol).with_seed(seed));
        let report = run(
            &cluster,
            &frags,
            WorkloadConfig::with_updates(clients, 40, seed),
        );
        let p95 = {
            let mut rts: Vec<_> = report
                .outcomes
                .iter()
                .filter(|o| o.committed())
                .map(|o| o.response_time)
                .collect();
            rts.sort();
            rts.get(rts.len() * 95 / 100).copied().unwrap_or_default()
        };
        row(&[
            protocol.name().to_owned(),
            format!("{:.2}", ms(report.mean_response())),
            format!("{:.2}", ms(p95)),
            report.deadlocks().to_string(),
            report.committed().to_string(),
            report.aborted().to_string(),
        ]);
        cluster.shutdown();
    }
}
