//! Ingest benchmark: tree-parse vs streaming ingestion.
//!
//! The paper sizes its base between 50 MB and 200 MB (§3.2.3); every
//! pre-streaming ingestion path materialized the whole base as a string
//! (generator output), parsed it into a second full-size structure, and
//! re-walked the tree for the DataGuide. This binary measures both
//! pipelines at several scale factors:
//!
//! * **tree path**  — `generate()` → `Document::parse` →
//!   `DataGuide::build` (string + tree + guide resident simultaneously);
//! * **stream path** — `emit()` events → `TreeBuilder` ⊕ `GuideBuilder`
//!   in one pass (tree + guide only; no serialized intermediary).
//!
//! It reports wall time, ingest MB/s and **peak allocated bytes** (exact,
//! via the counting global allocator) per path and scale, then proves the
//! end-to-end claim: at ≥10× the default experiment base, the streamed
//! fragments boot a cluster and serve the fig12 mixed workload. Results
//! land in `BENCH_ingest.json`.
//!
//! `--smoke` runs a seconds-scale subset (CI).

use dtx_bench::{ms, seed_from_args, setup_streamed, CountingAlloc, ExpEnv, BASE_BYTES};
use dtx_core::ProtocolKind;
use dtx_dataguide::{DataGuide, GuideBuilder};
use dtx_xmark::generator::{emit, generate, XmarkConfig};
use dtx_xmark::workload::WorkloadConfig;
use dtx_xml::stream::{Tee, TreeBuilder};
use dtx_xml::Document;
use std::fmt::Write as _;
use std::time::Instant;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

struct IngestPoint {
    scale: f64,
    bytes: usize,
    tree_ms: f64,
    tree_peak: usize,
    tree_mb_s: f64,
    stream_ms: f64,
    stream_peak: usize,
    stream_mb_s: f64,
    /// Transient streaming overhead: peak minus the resident tree+guide
    /// that any ingest must end up holding. O(one entity), not O(base) —
    /// the "no full-string materialization" witness.
    stream_overhead: usize,
}

fn measure(scale: f64, seed: u64) -> IngestPoint {
    let target = (BASE_BYTES as f64 * scale) as usize;
    let config = XmarkConfig::sized(target, seed);

    // Tree path: serialized base → parse → guide rebuild.
    let base = ALLOC.reset_peak();
    let t0 = Instant::now();
    let doc = generate(config);
    let parsed = Document::parse(&doc.xml).expect("well-formed");
    let guide = DataGuide::build(&parsed);
    let tree_ms = t0.elapsed().as_secs_f64() * 1e3;
    let tree_peak = ALLOC.peak().saturating_sub(base);
    let bytes = doc.xml.len();
    assert!(guide.len() > 10);
    drop((doc, parsed, guide));

    // Stream path: events → tree ⊕ guide, one pass, no string.
    let base = ALLOC.reset_peak();
    let t0 = Instant::now();
    let mut tree = TreeBuilder::new();
    let mut guide = GuideBuilder::new();
    emit(config, &mut Tee::new(&mut tree, &mut guide)).expect("well-formed events");
    let sdoc = tree.finish().expect("balanced");
    let sguide = guide.finish().expect("rooted");
    let stream_ms = t0.elapsed().as_secs_f64() * 1e3;
    let stream_peak = ALLOC.peak().saturating_sub(base);
    let stream_resident = ALLOC.current().saturating_sub(base);
    let stream_overhead = stream_peak.saturating_sub(stream_resident);
    assert_eq!(sguide.len(), DataGuide::build(&sdoc).len());
    drop((sdoc, sguide));

    let mb = bytes as f64 / (1024.0 * 1024.0);
    IngestPoint {
        scale,
        bytes,
        tree_ms,
        tree_peak,
        tree_mb_s: mb / (tree_ms / 1e3),
        stream_ms,
        stream_peak,
        stream_mb_s: mb / (stream_ms / 1e3),
        stream_overhead,
    }
}

struct E2e {
    base_bytes: usize,
    committed: usize,
    submitted: usize,
    wall_ms: f64,
    mean_resp_ms: f64,
}

/// The acceptance demonstration: a base ≥10× today's default generates,
/// ingests and serves the fig12 mixed workload end-to-end via the
/// streaming path (partial replication, 4 sites, 20 % update txns).
fn end_to_end(scale: f64, clients: usize, seed: u64) -> E2e {
    let mut env = ExpEnv::standard(ProtocolKind::Xdgl).with_seed(seed);
    env.base_bytes = (BASE_BYTES as f64 * scale) as usize;
    let (cluster, manifests, total_bytes) = setup_streamed(env);
    let workload =
        dtx_xmark::workload::generate(WorkloadConfig::with_updates(clients, 20, seed), &manifests);
    let report = dtx_xmark::tester::run_workload(&cluster, &workload);
    let out = E2e {
        base_bytes: total_bytes,
        committed: report.committed(),
        submitted: report.outcomes.len(),
        wall_ms: ms(report.wall),
        mean_resp_ms: ms(report.mean_response()),
    };
    cluster.shutdown();
    out
}

fn write_json(points: &[IngestPoint], e2e: &E2e) -> std::io::Result<()> {
    let mut out = String::from("{\n  \"experiment\": \"bench_ingest\",\n");
    let _ = writeln!(
        out,
        "  \"default_base_bytes\": {BASE_BYTES},\n  \"points\": ["
    );
    for (i, p) in points.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"scale\": {}, \"bytes\": {}, \
             \"tree\": {{\"wall_ms\": {:.2}, \"peak_alloc_bytes\": {}, \"mb_per_s\": {:.2}}}, \
             \"stream\": {{\"wall_ms\": {:.2}, \"peak_alloc_bytes\": {}, \"mb_per_s\": {:.2}, \
             \"transient_overhead_bytes\": {}}}, \
             \"peak_ratio_tree_over_stream\": {:.3}}}",
            p.scale,
            p.bytes,
            p.tree_ms,
            p.tree_peak,
            p.tree_mb_s,
            p.stream_ms,
            p.stream_peak,
            p.stream_mb_s,
            p.stream_overhead,
            p.tree_peak as f64 / p.stream_peak.max(1) as f64,
        );
        out.push_str(if i + 1 < points.len() { ",\n" } else { "\n" });
    }
    let _ = writeln!(
        out,
        "  ],\n  \"e2e_fig12_streamed\": {{\"base_bytes\": {}, \"protocol\": \"xdgl\", \
         \"committed\": {}, \"submitted\": {}, \"wall_ms\": {:.2}, \"mean_resp_ms\": {:.2}}}\n}}",
        e2e.base_bytes, e2e.committed, e2e.submitted, e2e.wall_ms, e2e.mean_resp_ms
    );
    std::fs::write("BENCH_ingest.json", out)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let seed = seed_from_args();
    // Scale factors relative to the default experiment base (400 KB):
    // 1×, 4×, 10× normally; a sub-second subset under --smoke.
    let scales: &[f64] = if smoke {
        &[0.25, 1.0]
    } else {
        &[1.0, 4.0, 10.0]
    };
    println!("# ingest — tree-parse vs streaming (scales × default {BASE_BYTES} B base)");
    println!(
        "scale\tbytes\ttree_ms\ttree_peak_B\ttree_MB/s\tstream_ms\tstream_peak_B\tstream_MB/s\tstream_transient_B"
    );
    let mut points = Vec::new();
    for &scale in scales {
        let p = measure(scale, seed);
        println!(
            "{}\t{}\t{:.1}\t{}\t{:.1}\t{:.1}\t{}\t{:.1}\t{}",
            p.scale,
            p.bytes,
            p.tree_ms,
            p.tree_peak,
            p.tree_mb_s,
            p.stream_ms,
            p.stream_peak,
            p.stream_mb_s,
            p.stream_overhead
        );
        assert!(
            p.stream_peak < p.tree_peak,
            "streaming ingest must stay below the tree path's peak"
        );
        points.push(p);
    }

    // End-to-end at ≥10× the default base (2× under --smoke to stay CI-fast).
    let (e2e_scale, clients) = if smoke { (2.0, 8) } else { (10.0, 50) };
    println!("\n# e2e: streamed ingest at {e2e_scale}× default base serving the fig12 workload");
    let e = end_to_end(e2e_scale, clients, seed);
    println!(
        "base {} B: committed {}/{} in {:.1} ms (mean resp {:.2} ms)",
        e.base_bytes, e.committed, e.submitted, e.wall_ms, e.mean_resp_ms
    );
    assert!(
        e.committed * 10 >= e.submitted * 8,
        "most transactions must commit over the streamed base"
    );

    if smoke {
        // Smoke runs measure a reduced subset; never overwrite the
        // committed full-scale baseline with it.
        println!("\n# smoke run: BENCH_ingest.json left untouched");
    } else {
        match write_json(&points, &e) {
            Ok(()) => println!("\n# baseline written to BENCH_ingest.json"),
            Err(err) => eprintln!("could not write BENCH_ingest.json: {err}"),
        }
    }
}
