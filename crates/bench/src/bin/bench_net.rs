//! `bench_net` — delivery-topology throughput and the reactor's
//! bounded-thread scaling claim.
//!
//! The paper's testbed is a switched full-duplex LAN (§3.1): every pair
//! of sites has an independent path. `dtx-net` has gone through three
//! delivery designs — one global hub thread, one thread per ordered
//! link, and the current default: a **sharded timer-wheel reactor**
//! whose delivery-thread count is bounded by `NetConfig::workers` no
//! matter how many links carry traffic. This bench measures two things:
//!
//! 1. **Topology comparison** (8 sites all-to-all): hub vs
//!    thread-per-link vs reactor message rate. The reactor must not
//!    regress the thread-per-link rate it replaced — acceptance is
//!    measured, not assumed.
//! 2. **Sites sweep** (reactor only, `8/32/64/128` sites): the storm
//!    thread-per-link cannot reasonably run — 128 sites all-to-all is
//!    16,256 ordered links, i.e. ~16k OS threads — completes under the
//!    reactor with a recorded, bounded delivery-thread count.
//!
//! Every receiver asserts **per-link FIFO live** (each sender's payload
//! sequence arrives strictly in send order), so a clamp regression fails
//! the run outright, at every scale.
//!
//! Flags: `--smoke` shrinks everything to a seconds-scale CI subset and
//! leaves `BENCH_net.json` untouched; `--sites N` runs the reactor
//! storm at exactly N sites (CI's scale smoke uses `--smoke --sites
//! 64`). The full run (no flags) refreshes `BENCH_net.json`, which
//! `check_bench` gates on.

use dtx_bench::netbench::{storm, sweep_msgs_per_link, StormResult};
use dtx_net::{NetConfig, Topology};
use std::fmt::Write as _;

fn print_result(r: &StormResult) {
    println!(
        "{:<16} {:>4} sites  wall {:>9.2} ms  {:>10.0} msgs/s  links {:>6}  threads {:>5}",
        r.name,
        r.sites,
        r.wall.as_secs_f64() * 1e3,
        r.msgs_per_s,
        r.links_active,
        r.delivery_threads,
    );
}

fn json_entry(out: &mut String, r: &StormResult) {
    let _ = write!(
        out,
        "{{\"name\": \"{}\", \"sites\": {}, \"msgs_per_link\": {}, \
         \"total_msgs\": {}, \"wall_ms\": {:.2}, \"msgs_per_s\": {:.0}, \
         \"links_active\": {}, \"delivery_threads\": {}}}",
        r.name,
        r.sites,
        r.msgs_per_link,
        r.total_msgs,
        r.wall.as_secs_f64() * 1e3,
        r.msgs_per_s,
        r.links_active,
        r.delivery_threads,
    );
}

fn write_json(
    comparison: &[StormResult],
    sweep: &[StormResult],
    over_hub: f64,
    over_tpl: f64,
) -> std::io::Result<()> {
    let mut out = String::from("{\n  \"experiment\": \"bench_net\",\n  \"topologies\": [\n");
    for (i, r) in comparison.iter().enumerate() {
        out.push_str("    ");
        json_entry(&mut out, r);
        out.push_str(if i + 1 < comparison.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ],\n  \"sites_sweep\": [\n");
    for (i, r) in sweep.iter().enumerate() {
        out.push_str("    ");
        json_entry(&mut out, r);
        out.push_str(if i + 1 < sweep.len() { ",\n" } else { "\n" });
    }
    let _ = write!(
        out,
        "  ],\n  \"reactor_over_hub_speedup\": {over_hub:.2},\n  \
         \"reactor_over_thread_per_link\": {over_tpl:.2}\n}}\n"
    );
    std::fs::write("BENCH_net.json", out)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed = dtx_bench::seed_from_args();
    let smoke = args.iter().any(|a| a == "--smoke");
    let sites_arg: Option<u16> = args
        .iter()
        .position(|a| a == "--sites")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--sites takes a site count"));

    println!("# bench_net — reactor vs thread-per-link vs hub delivery");
    if let Some(sites) = sites_arg {
        // Scale smoke: one reactor storm at the requested site count —
        // the bounded-thread claim exercised on every push.
        let msgs = sweep_msgs_per_link(sites, smoke);
        println!("# reactor storm: {sites} sites all-to-all, {msgs} msgs per ordered link");
        let r = storm(Topology::Reactor, sites, msgs, seed);
        print_result(&r);
        println!(
            "# {} links drained by {} delivery threads (bound: {})",
            r.links_active,
            r.delivery_threads,
            NetConfig::default().workers
        );
        return;
    }

    // 1. Topology comparison at the paper's 8-site scale. Best-of-N
    //    (minimum wall) per topology: the storm is scheduler-noise
    //    sensitive on loaded hosts, and the least-interfered run is the
    //    honest estimate of each topology's capability.
    let (cmp_sites, cmp_msgs, rounds) = if smoke { (4, 100, 1) } else { (8, 1500, 3) };
    println!(
        "# comparison: {cmp_sites} sites all-to-all, {cmp_msgs} msgs per ordered link, \
         best of {rounds}"
    );
    let mut comparison = Vec::new();
    for topology in [
        Topology::SharedHub,
        Topology::ThreadPerLink,
        Topology::Reactor,
    ] {
        let mut best: Option<StormResult> = None;
        for round in 0..rounds {
            let r = storm(topology, cmp_sites, cmp_msgs, seed + round);
            if best.as_ref().map(|b| r.wall < b.wall).unwrap_or(true) {
                best = Some(r);
            }
        }
        let r = best.expect("at least one round");
        print_result(&r);
        comparison.push(r);
    }
    let hub_rate = comparison[0].msgs_per_s;
    let tpl_rate = comparison[1].msgs_per_s;
    let reactor_rate = comparison[2].msgs_per_s;
    let over_hub = reactor_rate / hub_rate.max(1e-9);
    let over_tpl = reactor_rate / tpl_rate.max(1e-9);
    println!("# reactor/hub message-rate ratio:             {over_hub:.2}x");
    println!("# reactor/thread-per-link message-rate ratio: {over_tpl:.2}x");

    // 2. Reactor sites sweep — the scale thread-per-link cannot reach
    //    (128 sites all-to-all would need ~16k OS threads).
    let sweep_sites: &[u16] = if smoke { &[16] } else { &[8, 32, 64, 128] };
    let mut sweep = Vec::new();
    for &sites in sweep_sites {
        let msgs = sweep_msgs_per_link(sites, smoke);
        let r = storm(Topology::Reactor, sites, msgs, seed);
        print_result(&r);
        sweep.push(r);
    }

    if smoke {
        println!("# smoke run: BENCH_net.json left untouched");
    } else {
        match write_json(&comparison, &sweep, over_hub, over_tpl) {
            Ok(()) => println!("# baseline written to BENCH_net.json"),
            Err(e) => eprintln!("could not write BENCH_net.json: {e}"),
        }
    }
}
