//! `bench_net` — per-link (switched) vs shared-hub delivery throughput.
//!
//! The paper's testbed is a switched full-duplex LAN (§3.1): every pair
//! of sites has an independent path. The original `dtx-net` funneled all
//! delayed delivery through one hub thread — a single sleeper in front of
//! otherwise-parallel schedulers. This microbench drives an all-to-all
//! message storm over both [`Topology`] variants and records the wall
//! time until **every** message is delivered, plus the implied message
//! rate, into `BENCH_net.json`.
//!
//! Regression witnesses (see EXPERIMENTS.md):
//! * `links_active` = sites × (sites − 1) under `switched`, 0 under `hub`
//!   (the hub runs one global thread instead);
//! * per-link FIFO: every receiver checks that each sender's payload
//!   sequence arrives strictly in send order — the clamp survives the
//!   storm in both topologies;
//! * at full storm scale, `switched` sustains a multiple of the `hub`
//!   message rate on multi-core hosts (the committed baseline records
//!   the measured ratio; at `--smoke` scale the two are within noise).

use dtx_net::{LatencyModel, Network, SiteId, Topology, Wire};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// One benchmark frame: (sender site, per-link sequence number).
#[derive(Debug)]
struct Frame {
    from: u16,
    seq: u32,
}

impl Wire for Frame {
    fn wire_size(&self) -> usize {
        128
    }
}

/// Result of one topology's storm run.
struct TopoResult {
    name: &'static str,
    sites: u16,
    msgs_per_link: u32,
    total_msgs: u64,
    wall: Duration,
    msgs_per_s: f64,
    links_active: u64,
}

/// Drives `sites` senders all-to-all: every ordered pair carries
/// `msgs_per_link` frames. Returns once every receiver drained its full
/// expected count, asserting per-link FIFO along the way.
fn storm(topology: Topology, sites: u16, msgs_per_link: u32, seed: u64) -> TopoResult {
    let name = match topology {
        Topology::Switched => "switched",
        Topology::SharedHub => "hub",
    };
    let net: Network<Frame> = Network::with_topology(LatencyModel::lan(seed), topology);
    let endpoints: Vec<_> = (0..sites).map(|s| net.register(SiteId(s))).collect();
    let expected_per_site = (sites as u64 - 1) * msgs_per_link as u64;
    let total_msgs = expected_per_site * sites as u64;
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        // Receivers: drain until the full expected count, checking that
        // every sender's sequence arrives in order (per-link FIFO). Each
        // thread owns its endpoint (the receiver half is Send, not Sync).
        for ep in endpoints {
            scope.spawn(move || {
                let mut next_seq = vec![0u32; sites as usize];
                let mut received = 0u64;
                while received < expected_per_site {
                    let env = ep
                        .recv_timeout(Duration::from_secs(30))
                        .expect("network alive")
                        .expect("storm finishes within the timeout");
                    let f = env.payload;
                    assert_eq!(
                        f.seq, next_seq[f.from as usize],
                        "per-link FIFO violated on {} -> {} ({name})",
                        f.from, ep.site
                    );
                    next_seq[f.from as usize] += 1;
                    received += 1;
                }
            });
        }
        // Senders: one thread per site, round-robin over destinations so
        // every link's queue grows evenly.
        for from in 0..sites {
            let net = net.clone();
            scope.spawn(move || {
                for seq in 0..msgs_per_link {
                    for to in 0..sites {
                        if to != from {
                            net.send(SiteId(from), SiteId(to), Frame { from, seq })
                                .expect("send during storm");
                        }
                    }
                }
            });
        }
    });
    let wall = t0.elapsed();
    let links_active = net.stats().links_active();
    net.shutdown();
    TopoResult {
        name,
        sites,
        msgs_per_link,
        total_msgs,
        wall,
        msgs_per_s: total_msgs as f64 / wall.as_secs_f64().max(1e-9),
        links_active,
    }
}

fn write_json(results: &[TopoResult], speedup: f64) -> std::io::Result<()> {
    let mut out = String::from("{\n  \"experiment\": \"bench_net\",\n  \"topologies\": [\n");
    for (i, r) in results.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"sites\": {}, \"msgs_per_link\": {}, \
             \"total_msgs\": {}, \"wall_ms\": {:.2}, \"msgs_per_s\": {:.0}, \
             \"links_active\": {}}}",
            r.name,
            r.sites,
            r.msgs_per_link,
            r.total_msgs,
            r.wall.as_secs_f64() * 1e3,
            r.msgs_per_s,
            r.links_active,
        );
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    let _ = write!(
        out,
        "  ],\n  \"switched_over_hub_speedup\": {speedup:.2}\n}}\n"
    );
    std::fs::write("BENCH_net.json", out)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (sites, msgs_per_link) = if smoke { (4, 100) } else { (8, 1500) };
    println!("# bench_net — sharded (per-link) vs hub delivery");
    println!("# {sites} sites all-to-all, {msgs_per_link} msgs per ordered link, LAN model");
    let mut results = Vec::new();
    for topology in [Topology::SharedHub, Topology::Switched] {
        let r = storm(topology, sites, msgs_per_link, 2009);
        println!(
            "{:<9} wall {:>9.2} ms  {:>10.0} msgs/s  links_active {}",
            r.name,
            r.wall.as_secs_f64() * 1e3,
            r.msgs_per_s,
            r.links_active,
        );
        results.push(r);
    }
    let hub = &results[0];
    let switched = &results[1];
    assert_eq!(
        switched.links_active,
        (sites as u64) * (sites as u64 - 1),
        "every ordered pair gets its own link worker"
    );
    assert_eq!(hub.links_active, 0, "the hub runs one global thread");
    let speedup = switched.msgs_per_s / hub.msgs_per_s.max(1e-9);
    println!("# switched/hub message-rate ratio: {speedup:.2}x");
    if smoke {
        println!("# smoke run: BENCH_net.json left untouched");
    } else {
        match write_json(&results, speedup) {
            Ok(()) => println!("# baseline written to BENCH_net.json"),
            Err(e) => eprintln!("could not write BENCH_net.json: {e}"),
        }
    }
}
