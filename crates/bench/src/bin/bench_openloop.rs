//! `bench_openloop` — open-loop, coordinated-omission-safe load driver.
//!
//! Closed-loop figure runs (fig9/fig12) let slow transactions throttle
//! the offered load, which silently erases the queueing delay real
//! clients would see. This driver does the opposite: a seed-determined
//! arrival schedule is generated up front, a bounded worker pool
//! dispatches every arrival at (or as soon as possible after) its
//! scheduled instant, round-robin across **all** sites as coordinators,
//! and response time is measured from the *scheduled arrival* — so a
//! stall penalizes the percentiles of everything queued behind it.
//!
//! The full run sweeps the offered rate per protocol to locate the
//! saturation knee (largest rate still achieving ≥90 % of offered),
//! then sustains ≥10⁶ transactions below the XDGL knee, plus one bursty
//! on/off cell, and writes `BENCH_openloop.json` for `check_bench`.
//!
//! Flags: `--smoke` runs the small fixed-rate CI cell and leaves
//! `BENCH_openloop.json` untouched; `--seed N` replays any schedule.

use dtx_bench::gate::OPENLOOP_ACHIEVED_FRACTION;
use dtx_bench::openloop::{run_cell, smoke, Arrivals, OpenLoopCell, OpenLoopEnv};
use dtx_bench::{header, row, seed_from_args};
use dtx_core::ProtocolKind;
use std::fmt::Write as _;
use std::time::Duration;

/// Offered rates (txn/s) the sweep probes, low to high.
const SWEEP_RATES: [f64; 6] = [2_000.0, 4_000.0, 8_000.0, 12_000.0, 16_000.0, 20_000.0];
/// Transactions in the sustained run — the ≥10⁶ headline cell.
const SUSTAIN_TXNS: usize = 1_000_000;
/// Sustained offered rate as a fraction of the measured knee: far
/// enough below saturation that the p99 band is a property of the
/// engine, not of standing queues.
const SUSTAIN_KNEE_FRACTION: f64 = 0.7;

fn print_cell(c: &OpenLoopCell) {
    row(&[
        c.protocol.to_string(),
        c.arrivals.to_string(),
        format!("{:.0}", c.offered_rate),
        c.txns.to_string(),
        format!("{:.0}", c.achieved_rate),
        format!("{}/{}", c.committed, c.terminated),
        format!("{:.2}", c.p50_ms),
        format!("{:.2}", c.p99_ms),
        format!("{:.2}", c.p999_ms),
        format!("{:.2}", c.dispatch_p99_ms),
        format!("{:.1}", c.max_lag_ms),
    ]);
}

/// Transactions per sweep cell: ~2 s of traffic at the offered rate,
/// clamped so low-rate cells still gather enough samples for a p999.
fn sweep_txns(rate: f64) -> usize {
    ((rate * 2.0) as usize).clamp(8_000, 40_000)
}

/// Saturation knee: the largest offered rate whose achieved throughput
/// stayed within [`OPENLOOP_ACHIEVED_FRACTION`] of offered. Falls back
/// to the lowest probed rate if every cell saturated.
fn knee_of(cells: &[OpenLoopCell]) -> f64 {
    cells
        .iter()
        .filter(|c| c.achieved_rate >= OPENLOOP_ACHIEVED_FRACTION * c.offered_rate)
        .map(|c| c.offered_rate)
        .fold(f64::NAN, f64::max)
        .max(cells.first().map(|c| c.offered_rate).unwrap_or(2_000.0))
}

fn json_cell(out: &mut String, c: &OpenLoopCell) {
    let _ = write!(
        out,
        "{{\"protocol\": \"{}\", \"arrivals\": \"{}\", \"offered_rate\": {:.0}, \
         \"txns\": {}, \"terminated\": {}, \"committed\": {}, \"aborted\": {}, \
         \"deadlocks\": {}, \"failed\": {}, \"achieved_rate\": {:.1}, \
         \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"p999_ms\": {:.3}, \
         \"dispatch_p99_ms\": {:.3}, \"max_lag_ms\": {:.3}, \"wall_s\": {:.2}",
        c.protocol,
        c.arrivals,
        c.offered_rate,
        c.txns,
        c.terminated,
        c.committed,
        c.aborted,
        c.deadlocks,
        c.failed,
        c.achieved_rate,
        c.p50_ms,
        c.p99_ms,
        c.p999_ms,
        c.dispatch_p99_ms,
        c.max_lag_ms,
        c.wall_s,
    );
    out.push('}');
}

fn json_cell_with_coords(out: &mut String, c: &OpenLoopCell) {
    let _ = write!(
        out,
        "{{\"protocol\": \"{}\", \"arrivals\": \"{}\", \"offered_rate\": {:.0}, \
         \"txns\": {}, \"terminated\": {}, \"committed\": {}, \"aborted\": {}, \
         \"deadlocks\": {}, \"failed\": {}, \"achieved_rate\": {:.1}, \
         \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"p999_ms\": {:.3}, \
         \"dispatch_p99_ms\": {:.3}, \"max_lag_ms\": {:.3}, \"wall_s\": {:.2}, \
         \"coordinators\": [",
        c.protocol,
        c.arrivals,
        c.offered_rate,
        c.txns,
        c.terminated,
        c.committed,
        c.aborted,
        c.deadlocks,
        c.failed,
        c.achieved_rate,
        c.p50_ms,
        c.p99_ms,
        c.p999_ms,
        c.dispatch_p99_ms,
        c.max_lag_ms,
        c.wall_s,
    );
    for (i, co) in c.coordinators.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(
            out,
            "{{\"site\": {}, \"submitted\": {}, \"committed\": {}, \"inflight_peak\": {}}}",
            co.site, co.submitted, co.committed, co.inflight_peak
        );
    }
    let spread = commit_spread(c);
    let _ = write!(out, "], \"commit_spread\": {spread:.3}}}");
}

/// Max/min per-coordinator commit ratio — 1.0 is perfectly fair.
fn commit_spread(c: &OpenLoopCell) -> f64 {
    let min = c
        .coordinators
        .iter()
        .map(|co| co.committed)
        .min()
        .unwrap_or(0);
    let max = c
        .coordinators
        .iter()
        .map(|co| co.committed)
        .max()
        .unwrap_or(0);
    if min == 0 {
        f64::INFINITY
    } else {
        max as f64 / min as f64
    }
}

#[allow(clippy::too_many_arguments)]
fn write_json(
    seed: u64,
    env: &OpenLoopEnv,
    sweep: &[(ProtocolKind, Vec<OpenLoopCell>)],
    knees: &[(ProtocolKind, f64)],
    sustained: &OpenLoopCell,
    bursty: &OpenLoopCell,
) -> std::io::Result<()> {
    let mut out = String::from("{\n  \"experiment\": \"bench_openloop\",\n");
    let _ = writeln!(out, "  \"seed\": {seed},");
    let _ = writeln!(
        out,
        "  \"sites\": {}, \"workers\": {}, \"update_pct\": {},",
        env.sites, env.workers, env.update_pct
    );
    out.push_str("  \"sweep\": [\n");
    let mut first = true;
    for (_, cells) in sweep {
        for c in cells {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str("    ");
            json_cell(&mut out, c);
        }
    }
    out.push_str("\n  ],\n  \"knee\": {");
    for (i, (p, k)) in knees.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{}\": {k:.0}", p.name());
    }
    out.push_str("},\n  \"sustained\": ");
    json_cell_with_coords(&mut out, sustained);
    out.push_str(",\n  \"bursty\": ");
    json_cell(&mut out, bursty);
    out.push_str("\n}\n");
    std::fs::write("BENCH_openloop.json", out)
}

fn main() {
    let smoke_mode = std::env::args().any(|a| a == "--smoke");
    let seed = seed_from_args();
    println!("# bench_openloop — open-loop CO-safe driver, every site a coordinator");
    println!("# latency clock starts at the *scheduled* arrival, not dispatch");
    header(&[
        "proto", "arrivals", "rate", "txns", "achieved", "commit", "p50_ms", "p99_ms", "p999_ms",
        "disp_p99", "lag_ms",
    ]);

    if smoke_mode {
        let cell = smoke(seed);
        print_cell(&cell);
        assert_eq!(
            cell.terminated as usize, cell.txns,
            "every arrival terminates"
        );
        assert_eq!(cell.coordinators.len(), 4, "all four sites coordinated");
        assert!(
            cell.coordinators.iter().all(|c| c.committed > 0),
            "every coordinator committed work"
        );
        assert!(
            cell.p50_ms > 0.0 && cell.p50_ms <= cell.p99_ms && cell.p99_ms <= cell.p999_ms,
            "percentiles must be positive and ordered"
        );
        println!("# smoke run: BENCH_openloop.json left untouched");
        return;
    }

    // Rate sweep per protocol: locate each protocol's saturation knee.
    let mut sweep = Vec::new();
    let mut knees = Vec::new();
    for protocol in [ProtocolKind::Xdgl, ProtocolKind::Node2Pl] {
        let mut env = OpenLoopEnv::standard(protocol);
        env.seed = seed;
        let cells: Vec<OpenLoopCell> = SWEEP_RATES
            .iter()
            .map(|&rate| {
                let c = run_cell(&env, rate, sweep_txns(rate), Arrivals::Poisson);
                print_cell(&c);
                c
            })
            .collect();
        let knee = knee_of(&cells);
        println!("# {} saturation knee: {knee:.0} txn/s", protocol.name());
        sweep.push((protocol, cells));
        knees.push((protocol, knee));
    }

    // Sustained headline cell: ≥10⁶ transactions at a rate comfortably
    // below the XDGL knee, all four sites coordinating.
    let xdgl_knee = knees[0].1;
    let sustain_rate = (xdgl_knee * SUSTAIN_KNEE_FRACTION).max(2_000.0);
    let mut env = OpenLoopEnv::standard(ProtocolKind::Xdgl);
    env.seed = seed;
    println!("# sustained run: {SUSTAIN_TXNS} txns at {sustain_rate:.0} txn/s ...");
    let sustained = run_cell(&env, sustain_rate, SUSTAIN_TXNS, Arrivals::Poisson);
    print_cell(&sustained);
    for c in &sustained.coordinators {
        println!(
            "#   site {}: {} submitted, {} committed, inflight peak {}",
            c.site, c.submitted, c.committed, c.inflight_peak
        );
    }
    println!(
        "# commit spread (max/min): {:.3}",
        commit_spread(&sustained)
    );

    // Bursty cell: same long-run rate compressed into 20 % duty cycles —
    // the queue drains visibly in p99 vs the Poisson cell.
    let bursty = run_cell(
        &env,
        (xdgl_knee * 0.5).max(2_000.0),
        50_000,
        Arrivals::Bursty {
            period: Duration::from_millis(100),
            duty_pct: 20,
        },
    );
    print_cell(&bursty);

    assert!(
        sustained.terminated >= SUSTAIN_TXNS as u64,
        "sustained run must terminate all {SUSTAIN_TXNS} arrivals"
    );
    assert!(
        sustained.achieved_rate >= OPENLOOP_ACHIEVED_FRACTION * sustained.offered_rate,
        "sustained cell ran below the knee yet failed to keep up: \
         achieved {:.0} of offered {:.0}",
        sustained.achieved_rate,
        sustained.offered_rate
    );
    assert!(
        sustained.coordinators.iter().all(|c| c.committed > 0),
        "every site must commit as coordinator"
    );

    match write_json(seed, &env, &sweep, &knees, &sustained, &bursty) {
        Ok(()) => println!("# baseline written to BENCH_openloop.json"),
        Err(e) => eprintln!("could not write BENCH_openloop.json: {e}"),
    }
}
