//! `bench_reads` — read-mix driver for lock-free snapshot reads.
//!
//! The tentpole claim: read-only transactions pin an immutable DataGuide
//! snapshot at start and execute with **zero lock acquisitions and zero
//! WFG edges**, so their response time is independent of write
//! contention and they can never be deadlock victims. This driver
//! measures both halves:
//!
//! 1. **Contention sweep** (40 clients, update-transaction share swept
//!    10 → 40 %): the read-only p99 must stay flat while the write p99
//!    degrades with contention — snapshot readers never queue behind
//!    writer locks.
//! 2. **Reader sweep** (10 all-update writer clients fixed, read-only
//!    client count swept 8 → 32): the deadlock count must be independent
//!    of the reader count, and no read-only transaction may ever be a
//!    deadlock victim — readers contribute no WFG edges to cycle through.
//!
//! Both sweeps also pin the zero-lock witness (`snapshot_reads` ≥ the
//! read operations executed: every read-only op was served from a pinned
//! snapshot, not the lock table) and the retention bound
//! (`snapshots_live` returns to one version per document replica once
//! the run drains — old snapshots are GC'd as their pins release).
//!
//! Flags: `--smoke` shrinks both sweeps to a seconds-scale CI subset and
//! leaves `BENCH_reads.json` untouched. The full run (no flags)
//! refreshes `BENCH_reads.json`, which `check_bench` gates on.

use dtx_bench::{header, ms, row, seed_from_args, setup, ExpEnv};
use dtx_core::ProtocolKind;
use dtx_xmark::tester::run_workload;
use dtx_xmark::workload::{generate as gen_workload, WorkloadConfig};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// One measured cell of either sweep.
struct Cell {
    /// The knob swept (update-txn % or reader-client count).
    knob: u32,
    read_txns: usize,
    read_committed: usize,
    /// Deadlock-victim aborts among read-only transactions (must be 0:
    /// a transaction with no locks and no WFG edges cannot be chosen).
    reader_deadlocks: usize,
    read_p50_ms: f64,
    read_p99_ms: f64,
    read_p999_ms: f64,
    read_mean_ms: f64,
    write_p99_ms: f64,
    /// Deadlock-victim aborts across the whole run (writers only).
    deadlocks: usize,
    /// Snapshot reads served (per participant, so fan-out counts > 1
    /// per op) — the zero-lock witness.
    snapshot_reads: u64,
    /// Read operations of committed read-only transactions.
    read_ops: usize,
    snapshots_live_end: u64,
    snapshots_live_peak: u64,
    snapshot_bytes_peak: u64,
}

fn percentile(mut v: Vec<f64>, p: f64) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let idx = ((v.len() as f64 * p).ceil() as usize).max(1) - 1;
    v[idx.min(v.len() - 1)]
}

fn p99(v: Vec<f64>) -> f64 {
    percentile(v, 0.99)
}

/// Runs one mixed workload cell: `clients` mixed clients at
/// `update_txn_pct` (seeded with `mixed_seed`), plus `extra_readers`
/// pure read-only clients, on a fresh standard cluster. The reader
/// sweep keeps `mixed_seed` fixed so the writer workload is *identical*
/// across cells — only the reader pool grows — which is what makes its
/// deadlock comparison meaningful. Outcomes are split by the *spec*
/// (read-only vs updating) so the read-side latency distribution is
/// exact.
fn run_cell(
    knob: u32,
    clients: usize,
    update_txn_pct: u32,
    mixed_seed: u64,
    extra_readers: usize,
    seed: u64,
) -> Cell {
    let (cluster, frags) = setup(ExpEnv::standard(ProtocolKind::Xdgl).with_seed(seed));
    let mut wl = gen_workload(
        WorkloadConfig::with_updates(clients, update_txn_pct, mixed_seed),
        &frags,
    );
    let ops_per_txn = wl
        .clients
        .iter()
        .flatten()
        .next()
        .map_or(5, |t| t.ops.len());
    if extra_readers > 0 {
        let readers = gen_workload(
            WorkloadConfig::read_only(extra_readers, seed + 1000 + knob as u64),
            &frags,
        );
        wl.clients.extend(readers.clients);
    }

    // Sample the retention gauges while the run is live: the peak shows
    // versions actually accumulating under pins, the end value shows GC
    // returning to one version per document replica.
    let stop = AtomicBool::new(false);
    let (report, live_peak, bytes_peak) = std::thread::scope(|scope| {
        let sampler = scope.spawn(|| {
            let metrics = cluster.metrics();
            let (mut live_peak, mut bytes_peak) = (0u64, 0u64);
            while !stop.load(Ordering::Relaxed) {
                live_peak = live_peak.max(metrics.snapshots_live());
                bytes_peak = bytes_peak.max(metrics.snapshot_bytes());
                std::thread::sleep(Duration::from_millis(2));
            }
            (live_peak, bytes_peak)
        });
        let report = run_workload(&cluster, &wl);
        stop.store(true, Ordering::Relaxed);
        let (live_peak, bytes_peak) = sampler.join().expect("sampler thread");
        (report, live_peak, bytes_peak)
    });

    // Outcomes arrive in per-client submission order — the same order
    // the workload's flattened spec list has — so zipping pairs every
    // outcome with the spec that produced it.
    let specs: Vec<_> = wl.clients.iter().flatten().collect();
    assert_eq!(specs.len(), report.outcomes.len(), "outcome/spec zip");
    let mut read_resp = Vec::new();
    let mut write_resp = Vec::new();
    let (mut read_txns, mut read_committed, mut reader_deadlocks) = (0usize, 0usize, 0usize);
    for (spec, out) in specs.iter().zip(&report.outcomes) {
        if spec.is_read_only() {
            read_txns += 1;
            read_committed += usize::from(out.committed());
            reader_deadlocks += usize::from(out.deadlocked());
            if out.committed() {
                read_resp.push(ms(out.response_time));
            }
        } else if out.committed() {
            write_resp.push(ms(out.response_time));
        }
    }
    let metrics = cluster.metrics();
    let cell = Cell {
        knob,
        read_txns,
        read_committed,
        reader_deadlocks,
        read_p50_ms: percentile(read_resp.clone(), 0.50),
        read_p99_ms: p99(read_resp.clone()),
        read_p999_ms: percentile(read_resp.clone(), 0.999),
        read_mean_ms: read_resp.iter().sum::<f64>() / (read_resp.len().max(1) as f64),
        write_p99_ms: p99(write_resp),
        deadlocks: report.deadlocks(),
        snapshot_reads: metrics.snapshot_reads(),
        read_ops: read_committed * ops_per_txn,
        snapshots_live_end: metrics.snapshots_live(),
        snapshots_live_peak: live_peak,
        snapshot_bytes_peak: bytes_peak,
    };
    cluster.shutdown();
    cell
}

fn print_cell(knob_name: &str, c: &Cell) {
    row(&[
        c.knob.to_string(),
        format!("{:.2}", c.read_p99_ms),
        format!("{:.2}", c.read_mean_ms),
        format!("{:.2}", c.write_p99_ms),
        c.deadlocks.to_string(),
        c.reader_deadlocks.to_string(),
        format!("{}/{}", c.read_committed, c.read_txns),
        c.snapshot_reads.to_string(),
        c.snapshots_live_end.to_string(),
    ]);
    let _ = knob_name;
}

fn sweep_header(knob: &str) {
    header(&[
        knob,
        "read_p99_ms",
        "read_mean_ms",
        "write_p99_ms",
        "deadlocks",
        "rd_deadlocks",
        "rd_commit",
        "snap_reads",
        "live_end",
    ]);
}

fn json_cell(out: &mut String, knob_name: &str, c: &Cell) {
    let _ = write!(
        out,
        "{{\"{knob_name}\": {}, \"read_txns\": {}, \"read_committed\": {}, \
         \"reader_deadlocks\": {}, \"read_p50_ms\": {:.3}, \"read_p99_ms\": {:.3}, \
         \"read_p999_ms\": {:.3}, \"read_mean_ms\": {:.3}, \
         \"write_p99_ms\": {:.3}, \"deadlocks\": {}, \"snapshot_reads\": {}, \
         \"read_ops\": {}, \"snapshots_live_end\": {}, \"snapshots_live_peak\": {}, \
         \"snapshot_bytes_peak\": {}}}",
        c.knob,
        c.read_txns,
        c.read_committed,
        c.reader_deadlocks,
        c.read_p50_ms,
        c.read_p99_ms,
        c.read_p999_ms,
        c.read_mean_ms,
        c.write_p99_ms,
        c.deadlocks,
        c.snapshot_reads,
        c.read_ops,
        c.snapshots_live_end,
        c.snapshots_live_peak,
        c.snapshot_bytes_peak,
    );
}

fn write_json(contention: &[Cell], readers: &[Cell]) -> std::io::Result<()> {
    let mut out = String::from("{\n  \"experiment\": \"bench_reads\",\n  \"sites\": 4,\n");
    out.push_str("  \"contention_sweep\": [\n");
    for (i, c) in contention.iter().enumerate() {
        out.push_str("    ");
        json_cell(&mut out, "update_txn_pct", c);
        out.push_str(if i + 1 < contention.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ],\n  \"reader_sweep\": [\n");
    for (i, c) in readers.iter().enumerate() {
        out.push_str("    ");
        json_cell(&mut out, "readers", c);
        out.push_str(if i + 1 < readers.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    std::fs::write("BENCH_reads.json", out)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let seed = seed_from_args();
    println!("# bench_reads — snapshot-read latency vs write contention");

    // 1. Contention sweep: a 90/10 read/write mix degraded towards
    //    60/40; fresh cluster per cell (updates mutate the base).
    let (clients, pcts): (usize, &[u32]) = if smoke {
        (10, &[10, 40])
    } else {
        (40, &[10, 25, 40])
    };
    println!("# contention sweep: {clients} clients, update-txn share swept");
    sweep_header("update_pct");
    let contention: Vec<Cell> = pcts
        .iter()
        .map(|&pct| {
            let c = run_cell(pct, clients, pct, seed + pct as u64, 0, seed);
            print_cell("update_pct", &c);
            c
        })
        .collect();

    // 2. Reader sweep: fixed all-update writer pool, growing read-only
    //    client pool. Readers must not move the deadlock count.
    let (writers, reader_counts): (usize, &[u32]) = if smoke {
        (4, &[4, 8])
    } else {
        (10, &[8, 16, 32])
    };
    println!("# reader sweep: {writers} all-update writer clients fixed, readers swept");
    sweep_header("readers");
    let readers: Vec<Cell> = reader_counts
        .iter()
        .map(|&r| {
            let c = run_cell(r, writers, 100, seed, r as usize, seed);
            print_cell("readers", &c);
            c
        })
        .collect();

    for c in contention.iter().chain(&readers) {
        assert_eq!(
            c.reader_deadlocks, 0,
            "a zero-lock reader can never be a deadlock victim"
        );
        assert!(
            c.snapshot_reads >= c.read_ops as u64,
            "every committed read-only op must be served from a snapshot \
             ({} snapshot reads < {} read ops)",
            c.snapshot_reads,
            c.read_ops
        );
    }

    if smoke {
        println!("# smoke run: BENCH_reads.json left untouched");
    } else {
        match write_json(&contention, &readers) {
            Ok(()) => println!("# baseline written to BENCH_reads.json"),
            Err(e) => eprintln!("could not write BENCH_reads.json: {e}"),
        }
    }
}
