//! `bench_recovery` — durability and crash-recovery driver.
//!
//! Three measurements over the WAL + presumed-abort recovery subsystem:
//!
//! 1. **Replay sweep** (committed-txn count swept): a participant is
//!    killed and restarted against a growing log; recovery time must
//!    stay on a bounded per-record line, every committed transaction
//!    must survive, and the replayed state must be byte-identical to
//!    the never-crashed replica's (repeating history, not re-executing
//!    the workload).
//! 2. **Crash matrix**: the coordinator is killed at each of the four
//!    crash points mid-2PC; survivors plus the restarted site must
//!    converge to the mandated outcome — presumed abort before the
//!    forced decision, commit after, zero committed-transaction loss.
//! 3. **Chaos cell**: a write workload under seed-deterministic message
//!    loss, then healed; every transaction must terminate and the
//!    replicas must converge byte-identically.
//!
//! Flags: `--smoke` shrinks the sweep to a seconds-scale CI subset and
//! leaves `BENCH_recovery.json` untouched; `--seed N` replays the whole
//! run (including the chaos cell's exact fault plan) under another
//! seed. The full run (no `--smoke`) refreshes `BENCH_recovery.json`,
//! which `check_bench` gates on.

use dtx_bench::recovery::{chaos_case, crash_case, replay_point, ChaosOutcome, PHASES};
use dtx_bench::{header, row, seed_from_args};
use std::fmt::Write as _;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let seed = seed_from_args();
    println!("# bench_recovery — WAL replay, crash matrix, seeded chaos (seed {seed})");

    // 1. Replay sweep.
    let sweep: &[usize] = if smoke { &[10, 25] } else { &[25, 50, 100] };
    println!("# replay sweep: participant killed + restarted against a growing log");
    header(&[
        "txns",
        "records",
        "bytes",
        "elapsed_ms",
        "redo",
        "committed",
        "identical",
    ]);
    let replay: Vec<_> = sweep
        .iter()
        .map(|&txns| {
            let p = replay_point(txns, seed);
            row(&[
                p.txns.to_string(),
                p.records.to_string(),
                p.bytes.to_string(),
                format!("{:.2}", p.elapsed_ms),
                p.redo_applied.to_string(),
                p.committed.to_string(),
                p.identical.to_string(),
            ]);
            assert!(p.committed >= p.txns, "committed transactions lost");
            assert!(p.identical, "replay diverged from the survivor");
            p
        })
        .collect();

    // 2. Crash matrix.
    println!("# crash matrix: coordinator killed at each 2PC phase");
    header(&["phase", "expected", "outcome", "converged", "identical"]);
    let matrix: Vec<_> = PHASES
        .iter()
        .map(|&(point, phase, expected)| {
            let cell = crash_case(point, phase, expected);
            row(&[
                cell.phase.to_string(),
                cell.expected.to_string(),
                cell.outcome.to_string(),
                cell.converged.to_string(),
                cell.identical.to_string(),
            ]);
            assert_eq!(cell.outcome, cell.expected, "{phase}: wrong outcome");
            assert!(
                cell.converged && cell.preserved && cell.identical,
                "{phase}"
            );
            cell
        })
        .collect();

    // 3. Chaos cell: 30 % message loss, seed-deterministic.
    let chaos_txns = if smoke { 4 } else { 8 };
    let chaos = chaos_case(seed, 300, chaos_txns);
    println!(
        "# chaos: {} txns under 300‰ loss — {} terminated, {} committed, {} drops, identical={}",
        chaos.txns, chaos.terminated, chaos.committed, chaos.dropped, chaos.identical
    );
    assert_eq!(chaos.terminated, chaos.txns, "a transaction hung");
    assert!(chaos.identical, "replicas diverged under message loss");

    if smoke {
        println!("# smoke run: BENCH_recovery.json left untouched");
        return;
    }
    match write_json(seed, &replay, &matrix, &chaos) {
        Ok(()) => println!("# baseline written to BENCH_recovery.json"),
        Err(e) => eprintln!("could not write BENCH_recovery.json: {e}"),
    }
}

fn write_json(
    seed: u64,
    replay: &[dtx_bench::recovery::ReplayPoint],
    matrix: &[dtx_bench::recovery::MatrixOutcome],
    chaos: &ChaosOutcome,
) -> std::io::Result<()> {
    let mut out = String::from("{\n  \"experiment\": \"bench_recovery\",\n");
    let _ = writeln!(out, "  \"seed\": {seed},");
    out.push_str("  \"replay\": [\n");
    for (i, p) in replay.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"txns\": {}, \"records\": {}, \"bytes\": {}, \"elapsed_ms\": {:.3}, \
             \"redo_applied\": {}, \"committed\": {}, \"state_identical\": {}}}",
            p.txns,
            p.records,
            p.bytes,
            p.elapsed_ms,
            p.redo_applied,
            p.committed,
            u8::from(p.identical),
        );
        out.push_str(if i + 1 < replay.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n  \"crash_matrix\": [\n");
    for (i, c) in matrix.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"phase\": \"{}\", \"expected\": \"{}\", \"outcome\": \"{}\", \
             \"converged\": {}, \"preserved\": {}, \"state_identical\": {}}}",
            c.phase,
            c.expected,
            c.outcome,
            u8::from(c.converged),
            u8::from(c.preserved),
            u8::from(c.identical),
        );
        out.push_str(if i + 1 < matrix.len() { ",\n" } else { "\n" });
    }
    let _ = write!(
        out,
        "  ],\n  \"chaos\": {{\"seed\": {seed}, \"per_mille\": 300, \"txns\": {}, \
         \"terminated\": {}, \"committed\": {}, \"dropped\": {}, \"state_identical\": {}}}\n}}\n",
        chaos.txns,
        chaos.terminated,
        chaos.committed,
        chaos.dropped,
        u8::from(chaos.identical),
    );
    std::fs::write("BENCH_recovery.json", out)
}
