//! `bench_trace` — tracing-overhead driver and trace certification.
//!
//! The observability tentpole's cost claim: with the tracer disarmed
//! every sink is a no-op (the event closure is never even constructed),
//! and with it armed the per-event cost is one ring push — so a full
//! fig12-style run with tracing on must land within a few percent of
//! the same run with tracing off, while still committing at least the
//! speculative-retry floor.
//!
//! The driver runs the fig12 XDGL mix on identical seeds — sinks
//! disabled, then armed, best-of-3 wall time per cell to shed scheduler
//! jitter — prints both cells plus the overhead, collects each armed
//! run's merged timeline and certifies it with the protocol-invariant
//! checker (`dtx_trace::check`). A trace with drops, or one violating a
//! protocol law in *any* iteration, fails the run outright.
//!
//! Flags: `--smoke` shrinks the workload to a seconds-scale CI subset
//! and leaves `BENCH_trace.json` untouched. The full run (no flags)
//! refreshes `BENCH_trace.json`, which `check_bench` gates on.

use dtx_bench::tracebench::{best_of, overhead_pct, TraceCell};
use dtx_bench::{header, row, seed_from_args};
use std::fmt::Write as _;

fn print_cell(c: &TraceCell) {
    row(&[
        if c.traced { "on" } else { "off" }.to_string(),
        format!("{}/{}", c.committed, c.submitted),
        format!("{:.1}", c.wall_ms),
        format!("{:.1}", c.p50_ms),
        format!("{:.1}", c.p99_ms),
        format!("{:.1}", c.p999_ms),
        c.events.to_string(),
        c.violations.to_string(),
    ]);
}

fn write_json(disabled: &TraceCell, traced: &TraceCell, clients: usize) -> std::io::Result<()> {
    let mut out = String::from("{\n  \"experiment\": \"bench_trace\",\n");
    let _ = writeln!(out, "  \"clients\": {clients},");
    let cell = |out: &mut String, name: &str, c: &TraceCell| {
        let _ = write!(
            out,
            "  \"{name}\": {{\"committed\": {}, \"submitted\": {}, \"wall_ms\": {:.2}, \
             \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"p999_ms\": {:.3}, \"events\": {}, \
             \"dropped\": {}, \"checker_violations\": {}, \"checker_complete\": {}, \
             \"votes\": {}, \"commits\": {}, \"links\": {}}}",
            c.committed,
            c.submitted,
            c.wall_ms,
            c.p50_ms,
            c.p99_ms,
            c.p999_ms,
            c.events,
            c.dropped,
            c.violations,
            u8::from(c.complete),
            c.votes,
            c.commits,
            c.links,
        );
    };
    cell(&mut out, "disabled", disabled);
    out.push_str(",\n");
    cell(&mut out, "traced", traced);
    let _ = write!(
        out,
        ",\n  \"overhead_pct\": {:.2}\n}}\n",
        overhead_pct(disabled.wall_ms, traced.wall_ms)
    );
    std::fs::write("BENCH_trace.json", out)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let seed = seed_from_args();
    let clients = if smoke { 16 } else { 50 };
    println!("# bench_trace — tracing overhead (fig12 XDGL mix, sinks off vs armed)");
    println!("# {clients} clients x 5 txns, standard 4-site partial layout, seed {seed}");
    header(&[
        "trace", "commit", "wall_ms", "p50_ms", "p99_ms", "p999_ms", "events", "viol",
    ]);
    // Best-of-3 wall times: scheduler jitter on a sub-second workload
    // swamps the per-event cost, so a single pair proves nothing.
    let disabled = best_of(3, clients, seed, false);
    print_cell(&disabled);
    let traced = best_of(3, clients, seed, true);
    print_cell(&traced);
    let overhead = overhead_pct(disabled.wall_ms, traced.wall_ms);
    println!("# tracing overhead: {overhead:.2}% wall time");
    println!(
        "# trace: {} events, {} dropped, checker: {} violations (complete: {})",
        traced.events, traced.dropped, traced.violations, traced.complete
    );

    assert!(traced.events > 0, "armed run must capture events");
    assert_eq!(traced.dropped, 0, "ring capacity must cover the run");
    assert!(
        traced.complete && traced.violations == 0,
        "the captured trace must certify against every protocol law"
    );
    assert_eq!(disabled.events, 0, "disarmed run must record nothing");

    if smoke {
        println!("# smoke run: BENCH_trace.json left untouched");
    } else {
        match write_json(&disabled, &traced, clients) {
            Ok(()) => println!("# baseline written to BENCH_trace.json"),
            Err(e) => eprintln!("could not write BENCH_trace.json: {e}"),
        }
    }
}
