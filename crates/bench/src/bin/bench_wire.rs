//! `bench_wire` — the multi-process fig12 and the wire-codec
//! microbenchmark.
//!
//! Every other figure runs the cluster inside one process over the
//! simulated LAN; this bench spawns each site as a **separate OS
//! process** (`dtx-site`) and drives the fig12 workload (50 clients,
//! 20 % updates, 250 transactions) over real sockets with the `WIRE.md`
//! binary codec. It reports commits, response-time percentiles and the
//! real bytes/frames that crossed the wire, plus per-message
//! encode/decode cost from an in-process codec microbench, and writes
//! `BENCH_wire.json` for `check_bench`.
//!
//! Flags: `--smoke` runs the small 2-process CI cell (50 txns) and
//! leaves `BENCH_wire.json` untouched; `--seed N` replays any run.
//!
//! Requires the `dtx-site` binary next to this one:
//! `cargo build --release -p dtx-bench --bin dtx-site`.

use dtx_bench::wirebench::{codec_bench, run_process_cluster, CodecBench, WireEnv, WireRun};
use dtx_bench::{header, row, seed_from_args};
use std::fmt::Write as _;

/// Codec microbench iterations over the 5-message mix (full run).
const CODEC_ITERS: usize = 200_000;

fn print_run(label: &str, r: &WireRun) {
    row(&[
        label.to_string(),
        r.sites.to_string(),
        r.txns.to_string(),
        format!("{}/{}", r.committed, r.txns),
        format!("{:.2}", r.p50_ms),
        format!("{:.2}", r.p99_ms),
        format!("{:.2}", r.p999_ms),
        format!("{:.2}", r.wall_s),
        r.bytes_out.to_string(),
        r.frames_out.to_string(),
        format!("{:.0}", r.bytes_per_frame()),
    ]);
}

fn write_json(seed: u64, fig12: &WireRun, codec: &CodecBench) -> std::io::Result<()> {
    let mut out = String::from("{\n  \"experiment\": \"bench_wire\",\n");
    let _ = writeln!(out, "  \"seed\": {seed},");
    let _ = writeln!(
        out,
        "  \"fig12_process\": {{\"sites\": {}, \"processes\": {}, \"txns\": {}, \
         \"committed\": {}, \"aborted\": {}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \
         \"p999_ms\": {:.3}, \"wall_s\": {:.2}, \"bytes_out\": {}, \"bytes_in\": {}, \
         \"frames_out\": {}, \"frames_in\": {}, \"bytes_per_frame\": {:.1}, \
         \"decode_errors\": 0}},",
        fig12.sites,
        fig12.sites,
        fig12.txns,
        fig12.committed,
        fig12.aborted,
        fig12.p50_ms,
        fig12.p99_ms,
        fig12.p999_ms,
        fig12.wall_s,
        fig12.bytes_out,
        fig12.bytes_in,
        fig12.frames_out,
        fig12.frames_in,
        fig12.bytes_per_frame(),
    );
    let _ = writeln!(
        out,
        "  \"codec\": {{\"encode_ns\": {:.1}, \"decode_ns\": {:.1}, \"mean_bytes\": {:.1}}}",
        codec.encode_ns, codec.decode_ns, codec.mean_bytes
    );
    out.push_str("}\n");
    std::fs::write("BENCH_wire.json", out)
}

fn main() {
    let smoke_mode = std::env::args().any(|a| a == "--smoke");
    let seed = seed_from_args();
    println!("# bench_wire — sites as OS processes, WIRE.md codec over real TCP");
    header(&[
        "cell",
        "sites",
        "txns",
        "commit",
        "p50_ms",
        "p99_ms",
        "p999_ms",
        "wall_s",
        "bytes_out",
        "frames",
        "B/frame",
    ]);

    if smoke_mode {
        let run = run_process_cluster(WireEnv::smoke(seed)).unwrap_or_else(|e| {
            eprintln!("bench_wire --smoke: {e}");
            std::process::exit(1);
        });
        print_run("smoke", &run);
        assert_eq!(run.txns, 50, "smoke cell is 10 clients x 5 txns");
        assert_eq!(
            run.committed + run.aborted,
            run.txns,
            "every transaction terminates"
        );
        assert!(
            run.bytes_out > 0 && run.frames_out > 0,
            "cross-process work must put bytes on the wire"
        );
        let codec = codec_bench(2_000);
        println!(
            "# codec: encode {:.0} ns/msg, decode {:.0} ns/msg, {:.0} B/msg",
            codec.encode_ns, codec.decode_ns, codec.mean_bytes
        );
        println!("# smoke run: BENCH_wire.json left untouched");
        return;
    }

    let run = run_process_cluster(WireEnv::fig12(seed)).unwrap_or_else(|e| {
        eprintln!("bench_wire: {e}");
        std::process::exit(1);
    });
    print_run("fig12", &run);
    assert_eq!(run.txns, 250, "fig12 is 50 clients x 5 txns");
    assert_eq!(
        run.committed + run.aborted,
        run.txns,
        "every transaction terminates"
    );

    let codec = codec_bench(CODEC_ITERS);
    println!(
        "# codec: encode {:.0} ns/msg, decode {:.0} ns/msg, {:.0} B/msg over the protocol mix",
        codec.encode_ns, codec.decode_ns, codec.mean_bytes
    );

    match write_json(seed, &run, &codec) {
        Ok(()) => println!("# baseline written to BENCH_wire.json"),
        Err(e) => eprintln!("could not write BENCH_wire.json: {e}"),
    }
}
