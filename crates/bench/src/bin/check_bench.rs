//! `check_bench` — the CI perf-regression gate.
//!
//! Validates the committed `BENCH_*.json` witnesses against their
//! recorded invariants (a doctored or regressed witness fails the gate
//! outright), then — unless `--offline` — re-runs seconds-scale smoke
//! versions of the gated workloads and checks the fresh numbers against
//! wider tolerance bands (see `dtx_bench::gate` for every band and its
//! rationale):
//!
//! * **fig12** — XDGL over the standard 4-site mixed workload: commits
//!   ≥ 228 / 250, batched termination messages strictly below the
//!   unbatched-equivalent count;
//! * **net** — 8-site all-to-all storm over hub / thread-per-link /
//!   reactor: the reactor rate holds its wins (per-link FIFO and the
//!   bounded-thread invariant are asserted inside the storm itself);
//! * **ingest** — tree vs streaming ingestion of the default 400 KB
//!   base: the streaming rate holds its win;
//! * **reads** — low- vs high-contention read mix over the standard
//!   environment: the read-only p99 stays within the fresh flatness
//!   band, no reader is ever a deadlock victim, and every committed
//!   read op was served from a pinned snapshot rather than the lock
//!   table;
//! * **recovery** — a participant killed and restarted against a 10-txn
//!   WAL: zero committed-transaction loss, byte-identical replay, and
//!   replay time on the fresh bounded-per-record line;
//! * **trace** — the fig12 smoke mix run twice (sinks disabled, then
//!   armed): tracing overhead inside the fresh band, the captured
//!   timeline complete and certified by the protocol-invariant checker;
//! * **openloop** — the fixed-rate open-loop smoke cell: every
//!   scheduled arrival terminated, all four sites served as
//!   coordinators, and the scheduled-arrival (coordinated-omission-
//!   safe) p99 inside the fresh band;
//! * **wire** — a 2-process `dtx-site` cluster driven over real TCP
//!   with the `WIRE.md` codec: most of the 50-txn smoke mix commits,
//!   bytes actually cross the wire, and the codec microbench stays
//!   inside the fresh band (needs the `dtx-site` binary built:
//!   `cargo build --release -p dtx-bench --bin dtx-site`).
//!
//! Prints a delta table (committed vs fresh per metric), writes the
//! fresh numbers to `target/BENCH_check.json` (uploaded as a CI
//! artifact for trajectory inspection), and exits non-zero on any
//! failed check.

use dtx_bench::gate::{
    self, check_ingest_witness, check_net_witness, check_openloop_witness, check_reads_witness,
    check_recovery_witness, check_throughput_witness, check_trace_witness, check_wire_witness,
    Check,
};
use dtx_bench::json::Json;
use dtx_bench::netbench::storm;
use dtx_bench::openloop;
use dtx_bench::recovery::replay_point;
use dtx_bench::tracebench::{best_of, overhead_pct};
use dtx_bench::{run, setup, ExpEnv, BASE_BYTES, SEED};
use dtx_core::ProtocolKind;
use dtx_dataguide::{DataGuide, GuideBuilder};
use dtx_net::Topology;
use dtx_xmark::generator::{emit, generate, XmarkConfig};
use dtx_xmark::tester::run_workload;
use dtx_xmark::workload::{generate as gen_workload, WorkloadConfig};
use dtx_xml::stream::{Tee, TreeBuilder};
use dtx_xml::Document;
use std::fmt::Write as _;
use std::time::Instant;

/// One committed-vs-fresh delta row for the report table.
struct Delta {
    metric: &'static str,
    committed: Option<f64>,
    fresh: f64,
}

fn load_witness(path: &str) -> Result<Json, String> {
    let src =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read witness {path}: {e}"))?;
    Json::parse(&src).map_err(|e| format!("witness {path} is not valid JSON: {e}"))
}

fn print_checks(title: &str, checks: &[Check]) -> bool {
    let mut ok = true;
    println!("\n## {title}");
    for c in checks {
        let mark = if c.ok { "PASS" } else { "FAIL" };
        println!("  [{mark}] {:<48} {}", c.name, c.detail);
        ok &= c.ok;
    }
    ok
}

/// Fresh fig12-style run: XDGL only (Node2PL takes ~10× longer and is
/// not gated), standard 4-site environment, 250 transactions.
fn fresh_throughput() -> (f64, f64, f64) {
    let (cluster, frags) = setup(ExpEnv::standard(ProtocolKind::Xdgl));
    let report = run(&cluster, &frags, WorkloadConfig::with_updates(50, 20, SEED));
    let metrics = cluster.metrics();
    let out = (
        report.committed() as f64,
        metrics.termination_msgs() as f64,
        metrics.termination_msgs_unbatched() as f64,
    );
    cluster.shutdown();
    out
}

/// Fresh read-mix smoke: one low- and one high-contention cell (10
/// mixed clients at 10 % / 40 % update transactions). Returns the two
/// read-only p99s (ms), reader deadlock-victim count, snapshot reads
/// served and committed read ops — the inputs of
/// [`gate::check_reads_fresh`].
fn fresh_reads() -> (f64, f64, f64, f64, f64) {
    let mut p99s = Vec::new();
    let (mut reader_deadlocks, mut snapshot_reads, mut read_ops) = (0u64, 0u64, 0u64);
    for pct in [10u32, 40] {
        let (cluster, frags) = setup(ExpEnv::standard(ProtocolKind::Xdgl));
        let wl = gen_workload(
            WorkloadConfig::with_updates(10, pct, SEED + pct as u64),
            &frags,
        );
        let report = run_workload(&cluster, &wl);
        let specs: Vec<_> = wl.clients.iter().flatten().collect();
        let mut read_resp: Vec<f64> = Vec::new();
        for (spec, out) in specs.iter().zip(&report.outcomes) {
            if spec.is_read_only() {
                reader_deadlocks += u64::from(out.deadlocked());
                if out.committed() {
                    read_resp.push(out.response_time.as_secs_f64() * 1e3);
                    read_ops += spec.ops.len() as u64;
                }
            }
        }
        read_resp.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let idx = ((read_resp.len() as f64 * 0.99).ceil() as usize).max(1) - 1;
        p99s.push(read_resp.get(idx).copied().unwrap_or(0.0));
        snapshot_reads += cluster.metrics().snapshot_reads();
        cluster.shutdown();
    }
    (
        p99s[0],
        p99s[1],
        reader_deadlocks as f64,
        snapshot_reads as f64,
        read_ops as f64,
    )
}

/// Fresh ingest rates (MB/s) for the default base: tree path (string →
/// parse → guide rebuild) vs streaming path (events → tree ⊕ guide).
fn fresh_ingest() -> (f64, f64) {
    let config = XmarkConfig::sized(BASE_BYTES, SEED);
    let t0 = Instant::now();
    let doc = generate(config);
    let parsed = Document::parse(&doc.xml).expect("well-formed");
    let guide = DataGuide::build(&parsed);
    let tree_s = t0.elapsed().as_secs_f64();
    let bytes = doc.xml.len();
    assert!(guide.len() > 10);
    drop((doc, parsed, guide));

    let t0 = Instant::now();
    let mut tree = TreeBuilder::new();
    let mut guide = GuideBuilder::new();
    emit(config, &mut Tee::new(&mut tree, &mut guide)).expect("well-formed events");
    let sdoc = tree.finish().expect("balanced");
    let sguide = guide.finish().expect("rooted");
    let stream_s = t0.elapsed().as_secs_f64();
    drop((sdoc, sguide));

    let mb = bytes as f64 / (1024.0 * 1024.0);
    (mb / stream_s.max(1e-9), mb / tree_s.max(1e-9))
}

fn print_delta_table(deltas: &[Delta]) {
    println!("\n## delta table (committed witness vs fresh smoke run)");
    println!(
        "  {:<40} {:>14} {:>14} {:>9}",
        "metric", "committed", "fresh", "ratio"
    );
    for d in deltas {
        let (committed, ratio) = match d.committed {
            Some(c) if c.abs() > 1e-9 => (format!("{c:.0}"), format!("{:.2}x", d.fresh / c)),
            Some(c) => (format!("{c:.0}"), "-".into()),
            None => ("(absent)".into(), "-".into()),
        };
        println!(
            "  {:<40} {:>14} {:>14.0} {:>9}",
            d.metric, committed, d.fresh, ratio
        );
    }
}

fn write_fresh_json(deltas: &[Delta]) {
    let mut out = String::from("{\n  \"experiment\": \"check_bench_fresh\",\n  \"metrics\": [\n");
    for (i, d) in deltas.iter().enumerate() {
        let committed = d
            .committed
            .map(|c| format!("{c:.2}"))
            .unwrap_or_else(|| "null".into());
        let _ = write!(
            out,
            "    {{\"metric\": \"{}\", \"committed\": {committed}, \"fresh\": {:.2}}}",
            d.metric, d.fresh
        );
        out.push_str(if i + 1 < deltas.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    let _ = std::fs::create_dir_all("target");
    match std::fs::write("target/BENCH_check.json", out) {
        Ok(()) => println!("\n# fresh numbers written to target/BENCH_check.json"),
        Err(e) => eprintln!("could not write target/BENCH_check.json: {e}"),
    }
}

fn main() {
    let offline = std::env::args().any(|a| a == "--offline");
    println!("# check_bench — perf-regression gate over the committed BENCH_*.json witnesses");
    let mut all_ok = true;

    // ---- 1. Committed-witness validation (always) -------------------
    let throughput = load_witness("BENCH_throughput.json");
    let net = load_witness("BENCH_net.json");
    let ingest = load_witness("BENCH_ingest.json");
    let reads = load_witness("BENCH_reads.json");
    let recovery = load_witness("BENCH_recovery.json");
    let trace = load_witness("BENCH_trace.json");
    let openloop_doc = load_witness("BENCH_openloop.json");
    let wire = load_witness("BENCH_wire.json");
    for (name, loaded) in [
        ("BENCH_throughput.json", &throughput),
        ("BENCH_net.json", &net),
        ("BENCH_ingest.json", &ingest),
        ("BENCH_reads.json", &reads),
        ("BENCH_recovery.json", &recovery),
        ("BENCH_trace.json", &trace),
        ("BENCH_openloop.json", &openloop_doc),
        ("BENCH_wire.json", &wire),
    ] {
        if let Err(e) = loaded {
            println!("  [FAIL] {name}: {e}");
            all_ok = false;
        }
    }
    if let Ok(doc) = &throughput {
        all_ok &= print_checks(
            "committed witness: throughput",
            &check_throughput_witness(doc),
        );
    }
    if let Ok(doc) = &net {
        all_ok &= print_checks("committed witness: net", &check_net_witness(doc));
    }
    if let Ok(doc) = &ingest {
        all_ok &= print_checks("committed witness: ingest", &check_ingest_witness(doc));
    }
    if let Ok(doc) = &reads {
        all_ok &= print_checks("committed witness: reads", &check_reads_witness(doc));
    }
    if let Ok(doc) = &recovery {
        all_ok &= print_checks("committed witness: recovery", &check_recovery_witness(doc));
    }
    if let Ok(doc) = &trace {
        all_ok &= print_checks("committed witness: trace", &check_trace_witness(doc));
    }
    if let Ok(doc) = &openloop_doc {
        all_ok &= print_checks("committed witness: openloop", &check_openloop_witness(doc));
    }
    if let Ok(doc) = &wire {
        all_ok &= print_checks("committed witness: wire", &check_wire_witness(doc));
    }

    if offline {
        if all_ok {
            println!("\n# gate PASSED (offline: witnesses only)");
            return;
        }
        eprintln!("\n# gate FAILED (offline: witnesses only)");
        std::process::exit(1);
    }

    // ---- 2. Fresh smoke runs ----------------------------------------
    let mut deltas: Vec<Delta> = Vec::new();
    let committed_of = |doc: &Result<Json, String>, path: &[&str]| -> Option<f64> {
        let mut cur = doc.as_ref().ok()?;
        for (i, step) in path.iter().enumerate() {
            if i == path.len() - 1 {
                return cur.num_field(step);
            }
            cur = match step.split_once('=') {
                Some((field, value)) => cur.find_by(field, value)?,
                None => cur.get(step)?,
            };
        }
        None
    };

    println!("\n# fresh run: fig12 XDGL (250 txns, standard 4-site environment)");
    let (committed, batched, unbatched) = fresh_throughput();
    all_ok &= print_checks(
        "fresh: throughput",
        &gate::check_throughput_fresh(committed, batched, unbatched),
    );
    deltas.push(Delta {
        metric: "fig12 XDGL committed",
        committed: committed_of(&throughput, &["protocols", "name=XDGL", "committed"]),
        fresh: committed,
    });
    deltas.push(Delta {
        metric: "fig12 XDGL termination_msgs",
        committed: committed_of(&throughput, &["protocols", "name=XDGL", "termination_msgs"]),
        fresh: batched,
    });

    println!("\n# fresh run: net storm (8 sites x 300 msgs/link, all three topologies)");
    let hub = storm(Topology::SharedHub, 8, 300, SEED);
    let tpl = storm(Topology::ThreadPerLink, 8, 300, SEED);
    let reactor = storm(Topology::Reactor, 8, 300, SEED);
    all_ok &= print_checks(
        "fresh: net",
        &gate::check_net_fresh(reactor.msgs_per_s, hub.msgs_per_s, tpl.msgs_per_s),
    );
    for (metric, committed_name, r) in [
        ("net hub msgs/s", "hub", &hub),
        ("net thread_per_link msgs/s", "thread_per_link", &tpl),
        ("net reactor msgs/s", "reactor", &reactor),
    ] {
        deltas.push(Delta {
            metric,
            committed: committed_of(
                &net,
                &[
                    "topologies",
                    &format!("name={committed_name}"),
                    "msgs_per_s",
                ],
            ),
            fresh: r.msgs_per_s,
        });
    }
    deltas.push(Delta {
        metric: "net reactor delivery_threads",
        committed: committed_of(&net, &["topologies", "name=reactor", "delivery_threads"]),
        fresh: reactor.delivery_threads as f64,
    });

    println!("\n# fresh run: read mix (10 clients, 10% vs 40% update transactions)");
    let (p99_low, p99_high, reader_dl, snap_reads, read_ops) = fresh_reads();
    all_ok &= print_checks(
        "fresh: reads",
        &gate::check_reads_fresh(p99_low, p99_high, reader_dl, snap_reads, read_ops),
    );
    deltas.push(Delta {
        metric: "reads low-contention read p99 ms",
        committed: reads
            .as_ref()
            .ok()
            .and_then(|doc| doc.get("contention_sweep")?.arr()?.first())
            .and_then(|c| c.num_field("read_p99_ms")),
        fresh: p99_low,
    });
    deltas.push(Delta {
        metric: "reads snapshot_reads (both cells)",
        committed: None,
        fresh: snap_reads,
    });

    println!("\n# fresh run: recovery (participant kill + WAL replay, 10-txn log)");
    let rp = replay_point(10, SEED);
    all_ok &= print_checks(
        "fresh: recovery",
        &gate::check_recovery_fresh(
            rp.txns as f64,
            rp.committed as f64,
            rp.records as f64,
            rp.elapsed_ms,
            rp.identical,
        ),
    );
    deltas.push(Delta {
        metric: "recovery replay ms (per 100 records)",
        committed: recovery
            .as_ref()
            .ok()
            .and_then(|doc| doc.get("replay")?.arr()?.first())
            .and_then(|p| {
                Some(p.num_field("elapsed_ms")? * 100.0 / p.num_field("records")?.max(1.0))
            }),
        fresh: rp.elapsed_ms * 100.0 / (rp.records as f64).max(1.0),
    });

    println!("\n# fresh run: trace overhead (16-client fig12 mix, sinks off vs armed, best of 3)");
    let untraced = best_of(3, 16, SEED, false);
    let traced = best_of(3, 16, SEED, true);
    let overhead = overhead_pct(untraced.wall_ms, traced.wall_ms);
    all_ok &= print_checks(
        "fresh: trace",
        &gate::check_trace_fresh(
            traced.committed as f64,
            overhead,
            traced.violations as f64,
            traced.complete && traced.dropped == 0,
            traced.events as f64,
        ),
    );
    deltas.push(Delta {
        metric: "trace overhead pct",
        committed: committed_of(&trace, &["overhead_pct"]),
        fresh: overhead,
    });
    deltas.push(Delta {
        metric: "trace checker violations",
        committed: committed_of(&trace, &["traced", "checker_violations"]),
        fresh: traced.violations as f64,
    });

    println!("\n# fresh run: ingest (tree vs streaming, {BASE_BYTES} B base)");
    let (stream_rate, tree_rate) = fresh_ingest();
    all_ok &= print_checks(
        "fresh: ingest",
        &gate::check_ingest_fresh(stream_rate, tree_rate),
    );
    deltas.push(Delta {
        metric: "ingest stream MB/s",
        committed: ingest
            .as_ref()
            .ok()
            .and_then(|doc| doc.get("points")?.arr()?.first())
            .and_then(|p| p.get("stream")?.num_field("mb_per_s")),
        fresh: stream_rate,
    });

    println!("\n# fresh run: open-loop smoke cell (4 sites, fixed Poisson rate)");
    let ol = openloop::smoke(SEED);
    all_ok &= print_checks(
        "fresh: openloop",
        &gate::check_openloop_fresh(
            ol.txns as f64,
            ol.terminated as f64,
            ol.p99_ms,
            ol.coordinators.len() as f64,
            4.0,
            ol.achieved_rate,
            ol.offered_rate,
        ),
    );
    deltas.push(Delta {
        metric: "openloop sustained p99 ms (sched clock)",
        committed: committed_of(&openloop_doc, &["sustained", "p99_ms"]),
        fresh: ol.p99_ms,
    });
    deltas.push(Delta {
        metric: "openloop achieved rate txn/s",
        committed: committed_of(&openloop_doc, &["sustained", "achieved_rate"]),
        fresh: ol.achieved_rate,
    });

    println!("\n# fresh run: wire smoke (2 dtx-site OS processes, 50 txns over real TCP)");
    match dtx_bench::wirebench::run_process_cluster(dtx_bench::wirebench::WireEnv::smoke(SEED)) {
        Ok(wr) => {
            let codec = dtx_bench::wirebench::codec_bench(2_000);
            all_ok &= print_checks(
                "fresh: wire",
                &gate::check_wire_fresh(
                    wr.committed as f64,
                    wr.txns as f64,
                    wr.bytes_out as f64,
                    wr.frames_out as f64,
                    codec.encode_ns,
                    codec.decode_ns,
                ),
            );
            deltas.push(Delta {
                metric: "wire smoke committed (of 50)",
                committed: None,
                fresh: wr.committed as f64,
            });
            deltas.push(Delta {
                metric: "wire codec encode ns/msg",
                committed: committed_of(&wire, &["codec", "encode_ns"]),
                fresh: codec.encode_ns,
            });
        }
        Err(e) => {
            all_ok = false;
            println!("  [FAIL] wire smoke did not run: {e}");
        }
    }

    print_delta_table(&deltas);
    write_fresh_json(&deltas);

    if all_ok {
        println!("\n# gate PASSED");
    } else {
        eprintln!("\n# gate FAILED — a committed witness or fresh smoke run violated its band");
        std::process::exit(1);
    }
}
