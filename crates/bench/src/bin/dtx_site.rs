//! `dtx-site` — host DTX sites as a standalone OS process.
//!
//! One invocation boots the schedulers for the sites named by `--host`,
//! listens for `WIRE.md` frames, prints `DTX-SITE LISTENING <addr>` on
//! stdout (the driver's rendezvous line), and serves until a `Shutdown`
//! control frame arrives.
//!
//! ```text
//! dtx-site --host 0 --total 4 [--listen 127.0.0.1:0] [--seed N] [--gossip-ms 200]
//! ```
//!
//! `--host` takes a comma-separated site list, so one process can host
//! several sites (the two-process demo in `README.md` runs `--host 0,1`
//! and `--host 2,3`).

use dtx_core::{SiteHost, SiteHostConfig, SiteId};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: dtx-site --host <site[,site...]> --total <n> \
         [--listen <addr>] [--seed <n>] [--gossip-ms <ms>]"
    );
    std::process::exit(2);
}

fn main() {
    let mut hosted: Vec<SiteId> = Vec::new();
    let mut total: u16 = 0;
    let mut listen = "127.0.0.1:0".to_string();
    let mut seed: u64 = 0xD7C5;
    // First gossip well after the driver's registration wave: the wave
    // mints identical placement versions on every node, so gossip only
    // needs to catch true divergence, not race the driver.
    let mut gossip_ms: u64 = 200;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut val = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--host" => {
                hosted = val()
                    .split(',')
                    .map(|s| s.trim().parse::<u16>().map(SiteId))
                    .collect::<Result<_, _>>()
                    .unwrap_or_else(|_| usage());
            }
            "--total" => total = val().parse().unwrap_or_else(|_| usage()),
            "--listen" => listen = val(),
            "--seed" => seed = val().parse().unwrap_or_else(|_| usage()),
            "--gossip-ms" => gossip_ms = val().parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }
    if hosted.is_empty() || total == 0 {
        usage();
    }

    let mut config = SiteHostConfig::new(&hosted, total);
    config.listen = listen;
    config.seed = seed;
    config.gossip_every = Duration::from_millis(gossip_ms.max(1));
    let host = match SiteHost::start(config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("dtx-site: {e}");
            std::process::exit(1);
        }
    };
    // The rendezvous line the driver parses; must be first on stdout.
    println!("DTX-SITE LISTENING {}", host.local_addr());

    while !host.wait_shutdown(Duration::from_secs(3600)) {}
    let (bytes_out, bytes_in, frames_out, frames_in) = host.wire_stats();
    host.shutdown();
    eprintln!(
        "dtx-site: done (wire: {bytes_out} B out / {bytes_in} B in, \
         {frames_out} frames out / {frames_in} frames in)"
    );
}
