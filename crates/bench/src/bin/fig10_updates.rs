//! E3 — Fig. 10: response time and deadlocks vs. update percentage.
//!
//! Paper §3.2.2: 50 clients fixed, 5 txns × 5 ops each, update-transaction
//! percentage swept 20→60 %, 20 % update operations per update
//! transaction, partial replication, 4 sites.
//!
//! Expected shape (paper): DTX (XDGL) response time stays low and well
//! under Node2PL as updates grow; DTX's *deadlock count* is much higher
//! than Node2PL's and grows with the update share (the cost of fine
//! granularity / higher concurrency).

use dtx_bench::{header, ms, row, run, seed_from_args, setup, ExpEnv};
use dtx_core::ProtocolKind;
use dtx_xmark::workload::WorkloadConfig;

fn main() {
    let seed = seed_from_args();
    let pct_sweep = [20u32, 30, 40, 50, 60];
    let clients = 50;
    println!("# E3 / Fig. 10 — response time (ms) and deadlocks vs update txn %");
    println!("# 4 sites, partial replication, {clients} clients, 5x5 ops, 20% update ops/txn");
    header(&[
        "update_pct",
        "protocol",
        "mean_resp_ms",
        "deadlocks",
        "committed",
        "aborted",
    ]);
    for protocol in [ProtocolKind::Xdgl, ProtocolKind::Node2Pl] {
        for &pct in &pct_sweep {
            // Fresh cluster per cell: update workloads mutate the base.
            let (cluster, frags) = setup(ExpEnv::standard(protocol).with_seed(seed));
            let report = run(
                &cluster,
                &frags,
                WorkloadConfig::with_updates(clients, pct, seed + pct as u64),
            );
            row(&[
                pct.to_string(),
                protocol.name().to_owned(),
                format!("{:.2}", ms(report.mean_response())),
                report.deadlocks().to_string(),
                report.committed().to_string(),
                report.aborted().to_string(),
            ]);
            cluster.shutdown();
        }
    }
}
