//! E4 — Fig. 11(a): response time and deadlocks vs. base size.
//!
//! Paper §3.2.3: 50 clients per site, 5 txns × 5 ops, 20 % update txns
//! (20 % update ops each), partial replication; "The size of the base
//! varied between 50 MB and 200 MB". We sweep the same ×4 range at 1:100
//! scale (500 KiB → 2 MiB) — **plus one paper-scale point** (50 MB,
//! XDGL, streamed ingest) now that ingestion streams: the base
//! generates, fragments and loads without ever materializing a base
//! string (`FIG11A_PAPER_BYTES` overrides the size; `0` skips it).
//!
//! Expected shape (paper): DTX (XDGL) response time "well below" and
//! nearly flat as the base grows; Node2PL's grows with base size (its
//! lock count scales with the document, XDGL's with the DataGuide). The
//! deadlock counts favour Node2PL (slower → less concurrency → fewer
//! conflicts). Node2PL is omitted at paper scale: its per-covered-node
//! lock weights make a 50 MB run take hours — the very effect Fig. 11(a)
//! plots.
//!
//! Alongside throughput, each size reports its **streaming ingest**
//! metrics (wall, MB/s, peak allocated bytes, exact via the counting
//! global allocator). Everything lands in `BENCH_basesize.json`.

use dtx_bench::{boot_streamed, header, ms, row, run, seed_from_args, CountingAlloc, ExpEnv};
use dtx_core::ProtocolKind;
use dtx_xmark::generator::XmarkConfig;
use dtx_xmark::stream::stream_fragments;
use dtx_xmark::workload::WorkloadConfig;
use dtx_xmark::BuiltFragment;
use std::fmt::Write as _;
use std::time::Instant;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

struct Ingest {
    wall_ms: f64,
    mb_per_s: f64,
    peak_alloc_bytes: usize,
}

/// Streams the base into 4 fragments once, measuring ingest wall / MB/s /
/// peak allocation; the measured fragments are returned and handed to the
/// cluster boot, so the base is generated exactly once per sweep point.
fn measure_ingest(bytes: usize, seed: u64) -> (Ingest, Vec<BuiltFragment>) {
    let base = ALLOC.reset_peak();
    let t0 = Instant::now();
    let (frags, _) = stream_fragments(XmarkConfig::sized(bytes, seed), 4).expect("well-formed");
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let peak = ALLOC.peak().saturating_sub(base);
    let total: usize = frags.iter().map(|f| f.bytes).sum();
    let ingest = Ingest {
        wall_ms,
        mb_per_s: (total as f64 / (1024.0 * 1024.0)) / (wall_ms / 1e3),
        peak_alloc_bytes: peak,
    };
    (ingest, frags)
}

struct Point {
    base_bytes: usize,
    protocol: &'static str,
    clients: usize,
    mean_resp_ms: f64,
    deadlocks: usize,
    committed: usize,
    submitted: usize,
    ingest: Ingest,
}

fn write_json(points: &[Point]) -> std::io::Result<()> {
    let mut out = String::from("{\n  \"experiment\": \"fig11a_basesize\",\n  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"base_bytes\": {}, \"protocol\": \"{}\", \"clients\": {}, \
             \"mean_resp_ms\": {:.2}, \"deadlocks\": {}, \"committed\": {}, \"submitted\": {}, \
             \"ingest\": {{\"wall_ms\": {:.2}, \"mb_per_s\": {:.2}, \"peak_alloc_bytes\": {}}}}}",
            p.base_bytes,
            p.protocol,
            p.clients,
            p.mean_resp_ms,
            p.deadlocks,
            p.committed,
            p.submitted,
            p.ingest.wall_ms,
            p.ingest.mb_per_s,
            p.ingest.peak_alloc_bytes,
        );
        out.push_str(if i + 1 < points.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    std::fs::write("BENCH_basesize.json", out)
}

fn main() {
    let seed = seed_from_args();
    // 1:100 of the paper's 50/100/150/200 MB sweep.
    let sizes = [500_000usize, 1_000_000, 1_500_000, 2_000_000];
    let clients = 50;
    let mut points = Vec::new();
    println!("# E4 / Fig. 11(a) — response time (ms) and deadlocks vs base size");
    println!("# 4 sites, partial replication, {clients} clients, 20% update txns");
    header(&[
        "base_kib",
        "protocol",
        "mean_resp_ms",
        "deadlocks",
        "committed",
        "ingest_mb_s",
        "ingest_peak_b",
    ]);
    for protocol in [ProtocolKind::Xdgl, ProtocolKind::Node2Pl] {
        for &size in &sizes {
            let (ingest, built) = measure_ingest(size, seed);
            let mut env = ExpEnv::standard(protocol).with_seed(seed);
            env.base_bytes = size;
            let (cluster, frags, _) = boot_streamed(env, built);
            let report = run(
                &cluster,
                &frags,
                WorkloadConfig::with_updates(clients, 20, seed + size as u64),
            );
            row(&[
                (size / 1024).to_string(),
                protocol.name().to_owned(),
                format!("{:.2}", ms(report.mean_response())),
                report.deadlocks().to_string(),
                report.committed().to_string(),
                format!("{:.1}", ingest.mb_per_s),
                ingest.peak_alloc_bytes.to_string(),
            ]);
            points.push(Point {
                base_bytes: size,
                protocol: protocol.name(),
                clients,
                mean_resp_ms: ms(report.mean_response()),
                deadlocks: report.deadlocks(),
                committed: report.committed(),
                submitted: report.outcomes.len(),
                ingest,
            });
            cluster.shutdown();
        }
    }

    // Paper-scale point (§3.2.3's lower bound): streamed ingest makes it
    // runnable; XDGL only (see module docs), fewer clients to keep the
    // run in minutes.
    let paper_bytes: usize = std::env::var("FIG11A_PAPER_BYTES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(50_000_000);
    if paper_bytes > 0 {
        let paper_clients = 10;
        println!(
            "\n# paper-scale point ({} MB base, xdgl, {paper_clients} clients)",
            paper_bytes / 1_000_000
        );
        let (ingest, built) = measure_ingest(paper_bytes, seed);
        let mut env = ExpEnv::standard(ProtocolKind::Xdgl).with_seed(seed);
        env.base_bytes = paper_bytes;
        let (cluster, frags, _) = boot_streamed(env, built);
        let report = run(
            &cluster,
            &frags,
            WorkloadConfig::with_updates(paper_clients, 20, seed),
        );
        row(&[
            (paper_bytes / 1024).to_string(),
            "xdgl".to_owned(),
            format!("{:.2}", ms(report.mean_response())),
            report.deadlocks().to_string(),
            report.committed().to_string(),
            format!("{:.1}", ingest.mb_per_s),
            ingest.peak_alloc_bytes.to_string(),
        ]);
        points.push(Point {
            base_bytes: paper_bytes,
            protocol: "xdgl",
            clients: paper_clients,
            mean_resp_ms: ms(report.mean_response()),
            deadlocks: report.deadlocks(),
            committed: report.committed(),
            submitted: report.outcomes.len(),
            ingest,
        });
        cluster.shutdown();
    }

    match write_json(&points) {
        Ok(()) => println!("\n# results written to BENCH_basesize.json"),
        Err(e) => eprintln!("could not write BENCH_basesize.json: {e}"),
    }
}
