//! E4 — Fig. 11(a): response time and deadlocks vs. base size.
//!
//! Paper §3.2.3: 50 clients per site, 5 txns × 5 ops, 20 % update txns
//! (20 % update ops each), partial replication; "The size of the base
//! varied between 50 MB and 200 MB". We sweep the same ×4 range at 1:100
//! scale (500 KiB → 2 MiB).
//!
//! Expected shape (paper): DTX (XDGL) response time "well below" and
//! nearly flat as the base grows; Node2PL's grows with base size (its
//! lock count scales with the document, XDGL's with the DataGuide). The
//! deadlock counts favour Node2PL (slower → less concurrency → fewer
//! conflicts).

use dtx_bench::{header, ms, row, run, setup, ExpEnv, SEED};
use dtx_core::ProtocolKind;
use dtx_xmark::workload::WorkloadConfig;

fn main() {
    // 1:100 of the paper's 50/100/150/200 MB sweep.
    let sizes = [500_000usize, 1_000_000, 1_500_000, 2_000_000];
    let clients = 50;
    println!("# E4 / Fig. 11(a) — response time (ms) and deadlocks vs base size");
    println!("# 4 sites, partial replication, {clients} clients, 20% update txns");
    header(&[
        "base_kib",
        "protocol",
        "mean_resp_ms",
        "deadlocks",
        "committed",
    ]);
    for protocol in [ProtocolKind::Xdgl, ProtocolKind::Node2Pl] {
        for &size in &sizes {
            let mut env = ExpEnv::standard(protocol);
            env.base_bytes = size;
            let (cluster, frags) = setup(env);
            let report = run(
                &cluster,
                &frags,
                WorkloadConfig::with_updates(clients, 20, SEED + size as u64),
            );
            row(&[
                (size / 1024).to_string(),
                protocol.name().to_owned(),
                format!("{:.2}", ms(report.mean_response())),
                report.deadlocks().to_string(),
                report.committed().to_string(),
            ]);
            cluster.shutdown();
        }
    }
}
