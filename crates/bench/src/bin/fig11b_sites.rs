//! E5 — Fig. 11(b): response time vs. number of sites.
//!
//! Paper §3.2.3: the 40 MB base is fragmented, allocated and loaded per
//! site count; "The number of sites varied between 2 and 8", same client
//! and update parameters as Fig. 11(a).
//!
//! Expected shape (paper): DTX (XDGL) response time *decreases* with more
//! sites (more parallelism, similar data volume per site); Node2PL shows
//! a worse result as synchronization messages and lock-management
//! overhead grow.

use dtx_bench::{header, ms, row, run, seed_from_args, setup, ExpEnv};
use dtx_core::ProtocolKind;
use dtx_xmark::workload::WorkloadConfig;

fn main() {
    let seed = seed_from_args();
    let site_sweep = [2u16, 4, 6, 8];
    let clients = 50;
    println!("# E5 / Fig. 11(b) — response time (ms) vs number of sites");
    println!("# partial replication, {clients} clients, 20% update txns, fixed base");
    header(&[
        "sites",
        "protocol",
        "mean_resp_ms",
        "deadlocks",
        "committed",
    ]);
    for protocol in [ProtocolKind::Xdgl, ProtocolKind::Node2Pl] {
        for &sites in &site_sweep {
            let mut env = ExpEnv::standard(protocol).with_seed(seed);
            env.sites = sites;
            let (cluster, frags) = setup(env);
            let report = run(
                &cluster,
                &frags,
                WorkloadConfig::with_updates(clients, 20, seed + sites as u64),
            );
            row(&[
                sites.to_string(),
                protocol.name().to_owned(),
                format!("{:.2}", ms(report.mean_response())),
                report.deadlocks().to_string(),
                report.committed().to_string(),
            ]);
            cluster.shutdown();
        }
    }
}
