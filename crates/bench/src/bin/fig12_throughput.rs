//! E6 — Fig. 12: throughput and concurrency degree.
//!
//! Paper §3.2.4: partial replication, 4 sites, 50 clients × 5 txns = 250
//! submitted transactions, 20 % update txns (20 % update ops each),
//! 40 MB base. The figure plots the cumulative number of consolidated
//! transactions per time interval; the text reports "DTX runs 218
//! transactions in 1553 seconds while DTX with Node2PL runs 230
//! transactions in 16500 seconds" — Node2PL commits slightly *more* of
//! the 250 (fewer deadlock victims) but takes roughly 10× longer.
//!
//! Expected shape: XDGL's cumulative-commit curve rises much faster and
//! finishes an order of magnitude sooner; XDGL shows a higher concurrency
//! degree and more non-executed (aborted) transactions.

use dtx_bench::{header, ms, row, run, setup, ExpEnv, SEED};
use dtx_core::ProtocolKind;
use dtx_xmark::workload::WorkloadConfig;
use std::time::Duration;

fn main() {
    let clients = 50;
    println!("# E6 / Fig. 12 — throughput and concurrency degree");
    println!("# 4 sites, partial replication, {clients} clients x 5 txns = 250 submitted");
    for protocol in [ProtocolKind::Xdgl, ProtocolKind::Node2Pl] {
        let (cluster, frags) = setup(ExpEnv::standard(protocol));
        let report = run(&cluster, &frags, WorkloadConfig::with_updates(clients, 20, SEED));
        let metrics = cluster.metrics();
        println!("\n== {} ==", protocol.name());
        println!(
            "committed {} / submitted {} in {:.2} ms (non-executed: {})",
            report.committed(),
            report.outcomes.len(),
            ms(report.wall),
            report.aborted(),
        );
        // Bucket the run into ~20 intervals like the figure.
        let bucket = (report.wall / 20).max(Duration::from_millis(1));
        header(&["t_ms", "cumulative_commits", "concurrency_degree"]);
        let tp = metrics.throughput_series(bucket);
        let cc = metrics.concurrency_series(bucket);
        for (i, (t, commits)) in tp.iter().enumerate() {
            let degree = cc.get(i).map(|(_, d)| *d).unwrap_or(0.0);
            row(&[
                format!("{:.1}", ms(*t)),
                commits.to_string(),
                format!("{degree:.2}"),
            ]);
        }
        cluster.shutdown();
    }
}
