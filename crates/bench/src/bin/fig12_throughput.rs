//! E6 — Fig. 12: throughput and concurrency degree.
//!
//! Paper §3.2.4: partial replication, 4 sites, 50 clients × 5 txns = 250
//! submitted transactions, 20 % update txns (20 % update ops each),
//! 40 MB base. The figure plots the cumulative number of consolidated
//! transactions per time interval; the text reports "DTX runs 218
//! transactions in 1553 seconds while DTX with Node2PL runs 230
//! transactions in 16500 seconds" — Node2PL commits slightly *more* of
//! the 250 (fewer deadlock victims) but takes roughly 10× longer.
//!
//! Expected shape: XDGL's cumulative-commit curve rises much faster and
//! finishes an order of magnitude sooner; XDGL shows a higher concurrency
//! degree and more non-executed (aborted) transactions.

use dtx_bench::{header, ms, row, run, seed_from_args, setup, ExpEnv};
use dtx_core::ProtocolKind;
use dtx_xmark::workload::WorkloadConfig;
use std::fmt::Write as _;
use std::time::Duration;

/// Per-protocol results captured for the JSON baseline.
struct ProtocolResult {
    name: &'static str,
    committed: usize,
    submitted: usize,
    aborted: usize,
    wall_ms: f64,
    max_inflight_remote: usize,
    /// Coordinator → participant operation dispatches (placement cost).
    remote_msgs: u64,
    /// Termination-protocol messages actually sent (group commit:
    /// `TerminateBatch` + acks).
    termination_msgs: u64,
    /// What the per-transaction termination protocol would have sent —
    /// must sit strictly above `termination_msgs` (the batching win).
    termination_msgs_unbatched: u64,
    /// Network delivery worker threads spawned (reactor pool; bounded
    /// by `NetConfig::workers` no matter how many links carry traffic).
    net_worker_threads: u64,
    /// Committed-transaction response-time percentiles (ms): exact
    /// median plus the log-bucketed histogram's p99/p999 tail.
    p50_ms: f64,
    /// 99th percentile response time (ms).
    p99_ms: f64,
    /// 99.9th percentile response time (ms).
    p999_ms: f64,
    /// Per-phase 99th percentiles (ms): where the tail lives.
    phase_p99_ms: [(&'static str, f64); 4],
    /// WAL records appended across the cluster.
    wal_appends: u64,
    /// WAL forced writes (would-be fsyncs) across the cluster.
    wal_forces: u64,
    /// (t_ms, cumulative commits) series.
    series: Vec<(f64, usize)>,
}

/// Emits `BENCH_throughput.json` next to the working directory so later
/// PRs have a perf trajectory to diff against. Hand-rolled JSON: the
/// workspace's serde is a no-op shim (see the root manifest).
fn write_json(results: &[ProtocolResult]) -> std::io::Result<()> {
    let mut out = String::from("{\n  \"experiment\": \"fig12_throughput\",\n  \"protocols\": [\n");
    for (i, r) in results.iter().enumerate() {
        let series: Vec<String> = r
            .series
            .iter()
            .map(|(t, c)| format!("[{t:.1}, {c}]"))
            .collect();
        let phase_p99: Vec<String> = r
            .phase_p99_ms
            .iter()
            .map(|(name, v)| format!("\"{name}\": {v:.3}"))
            .collect();
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"committed\": {}, \"submitted\": {}, \"aborted\": {}, \
             \"wall_ms\": {:.2}, \"max_inflight_remote\": {}, \"remote_msgs\": {}, \
             \"termination_msgs\": {}, \"termination_msgs_unbatched\": {}, \
             \"net_worker_threads\": {}, \
             \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"p999_ms\": {:.3}, \
             \"phase_p99_ms\": {{{}}}, \"wal_appends\": {}, \"wal_forces\": {}, \
             \"throughput_txn_per_s\": {:.2}, \"series_ms_commits\": [{}]}}",
            r.name,
            r.committed,
            r.submitted,
            r.aborted,
            r.wall_ms,
            r.max_inflight_remote,
            r.remote_msgs,
            r.termination_msgs,
            r.termination_msgs_unbatched,
            r.net_worker_threads,
            r.p50_ms,
            r.p99_ms,
            r.p999_ms,
            phase_p99.join(", "),
            r.wal_appends,
            r.wal_forces,
            r.committed as f64 / (r.wall_ms / 1e3).max(1e-9),
            series.join(", ")
        );
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    std::fs::write("BENCH_throughput.json", out)
}

fn main() {
    let seed = seed_from_args();
    let clients = 50;
    let mut results = Vec::new();
    println!("# E6 / Fig. 12 — throughput and concurrency degree");
    println!("# 4 sites, partial replication, {clients} clients x 5 txns = 250 submitted");
    for protocol in [ProtocolKind::Xdgl, ProtocolKind::Node2Pl] {
        let (cluster, frags) = setup(ExpEnv::standard(protocol).with_seed(seed));
        let report = run(
            &cluster,
            &frags,
            WorkloadConfig::with_updates(clients, 20, seed),
        );
        let metrics = cluster.metrics();
        println!("\n== {} ==", protocol.name());
        println!(
            "committed {} / submitted {} in {:.2} ms (non-executed: {})",
            report.committed(),
            report.outcomes.len(),
            ms(report.wall),
            report.aborted(),
        );
        println!(
            "termination msgs {} (unbatched protocol would send {}), net links {}, delivery threads {}",
            metrics.termination_msgs(),
            metrics.termination_msgs_unbatched(),
            cluster.net_links_active(),
            cluster.net_worker_threads(),
        );
        // Bucket the run into ~20 intervals like the figure.
        let bucket = (report.wall / 20).max(Duration::from_millis(1));
        header(&["t_ms", "cumulative_commits", "concurrency_degree"]);
        let tp = metrics.throughput_series(bucket);
        let cc = metrics.concurrency_series(bucket);
        for (i, (t, commits)) in tp.iter().enumerate() {
            let degree = cc.get(i).map(|(_, d)| *d).unwrap_or(0.0);
            row(&[
                format!("{:.1}", ms(*t)),
                commits.to_string(),
                format!("{degree:.2}"),
            ]);
        }
        cluster.refresh_wal_gauges();
        let summary = metrics.summary();
        println!(
            "response p50 {:.1} ms, p99 {:.1} ms, p999 {:.1} ms; wal {} appends / {} forces",
            ms(summary.p50_response),
            ms(summary.p99_response),
            ms(summary.p999_response),
            summary.wal_appends,
            summary.wal_forces,
        );
        results.push(ProtocolResult {
            name: protocol.name(),
            committed: report.committed(),
            submitted: report.outcomes.len(),
            aborted: report.aborted(),
            wall_ms: ms(report.wall),
            max_inflight_remote: metrics.max_inflight_remote(),
            remote_msgs: metrics.remote_msgs(),
            termination_msgs: metrics.termination_msgs(),
            termination_msgs_unbatched: metrics.termination_msgs_unbatched(),
            net_worker_threads: cluster.net_worker_threads(),
            p50_ms: ms(summary.p50_response),
            p99_ms: ms(summary.p99_response),
            p999_ms: ms(summary.p999_response),
            phase_p99_ms: [
                ("ready", ms(summary.phase_p99.ready)),
                ("waiting", ms(summary.phase_p99.waiting)),
                ("remote", ms(summary.phase_p99.remote)),
                ("terminating", ms(summary.phase_p99.terminating)),
            ],
            wal_appends: summary.wal_appends,
            wal_forces: summary.wal_forces,
            series: tp.iter().map(|(t, c)| (ms(*t), *c)).collect(),
        });
        cluster.shutdown();
    }
    match write_json(&results) {
        Ok(()) => println!("\n# baseline written to BENCH_throughput.json"),
        Err(e) => eprintln!("could not write BENCH_throughput.json: {e}"),
    }
}
