//! E1 — Fig. 8: fragmentation and data allocation.
//!
//! Regenerates the paper's allocation table: the base is fragmented into
//! similar-size fragments and allocated for 2, 4 and 8 sites under both
//! replication modes. The paper's Fig. 8 lists, per scenario, each site
//! and its contents (bold = replicated copies); we print the same
//! structure plus the size-balance ratio the fragmentation achieves.

use dtx_bench::{BASE_BYTES, SEED};
use dtx_xmark::fragment::{allocate, fragment_doc, ReplicationMode};
use dtx_xmark::generator::{generate, XmarkConfig};

fn main() {
    println!("# E1 / Fig. 8 — fragmentation and data allocation");
    println!(
        "# base target: {} KiB (1:100 of the paper's 40 MB)",
        BASE_BYTES / 1024
    );
    let doc = generate(XmarkConfig::sized(BASE_BYTES, SEED));
    println!("# generated base: {} KiB\n", doc.byte_size() / 1024);

    for sites in [2u16, 4, 8] {
        let frags = fragment_doc(&doc, sites as usize);
        println!("== {sites} sites ==");
        println!(
            "fragments: {} | balance (max/min size): {:.3}",
            frags.fragments.len(),
            frags.balance_ratio()
        );
        for mode in [ReplicationMode::Partial, ReplicationMode::Total] {
            let alloc = allocate(&doc, &frags, sites, mode);
            print!("{}", alloc.render());
        }
        println!();
    }
}
