//! E1 — Fig. 8: fragmentation and data allocation.
//!
//! Regenerates the paper's allocation table: the base is fragmented into
//! similar-size fragments and allocated for 2, 4 and 8 sites under both
//! replication modes. The paper's Fig. 8 lists, per scenario, each site
//! and its contents (bold = replicated copies); we print the same
//! structure plus the size-balance ratio the fragmentation achieves, and
//! the **versioned catalog view** of each placement — every site listed
//! (including empty ones), fragments marked `[frag]`, stamped with the
//! catalog epoch the placement is valid under.

use dtx_bench::{seed_from_args, BASE_BYTES};
use dtx_core::{Catalog, SiteId};
use dtx_xmark::fragment::{allocate, fragment_doc, Allocation, ReplicationMode, LOGICAL_DOC};
use dtx_xmark::generator::{generate, XmarkConfig};

/// Registers an allocation in a catalog exactly as
/// [`dtx_xmark::fragment::load_allocation`] would in a live cluster.
fn register(catalog: &Catalog, alloc: &Allocation) {
    let sites: Vec<SiteId> = alloc.parts.iter().map(|(s, _)| *s).collect();
    match alloc.mode {
        ReplicationMode::Partial => catalog.register_fragmented(LOGICAL_DOC, &sites),
        ReplicationMode::Total => catalog.register(LOGICAL_DOC, &sites),
    }
}

fn main() {
    println!("# E1 / Fig. 8 — fragmentation and data allocation");
    println!(
        "# base target: {} KiB (1:100 of the paper's 40 MB)",
        BASE_BYTES / 1024
    );
    let doc = generate(XmarkConfig::sized(BASE_BYTES, seed_from_args()));
    println!("# generated base: {} KiB\n", doc.byte_size() / 1024);

    // One catalog across all scenarios: the epoch advances with each
    // registered placement, demonstrating the versioned allocation.
    let catalog = Catalog::new();
    for sites in [2u16, 4, 8] {
        let frags = fragment_doc(&doc, sites as usize);
        let all_sites: Vec<SiteId> = (0..sites).map(SiteId).collect();
        println!("== {sites} sites ==");
        println!(
            "fragments: {} | balance (max/min size): {:.3}",
            frags.fragments.len(),
            frags.balance_ratio()
        );
        for mode in [ReplicationMode::Partial, ReplicationMode::Total] {
            let alloc = allocate(&doc, &frags, sites, mode);
            print!("{}", alloc.render());
            register(&catalog, &alloc);
            print!("{}", catalog.render_allocation(&all_sites));
        }
        println!();
    }
}
