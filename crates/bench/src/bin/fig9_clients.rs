//! E2 — Fig. 9: response time vs. number of clients.
//!
//! Paper §3.2.1: "the number of clients varies from 10 to 50; each client
//! contains 5 reading transactions with 5 operations each", under total
//! and partial replication, DTX (XDGL) vs DTX with locks in trees
//! (Node2PL), 4 sites.
//!
//! Expected shape (paper): XDGL below Node2PL everywhere; partial
//! replication below total replication; both rise with client count.

use dtx_bench::{header, ms, row, run, seed_from_args, setup, ExpEnv};
use dtx_core::ProtocolKind;
use dtx_xmark::fragment::ReplicationMode;
use dtx_xmark::workload::WorkloadConfig;

fn main() {
    let seed = seed_from_args();
    let clients_sweep = [10usize, 20, 30, 40, 50];
    println!("# E2 / Fig. 9 — response time (ms) vs number of clients");
    println!("# 4 sites, 5 read-only txns x 5 ops per client");
    header(&[
        "clients",
        "replication",
        "protocol",
        "mean_resp_ms",
        "p95_ms",
        "committed",
    ]);
    for mode in [ReplicationMode::Total, ReplicationMode::Partial] {
        for protocol in [ProtocolKind::Xdgl, ProtocolKind::Node2Pl] {
            let mut env = ExpEnv::standard(protocol).with_seed(seed);
            env.mode = mode;
            let (cluster, frags) = setup(env);
            for &clients in &clients_sweep {
                let report = run(
                    &cluster,
                    &frags,
                    WorkloadConfig::read_only(clients, seed + clients as u64),
                );
                let summary_p95 = {
                    let mut rts: Vec<_> = report
                        .outcomes
                        .iter()
                        .filter(|o| o.committed())
                        .map(|o| o.response_time)
                        .collect();
                    rts.sort();
                    rts.get(rts.len() * 95 / 100).copied().unwrap_or_default()
                };
                row(&[
                    clients.to_string(),
                    mode.name().to_owned(),
                    protocol.name().to_owned(),
                    format!("{:.2}", ms(report.mean_response())),
                    format!("{:.2}", ms(summary_p95)),
                    report.committed().to_string(),
                ]);
            }
            cluster.shutdown();
        }
    }
}
