//! The CI perf-regression gate's check logic.
//!
//! `check_bench` (the bin) does two things, both through this module:
//!
//! 1. **Witness validation** — the committed `BENCH_*.json` files must
//!    themselves satisfy the recorded invariants (a doctored or
//!    regressed witness fails the gate even before anything re-runs);
//! 2. **Fresh-run comparison** — smoke re-runs of the workloads are
//!    checked against the same invariants with *wider* tolerance bands
//!    (CI hosts vary; catastrophic regressions are the target, not
//!    wobble), and a delta table is printed.
//!
//! Every check is a pure function over parsed [`Json`] or measured
//! numbers, so the unit tests below can feed doctored witnesses and
//! prove the gate actually fails on them.

use crate::json::Json;

/// fig12's XDGL committed-transaction floor (the speculative-retry floor
/// from PR 2; recorded runs commit 228–233 of 250).
pub const COMMIT_FLOOR: f64 = 228.0;

/// Witness self-consistency band: the *recorded* reactor rate must be at
/// least this fraction of each recorded baseline's (the committed run is
/// taken on one host, so the band is tight).
pub const WITNESS_NET_TOL: f64 = 0.90;

/// Witness band for streaming-vs-tree ingest rate (recorded runs show
/// ~1.5×; below 0.9× the witness is not evidence of a win anymore).
pub const WITNESS_INGEST_TOL: f64 = 0.90;

/// Fresh-run band vs the hub: CI hosts differ wildly in core count and
/// scheduler behavior, so the fresh gate only catches the reactor
/// falling *well* below the single-threaded baseline.
pub const FRESH_NET_OVER_HUB: f64 = 0.50;

/// Fresh-run band vs thread-per-link (parity on the recording host; the
/// fresh gate flags a structural regression, not scheduling noise).
pub const FRESH_NET_OVER_TPL: f64 = 0.60;

/// Fresh-run band for streaming-vs-tree ingest rate.
pub const FRESH_INGEST_TOL: f64 = 0.70;

/// Fresh-run commit floor: the committed witness must hit
/// [`COMMIT_FLOOR`], but a fresh run on an arbitrary CI host gets a
/// small noise allowance below it (observed cross-run spread on one
/// host is ±4 commits around the recorded value).
pub const FRESH_COMMIT_FLOOR: f64 = COMMIT_FLOOR - 6.0;

/// The bounded-thread ceiling a reactor storm may ever report — the
/// acceptance bound for the 128-site run (the default pool is ≤ 8; 32
/// leaves room for bigger configured pools without ever approaching
/// O(sites²)).
pub const MAX_DELIVERY_THREADS: f64 = 32.0;

/// Witness band for the snapshot-read flatness claim: across the
/// contention sweep the recorded read-only p99 may vary by at most this
/// max/min ratio while the write p99 degrades with contention (recorded
/// spread is ~1.7×; locked readers would track the write p99's 5×).
pub const READS_P99_FLAT_RATIO: f64 = 2.5;

/// Fresh-run band for the same ratio: CI hosts add scheduling noise to
/// a seconds-scale sweep, so only a structural regression — readers
/// queueing behind writer locks again — should trip it.
pub const FRESH_READS_P99_FLAT_RATIO: f64 = 4.0;

/// Reader-sweep deadlock independence: with the writer workload held
/// identical across cells, the max deadlock count may not exceed this
/// multiple of the min (readers contribute no WFG edges, so quadrupling
/// them must not move the count; recorded cells sit at 12–15).
pub const READS_DEADLOCK_SPREAD: f64 = 2.0;

/// Retention ceiling after a drained run: one live snapshot per
/// document replica (4 on the standard 4-site partial layout; 8 leaves
/// headroom for layout changes while still catching a pin leak, which
/// accumulates one version per commit and lands in the hundreds).
pub const READS_MAX_LIVE_END: f64 = 8.0;

/// Witness bound on WAL replay: recovery time may grow with the log,
/// but no worse than this per-record slope over a fixed base (the
/// recorded sweep replays hundreds of records in single-digit
/// milliseconds; a replay that re-executes the workload instead of
/// repeating history lands orders of magnitude above this line).
pub const REPLAY_MS_PER_RECORD: f64 = 0.5;

/// Constant part of the witness replay bound (setup noise floor).
pub const REPLAY_MS_BASE: f64 = 50.0;

/// Fresh-run replay slope: CI hosts are slower and noisier, so only a
/// structural regression (non-linear replay, workload re-execution)
/// should trip it.
pub const FRESH_REPLAY_MS_PER_RECORD: f64 = 2.0;

/// Constant part of the fresh replay bound.
pub const FRESH_REPLAY_MS_BASE: f64 = 250.0;

/// The crash-matrix phases a recovery witness must cover — one cell per
/// point a coordinator can die at mid-2PC.
pub const RECOVERY_PHASES: [&str; 4] = [
    "in_remote_ops",
    "after_prepare",
    "after_decide",
    "mid_commit_delivery",
];

/// Witness band on tracing overhead: the recorded fig12-style run with
/// the tracer armed may cost at most this percent of wall time over the
/// sinks-disabled run (the acceptance bound; recorded runs sit well
/// below it — the armed cost is one ring push per event).
pub const TRACE_OVERHEAD_WITNESS_PCT: f64 = 10.0;

/// Fresh-run overhead band: CI hosts add scheduling noise to two
/// back-to-back seconds-scale runs, so only a structural regression
/// (allocation or locking on the record path) should trip it.
pub const FRESH_TRACE_OVERHEAD_PCT: f64 = 30.0;

/// The open-loop headline floor: the sustained cell must have
/// terminated at least a million scheduled arrivals (the whole point of
/// the harness is that none of them may be skipped or silently shed).
pub const OPENLOOP_TXN_FLOOR: f64 = 1_000_000.0;

/// Below-the-knee contract: a sustained or swept cell only counts as
/// "keeping up" when its achieved termination rate is at least this
/// fraction of the offered arrival rate — the same threshold
/// `bench_openloop` uses to place the saturation knee.
pub const OPENLOOP_ACHIEVED_FRACTION: f64 = 0.90;

/// Witness cap on the sustained cell's p99 *from scheduled arrival* at
/// its fixed below-knee rate. Because the open-loop clock starts at the
/// scheduled instant, any systemic stall or creeping backlog lands in
/// this number — a witness above the cap means the engine can no longer
/// hold the recorded rate with bounded queueing (the recorded sustained
/// cell sits at 0.29 ms; the cap leaves ~80× headroom for slower
/// recording hosts while still catching any stall on the 100 ms scale).
pub const OPENLOOP_P99_CAP_MS: f64 = 25.0;

/// Witness band on per-coordinator fairness: with round-robin attach,
/// the max/min per-site committed ratio may not exceed this (submission
/// counts are equal by construction, so a skewed commit spread means
/// one coordinator is aborting far more than its peers).
pub const OPENLOOP_SPREAD_CAP: f64 = 1.5;

/// Fresh-run p99 cap (scheduled-arrival clock) for the CI smoke cell:
/// wide enough for a noisy shared host, tight enough to catch the
/// driver losing the coordinated-omission guard or the engine stalling.
pub const FRESH_OPENLOOP_P99_CAP_MS: f64 = 500.0;

/// Fresh-run achieved-rate band: the smoke rate is deliberately modest,
/// so even a slow CI host must sustain half of it.
pub const FRESH_OPENLOOP_ACHIEVED_FRACTION: f64 = 0.50;

/// Processes (= sites) the multi-process fig12 witness must have run:
/// the point of `bench_wire` is 4 sites as 4 separate OS processes.
pub const WIRE_PROCESSES: f64 = 4.0;

/// Transactions of the multi-process fig12 cell (50 clients × 5).
pub const WIRE_TXNS: f64 = 250.0;

/// Witness cap on mean framed bytes per wire frame: the hand-rolled
/// codec keeps the fig12 protocol mix compact (measured ~140–170 B
/// including the 12-byte header); a frame bloat regression — e.g. a
/// field widened from varint to fixed or a debug-format fallback —
/// pushes this far up.
pub const WIRE_BYTES_PER_FRAME_CAP: f64 = 1024.0;

/// Witness cap on mean per-message encode/decode cost over the codec
/// microbench mix (measured ~150 ns/msg; the cap leaves room for slower
/// recording hosts while still catching an accidental quadratic or an
/// allocation storm).
pub const WIRE_CODEC_NS_CAP: f64 = 5_000.0;

/// Fresh smoke commit floor: the 2-process, 50-transaction CI cell must
/// commit at least this many (the mechanism working at all, with head
/// room for scheduling noise on a loaded CI host).
pub const FRESH_WIRE_COMMIT_FLOOR: f64 = 40.0;

/// Fresh codec cap: wide band for arbitrary CI hosts.
pub const FRESH_WIRE_CODEC_NS_CAP: f64 = 50_000.0;

/// One named invariant's verdict.
#[derive(Debug)]
pub struct Check {
    /// What was checked (one line).
    pub name: String,
    /// `value` vs `bound`, human-readable.
    pub detail: String,
    /// Whether the invariant holds.
    pub ok: bool,
}

impl Check {
    fn new(name: impl Into<String>, detail: String, ok: bool) -> Check {
        Check {
            name: name.into(),
            detail,
            ok,
        }
    }
}

fn require(checks: &mut Vec<Check>, name: &str, got: Option<f64>, bound: f64, at_least: bool) {
    match got {
        Some(v) => {
            let ok = if at_least { v >= bound } else { v < bound };
            let rel = if at_least { "≥" } else { "<" };
            checks.push(Check::new(name, format!("{v:.0} {rel} {bound:.0}"), ok));
        }
        None => checks.push(Check::new(name, "field missing from witness".into(), false)),
    }
}

/// Validates `BENCH_throughput.json`: XDGL commits at least the floor,
/// and batched termination traffic sits strictly below the unbatched
/// equivalent.
pub fn check_throughput_witness(doc: &Json) -> Vec<Check> {
    let mut checks = Vec::new();
    let Some(xdgl) = doc.get("protocols").and_then(|p| p.find_by("name", "XDGL")) else {
        return vec![Check::new(
            "throughput: XDGL entry",
            "missing from witness".into(),
            false,
        )];
    };
    require(
        &mut checks,
        "fig12 XDGL commits ≥ floor",
        xdgl.num_field("committed"),
        COMMIT_FLOOR,
        true,
    );
    let batched = xdgl.num_field("termination_msgs");
    let unbatched = xdgl.num_field("termination_msgs_unbatched");
    let ok = matches!((batched, unbatched), (Some(b), Some(u)) if b < u);
    checks.push(Check::new(
        "fig12 termination batched < unbatched",
        format!("{:?} < {:?}", batched, unbatched),
        ok,
    ));
    require(
        &mut checks,
        "fig12 delivery threads bounded",
        xdgl.num_field("net_worker_threads"),
        MAX_DELIVERY_THREADS + 1.0,
        false,
    );
    check_percentiles(&mut checks, "fig12 XDGL", xdgl);
    checks
}

/// Validates the response-time percentile fields of one witness entry:
/// all three present, positive, and ordered p50 ≤ p99 ≤ p999 (the
/// histogram caps percentiles at the observed max, so equality is
/// legitimate; inversion means a doctored or mis-merged witness).
fn check_percentiles(checks: &mut Vec<Check>, at: &str, entry: &Json) {
    let p50 = entry.num_field("p50_ms");
    let p99 = entry.num_field("p99_ms");
    let p999 = entry.num_field("p999_ms");
    let ok = matches!((p50, p99, p999),
        (Some(a), Some(b), Some(c)) if 0.0 < a && a <= b && b <= c);
    checks.push(Check::new(
        format!("{at} percentiles present and ordered"),
        format!("p50 {p50:?} ≤ p99 {p99:?} ≤ p999 {p999:?} ms"),
        ok,
    ));
}

/// Validates `BENCH_net.json`: the recorded reactor rate holds its wins
/// (≥ hub, ≥ thread-per-link within the witness band), and the sites
/// sweep proves the bounded-thread claim at ≥ 128 sites.
pub fn check_net_witness(doc: &Json) -> Vec<Check> {
    let mut checks = Vec::new();
    let topos = doc.get("topologies");
    let rate = |name: &str| -> Option<f64> {
        topos
            .and_then(|t| t.find_by("name", name))
            .and_then(|e| e.num_field("msgs_per_s"))
    };
    let reactor = rate("reactor");
    let hub = rate("hub");
    let tpl = rate("thread_per_link");
    let vs = |base: Option<f64>, tol: f64| base.map(|b| b * tol);
    let cmp = |name: &str, got: Option<f64>, bound: Option<f64>, checks: &mut Vec<Check>| match (
        got, bound,
    ) {
        (Some(v), Some(b)) => {
            checks.push(Check::new(name, format!("{v:.0} ≥ {b:.0} msgs/s"), v >= b))
        }
        _ => checks.push(Check::new(name, "entry missing from witness".into(), false)),
    };
    cmp(
        "net reactor ≥ hub rate (witness)",
        reactor,
        vs(hub, WITNESS_NET_TOL),
        &mut checks,
    );
    cmp(
        "net reactor ≥ thread-per-link rate (witness)",
        reactor,
        vs(tpl, WITNESS_NET_TOL),
        &mut checks,
    );
    let sweep = doc.get("sites_sweep").and_then(Json::arr).unwrap_or(&[]);
    let big = sweep
        .iter()
        .filter(|e| e.num_field("sites").unwrap_or(0.0) >= 128.0)
        .max_by(|a, b| {
            a.num_field("sites")
                .partial_cmp(&b.num_field("sites"))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
    match big {
        Some(e) => {
            require(
                &mut checks,
                "net 128-site storm delivery threads bounded",
                e.num_field("delivery_threads"),
                MAX_DELIVERY_THREADS + 1.0,
                false,
            );
            require(
                &mut checks,
                "net 128-site storm links",
                e.num_field("links_active"),
                16_256.0,
                true,
            );
        }
        None => checks.push(Check::new(
            "net 128-site storm present in sweep",
            "no sweep entry with sites ≥ 128".into(),
            false,
        )),
    }
    checks
}

/// Validates `BENCH_ingest.json`: at every recorded scale the streaming
/// path ingests at least `WITNESS_INGEST_TOL` of the tree path's rate
/// and peaks strictly below it.
pub fn check_ingest_witness(doc: &Json) -> Vec<Check> {
    let mut checks = Vec::new();
    let points = doc.get("points").and_then(Json::arr).unwrap_or(&[]);
    if points.is_empty() {
        return vec![Check::new(
            "ingest: points",
            "missing from witness".into(),
            false,
        )];
    }
    for p in points {
        let scale = p.num_field("scale").unwrap_or(0.0);
        let tree_rate = p.get("tree").and_then(|t| t.num_field("mb_per_s"));
        let stream_rate = p.get("stream").and_then(|s| s.num_field("mb_per_s"));
        let ok = matches!((tree_rate, stream_rate),
            (Some(t), Some(s)) if s >= t * WITNESS_INGEST_TOL);
        checks.push(Check::new(
            format!("ingest stream ≥ tree rate @{scale}x (witness)"),
            format!("{stream_rate:?} vs {tree_rate:?} MB/s"),
            ok,
        ));
        let tree_peak = p.get("tree").and_then(|t| t.num_field("peak_alloc_bytes"));
        let stream_peak = p
            .get("stream")
            .and_then(|s| s.num_field("peak_alloc_bytes"));
        let ok = matches!((tree_peak, stream_peak), (Some(t), Some(s)) if s < t);
        checks.push(Check::new(
            format!("ingest stream peak < tree peak @{scale}x (witness)"),
            format!("{stream_peak:?} < {tree_peak:?} bytes"),
            ok,
        ));
    }
    checks
}

/// Per-cell invariants shared by both `BENCH_reads.json` sweeps: no
/// read-only transaction aborted (let alone as a deadlock victim — a
/// zero-lock, zero-WFG-edge transaction cannot be chosen), every
/// committed read op was served from a snapshot, and GC drained the
/// version chain back down once the run's pins released.
fn check_reads_cells(checks: &mut Vec<Check>, sweep: &str, cells: &[Json]) {
    for c in cells {
        let knob = c
            .num_field("update_txn_pct")
            .or_else(|| c.num_field("readers"))
            .unwrap_or(0.0);
        let at = format!("{sweep}@{knob}");
        require(
            checks,
            &format!("reads {at} reader deadlocks = 0"),
            c.num_field("reader_deadlocks"),
            1.0,
            false,
        );
        let committed = c.num_field("read_committed");
        let txns = c.num_field("read_txns");
        let ok = matches!((committed, txns), (Some(a), Some(b)) if a >= b && b > 0.0);
        checks.push(Check::new(
            format!("reads {at} all read txns commit"),
            format!("{committed:?} of {txns:?}"),
            ok,
        ));
        let snap = c.num_field("snapshot_reads");
        let ops = c.num_field("read_ops");
        let ok = matches!((snap, ops), (Some(s), Some(o)) if s >= o && o > 0.0);
        checks.push(Check::new(
            format!("reads {at} snapshot_reads ≥ read ops"),
            format!("{snap:?} ≥ {ops:?}"),
            ok,
        ));
        require(
            checks,
            &format!("reads {at} snapshots GC'd after drain"),
            c.num_field("snapshots_live_end"),
            READS_MAX_LIVE_END + 1.0,
            false,
        );
        let p50 = c.num_field("read_p50_ms");
        let p99 = c.num_field("read_p99_ms");
        let p999 = c.num_field("read_p999_ms");
        let ok = matches!((p50, p99, p999),
            (Some(a), Some(b), Some(cc)) if 0.0 < a && a <= b && b <= cc);
        checks.push(Check::new(
            format!("reads {at} percentiles present and ordered"),
            format!("p50 {p50:?} ≤ p99 {p99:?} ≤ p999 {p999:?} ms"),
            ok,
        ));
    }
}

/// Validates `BENCH_reads.json`: the read-only p99 stays flat across
/// the contention sweep, the deadlock count is independent of the
/// reader count, and every cell holds the zero-lock + retention
/// invariants (see `check_reads_cells`).
pub fn check_reads_witness(doc: &Json) -> Vec<Check> {
    let mut checks = Vec::new();
    let contention = doc.get("contention_sweep").and_then(Json::arr);
    let readers = doc.get("reader_sweep").and_then(Json::arr);
    let (Some(contention), Some(readers)) = (contention, readers) else {
        return vec![Check::new(
            "reads: sweeps",
            "contention_sweep / reader_sweep missing from witness".into(),
            false,
        )];
    };
    let p99s: Vec<f64> = contention
        .iter()
        .filter_map(|c| c.num_field("read_p99_ms"))
        .collect();
    let (min_p99, max_p99) = (
        p99s.iter().cloned().fold(f64::INFINITY, f64::min),
        p99s.iter().cloned().fold(0.0, f64::max),
    );
    let ok = p99s.len() == contention.len()
        && !contention.is_empty()
        && max_p99 <= min_p99 * READS_P99_FLAT_RATIO;
    checks.push(Check::new(
        "reads p99 flat across contention (witness)",
        format!("{max_p99:.1} ≤ {:.1} ms", min_p99 * READS_P99_FLAT_RATIO),
        ok,
    ));
    let dls: Vec<f64> = readers
        .iter()
        .filter_map(|c| c.num_field("deadlocks"))
        .collect();
    let (min_dl, max_dl) = (
        dls.iter().cloned().fold(f64::INFINITY, f64::min),
        dls.iter().cloned().fold(0.0, f64::max),
    );
    let ok = dls.len() == readers.len()
        && !readers.is_empty()
        && max_dl <= min_dl.max(1.0) * READS_DEADLOCK_SPREAD;
    checks.push(Check::new(
        "reads deadlocks independent of reader count",
        format!(
            "{max_dl:.0} ≤ {:.0}",
            min_dl.max(1.0) * READS_DEADLOCK_SPREAD
        ),
        ok,
    ));
    check_reads_cells(&mut checks, "contention", contention);
    check_reads_cells(&mut checks, "readers", readers);
    checks
}

/// Validates `BENCH_recovery.json`: every replay point recovers all of
/// its committed transactions to a byte-identical state within the
/// bounded-time line, the log provably grows across the sweep, the
/// crash matrix covers all four phases with the mandated outcome
/// (presumed abort before the forced decision, commit after, zero
/// committed-transaction loss), and the chaos cell terminated and
/// converged with its fault plan actually firing.
pub fn check_recovery_witness(doc: &Json) -> Vec<Check> {
    let mut checks = Vec::new();
    let replay = doc.get("replay").and_then(Json::arr).unwrap_or(&[]);
    if replay.is_empty() {
        checks.push(Check::new(
            "recovery: replay sweep",
            "missing from witness".into(),
            false,
        ));
    }
    for p in replay {
        let txns = p.num_field("txns").unwrap_or(0.0);
        let at = format!("@{txns}txns");
        let committed = p.num_field("committed");
        let ok = matches!(committed, Some(c) if c >= txns && txns > 0.0);
        checks.push(Check::new(
            format!("recovery {at} zero committed-txn loss"),
            format!("{committed:?} ≥ {txns:.0}"),
            ok,
        ));
        require(
            &mut checks,
            &format!("recovery {at} byte-identical replay"),
            p.num_field("state_identical"),
            1.0,
            true,
        );
        let records = p.num_field("records").unwrap_or(0.0);
        let bound = REPLAY_MS_BASE + records * REPLAY_MS_PER_RECORD;
        require(
            &mut checks,
            &format!("recovery {at} replay time bounded vs log"),
            p.num_field("elapsed_ms"),
            bound + 1.0,
            false,
        );
    }
    let records: Vec<f64> = replay
        .iter()
        .filter_map(|p| p.num_field("records"))
        .collect();
    let grew = records.len() >= 2 && records.last() > records.first();
    checks.push(Check::new(
        "recovery log grows across the sweep",
        format!("{:?} strictly increasing ends", records),
        grew,
    ));

    let matrix = doc.get("crash_matrix").and_then(Json::arr).unwrap_or(&[]);
    for phase in RECOVERY_PHASES {
        let Some(cell) = matrix
            .iter()
            .find(|c| c.get("phase").and_then(Json::str_val) == Some(phase))
        else {
            checks.push(Check::new(
                format!("recovery matrix covers {phase}"),
                "cell missing from witness".into(),
                false,
            ));
            continue;
        };
        let expected = cell.get("expected").and_then(Json::str_val);
        let outcome = cell.get("outcome").and_then(Json::str_val);
        let ok = expected.is_some() && outcome == expected;
        checks.push(Check::new(
            format!("recovery {phase} converges to mandated outcome"),
            format!("{outcome:?} = {expected:?}"),
            ok,
        ));
        require(
            &mut checks,
            &format!("recovery {phase} survivors converged"),
            cell.num_field("converged"),
            1.0,
            true,
        );
        require(
            &mut checks,
            &format!("recovery {phase} forced decisions preserved"),
            cell.num_field("preserved"),
            1.0,
            true,
        );
        require(
            &mut checks,
            &format!("recovery {phase} replicas byte-identical"),
            cell.num_field("state_identical"),
            1.0,
            true,
        );
    }

    match doc.get("chaos") {
        Some(chaos) => {
            let txns = chaos.num_field("txns").unwrap_or(0.0);
            let terminated = chaos.num_field("terminated");
            let ok = matches!(terminated, Some(t) if t >= txns && txns > 0.0);
            checks.push(Check::new(
                "recovery chaos: every txn terminated",
                format!("{terminated:?} ≥ {txns:.0}"),
                ok,
            ));
            let dropped = chaos.num_field("dropped");
            checks.push(Check::new(
                "recovery chaos: fault plan fired",
                format!("{dropped:?} > 0 drops"),
                matches!(dropped, Some(d) if d > 0.0),
            ));
            require(
                &mut checks,
                "recovery chaos: replicas converged after heal",
                chaos.num_field("state_identical"),
                1.0,
                true,
            );
        }
        None => checks.push(Check::new(
            "recovery: chaos cell",
            "missing from witness".into(),
            false,
        )),
    }
    checks
}

/// Validates `BENCH_trace.json`: the armed run still commits at the
/// fig12 floor, its wall-time overhead over the sinks-disabled run sits
/// inside the witness band, the captured trace is complete (zero ring
/// drops) and certified (zero invariant violations), and the trace
/// actually observed the protocol (events, votes and commit batches all
/// non-zero — an empty trace certifying nothing proves nothing).
pub fn check_trace_witness(doc: &Json) -> Vec<Check> {
    let mut checks = Vec::new();
    let Some(traced) = doc.get("traced") else {
        return vec![Check::new(
            "trace: traced cell",
            "missing from witness".into(),
            false,
        )];
    };
    require(
        &mut checks,
        "trace armed run commits ≥ floor",
        traced.num_field("committed"),
        COMMIT_FLOOR,
        true,
    );
    require(
        &mut checks,
        "trace overhead inside witness band",
        doc.num_field("overhead_pct"),
        TRACE_OVERHEAD_WITNESS_PCT,
        false,
    );
    require(
        &mut checks,
        "trace checker found no violations",
        traced.num_field("checker_violations"),
        1.0,
        false,
    );
    let complete = traced.num_field("checker_complete");
    let dropped = traced.num_field("dropped");
    let ok = matches!((complete, dropped), (Some(c), Some(d)) if c >= 1.0 && d == 0.0);
    checks.push(Check::new(
        "trace complete (no ring drops)",
        format!("complete {complete:?}, dropped {dropped:?}"),
        ok,
    ));
    for field in ["events", "votes", "commits"] {
        require(
            &mut checks,
            &format!("trace observed protocol: {field} > 0"),
            traced.num_field(field),
            1.0,
            true,
        );
    }
    checks
}

/// Checks a fresh traced smoke cell against the wide fresh bands.
pub fn check_trace_fresh(
    committed: f64,
    overhead_pct: f64,
    violations: f64,
    complete: bool,
    events: f64,
) -> Vec<Check> {
    vec![
        Check::new(
            "trace overhead inside fresh band",
            format!("{overhead_pct:.1} < {FRESH_TRACE_OVERHEAD_PCT:.0} %"),
            overhead_pct < FRESH_TRACE_OVERHEAD_PCT,
        ),
        Check::new(
            "trace certified on fresh smoke run",
            format!("{violations:.0} violations, complete = {complete}"),
            violations == 0.0 && complete,
        ),
        Check::new(
            "trace fresh run committed and observed events",
            format!("{committed:.0} committed, {events:.0} events"),
            committed > 0.0 && events > 0.0,
        ),
    ]
}

/// Validates `BENCH_openloop.json`: the sustained open-loop cell
/// terminated ≥10⁶ scheduled arrivals, kept up with its below-knee
/// offered rate, holds ordered scheduled-arrival percentiles under the
/// p99 cap, and spread coordination over **every** site within the
/// fairness band.
pub fn check_openloop_witness(doc: &Json) -> Vec<Check> {
    let mut checks = Vec::new();
    let Some(sustained) = doc.get("sustained") else {
        return vec![Check::new(
            "openloop: sustained cell",
            "missing from witness".into(),
            false,
        )];
    };
    require(
        &mut checks,
        "openloop sustained txns ≥ 10⁶ floor",
        sustained.num_field("terminated"),
        OPENLOOP_TXN_FLOOR,
        true,
    );
    check_percentiles(&mut checks, "openloop sustained", sustained);
    require(
        &mut checks,
        "openloop sustained p99 ≤ cap at fixed rate",
        sustained.num_field("p99_ms"),
        OPENLOOP_P99_CAP_MS,
        false,
    );
    let offered = sustained.num_field("offered_rate");
    let achieved = sustained.num_field("achieved_rate");
    let ok = matches!((offered, achieved),
        (Some(o), Some(a)) if o > 0.0 && a >= OPENLOOP_ACHIEVED_FRACTION * o);
    checks.push(Check::new(
        "openloop sustained kept up with offered rate",
        format!("achieved {achieved:?} ≥ {OPENLOOP_ACHIEVED_FRACTION} × offered {offered:?} txn/s"),
        ok,
    ));
    let sites = doc.num_field("sites").unwrap_or(0.0) as usize;
    let coords = sustained
        .get("coordinators")
        .and_then(Json::arr)
        .unwrap_or(&[]);
    let committed: Vec<f64> = coords
        .iter()
        .filter_map(|c| c.num_field("committed"))
        .collect();
    let all_used = !coords.is_empty()
        && coords.len() == sites
        && committed.len() == coords.len()
        && coords
            .iter()
            .all(|c| c.num_field("submitted").unwrap_or(0.0) > 0.0)
        && committed.iter().all(|&c| c > 0.0);
    checks.push(Check::new(
        "openloop every site served as coordinator",
        format!("{} of {sites} sites submitted and committed", coords.len()),
        all_used,
    ));
    let spread = match (
        committed.iter().cloned().fold(f64::INFINITY, f64::min),
        committed.iter().cloned().fold(0.0, f64::max),
    ) {
        (min, max) if min > 0.0 => max / min,
        _ => f64::INFINITY,
    };
    checks.push(Check::new(
        "openloop commit spread within fairness band",
        format!("max/min {spread:.3} < {OPENLOOP_SPREAD_CAP}"),
        spread < OPENLOOP_SPREAD_CAP,
    ));
    require(
        &mut checks,
        "openloop sweep recorded cells",
        doc.get("sweep").and_then(Json::arr).map(|s| s.len() as f64),
        1.0,
        true,
    );
    checks
}

/// Checks a fresh open-loop smoke cell against the wide fresh bands.
pub fn check_openloop_fresh(
    txns: f64,
    terminated: f64,
    p99_ms: f64,
    coords_used: f64,
    sites: f64,
    achieved_rate: f64,
    offered_rate: f64,
) -> Vec<Check> {
    vec![
        Check::new(
            "openloop every arrival terminated (fresh)",
            format!("{terminated:.0} ≥ {txns:.0}"),
            terminated >= txns && txns > 0.0,
        ),
        Check::new(
            "openloop all sites coordinated (fresh)",
            format!("{coords_used:.0} = {sites:.0}"),
            coords_used == sites && sites > 0.0,
        ),
        Check::new(
            "openloop scheduled-arrival p99 inside fresh band",
            format!("{p99_ms:.1} < {FRESH_OPENLOOP_P99_CAP_MS:.0} ms"),
            p99_ms < FRESH_OPENLOOP_P99_CAP_MS,
        ),
        Check::new(
            "openloop fresh run kept up with smoke rate",
            format!(
                "{achieved_rate:.0} ≥ {:.0} txn/s",
                offered_rate * FRESH_OPENLOOP_ACHIEVED_FRACTION
            ),
            achieved_rate >= offered_rate * FRESH_OPENLOOP_ACHIEVED_FRACTION,
        ),
    ]
}

/// Checks a fresh smoke replay cell against the wide fresh bands: all
/// committed transactions recovered, byte-identical state, replay time
/// on the fresh bounded line.
pub fn check_recovery_fresh(
    txns: f64,
    committed: f64,
    records: f64,
    elapsed_ms: f64,
    identical: bool,
) -> Vec<Check> {
    let bound = FRESH_REPLAY_MS_BASE + records * FRESH_REPLAY_MS_PER_RECORD;
    vec![
        Check::new(
            "recovery zero committed-txn loss (fresh)",
            format!("{committed:.0} ≥ {txns:.0}"),
            committed >= txns && txns > 0.0,
        ),
        Check::new(
            "recovery byte-identical replay (fresh)",
            format!("identical = {identical}"),
            identical,
        ),
        Check::new(
            "recovery replay time bounded vs log (fresh)",
            format!("{elapsed_ms:.1} ≤ {bound:.1} ms"),
            elapsed_ms <= bound,
        ),
    ]
}

/// Checks a fresh smoke read-mix sweep: the low- and high-contention
/// read p99s must stay within the (wide) fresh flatness band, no reader
/// may deadlock, and every read op must have hit the snapshot path.
pub fn check_reads_fresh(
    read_p99_low: f64,
    read_p99_high: f64,
    reader_deadlocks: f64,
    snapshot_reads: f64,
    read_ops: f64,
) -> Vec<Check> {
    let (min_p99, max_p99) = (
        read_p99_low.min(read_p99_high),
        read_p99_low.max(read_p99_high),
    );
    vec![
        Check::new(
            "reads p99 flat across contention (fresh)",
            format!(
                "{max_p99:.1} ≤ {:.1} ms",
                min_p99 * FRESH_READS_P99_FLAT_RATIO
            ),
            max_p99 <= min_p99 * FRESH_READS_P99_FLAT_RATIO,
        ),
        Check::new(
            "reads reader deadlocks = 0 (fresh)",
            format!("{reader_deadlocks:.0} = 0"),
            reader_deadlocks == 0.0,
        ),
        Check::new(
            "reads snapshot_reads ≥ read ops (fresh)",
            format!("{snapshot_reads:.0} ≥ {read_ops:.0}"),
            snapshot_reads >= read_ops && read_ops > 0.0,
        ),
    ]
}

/// Checks a fresh net smoke run against the fresh-band invariants.
pub fn check_net_fresh(reactor: f64, hub: f64, tpl: f64) -> Vec<Check> {
    vec![
        Check::new(
            "net reactor ≥ hub rate (fresh)",
            format!("{reactor:.0} ≥ {:.0} msgs/s", hub * FRESH_NET_OVER_HUB),
            reactor >= hub * FRESH_NET_OVER_HUB,
        ),
        Check::new(
            "net reactor ≥ thread-per-link rate (fresh)",
            format!("{reactor:.0} ≥ {:.0} msgs/s", tpl * FRESH_NET_OVER_TPL),
            reactor >= tpl * FRESH_NET_OVER_TPL,
        ),
    ]
}

/// Checks a fresh fig12-style XDGL run.
pub fn check_throughput_fresh(committed: f64, batched: f64, unbatched: f64) -> Vec<Check> {
    vec![
        Check::new(
            "fig12 XDGL commits ≥ floor (fresh)",
            format!("{committed:.0} ≥ {FRESH_COMMIT_FLOOR:.0}"),
            committed >= FRESH_COMMIT_FLOOR,
        ),
        Check::new(
            "fig12 termination batched < unbatched (fresh)",
            format!("{batched:.0} < {unbatched:.0}"),
            batched < unbatched,
        ),
    ]
}

/// Checks a fresh ingest rate pair.
pub fn check_ingest_fresh(stream_mb_s: f64, tree_mb_s: f64) -> Vec<Check> {
    vec![Check::new(
        "ingest stream ≥ tree rate (fresh)",
        format!(
            "{stream_mb_s:.1} ≥ {:.1} MB/s",
            tree_mb_s * FRESH_INGEST_TOL
        ),
        stream_mb_s >= tree_mb_s * FRESH_INGEST_TOL,
    )]
}

/// Validates `BENCH_wire.json`: the multi-process fig12 (4 sites as 4
/// separate OS processes, `WIRE.md` codec over real TCP) committed at
/// least the same floor as the in-process run, actually used the wire
/// (positive byte/frame counters, zero decode errors, compact frames),
/// and the codec microbench stayed inside its per-message budget.
pub fn check_wire_witness(doc: &Json) -> Vec<Check> {
    let mut checks = Vec::new();
    let Some(run) = doc.get("fig12_process") else {
        return vec![Check::new(
            "wire: fig12_process cell",
            "missing from witness".into(),
            false,
        )];
    };
    require(
        &mut checks,
        "wire fig12 commits ≥ floor",
        run.num_field("committed"),
        COMMIT_FLOOR,
        true,
    );
    let sites = run.num_field("sites");
    let procs = run.num_field("processes");
    checks.push(Check::new(
        "wire fig12 ran 4 sites as 4 OS processes",
        format!("sites {sites:?}, processes {procs:?}"),
        matches!((sites, procs), (Some(s), Some(p)) if s == WIRE_PROCESSES && p == WIRE_PROCESSES),
    ));
    let txns = run.num_field("txns");
    checks.push(Check::new(
        "wire fig12 submitted the full workload",
        format!("txns {txns:?} = {WIRE_TXNS:.0}"),
        matches!(txns, Some(t) if t == WIRE_TXNS),
    ));
    for field in ["bytes_out", "bytes_in", "frames_out", "frames_in"] {
        require(
            &mut checks,
            &format!("wire fig12 {field} > 0"),
            run.num_field(field),
            1.0,
            true,
        );
    }
    require(
        &mut checks,
        "wire fig12 decode errors = 0",
        run.num_field("decode_errors"),
        1.0,
        false,
    );
    require(
        &mut checks,
        "wire fig12 frames compact",
        run.num_field("bytes_per_frame"),
        WIRE_BYTES_PER_FRAME_CAP,
        false,
    );
    check_percentiles(&mut checks, "wire fig12", run);
    let Some(codec) = doc.get("codec") else {
        checks.push(Check::new(
            "wire: codec cell",
            "missing from witness".into(),
            false,
        ));
        return checks;
    };
    for field in ["encode_ns", "decode_ns"] {
        let v = codec.num_field(field);
        checks.push(Check::new(
            format!("wire codec {field} inside witness band"),
            format!("0 < {v:?} < {WIRE_CODEC_NS_CAP:.0} ns/msg"),
            matches!(v, Some(n) if 0.0 < n && n < WIRE_CODEC_NS_CAP),
        ));
    }
    checks
}

/// Checks a fresh 2-process wire smoke cell against the wide fresh
/// bands: the cluster of OS processes commits most of the 50-txn mix
/// over real sockets, and the codec stays inside the fresh budget.
pub fn check_wire_fresh(
    committed: f64,
    txns: f64,
    bytes_out: f64,
    frames_out: f64,
    encode_ns: f64,
    decode_ns: f64,
) -> Vec<Check> {
    vec![
        Check::new(
            "wire fresh smoke commits ≥ fresh floor",
            format!("{committed:.0} / {txns:.0} ≥ {FRESH_WIRE_COMMIT_FLOOR:.0}"),
            committed >= FRESH_WIRE_COMMIT_FLOOR,
        ),
        Check::new(
            "wire fresh smoke put bytes on the wire",
            format!("{bytes_out:.0} B in {frames_out:.0} frames"),
            bytes_out > 0.0 && frames_out > 0.0,
        ),
        Check::new(
            "wire fresh codec inside fresh band",
            format!(
                "encode {encode_ns:.0}, decode {decode_ns:.0} < {FRESH_WIRE_CODEC_NS_CAP:.0} ns"
            ),
            0.0 < encode_ns
                && encode_ns < FRESH_WIRE_CODEC_NS_CAP
                && 0.0 < decode_ns
                && decode_ns < FRESH_WIRE_CODEC_NS_CAP,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_ok(checks: &[Check]) -> bool {
        checks.iter().all(|c| c.ok)
    }

    fn failed(checks: &[Check]) -> Vec<&str> {
        checks
            .iter()
            .filter(|c| !c.ok)
            .map(|c| c.name.as_str())
            .collect()
    }

    const GOOD_THROUGHPUT: &str = r#"{"protocols": [
        {"name": "XDGL", "committed": 233, "termination_msgs": 1392,
         "termination_msgs_unbatched": 1500, "net_worker_threads": 1,
         "p50_ms": 120.5, "p99_ms": 890.0, "p999_ms": 1400.0},
        {"name": "Node2PL", "committed": 183, "termination_msgs": 1470,
         "termination_msgs_unbatched": 1500, "net_worker_threads": 1,
         "p50_ms": 900.1, "p99_ms": 5200.0, "p999_ms": 8100.0}
    ]}"#;

    const GOOD_NET: &str = r#"{"topologies": [
        {"name": "hub", "msgs_per_s": 700000, "links_active": 56, "delivery_threads": 1},
        {"name": "thread_per_link", "msgs_per_s": 2200000, "links_active": 56, "delivery_threads": 56},
        {"name": "reactor", "msgs_per_s": 2300000, "links_active": 56, "delivery_threads": 1}
    ], "sites_sweep": [
        {"sites": 8, "msgs_per_s": 1300000, "links_active": 56, "delivery_threads": 1},
        {"sites": 128, "msgs_per_s": 340000, "links_active": 16256, "delivery_threads": 1}
    ]}"#;

    const GOOD_READS: &str = r#"{"contention_sweep": [
        {"update_txn_pct": 10, "read_txns": 181, "read_committed": 181, "reader_deadlocks": 0,
         "read_p50_ms": 40.1, "read_p99_ms": 167.5, "read_p999_ms": 190.0,
         "deadlocks": 1, "snapshot_reads": 3620, "read_ops": 905,
         "snapshots_live_end": 4},
        {"update_txn_pct": 40, "read_txns": 121, "read_committed": 121, "reader_deadlocks": 0,
         "read_p50_ms": 35.9, "read_p99_ms": 110.2, "read_p999_ms": 140.7,
         "deadlocks": 37, "snapshot_reads": 2420, "read_ops": 605,
         "snapshots_live_end": 4}
    ], "reader_sweep": [
        {"readers": 8, "read_txns": 40, "read_committed": 40, "reader_deadlocks": 0,
         "read_p50_ms": 20.3, "read_p99_ms": 44.8, "read_p999_ms": 50.2,
         "deadlocks": 12, "snapshot_reads": 800, "read_ops": 200,
         "snapshots_live_end": 4},
        {"readers": 32, "read_txns": 160, "read_committed": 160, "reader_deadlocks": 0,
         "read_p50_ms": 41.0, "read_p99_ms": 134.2, "read_p999_ms": 150.9,
         "deadlocks": 12, "snapshot_reads": 3200, "read_ops": 800,
         "snapshots_live_end": 4}
    ]}"#;

    const GOOD_RECOVERY: &str = r#"{"replay": [
        {"txns": 25, "records": 120, "bytes": 48000, "elapsed_ms": 3.2,
         "redo_applied": 25, "committed": 25, "state_identical": 1},
        {"txns": 100, "records": 430, "bytes": 170000, "elapsed_ms": 9.8,
         "redo_applied": 100, "committed": 100, "state_identical": 1}
    ], "crash_matrix": [
        {"phase": "in_remote_ops", "expected": "abort", "outcome": "abort",
         "converged": 1, "preserved": 1, "state_identical": 1},
        {"phase": "after_prepare", "expected": "abort", "outcome": "abort",
         "converged": 1, "preserved": 1, "state_identical": 1},
        {"phase": "after_decide", "expected": "commit", "outcome": "commit",
         "converged": 1, "preserved": 1, "state_identical": 1},
        {"phase": "mid_commit_delivery", "expected": "commit", "outcome": "commit",
         "converged": 1, "preserved": 1, "state_identical": 1}
    ], "chaos": {"seed": 2009, "per_mille": 300, "txns": 8, "terminated": 8,
        "committed": 5, "dropped": 37, "state_identical": 1}}"#;

    const GOOD_INGEST: &str = r#"{"points": [
        {"scale": 1, "tree": {"mb_per_s": 48.3, "peak_alloc_bytes": 3376613},
         "stream": {"mb_per_s": 78.8, "peak_alloc_bytes": 2568546}}
    ]}"#;

    const GOOD_OPENLOOP: &str = r#"{"experiment": "bench_openloop", "seed": 2009,
        "sites": 4, "workers": 2, "update_pct": 4,
        "sweep": [
          {"protocol": "XDGL", "arrivals": "poisson", "offered_rate": 2000, "txns": 8000,
           "terminated": 8000, "committed": 7985, "aborted": 15, "deadlocks": 2, "failed": 0,
           "achieved_rate": 1998.2, "p50_ms": 0.4, "p99_ms": 1.9, "p999_ms": 4.2,
           "dispatch_p99_ms": 1.8, "max_lag_ms": 3.1, "wall_s": 4.0},
          {"protocol": "XDGL", "arrivals": "poisson", "offered_rate": 8000, "txns": 16000,
           "terminated": 16000, "committed": 15950, "aborted": 50, "deadlocks": 6, "failed": 0,
           "achieved_rate": 7960.4, "p50_ms": 0.5, "p99_ms": 2.8, "p999_ms": 6.0,
           "dispatch_p99_ms": 2.5, "max_lag_ms": 5.2, "wall_s": 2.0}
        ],
        "knee": {"XDGL": 8000, "Node2PL": 4000},
        "sustained": {"protocol": "XDGL", "arrivals": "poisson", "offered_rate": 5600,
         "txns": 1000000, "terminated": 1000000, "committed": 999200, "aborted": 800,
         "deadlocks": 120, "failed": 0, "achieved_rate": 5598.9,
         "p50_ms": 0.42, "p99_ms": 3.2, "p999_ms": 8.5,
         "dispatch_p99_ms": 2.9, "max_lag_ms": 12.0, "wall_s": 178.6,
         "coordinators": [
           {"site": 0, "submitted": 250000, "committed": 249810, "inflight_peak": 9},
           {"site": 1, "submitted": 250000, "committed": 249790, "inflight_peak": 8},
           {"site": 2, "submitted": 250000, "committed": 249805, "inflight_peak": 11},
           {"site": 3, "submitted": 250000, "committed": 249795, "inflight_peak": 7}
         ], "commit_spread": 1.000},
        "bursty": {"protocol": "XDGL", "arrivals": "bursty", "offered_rate": 4000,
         "txns": 50000, "terminated": 50000, "committed": 49940, "aborted": 60,
         "deadlocks": 9, "failed": 0, "achieved_rate": 3995.1,
         "p50_ms": 1.1, "p99_ms": 14.8, "p999_ms": 22.4,
         "dispatch_p99_ms": 3.0, "max_lag_ms": 19.7, "wall_s": 12.5}}"#;

    const GOOD_TRACE: &str = r#"{"experiment": "bench_trace", "clients": 50,
        "disabled": {"committed": 233, "submitted": 250, "wall_ms": 5100.0,
         "p50_ms": 120.0, "p99_ms": 880.0, "p999_ms": 1350.0, "events": 0,
         "dropped": 0, "checker_violations": 0, "checker_complete": 1,
         "votes": 0, "commits": 0, "links": 0},
        "traced": {"committed": 233, "submitted": 250, "wall_ms": 5240.0,
         "p50_ms": 122.0, "p99_ms": 905.0, "p999_ms": 1380.0, "events": 48210,
         "dropped": 0, "checker_violations": 0, "checker_complete": 1,
         "votes": 410, "commits": 233, "links": 12},
        "overhead_pct": 2.75}"#;

    #[test]
    fn good_witnesses_pass() {
        assert!(all_ok(&check_throughput_witness(
            &Json::parse(GOOD_THROUGHPUT).unwrap()
        )));
        assert!(all_ok(&check_net_witness(&Json::parse(GOOD_NET).unwrap())));
        assert!(all_ok(&check_ingest_witness(
            &Json::parse(GOOD_INGEST).unwrap()
        )));
        assert!(all_ok(&check_reads_witness(
            &Json::parse(GOOD_READS).unwrap()
        )));
        assert!(all_ok(&check_trace_witness(
            &Json::parse(GOOD_TRACE).unwrap()
        )));
        assert!(all_ok(&check_openloop_witness(
            &Json::parse(GOOD_OPENLOOP).unwrap()
        )));
    }

    #[test]
    fn doctored_openloop_percentile_inversion_fails() {
        // A p999 below the p99 can only come from a mis-merged or
        // hand-edited histogram.
        let doctored = GOOD_OPENLOOP.replace(
            "\"p50_ms\": 0.42, \"p99_ms\": 3.2, \"p999_ms\": 8.5",
            "\"p50_ms\": 0.42, \"p99_ms\": 3.2, \"p999_ms\": 1.5",
        );
        let checks = check_openloop_witness(&Json::parse(&doctored).unwrap());
        assert_eq!(
            failed(&checks),
            vec!["openloop sustained percentiles present and ordered"]
        );
    }

    #[test]
    fn doctored_openloop_p99_above_cap_fails() {
        // Scheduled-arrival p99 blown past the fixed-rate cap: the
        // engine no longer holds the recorded rate with bounded queues.
        let doctored = GOOD_OPENLOOP.replace(
            "\"p50_ms\": 0.42, \"p99_ms\": 3.2, \"p999_ms\": 8.5",
            "\"p50_ms\": 0.42, \"p99_ms\": 150.0, \"p999_ms\": 400.0",
        );
        let checks = check_openloop_witness(&Json::parse(&doctored).unwrap());
        assert_eq!(
            failed(&checks),
            vec!["openloop sustained p99 ≤ cap at fixed rate"]
        );
    }

    #[test]
    fn doctored_openloop_txn_floor_fails() {
        let doctored = GOOD_OPENLOOP.replace(
            "\"txns\": 1000000, \"terminated\": 1000000",
            "\"txns\": 1000000, \"terminated\": 900000",
        );
        let checks = check_openloop_witness(&Json::parse(&doctored).unwrap());
        assert_eq!(failed(&checks), vec!["openloop sustained txns ≥ 10⁶ floor"]);
    }

    #[test]
    fn doctored_openloop_missing_coordinator_fails() {
        // One site never submitted: the round-robin attach is broken.
        let doctored = GOOD_OPENLOOP.replace(
            "{\"site\": 2, \"submitted\": 250000, \"committed\": 249805, \"inflight_peak\": 11}",
            "{\"site\": 2, \"submitted\": 0, \"committed\": 249805, \"inflight_peak\": 11}",
        );
        let checks = check_openloop_witness(&Json::parse(&doctored).unwrap());
        assert_eq!(
            failed(&checks),
            vec!["openloop every site served as coordinator"]
        );
        // A coordinator entry missing entirely fails the same rule.
        let dropped = GOOD_OPENLOOP.replace(
            ",\n           {\"site\": 3, \"submitted\": 250000, \"committed\": 249795, \"inflight_peak\": 7}",
            "",
        );
        let checks = check_openloop_witness(&Json::parse(&dropped).unwrap());
        assert!(
            failed(&checks).contains(&"openloop every site served as coordinator"),
            "three coordinators on a four-site witness must fail: {:?}",
            failed(&checks)
        );
    }

    #[test]
    fn doctored_openloop_commit_skew_fails() {
        // One coordinator committing a fraction of its peers' share:
        // fairness band broken even though every site participated.
        let doctored = GOOD_OPENLOOP.replace(
            "\"site\": 1, \"submitted\": 250000, \"committed\": 249790",
            "\"site\": 1, \"submitted\": 250000, \"committed\": 120000",
        );
        let checks = check_openloop_witness(&Json::parse(&doctored).unwrap());
        assert_eq!(
            failed(&checks),
            vec!["openloop commit spread within fairness band"]
        );
    }

    #[test]
    fn doctored_openloop_achieved_rate_fails() {
        // Achieved throughput far under the offered rate: the sustained
        // cell was actually saturated, not below the knee.
        let doctored =
            GOOD_OPENLOOP.replace("\"achieved_rate\": 5598.9", "\"achieved_rate\": 3100.0");
        let checks = check_openloop_witness(&Json::parse(&doctored).unwrap());
        assert_eq!(
            failed(&checks),
            vec!["openloop sustained kept up with offered rate"]
        );
    }

    #[test]
    fn fresh_openloop_checks_flag_regressions() {
        assert!(all_ok(&check_openloop_fresh(
            4000.0, 4000.0, 35.0, 4.0, 4.0, 1900.0, 2000.0
        )));
        // Arrivals silently shed.
        assert!(!all_ok(&check_openloop_fresh(
            4000.0, 3900.0, 35.0, 4.0, 4.0, 1900.0, 2000.0
        )));
        // A site dropped out of coordination.
        assert!(!all_ok(&check_openloop_fresh(
            4000.0, 4000.0, 35.0, 3.0, 4.0, 1900.0, 2000.0
        )));
        // Scheduled-arrival p99 outside even the wide fresh band.
        assert!(!all_ok(&check_openloop_fresh(
            4000.0, 4000.0, 800.0, 4.0, 4.0, 1900.0, 2000.0
        )));
        // Achieved rate collapsed below half the smoke rate.
        assert!(!all_ok(&check_openloop_fresh(
            4000.0, 4000.0, 35.0, 4.0, 4.0, 700.0, 2000.0
        )));
    }

    #[test]
    fn doctored_read_p99_flatness_fails() {
        // The high-contention read p99 blown past the flat band: readers
        // queueing behind writer locks again.
        let doctored = GOOD_READS.replace(
            "\"read_p99_ms\": 110.2, \"read_p999_ms\": 140.7",
            "\"read_p99_ms\": 900.0, \"read_p999_ms\": 950.0",
        );
        let checks = check_reads_witness(&Json::parse(&doctored).unwrap());
        assert_eq!(
            failed(&checks),
            vec!["reads p99 flat across contention (witness)"]
        );
    }

    #[test]
    fn doctored_reader_deadlock_growth_fails() {
        // Deadlocks quadrupling with the reader count: readers back in
        // the WFG.
        let doctored = GOOD_READS.replace(
            "\"deadlocks\": 12, \"snapshot_reads\": 3200",
            "\"deadlocks\": 48, \"snapshot_reads\": 3200",
        );
        let checks = check_reads_witness(&Json::parse(&doctored).unwrap());
        assert_eq!(
            failed(&checks),
            vec!["reads deadlocks independent of reader count"]
        );
    }

    #[test]
    fn doctored_reader_deadlock_victim_fails() {
        let doctored = GOOD_READS.replacen("\"reader_deadlocks\": 0", "\"reader_deadlocks\": 2", 1);
        let checks = check_reads_witness(&Json::parse(&doctored).unwrap());
        assert_eq!(
            failed(&checks),
            vec!["reads contention@10 reader deadlocks = 0"]
        );
    }

    #[test]
    fn doctored_snapshot_coverage_and_retention_fail() {
        // Fewer snapshot reads than read ops: some reads took locks.
        let locked = GOOD_READS.replace("\"snapshot_reads\": 3620", "\"snapshot_reads\": 100");
        let checks = check_reads_witness(&Json::parse(&locked).unwrap());
        assert_eq!(
            failed(&checks),
            vec!["reads contention@10 snapshot_reads ≥ read ops"]
        );
        // Hundreds of live versions after the drain: a pin leak.
        let leaked = GOOD_READS.replacen(
            "\"snapshots_live_end\": 4",
            "\"snapshots_live_end\": 400",
            1,
        );
        let checks = check_reads_witness(&Json::parse(&leaked).unwrap());
        assert_eq!(
            failed(&checks),
            vec!["reads contention@10 snapshots GC'd after drain"]
        );
    }

    #[test]
    fn doctored_read_abort_fails() {
        let doctored = GOOD_READS.replacen("\"read_committed\": 181", "\"read_committed\": 170", 1);
        let checks = check_reads_witness(&Json::parse(&doctored).unwrap());
        assert_eq!(
            failed(&checks),
            vec!["reads contention@10 all read txns commit"]
        );
    }

    #[test]
    fn fresh_reads_checks_flag_regressions() {
        assert!(all_ok(&check_reads_fresh(28.0, 35.0, 0.0, 940.0, 235.0)));
        // p99 blown far outside even the wide fresh band.
        assert!(!all_ok(&check_reads_fresh(28.0, 300.0, 0.0, 940.0, 235.0)));
        // A reader chosen as a deadlock victim.
        assert!(!all_ok(&check_reads_fresh(28.0, 35.0, 1.0, 940.0, 235.0)));
        // Reads bypassing the snapshot path.
        assert!(!all_ok(&check_reads_fresh(28.0, 35.0, 0.0, 100.0, 235.0)));
    }

    #[test]
    fn doctored_commit_count_fails() {
        let doctored = GOOD_THROUGHPUT.replace("\"committed\": 233", "\"committed\": 180");
        let checks = check_throughput_witness(&Json::parse(&doctored).unwrap());
        assert_eq!(failed(&checks), vec!["fig12 XDGL commits ≥ floor"]);
    }

    #[test]
    fn doctored_termination_batching_fails() {
        let doctored =
            GOOD_THROUGHPUT.replace("\"termination_msgs\": 1392", "\"termination_msgs\": 1500");
        let checks = check_throughput_witness(&Json::parse(&doctored).unwrap());
        assert_eq!(
            failed(&checks),
            vec!["fig12 termination batched < unbatched"]
        );
    }

    #[test]
    fn doctored_throughput_percentiles_fail() {
        // Inverted tail: a p99 recorded below the median is a doctored
        // or mis-merged histogram.
        let inverted = GOOD_THROUGHPUT.replace("\"p99_ms\": 890.0", "\"p99_ms\": 50.0");
        let checks = check_throughput_witness(&Json::parse(&inverted).unwrap());
        assert_eq!(
            failed(&checks),
            vec!["fig12 XDGL percentiles present and ordered"]
        );
        // A witness predating the histogram fields must not pass.
        let missing = GOOD_THROUGHPUT.replace("\"p999_ms\": 1400.0", "\"old_field\": 1.0");
        let checks = check_throughput_witness(&Json::parse(&missing).unwrap());
        assert_eq!(
            failed(&checks),
            vec!["fig12 XDGL percentiles present and ordered"]
        );
    }

    #[test]
    fn doctored_reads_percentiles_fail() {
        let inverted = GOOD_READS.replacen("\"read_p999_ms\": 190.0", "\"read_p999_ms\": 10.0", 1);
        let checks = check_reads_witness(&Json::parse(&inverted).unwrap());
        assert_eq!(
            failed(&checks),
            vec!["reads contention@10 percentiles present and ordered"]
        );
    }

    #[test]
    fn doctored_reactor_rate_fails() {
        // Reactor recorded below the hub: the win evaporated.
        let doctored = GOOD_NET.replace(
            "{\"name\": \"reactor\", \"msgs_per_s\": 2300000",
            "{\"name\": \"reactor\", \"msgs_per_s\": 400000",
        );
        let checks = check_net_witness(&Json::parse(&doctored).unwrap());
        assert_eq!(
            failed(&checks),
            vec![
                "net reactor ≥ hub rate (witness)",
                "net reactor ≥ thread-per-link rate (witness)"
            ]
        );
    }

    #[test]
    fn doctored_thread_bound_fails() {
        // The 128-site run claiming thousands of threads: the bounded
        // reactor claim is gone (that is thread-per-link scaling).
        let doctored = GOOD_NET.replace(
            "\"links_active\": 16256, \"delivery_threads\": 1",
            "\"links_active\": 16256, \"delivery_threads\": 16256",
        );
        let checks = check_net_witness(&Json::parse(&doctored).unwrap());
        assert_eq!(
            failed(&checks),
            vec!["net 128-site storm delivery threads bounded"]
        );
    }

    #[test]
    fn missing_big_sweep_entry_fails() {
        let doctored = GOOD_NET.replace("\"sites\": 128", "\"sites\": 64");
        let checks = check_net_witness(&Json::parse(&doctored).unwrap());
        assert_eq!(failed(&checks), vec!["net 128-site storm present in sweep"]);
    }

    #[test]
    fn good_recovery_witness_passes() {
        assert!(all_ok(&check_recovery_witness(
            &Json::parse(GOOD_RECOVERY).unwrap()
        )));
    }

    #[test]
    fn doctored_recovery_commit_loss_fails() {
        // A replay that lost a committed transaction: durability is gone.
        let doctored = GOOD_RECOVERY.replace("\"committed\": 100", "\"committed\": 97");
        let checks = check_recovery_witness(&Json::parse(&doctored).unwrap());
        assert_eq!(
            failed(&checks),
            vec!["recovery @100txns zero committed-txn loss"]
        );
    }

    #[test]
    fn doctored_recovery_divergent_replay_fails() {
        // Replay landing on different bytes than the survivor.
        let doctored =
            GOOD_RECOVERY.replacen("\"state_identical\": 1", "\"state_identical\": 0", 1);
        let checks = check_recovery_witness(&Json::parse(&doctored).unwrap());
        assert_eq!(
            failed(&checks),
            vec!["recovery @25txns byte-identical replay"]
        );
    }

    #[test]
    fn doctored_recovery_replay_time_fails() {
        // Replay time blown far past the per-record line: history is
        // being re-executed, not repeated.
        let doctored = GOOD_RECOVERY.replace("\"elapsed_ms\": 9.8", "\"elapsed_ms\": 4000.0");
        let checks = check_recovery_witness(&Json::parse(&doctored).unwrap());
        assert_eq!(
            failed(&checks),
            vec!["recovery @100txns replay time bounded vs log"]
        );
    }

    #[test]
    fn doctored_recovery_shrunk_sweep_fails() {
        // A sweep whose log never grows proves nothing about scaling.
        let doctored = GOOD_RECOVERY.replace("\"records\": 430", "\"records\": 120");
        let checks = check_recovery_witness(&Json::parse(&doctored).unwrap());
        assert_eq!(failed(&checks), vec!["recovery log grows across the sweep"]);
    }

    #[test]
    fn doctored_recovery_flipped_outcome_fails() {
        // A forced decision recorded as aborting: 2PC safety violated.
        let doctored = GOOD_RECOVERY.replace(
            "{\"phase\": \"after_decide\", \"expected\": \"commit\", \"outcome\": \"commit\",\n         \"converged\": 1, \"preserved\": 1",
            "{\"phase\": \"after_decide\", \"expected\": \"commit\", \"outcome\": \"abort\",\n         \"converged\": 1, \"preserved\": 0",
        );
        let checks = check_recovery_witness(&Json::parse(&doctored).unwrap());
        assert_eq!(
            failed(&checks),
            vec![
                "recovery after_decide converges to mandated outcome",
                "recovery after_decide forced decisions preserved"
            ]
        );
    }

    #[test]
    fn doctored_recovery_missing_phase_fails() {
        // A matrix that silently skips a crash point is not a matrix.
        let doctored =
            GOOD_RECOVERY.replace("\"phase\": \"after_prepare\"", "\"phase\": \"other\"");
        let checks = check_recovery_witness(&Json::parse(&doctored).unwrap());
        assert_eq!(
            failed(&checks),
            vec!["recovery matrix covers after_prepare"]
        );
    }

    #[test]
    fn doctored_recovery_unconverged_survivors_fail() {
        let doctored = GOOD_RECOVERY.replacen(
            "\"outcome\": \"abort\",\n         \"converged\": 1",
            "\"outcome\": \"abort\",\n         \"converged\": 0",
            1,
        );
        let checks = check_recovery_witness(&Json::parse(&doctored).unwrap());
        assert_eq!(
            failed(&checks),
            vec!["recovery in_remote_ops survivors converged"]
        );
    }

    #[test]
    fn doctored_recovery_chaos_cell_fails() {
        // A chaos run whose fault plan never fired gates nothing.
        let unfired = GOOD_RECOVERY.replace("\"dropped\": 37", "\"dropped\": 0");
        let checks = check_recovery_witness(&Json::parse(&unfired).unwrap());
        assert_eq!(failed(&checks), vec!["recovery chaos: fault plan fired"]);
        // A hung transaction under loss.
        let hung = GOOD_RECOVERY.replace("\"terminated\": 8", "\"terminated\": 7");
        let checks = check_recovery_witness(&Json::parse(&hung).unwrap());
        assert_eq!(
            failed(&checks),
            vec!["recovery chaos: every txn terminated"]
        );
    }

    #[test]
    fn recovery_missing_sections_fail_closed() {
        let checks = check_recovery_witness(&Json::parse("{}").unwrap());
        let names = failed(&checks);
        assert!(names.contains(&"recovery: replay sweep"));
        assert!(names.contains(&"recovery matrix covers in_remote_ops"));
        assert!(names.contains(&"recovery: chaos cell"));
    }

    #[test]
    fn fresh_recovery_checks_flag_regressions() {
        assert!(all_ok(&check_recovery_fresh(10.0, 10.0, 60.0, 12.0, true)));
        // A lost commit.
        assert!(!all_ok(&check_recovery_fresh(10.0, 9.0, 60.0, 12.0, true)));
        // Divergent replay.
        assert!(!all_ok(&check_recovery_fresh(
            10.0, 10.0, 60.0, 12.0, false
        )));
        // Replay far off the bounded line.
        assert!(!all_ok(&check_recovery_fresh(
            10.0, 10.0, 60.0, 5000.0, true
        )));
    }

    #[test]
    fn doctored_ingest_rate_and_peak_fail() {
        let slow = GOOD_INGEST.replace("\"mb_per_s\": 78.8", "\"mb_per_s\": 30.0");
        assert!(!all_ok(&check_ingest_witness(&Json::parse(&slow).unwrap())));
        let fat = GOOD_INGEST.replace(
            "\"peak_alloc_bytes\": 2568546",
            "\"peak_alloc_bytes\": 9999999",
        );
        assert!(!all_ok(&check_ingest_witness(&Json::parse(&fat).unwrap())));
    }

    #[test]
    fn doctored_trace_overhead_fails() {
        // Overhead blown past the witness band: tracing is no longer
        // close to free.
        let doctored = GOOD_TRACE.replace("\"overhead_pct\": 2.75", "\"overhead_pct\": 23.4");
        let checks = check_trace_witness(&Json::parse(&doctored).unwrap());
        assert_eq!(failed(&checks), vec!["trace overhead inside witness band"]);
    }

    #[test]
    fn doctored_trace_violations_fail() {
        // A single invariant violation means the protocol (or the
        // checker) is broken — never certifiable.
        let doctored = GOOD_TRACE.replace(
            "\"checker_violations\": 0, \"checker_complete\": 1,\n         \"votes\": 410",
            "\"checker_violations\": 3, \"checker_complete\": 1,\n         \"votes\": 410",
        );
        let checks = check_trace_witness(&Json::parse(&doctored).unwrap());
        assert_eq!(failed(&checks), vec!["trace checker found no violations"]);
    }

    #[test]
    fn doctored_trace_drops_fail() {
        // Ring drops make the timeline incomplete: the checker refuses
        // to certify, and so must the gate.
        let dropped = GOOD_TRACE.replace(
            "\"events\": 48210,\n         \"dropped\": 0, \"checker_violations\": 0, \"checker_complete\": 1",
            "\"events\": 48210,\n         \"dropped\": 512, \"checker_violations\": 0, \"checker_complete\": 0",
        );
        let checks = check_trace_witness(&Json::parse(&dropped).unwrap());
        assert_eq!(failed(&checks), vec!["trace complete (no ring drops)"]);
    }

    #[test]
    fn doctored_trace_empty_or_silent_fails() {
        // An armed run that recorded nothing proves nothing.
        let empty = GOOD_TRACE.replace("\"events\": 48210", "\"events\": 0");
        let checks = check_trace_witness(&Json::parse(&empty).unwrap());
        assert_eq!(failed(&checks), vec!["trace observed protocol: events > 0"]);
        // A trace with no commit batches never watched the termination
        // protocol run.
        let silent = GOOD_TRACE.replace("\"commits\": 233", "\"commits\": 0");
        let checks = check_trace_witness(&Json::parse(&silent).unwrap());
        assert_eq!(
            failed(&checks),
            vec!["trace observed protocol: commits > 0"]
        );
    }

    #[test]
    fn doctored_trace_commit_floor_fails() {
        let doctored = GOOD_TRACE.replace(
            "\"traced\": {\"committed\": 233",
            "\"traced\": {\"committed\": 190",
        );
        let checks = check_trace_witness(&Json::parse(&doctored).unwrap());
        assert_eq!(failed(&checks), vec!["trace armed run commits ≥ floor"]);
    }

    #[test]
    fn fresh_trace_checks_flag_regressions() {
        assert!(all_ok(&check_trace_fresh(80.0, 4.2, 0.0, true, 15000.0)));
        // Overhead outside even the wide fresh band.
        assert!(!all_ok(&check_trace_fresh(80.0, 45.0, 0.0, true, 15000.0)));
        // An invariant violation on the smoke trace.
        assert!(!all_ok(&check_trace_fresh(80.0, 4.2, 1.0, true, 15000.0)));
        // An incomplete (dropping) trace.
        assert!(!all_ok(&check_trace_fresh(80.0, 4.2, 0.0, false, 15000.0)));
        // An armed run that captured nothing.
        assert!(!all_ok(&check_trace_fresh(80.0, 4.2, 0.0, true, 0.0)));
    }

    #[test]
    fn missing_fields_fail_closed() {
        let checks = check_throughput_witness(&Json::parse("{}").unwrap());
        assert!(!all_ok(&checks), "absent protocols must not pass");
        let checks = check_net_witness(&Json::parse("{}").unwrap());
        assert!(!all_ok(&checks), "absent topologies must not pass");
        let checks = check_ingest_witness(&Json::parse("{}").unwrap());
        assert!(!all_ok(&checks), "absent points must not pass");
        let checks = check_reads_witness(&Json::parse("{}").unwrap());
        assert!(!all_ok(&checks), "absent sweeps must not pass");
        let checks = check_trace_witness(&Json::parse("{}").unwrap());
        assert!(!all_ok(&checks), "absent traced cell must not pass");
        let checks = check_openloop_witness(&Json::parse("{}").unwrap());
        assert!(!all_ok(&checks), "absent sustained cell must not pass");
    }

    const GOOD_WIRE: &str = r#"{
        "experiment": "bench_wire", "seed": 2009,
        "fig12_process": {"sites": 4, "processes": 4, "txns": 250,
         "committed": 233, "aborted": 17, "p50_ms": 84.3, "p99_ms": 878.5,
         "p999_ms": 1086.9, "wall_s": 1.15, "bytes_out": 2989569,
         "bytes_in": 2361567, "frames_out": 21156, "frames_in": 21160,
         "bytes_per_frame": 141.3, "decode_errors": 0},
        "codec": {"encode_ns": 164.2, "decode_ns": 147.9, "mean_bytes": 19.2}
    }"#;

    #[test]
    fn good_wire_witness_passes() {
        assert!(all_ok(&check_wire_witness(
            &Json::parse(GOOD_WIRE).unwrap()
        )));
    }

    #[test]
    fn doctored_wire_commits_fail() {
        let doctored = GOOD_WIRE.replace("\"committed\": 233", "\"committed\": 220");
        let checks = check_wire_witness(&Json::parse(&doctored).unwrap());
        assert_eq!(failed(&checks), vec!["wire fig12 commits ≥ floor"]);
    }

    #[test]
    fn doctored_wire_process_count_fails() {
        // A witness recorded from an in-process shortcut (1 process) is
        // not the multi-process experiment.
        let doctored = GOOD_WIRE.replace("\"processes\": 4", "\"processes\": 1");
        let checks = check_wire_witness(&Json::parse(&doctored).unwrap());
        assert_eq!(
            failed(&checks),
            vec!["wire fig12 ran 4 sites as 4 OS processes"]
        );
        let doctored = GOOD_WIRE.replace("\"sites\": 4", "\"sites\": 2");
        assert!(!all_ok(&check_wire_witness(
            &Json::parse(&doctored).unwrap()
        )));
    }

    #[test]
    fn doctored_wire_workload_fails() {
        let doctored = GOOD_WIRE.replace("\"txns\": 250", "\"txns\": 50");
        let checks = check_wire_witness(&Json::parse(&doctored).unwrap());
        assert_eq!(
            failed(&checks),
            vec!["wire fig12 submitted the full workload"]
        );
    }

    #[test]
    fn doctored_wire_silent_wire_fails() {
        // Zero bytes on the wire means the processes never actually
        // talked over sockets.
        let doctored = GOOD_WIRE.replace("\"bytes_out\": 2989569", "\"bytes_out\": 0");
        let checks = check_wire_witness(&Json::parse(&doctored).unwrap());
        assert_eq!(failed(&checks), vec!["wire fig12 bytes_out > 0"]);
        let doctored = GOOD_WIRE.replace("\"frames_in\": 21160", "\"frames_in\": 0");
        let checks = check_wire_witness(&Json::parse(&doctored).unwrap());
        assert_eq!(failed(&checks), vec!["wire fig12 frames_in > 0"]);
    }

    #[test]
    fn doctored_wire_decode_errors_fail() {
        let doctored = GOOD_WIRE.replace("\"decode_errors\": 0", "\"decode_errors\": 3");
        let checks = check_wire_witness(&Json::parse(&doctored).unwrap());
        assert_eq!(failed(&checks), vec!["wire fig12 decode errors = 0"]);
    }

    #[test]
    fn doctored_wire_frame_bloat_fails() {
        let doctored =
            GOOD_WIRE.replace("\"bytes_per_frame\": 141.3", "\"bytes_per_frame\": 4096.0");
        let checks = check_wire_witness(&Json::parse(&doctored).unwrap());
        assert_eq!(failed(&checks), vec!["wire fig12 frames compact"]);
    }

    #[test]
    fn doctored_wire_percentiles_fail() {
        // p50 > p99: a doctored or mis-merged witness.
        let doctored = GOOD_WIRE.replace("\"p50_ms\": 84.3", "\"p50_ms\": 900.0");
        let checks = check_wire_witness(&Json::parse(&doctored).unwrap());
        assert_eq!(
            failed(&checks),
            vec!["wire fig12 percentiles present and ordered"]
        );
    }

    #[test]
    fn doctored_wire_codec_fails() {
        let slow = GOOD_WIRE.replace("\"encode_ns\": 164.2", "\"encode_ns\": 80000.0");
        let checks = check_wire_witness(&Json::parse(&slow).unwrap());
        assert_eq!(
            failed(&checks),
            vec!["wire codec encode_ns inside witness band"]
        );
        // A zero cost means the microbench measured nothing.
        let zero = GOOD_WIRE.replace("\"decode_ns\": 147.9", "\"decode_ns\": 0");
        let checks = check_wire_witness(&Json::parse(&zero).unwrap());
        assert_eq!(
            failed(&checks),
            vec!["wire codec decode_ns inside witness band"]
        );
    }

    #[test]
    fn wire_missing_sections_fail_closed() {
        let checks = check_wire_witness(&Json::parse("{}").unwrap());
        assert!(!all_ok(&checks), "absent fig12_process must not pass");
        let no_codec = GOOD_WIRE.replace("\"codec\"", "\"codec_gone\"");
        let checks = check_wire_witness(&Json::parse(&no_codec).unwrap());
        assert!(failed(&checks).contains(&"wire: codec cell"));
    }

    #[test]
    fn fresh_wire_checks_flag_regressions() {
        assert!(all_ok(&check_wire_fresh(
            47.0, 50.0, 88000.0, 795.0, 150.0, 150.0
        )));
        // Mass aborts on the smoke cell.
        assert!(!all_ok(&check_wire_fresh(
            30.0, 50.0, 88000.0, 795.0, 150.0, 150.0
        )));
        // A silent wire.
        assert!(!all_ok(&check_wire_fresh(
            47.0, 50.0, 0.0, 0.0, 150.0, 150.0
        )));
        // A codec meltdown.
        assert!(!all_ok(&check_wire_fresh(
            47.0, 50.0, 88000.0, 795.0, 90000.0, 150.0
        )));
    }

    #[test]
    fn fresh_checks_flag_catastrophic_regressions_only() {
        assert!(all_ok(&check_net_fresh(
            1_000_000.0,
            1_500_000.0,
            1_400_000.0
        )));
        assert!(!all_ok(&check_net_fresh(
            400_000.0,
            1_500_000.0,
            1_400_000.0
        )));
        assert!(all_ok(&check_throughput_fresh(230.0, 1300.0, 1500.0)));
        assert!(all_ok(&check_throughput_fresh(223.0, 1300.0, 1500.0)));
        assert!(!all_ok(&check_throughput_fresh(200.0, 1300.0, 1500.0)));
        assert!(!all_ok(&check_throughput_fresh(230.0, 1500.0, 1500.0)));
        assert!(all_ok(&check_ingest_fresh(60.0, 50.0)));
        assert!(!all_ok(&check_ingest_fresh(20.0, 50.0)));
    }
}
