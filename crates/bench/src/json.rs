//! A minimal JSON reader for the committed `BENCH_*.json` witnesses.
//!
//! The workspace's `serde` is an offline no-op shim (see the root
//! manifest), so the perf-regression gate parses its witness files with
//! this ~150-line recursive-descent reader instead. It covers exactly
//! what the bench writers emit — objects, arrays, strings (no escapes
//! beyond `\"`, `\\`, `\/`, `\n`, `\t`, `\r`), numbers, booleans, null —
//! and rejects anything else with a position-annotated error.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always read as `f64`; the witnesses' counters fit).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses `src` into a single JSON value (trailing garbage is an
    /// error).
    pub fn parse(src: &str) -> Result<Json, String> {
        let bytes = src.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array.
    pub fn arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The numeric value.
    pub fn num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value.
    pub fn str_val(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric field of an object (`get` + `num`).
    pub fn num_field(&self, key: &str) -> Option<f64> {
        self.get(key).and_then(Json::num)
    }

    /// First element of an array-of-objects whose `key` field equals
    /// `value` — how the gate selects a named series entry.
    pub fn find_by<'a>(&'a self, key: &str, value: &str) -> Option<&'a Json> {
        self.arr()?
            .iter()
            .find(|e| e.get(key).and_then(Json::str_val) == Some(value))
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_num(b, pos),
        Some(c) => Err(format!("unexpected byte {:?} at {}", *c as char, *pos)),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    other => return Err(format!("unsupported escape {other:?} at {}", *pos)),
                }
                *pos += 1;
            }
            _ => {
                // Multi-byte UTF-8 sequences pass through byte by byte —
                // the source is a &str, so the bytes recombine validly.
                let ch_len = utf8_len(c);
                let chunk = std::str::from_utf8(&b[*pos..*pos + ch_len])
                    .map_err(|_| format!("invalid utf8 at {}", *pos))?;
                out.push_str(chunk);
                *pos += ch_len;
            }
        }
    }
    Err("unterminated string".into())
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {}", *pos));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {}", *pos));
        }
        *pos += 1;
        let v = parse_value(b, pos)?;
        fields.push((key, v));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_witness_shapes() {
        let src = r#"{
            "experiment": "bench_net",
            "topologies": [
                {"name": "hub", "msgs_per_s": 1093189, "links_active": 0},
                {"name": "reactor", "msgs_per_s": 2948760.5, "ok": true}
            ],
            "speedup": 2.70,
            "nothing": null
        }"#;
        let v = Json::parse(src).unwrap();
        assert_eq!(v.num_field("speedup"), Some(2.70));
        assert_eq!(v.get("nothing"), Some(&Json::Null));
        let topos = v.get("topologies").unwrap();
        let reactor = topos.find_by("name", "reactor").unwrap();
        assert_eq!(reactor.num_field("msgs_per_s"), Some(2948760.5));
        assert_eq!(reactor.get("ok"), Some(&Json::Bool(true)));
        assert!(topos.find_by("name", "ghost").is_none());
    }

    #[test]
    fn parses_nested_series_arrays() {
        let src = r#"{"series_ms_commits": [[32.3, 0], [64.7, 20]]}"#;
        let v = Json::parse(src).unwrap();
        let series = v.get("series_ms_commits").unwrap().arr().unwrap();
        assert_eq!(series[1].arr().unwrap()[1].num(), Some(20.0));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "{",
            "[1, 2",
            "{\"a\" 1}",
            "{\"a\": 1,}",
            "tru",
            "\"open",
            "{} trailing",
            "",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn parses_negative_and_exponent_numbers() {
        let v = Json::parse("[-1.5, 2e3, 0.25]").unwrap();
        let a = v.arr().unwrap();
        assert_eq!(a[0].num(), Some(-1.5));
        assert_eq!(a[1].num(), Some(2000.0));
        assert_eq!(a[2].num(), Some(0.25));
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = Json::parse(r#""a\"b\\c\nd — µs""#).unwrap();
        assert_eq!(v.str_val(), Some("a\"b\\c\nd — µs"));
    }
}
