//! # dtx-bench — experiment harness
//!
//! Shared plumbing for the figure-regeneration binaries (one per figure of
//! the paper's §3) and the Criterion micro-benchmarks. Each binary prints
//! the same series the paper plots; EXPERIMENTS.md records the measured
//! numbers next to the paper's.
//!
//! Scale note: the paper ran 8 physical PCs against 40–200 MB databases.
//! This harness runs everything in one process against ~100× smaller
//! bases (see DESIGN.md's substitution table); the *comparisons* between
//! protocols and replication modes are the reproduction target, not the
//! absolute times.

pub mod gate;
pub mod json;
pub mod mem;
pub mod netbench;
pub mod openloop;
pub mod recovery;
pub mod tracebench;
pub mod wirebench;

pub use mem::CountingAlloc;

use dtx_core::{Cluster, ClusterConfig, PolicyKind, ProtocolKind, SiteId};
use dtx_xmark::fragment::{
    allocate, fragment_doc, load_allocation, Fragmented, ReplicationMode, LOGICAL_DOC,
};
use dtx_xmark::generator::{generate, XmarkConfig};
use dtx_xmark::stream::{manifests_of, stream_fragments};
use dtx_xmark::tester::{run_workload, TestReport};
use dtx_xmark::workload::{generate as gen_workload, Workload, WorkloadConfig};
use std::time::Duration;

/// Default scaled base size: 1:100 of the paper's 40 MB database.
pub const BASE_BYTES: usize = 400_000;

/// Default experiment seed.
pub const SEED: u64 = 2009;

/// Parses `--seed N` from the process arguments, falling back to
/// [`SEED`]. Every driver binary takes this flag, so any recorded run —
/// including a chaos run's exact fault plan — can be replayed by naming
/// its seed (the replay recipe is in EXPERIMENTS.md).
pub fn seed_from_args() -> u64 {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--seed" {
            let v = args.next().expect("--seed takes a value");
            return v.parse().expect("--seed takes a u64");
        }
    }
    SEED
}

/// One experiment's environment description.
#[derive(Debug, Clone, Copy)]
pub struct ExpEnv {
    /// Number of sites.
    pub sites: u16,
    /// Protocol under test.
    pub protocol: ProtocolKind,
    /// Replication mode.
    pub mode: ReplicationMode,
    /// Base size in bytes.
    pub base_bytes: usize,
    /// Seed.
    pub seed: u64,
    /// Whether to enable the LAN latency + storage cost profile.
    pub realistic: bool,
    /// Placement policy installed in the cluster's catalog.
    pub policy: PolicyKind,
    /// Whether the cluster records a causal event trace (ring capacity
    /// is sized for a full figure run; see [`TRACE_RING_CAPACITY`]).
    pub trace: bool,
}

/// Per-site trace ring capacity used by traced experiment runs — sized
/// so a full fig12-style workload never drops an event (a partial trace
/// cannot be certified by the invariant checker).
pub const TRACE_RING_CAPACITY: usize = 1 << 18;

impl ExpEnv {
    /// Standard environment: 4 sites, partial replication, realistic
    /// profile, default base size, default (primary) placement.
    pub fn standard(protocol: ProtocolKind) -> Self {
        ExpEnv {
            sites: 4,
            protocol,
            mode: ReplicationMode::Partial,
            base_bytes: BASE_BYTES,
            seed: SEED,
            realistic: true,
            policy: PolicyKind::default(),
            trace: false,
        }
    }

    /// Arms causal event tracing on the cluster under test.
    pub fn with_tracing(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Selects the placement policy.
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Overrides the seed (base generation, workload, jitter) — every
    /// driver binary threads its `--seed` flag through here.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Boots a cluster, generates + fragments + loads the base, returns the
/// cluster and the fragment manifest.
pub fn setup(env: ExpEnv) -> (Cluster, Fragmented) {
    let doc = generate(XmarkConfig::sized(env.base_bytes, env.seed));
    let frags = fragment_doc(&doc, env.sites as usize);
    let mut config = ClusterConfig::new(env.sites, env.protocol).with_policy(env.policy);
    config.seed = env.seed;
    if env.realistic {
        config = config.with_lan_profile();
    }
    if env.trace {
        config = config.with_tracing();
        config.trace_capacity = TRACE_RING_CAPACITY;
    }
    let cluster = Cluster::start(config);
    let alloc = allocate(&doc, &frags, env.sites, env.mode);
    load_allocation(&cluster, &alloc).expect("load allocation");
    (cluster, frags)
}

/// Boots a cluster over the **streaming ingestion path**: the base is
/// generated as events and split into per-site documents + DataGuides in
/// one pass — no base string, no re-parse, no guide rebuild. Partial
/// replication only (each site holds one fragment of [`LOGICAL_DOC`]).
/// Returns the cluster, the id manifests (what the workload generator
/// consumes) and the total fragment bytes.
pub fn setup_streamed(env: ExpEnv) -> (Cluster, Fragmented, usize) {
    let built = stream_fragments(
        XmarkConfig::sized(env.base_bytes, env.seed),
        env.sites as usize,
    )
    .expect("generator events are well-formed")
    .0;
    boot_streamed(env, built)
}

/// Boots a cluster from **already-built** fragments (so callers that
/// measured the [`stream_fragments`] pass themselves don't pay for a
/// second generation). One fragment per site, partial replication.
pub fn boot_streamed(
    env: ExpEnv,
    built: Vec<dtx_xmark::BuiltFragment>,
) -> (Cluster, Fragmented, usize) {
    assert_eq!(
        env.mode,
        ReplicationMode::Partial,
        "streamed setup loads one fragment per site"
    );
    let manifests = manifests_of(&built);
    let total_bytes: usize = built.iter().map(|f| f.bytes).sum();
    let mut config = ClusterConfig::new(env.sites, env.protocol).with_policy(env.policy);
    config.seed = env.seed;
    if env.realistic {
        config = config.with_lan_profile();
    }
    if env.trace {
        config = config.with_tracing();
        config.trace_capacity = TRACE_RING_CAPACITY;
    }
    let cluster = Cluster::start(config);
    let parts: Vec<_> = built
        .into_iter()
        .enumerate()
        .map(|(i, f)| (SiteId((i as u16) % env.sites), f.doc, f.guide))
        .collect();
    cluster
        .load_built_fragments(LOGICAL_DOC, parts)
        .expect("load streamed fragments");
    (cluster, manifests, total_bytes)
}

/// Runs one workload and returns its report.
pub fn run(cluster: &Cluster, frags: &Fragmented, wl: WorkloadConfig) -> TestReport {
    let workload: Workload = gen_workload(wl, frags);
    run_workload(cluster, &workload)
}

/// Milliseconds with two decimals, for table printing.
pub fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Prints a table header row.
pub fn header(cols: &[&str]) {
    println!("{}", cols.join("\t"));
}

/// Prints a table data row.
pub fn row(cells: &[String]) {
    println!("{}", cells.join("\t"));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setup_and_tiny_run_smoke() {
        let env = ExpEnv {
            sites: 2,
            protocol: ProtocolKind::Xdgl,
            mode: ReplicationMode::Partial,
            base_bytes: 30_000,
            seed: 1,
            realistic: false,
            policy: PolicyKind::Primary,
            trace: false,
        };
        let (cluster, frags) = setup(env);
        let report = run(&cluster, &frags, WorkloadConfig::read_only(2, 1));
        assert_eq!(report.outcomes.len(), 10);
        assert_eq!(report.committed(), 10);
        cluster.shutdown();
    }

    #[test]
    fn ms_conversion() {
        assert!((ms(Duration::from_millis(1500)) - 1500.0).abs() < 1e-9);
    }
}
