//! A counting global allocator for ingest-memory measurements.
//!
//! The streaming-ingestion acceptance criterion is about **peak resident
//! bytes during ingest** (the tree-parse path holds the serialized base,
//! the parsed tree and the DataGuide simultaneously; the streaming path
//! holds only what the sinks keep). The experiment binaries install
//! [`CountingAlloc`] as the `#[global_allocator]` and bracket each ingest
//! with [`CountingAlloc::reset_peak`] / [`CountingAlloc::peak`].
//!
//! Byte counts are exact for allocation sizes (not OS RSS): every
//! `alloc`/`realloc`/`dealloc` adjusts a current-bytes counter whose
//! high-water mark is kept. That makes the measurement deterministic and
//! platform-independent — the right property for a committed baseline
//! like `BENCH_ingest.json`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Counting wrapper over the system allocator.
pub struct CountingAlloc {
    current: AtomicUsize,
    peak: AtomicUsize,
}

impl CountingAlloc {
    /// A fresh counter (use as `#[global_allocator] static A: ... = CountingAlloc::new();`).
    pub const fn new() -> Self {
        CountingAlloc {
            current: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
        }
    }

    /// Currently allocated bytes.
    pub fn current(&self) -> usize {
        self.current.load(Ordering::Relaxed)
    }

    /// High-water mark since the last [`CountingAlloc::reset_peak`].
    pub fn peak(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }

    /// Resets the high-water mark to the current allocation level and
    /// returns that level (the baseline to subtract from the next peak).
    pub fn reset_peak(&self) -> usize {
        let now = self.current();
        self.peak.store(now, Ordering::Relaxed);
        now
    }
}

impl Default for CountingAlloc {
    fn default() -> Self {
        Self::new()
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            let now = self.current.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            self.peak.fetch_max(now, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        self.current.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            if new_size >= layout.size() {
                let grow = new_size - layout.size();
                let now = self.current.fetch_add(grow, Ordering::Relaxed) + grow;
                self.peak.fetch_max(now, Ordering::Relaxed);
            } else {
                self.current
                    .fetch_sub(layout.size() - new_size, Ordering::Relaxed);
            }
        }
        p
    }
}
