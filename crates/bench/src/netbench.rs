//! Shared all-to-all network storm driver, used by `bench_net` (the
//! recorded baseline) and `check_bench` (the CI perf-regression gate's
//! fresh smoke run) so both measure exactly the same workload.

use dtx_net::{LatencyModel, NetConfig, Network, SiteId, Topology, Wire};
use std::time::{Duration, Instant};

/// One benchmark frame: (sender site, per-link sequence number).
#[derive(Debug)]
pub struct Frame {
    /// Sending site index.
    pub from: u16,
    /// Per-link sequence number (receivers assert FIFO on it).
    pub seq: u32,
}

impl Wire for Frame {
    fn wire_size(&self) -> usize {
        128
    }
}

/// Result of one storm run.
pub struct StormResult {
    /// Topology label (`reactor` / `thread_per_link` / `hub`).
    pub name: &'static str,
    /// Site count.
    pub sites: u16,
    /// Frames per ordered link.
    pub msgs_per_link: u32,
    /// Total frames delivered.
    pub total_msgs: u64,
    /// Wall time until every frame was received.
    pub wall: Duration,
    /// Implied message rate.
    pub msgs_per_s: f64,
    /// Ordered pairs that carried traffic.
    pub links_active: u64,
    /// Delivery threads spawned.
    pub delivery_threads: u64,
}

/// The canonical label for each delivery topology.
pub fn topology_name(topology: Topology) -> &'static str {
    match topology {
        Topology::Reactor => "reactor",
        Topology::ThreadPerLink => "thread_per_link",
        Topology::SharedHub => "hub",
    }
}

/// Drives `sites` senders all-to-all: every ordered pair carries
/// `msgs_per_link` frames over a LAN latency model. Returns once every
/// receiver drained its full expected count, asserting **per-link FIFO
/// live** along the way, plus the topology's structural invariants
/// (thread bound for the reactor, one worker per link for
/// thread-per-link, a single thread for the hub).
pub fn storm(topology: Topology, sites: u16, msgs_per_link: u32, seed: u64) -> StormResult {
    let name = topology_name(topology);
    let cfg = NetConfig::default();
    let net: Network<Frame> = Network::with_config(LatencyModel::lan(seed), topology, cfg);
    let endpoints: Vec<_> = (0..sites).map(|s| net.register(SiteId(s))).collect();
    let expected_per_site = (sites as u64 - 1) * msgs_per_link as u64;
    let total_msgs = expected_per_site * sites as u64;
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        // Receivers: drain until the full expected count, checking that
        // every sender's sequence arrives in order (per-link FIFO). Each
        // thread owns its endpoint (the receiver half is Send, not Sync).
        for ep in endpoints {
            scope.spawn(move || {
                let mut next_seq = vec![0u32; sites as usize];
                let mut received = 0u64;
                while received < expected_per_site {
                    let env = ep
                        .recv_timeout(Duration::from_secs(60))
                        .expect("network alive")
                        .expect("storm finishes within the timeout");
                    let f = env.payload;
                    assert_eq!(
                        f.seq, next_seq[f.from as usize],
                        "per-link FIFO violated on {} -> {} ({name})",
                        f.from, ep.site
                    );
                    next_seq[f.from as usize] += 1;
                    received += 1;
                }
            });
        }
        // Senders: one thread per site, round-robin over destinations so
        // every link's queue grows evenly.
        for from in 0..sites {
            let net = net.clone();
            scope.spawn(move || {
                for seq in 0..msgs_per_link {
                    for to in 0..sites {
                        if to != from {
                            net.send(SiteId(from), SiteId(to), Frame { from, seq })
                                .expect("send during storm");
                        }
                    }
                }
            });
        }
    });
    let wall = t0.elapsed();
    let links_active = net.stats().links_active();
    let delivery_threads = net.stats().delivery_threads();
    net.shutdown();
    let expected_links = (sites as u64) * (sites as u64 - 1);
    assert_eq!(links_active, expected_links, "every ordered pair counted");
    match topology {
        Topology::Reactor => assert!(
            delivery_threads <= cfg.workers as u64,
            "reactor must bound delivery threads: {delivery_threads} > {}",
            cfg.workers
        ),
        Topology::ThreadPerLink => assert_eq!(
            delivery_threads, expected_links,
            "thread-per-link spawns one worker per link"
        ),
        Topology::SharedHub => {
            assert_eq!(delivery_threads, 1, "the hub runs one global thread")
        }
    }
    StormResult {
        name,
        sites,
        msgs_per_link,
        total_msgs,
        wall,
        msgs_per_s: total_msgs as f64 / wall.as_secs_f64().max(1e-9),
        links_active,
        delivery_threads,
    }
}

/// Messages per ordered link for an N-site sweep point, scaled so the
/// total message count stays in the low hundreds of thousands as the
/// link count grows quadratically.
pub fn sweep_msgs_per_link(sites: u16, smoke: bool) -> u32 {
    let links = (sites as u64) * (sites as u64 - 1);
    let budget: u64 = if smoke { 32_000 } else { 260_000 };
    (budget / links).clamp(4, 1500) as u32
}
