//! Open-loop (arrival-rate-driven) load harness.
//!
//! Every figure run so far is **closed-loop**: each client thread waits
//! for its previous transaction before submitting the next, so under
//! contention the clients politely slow down and the measured response
//! times never see the queueing delay a real arrival stream would
//! build — the classic *coordinated omission* flaw. This module drives
//! the cluster the other way around:
//!
//! 1. [`schedule`] generates a seed-deterministic **arrival schedule**
//!    (Poisson or bursty on/off interarrivals at a target txn/s) before
//!    anything runs;
//! 2. [`drive`] drains the schedule with a **bounded pool** of driver
//!    workers (the PR 5 reactor lesson: few workers draining many
//!    queues, never a thread per client) that dispatch each arrival at
//!    its scheduled instant — or immediately when late, *without*
//!    skipping — and attach transactions **round-robin to every site as
//!    coordinator** via the multi-coordinator submission path;
//! 3. response time is measured **from the scheduled arrival instant**,
//!    not from dispatch: `lag(dispatch − scheduled) + response`. A
//!    stalled server therefore inflates the recorded p99/p999 of every
//!    arrival that queued behind the stall, exactly as real clients
//!    would experience it. The dispatch-clocked measurement is kept as
//!    a control — the gap between the two *is* the coordinated
//!    omission a closed-loop harness would have hidden.
//!
//! Per-worker log-bucketed [`Histogram`]s are merged into one summary
//! after the run ([`Histogram::merge_from`] is exact: same bucket
//! layout), so the record path never shares a cache line across
//! workers. `bench_openloop` sweeps the offered rate over this module
//! to find each protocol's saturation knee and records
//! `BENCH_openloop.json`; `check_bench` re-runs [`smoke`] fresh.

use crate::{ms, SEED, TRACE_RING_CAPACITY};
use crossbeam::channel::Receiver;
use dtx_core::{
    Cluster, ClusterConfig, Histogram, OpSpec, ProtocolKind, SiteId, TxnOutcome, TxnSpec, TxnStatus,
};
use dtx_trace::check::check;
use dtx_xpath::{Query, UpdateOp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Interarrival process of an arrival schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arrivals {
    /// Poisson process: i.i.d. exponential gaps at the target rate —
    /// the memoryless baseline of open-system benchmarks.
    Poisson,
    /// On/off burst process: Poisson arrivals at `rate / duty` during
    /// the first `duty_pct` percent of every `period`, silence for the
    /// rest. The long-run rate still equals the target; the bursts are
    /// what stress queueing at the coordinators.
    Bursty {
        /// Length of one on+off cycle.
        period: Duration,
        /// Percent of the period that carries traffic (0 < duty ≤ 100).
        duty_pct: u32,
    },
}

/// Builds the arrival schedule: `txns` offsets in nanoseconds from the
/// run start, non-decreasing, seed-deterministic (same `seed` ⇒
/// byte-identical schedule — the replay contract every bench binary
/// honors via `--seed`).
pub fn schedule(rate_per_s: f64, txns: usize, arrivals: Arrivals, seed: u64) -> Vec<u64> {
    assert!(rate_per_s > 0.0, "target rate must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    // Exponential gap via inverse CDF; 53 high bits → uniform in [0, 1).
    let mut exp_gap = |rate: f64| {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        -(1.0 - unit).ln() / rate
    };
    let mut out = Vec::with_capacity(txns);
    match arrivals {
        Arrivals::Poisson => {
            let mut t = 0.0f64;
            for _ in 0..txns {
                t += exp_gap(rate_per_s);
                out.push((t * 1e9) as u64);
            }
        }
        Arrivals::Bursty { period, duty_pct } => {
            assert!((1..=100).contains(&duty_pct), "duty_pct must be in 1..=100");
            let duty = duty_pct as f64 / 100.0;
            let on_s = period.as_secs_f64() * duty;
            let period_s = period.as_secs_f64();
            // Arrivals are Poisson at rate/duty in *on-time*; mapping
            // cumulative on-time onto the on-windows of consecutive
            // cycles yields the wall-clock schedule (and keeps the
            // long-run rate at the target).
            let mut on_t = 0.0f64;
            for _ in 0..txns {
                on_t += exp_gap(rate_per_s / duty);
                let cycle = (on_t / on_s).floor();
                let within = on_t - cycle * on_s;
                out.push(((cycle * period_s + within) * 1e9) as u64);
            }
        }
    }
    out
}

/// What the driver submits to — the real [`Cluster`] in benchmarks, a
/// mock executor in the coordinated-omission tests.
pub trait LoadTarget: Sync {
    /// Number of coordinators the round-robin attach cycles over.
    fn coordinators(&self) -> usize;
    /// Submits arrival `seq` at coordinator `coord`, returning the
    /// outcome channel immediately (the submission itself must not
    /// block on the transaction's execution).
    fn submit(&self, coord: usize, seq: usize) -> Receiver<TxnOutcome>;
}

/// One driver worker's tallies; merged into [`DriverReport`] at join.
#[derive(Debug)]
struct WorkerStats {
    sched: Histogram,
    dispatch: Histogram,
    committed: u64,
    aborted: u64,
    deadlocks: u64,
    failed: u64,
    max_lag: Duration,
}

impl WorkerStats {
    fn new() -> Self {
        WorkerStats {
            sched: Histogram::new(),
            dispatch: Histogram::new(),
            committed: 0,
            aborted: 0,
            deadlocks: 0,
            failed: 0,
            max_lag: Duration::ZERO,
        }
    }

    fn settle(&mut self, lag: Duration, out: &TxnOutcome) {
        // Scheduled-arrival clock: time queued at the driver (lag) plus
        // time inside the system. Coordinated omission cannot flatter
        // this number — a late dispatch *adds* to it.
        self.sched.record(lag + out.response_time);
        // Dispatch clock: what a closed-loop harness would have reported.
        self.dispatch.record(out.response_time);
        self.max_lag = self.max_lag.max(lag);
        match &out.status {
            TxnStatus::Committed => self.committed += 1,
            TxnStatus::Aborted(_) if out.deadlocked() => {
                self.aborted += 1;
                self.deadlocks += 1;
            }
            TxnStatus::Aborted(_) => self.aborted += 1,
            TxnStatus::Failed(_) => self.failed += 1,
        }
    }
}

/// Merged result of one open-loop drive.
#[derive(Debug)]
pub struct DriverReport {
    /// Response times from the **scheduled arrival instant** (merged
    /// per-worker histograms) — the honest percentiles.
    pub sched: Histogram,
    /// Response times from the dispatch instant — the coordinated-
    /// omission-blind control measurement.
    pub dispatch: Histogram,
    /// Arrivals dispatched (every scheduled arrival is dispatched,
    /// late or not — the driver never skips).
    pub arrivals: usize,
    /// Committed / aborted / deadlock-victim / failed outcomes.
    pub committed: u64,
    /// Aborted outcomes (deadlock victims included).
    pub aborted: u64,
    /// Aborts that were deadlock victimizations.
    pub deadlocks: u64,
    /// Failed outcomes.
    pub failed: u64,
    /// Worst dispatch lag behind the schedule any worker observed.
    pub max_lag: Duration,
    /// First scheduled arrival → last settled outcome.
    pub wall: Duration,
}

/// Drains `sched` against `target` with `workers` driver threads.
///
/// Worker `w` owns arrivals `w, w+workers, ...` (striding keeps every
/// worker's sub-schedule ordered, so one sleep per arrival suffices).
/// Each arrival is dispatched at its scheduled instant — or immediately
/// once the worker is behind — and its outcome channel is parked in a
/// FIFO the worker reaps opportunistically between arrivals and drains
/// after its last dispatch. Because the settled latency is
/// `lag + outcome.response_time`, reaping late never distorts the
/// recorded response times.
pub fn drive(target: &(impl LoadTarget + ?Sized), sched: &[u64], workers: usize) -> DriverReport {
    assert!(workers > 0, "at least one driver worker");
    let ncoord = target.coordinators().max(1);
    let start = Instant::now();
    let t0 = Instant::now();
    let stats: Vec<WorkerStats> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                s.spawn(move || {
                    let mut st = WorkerStats::new();
                    let mut pending: VecDeque<(Duration, Receiver<TxnOutcome>)> = VecDeque::new();
                    for seq in (w..sched.len()).step_by(workers) {
                        let due = start + Duration::from_nanos(sched[seq]);
                        let now = Instant::now();
                        if due > now {
                            std::thread::sleep(due - now);
                        }
                        let lag = Instant::now().saturating_duration_since(due);
                        st.max_lag = st.max_lag.max(lag);
                        pending.push_back((lag, target.submit(seq % ncoord, seq)));
                        // Opportunistic reap: keep the parked-channel
                        // FIFO near the true in-flight count.
                        while let Some((lag, rx)) = pending.front() {
                            match rx.try_recv() {
                                Ok(out) => {
                                    st.settle(*lag, &out);
                                    pending.pop_front();
                                }
                                Err(_) => break,
                            }
                        }
                    }
                    for (lag, rx) in pending {
                        let out = rx.recv().expect("scheduler alive");
                        st.settle(lag, &out);
                    }
                    st
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("driver worker panicked"))
            .collect()
    });
    let wall = t0.elapsed();
    let mut report = DriverReport {
        sched: Histogram::new(),
        dispatch: Histogram::new(),
        arrivals: sched.len(),
        committed: 0,
        aborted: 0,
        deadlocks: 0,
        failed: 0,
        max_lag: Duration::ZERO,
        wall,
    };
    for st in stats {
        report.sched.merge_from(&st.sched);
        report.dispatch.merge_from(&st.dispatch);
        report.committed += st.committed;
        report.aborted += st.aborted;
        report.deadlocks += st.deadlocks;
        report.failed += st.failed;
        report.max_lag = report.max_lag.max(st.max_lag);
    }
    report
}

/// Items per per-site document (`/items/item[id=K]` targets).
const ITEMS: u32 = 16;
/// Specs in each coordinator's cycled pool.
const POOL: usize = 100;
/// Percent of a pool that reads a *neighbor* site's document (remote,
/// snapshot-routed `ReadOne`) instead of the coordinator-local one.
const REMOTE_PCT: u32 = 10;

/// The open-loop experiment environment.
#[derive(Debug, Clone, Copy)]
pub struct OpenLoopEnv {
    /// Number of sites (every one serves as a coordinator).
    pub sites: u16,
    /// Concurrency-control protocol.
    pub protocol: ProtocolKind,
    /// Schedule + workload seed.
    pub seed: u64,
    /// Percent of transactions that are single-op local updates.
    pub update_pct: u32,
    /// Whether the cluster records a causal event trace.
    pub trace: bool,
    /// Driver worker pool size.
    pub workers: usize,
}

impl OpenLoopEnv {
    /// Standard open-loop environment: 4 sites, 4 % updates, two driver
    /// workers, zero-latency network (the harness measures the engine,
    /// not the simulated LAN).
    pub fn standard(protocol: ProtocolKind) -> Self {
        OpenLoopEnv {
            sites: 4,
            protocol,
            seed: SEED,
            update_pct: 4,
            trace: false,
            workers: 2,
        }
    }
}

/// [`LoadTarget`] over a live cluster: arrival `seq` goes to coordinator
/// `seq % sites` through [`Cluster::submit_round_robin`]'s underlying
/// path, executing a spec from that coordinator's pre-parsed pool (no
/// XPath parsing on the dispatch path).
pub struct ClusterTarget<'a> {
    cluster: &'a Cluster,
    sites: Vec<SiteId>,
    pools: Vec<Vec<TxnSpec>>,
}

impl<'a> ClusterTarget<'a> {
    /// Loads one small per-site document (`ol<i>`, placed only at site
    /// `i`) and builds each coordinator's spec pool: `update_pct`
    /// single-op local updates, 10 % neighbor reads, local
    /// reads for the rest — evenly interleaved so the mix holds over
    /// any window of the run.
    pub fn new(cluster: &'a Cluster, update_pct: u32, seed: u64) -> ClusterTarget<'a> {
        let sites = cluster.sites();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6f70656e6c6f6f70); // "openloop"
        for (i, &site) in sites.iter().enumerate() {
            let mut xml = String::from("<items>");
            for k in 1..=ITEMS {
                xml.push_str(&format!("<item><id>{k}</id><val>v{k}</val></item>"));
            }
            xml.push_str("</items>");
            cluster
                .load_document(&format!("ol{i}"), &xml, &[site])
                .expect("open-loop base document loads");
        }
        let n = sites.len();
        let pools = (0..n)
            .map(|c| {
                (0..POOL)
                    .map(|j| {
                        let k = rng.gen_range(1..ITEMS + 1);
                        let j = j as u32;
                        // Bresenham interleave: updates (then remote
                        // reads) spread evenly through the pool cycle.
                        let updates = |j: u32| (j * update_pct) / 100;
                        let remotes = |j: u32| (j * REMOTE_PCT) / 100;
                        if updates(j + 1) > updates(j) {
                            TxnSpec::new(vec![OpSpec::update(
                                format!("ol{c}"),
                                UpdateOp::Change {
                                    target: Query::parse(&format!("/items/item[id={k}]/val"))
                                        .expect("parses"),
                                    new_value: format!("w{k}"),
                                },
                            )])
                        } else {
                            let doc = if remotes(j + 1) > remotes(j) {
                                format!("ol{}", (c + 1) % n)
                            } else {
                                format!("ol{c}")
                            };
                            TxnSpec::new(vec![OpSpec::query(
                                doc,
                                Query::parse(&format!("/items/item[id={k}]")).expect("parses"),
                            )])
                        }
                    })
                    .collect()
            })
            .collect();
        ClusterTarget {
            cluster,
            sites,
            pools,
        }
    }
}

impl LoadTarget for ClusterTarget<'_> {
    fn coordinators(&self) -> usize {
        self.sites.len()
    }

    fn submit(&self, coord: usize, seq: usize) -> Receiver<TxnOutcome> {
        let pool = &self.pools[coord];
        let spec = pool[(seq / self.sites.len()) % pool.len()].clone();
        self.cluster.submit_async(self.sites[coord], spec)
    }
}

/// Per-coordinator accounting of one cell (from
/// [`dtx_core::Metrics::coord_stats`]).
#[derive(Debug, Clone)]
pub struct CoordCell {
    /// The coordinator site.
    pub site: u16,
    /// Transactions this site coordinated.
    pub submitted: u64,
    /// Of those, committed.
    pub committed: u64,
    /// High-water mark of simultaneously open transactions here.
    pub inflight_peak: u64,
}

/// One measured open-loop cell.
#[derive(Debug, Clone)]
pub struct OpenLoopCell {
    /// Protocol display name.
    pub protocol: &'static str,
    /// Arrival process label (`"poisson"` / `"bursty"`).
    pub arrivals: &'static str,
    /// Offered rate (txn/s) the schedule was generated at.
    pub offered_rate: f64,
    /// Scheduled (= dispatched = terminated) arrivals.
    pub txns: usize,
    /// Terminated / committed / aborted / deadlock / failed outcomes.
    pub terminated: u64,
    /// Committed outcomes.
    pub committed: u64,
    /// Aborted outcomes.
    pub aborted: u64,
    /// Deadlock victimizations.
    pub deadlocks: u64,
    /// Failed outcomes.
    pub failed: u64,
    /// Terminations per wall second actually sustained.
    pub achieved_rate: f64,
    /// p50 from the scheduled arrival instant (ms).
    pub p50_ms: f64,
    /// p99 from the scheduled arrival instant (ms).
    pub p99_ms: f64,
    /// p999 from the scheduled arrival instant (ms).
    pub p999_ms: f64,
    /// p99 from the dispatch instant (ms) — the coordinated-omission-
    /// blind control; the gap to `p99_ms` is the hidden queueing.
    pub dispatch_p99_ms: f64,
    /// Worst dispatch lag behind the schedule (ms).
    pub max_lag_ms: f64,
    /// Wall time of the drive (s).
    pub wall_s: f64,
    /// Per-coordinator accounting, sorted by site.
    pub coordinators: Vec<CoordCell>,
    /// Events captured by the tracer (0 when untraced).
    pub trace_events: usize,
    /// Protocol-invariant violations the checker found (traced cells).
    pub trace_violations: usize,
    /// Whether the trace was complete (no ring drops) and certifiable.
    pub trace_complete: bool,
}

/// Runs one open-loop cell: boots a fresh cluster for `env`, generates
/// the schedule, drives it, and returns the merged measurements.
///
/// Hard invariants are asserted here, not just reported: every
/// scheduled arrival terminates, and every site coordinated at least
/// one transaction (the round-robin attach reaches all of them).
pub fn run_cell(env: &OpenLoopEnv, rate: f64, txns: usize, arrivals: Arrivals) -> OpenLoopCell {
    let sched = schedule(rate, txns, arrivals, env.seed);
    let mut config = ClusterConfig::new(env.sites, env.protocol);
    config.seed = env.seed;
    if env.trace {
        config = config.with_tracing();
        config.trace_capacity = TRACE_RING_CAPACITY;
    }
    let cluster = Cluster::start(config);
    // Counters+histograms only: a 10⁶-arrival run must not grow a
    // record vector (or contend on its mutex) in the commit path.
    cluster.metrics().set_retain_records(false);
    let target = ClusterTarget::new(&cluster, env.update_pct, env.seed);
    let report = drive(&target, &sched, env.workers);
    let coord_stats = cluster.metrics().coord_stats();
    let tracer = cluster.tracer();
    cluster.shutdown();

    assert_eq!(
        report.committed + report.aborted + report.failed,
        txns as u64,
        "every scheduled arrival must terminate"
    );
    assert_eq!(
        coord_stats.len(),
        env.sites as usize,
        "round-robin attach must reach every site as coordinator"
    );

    let (mut trace_events, mut trace_violations, mut trace_complete) = (0, 0, true);
    if let Some(tracer) = tracer {
        let trace = tracer.collect();
        let rpt = check(&trace);
        trace_events = trace.events.len();
        trace_violations = rpt.violations.len();
        trace_complete = rpt.complete && trace.dropped == 0;
    }

    OpenLoopCell {
        protocol: env.protocol.name(),
        arrivals: match arrivals {
            Arrivals::Poisson => "poisson",
            Arrivals::Bursty { .. } => "bursty",
        },
        offered_rate: rate,
        txns,
        terminated: report.committed + report.aborted + report.failed,
        committed: report.committed,
        aborted: report.aborted,
        deadlocks: report.deadlocks,
        failed: report.failed,
        achieved_rate: txns as f64 / report.wall.as_secs_f64().max(1e-9),
        p50_ms: ms(report.sched.percentile(0.50)),
        p99_ms: ms(report.sched.percentile(0.99)),
        p999_ms: ms(report.sched.percentile(0.999)),
        dispatch_p99_ms: ms(report.dispatch.percentile(0.99)),
        max_lag_ms: ms(report.max_lag),
        wall_s: report.wall.as_secs_f64(),
        coordinators: coord_stats
            .iter()
            .map(|c| CoordCell {
                site: c.site.0,
                submitted: c.submitted,
                committed: c.committed,
                inflight_peak: c.inflight_peak,
            })
            .collect(),
        trace_events,
        trace_violations,
        trace_complete,
    }
}

/// The CI smoke cell `check_bench` re-runs fresh: the standard 4-site
/// XDGL environment at a deliberately modest rate any CI host sustains.
pub fn smoke(seed: u64) -> OpenLoopCell {
    let mut env = OpenLoopEnv::standard(ProtocolKind::Xdgl);
    env.seed = seed;
    run_cell(&env, 2_000.0, 4_000, Arrivals::Poisson)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::bounded;
    use dtx_locks::TxnId;

    // ---- arrival-schedule properties --------------------------------

    #[test]
    fn same_seed_gives_byte_identical_schedule() {
        for arrivals in [
            Arrivals::Poisson,
            Arrivals::Bursty {
                period: Duration::from_millis(100),
                duty_pct: 20,
            },
        ] {
            let a = schedule(5_000.0, 10_000, arrivals, 7);
            let b = schedule(5_000.0, 10_000, arrivals, 7);
            assert_eq!(a, b, "same seed must replay the same schedule");
            let c = schedule(5_000.0, 10_000, arrivals, 8);
            assert_ne!(a, c, "a different seed must produce a different schedule");
        }
    }

    #[test]
    fn poisson_mean_interarrival_tracks_target_rate() {
        let rate = 1_000.0;
        let n = 50_000;
        let sched = schedule(rate, n, Arrivals::Poisson, 11);
        let mean_gap_ns = sched.last().copied().unwrap() as f64 / n as f64;
        let want = 1e9 / rate;
        assert!(
            (mean_gap_ns - want).abs() / want < 0.05,
            "mean interarrival {mean_gap_ns:.0} ns vs 1/rate {want:.0} ns"
        );
    }

    #[test]
    fn bursty_honors_duty_cycle_and_long_run_rate() {
        let rate = 2_000.0;
        let period = Duration::from_millis(50);
        let duty_pct = 20;
        let n = 20_000;
        let sched = schedule(rate, n, Arrivals::Bursty { period, duty_pct }, 3);
        let period_ns = period.as_nanos() as u64;
        let on_ns = period_ns * duty_pct as u64 / 100;
        for &t in &sched {
            assert!(
                t % period_ns <= on_ns,
                "arrival at {t} ns falls outside the on-window"
            );
        }
        // The long-run rate still hits the target (bursts compress the
        // arrivals, they don't add or drop any).
        let mean_gap_ns = sched.last().copied().unwrap() as f64 / n as f64;
        let want = 1e9 / rate;
        assert!(
            (mean_gap_ns - want).abs() / want < 0.10,
            "bursty long-run gap {mean_gap_ns:.0} ns vs {want:.0} ns"
        );
    }

    #[test]
    fn schedules_never_reorder_timestamps() {
        for arrivals in [
            Arrivals::Poisson,
            Arrivals::Bursty {
                period: Duration::from_millis(10),
                duty_pct: 50,
            },
        ] {
            let sched = schedule(100_000.0, 30_000, arrivals, 5);
            assert_eq!(sched.len(), 30_000);
            assert!(
                sched.windows(2).all(|w| w[0] <= w[1]),
                "schedule must be non-decreasing"
            );
        }
    }

    // ---- coordinated-omission guard ---------------------------------

    /// Mock executor whose submission path stalls once for 100 ms: the
    /// arrivals scheduled during the stall are dispatched late, exactly
    /// the window coordinated omission erases.
    struct StallTarget {
        stall_at: usize,
        stall: Duration,
        service: Duration,
    }

    impl LoadTarget for StallTarget {
        fn coordinators(&self) -> usize {
            1
        }

        fn submit(&self, _coord: usize, seq: usize) -> Receiver<TxnOutcome> {
            if seq == self.stall_at {
                std::thread::sleep(self.stall);
            }
            let (tx, rx) = bounded(1);
            let _ = tx.send(TxnOutcome {
                txn: TxnId(seq as u64),
                status: TxnStatus::Committed,
                response_time: self.service,
                results: Vec::new(),
            });
            rx
        }
    }

    #[test]
    fn stall_shows_in_scheduled_clock_but_not_dispatch_clock() {
        // 400 arrivals, 1 ms apart; the executor stalls 100 ms at
        // arrival 50, so ~100 subsequent arrivals queue at the driver.
        let sched: Vec<u64> = (0..400).map(|i| i * 1_000_000).collect();
        let target = StallTarget {
            stall_at: 50,
            stall: Duration::from_millis(100),
            service: Duration::from_micros(50),
        };
        let report = drive(&target, &sched, 1);
        assert_eq!(report.arrivals, 400);
        assert_eq!(report.committed, 400, "the driver never skips arrivals");
        let sched_p99 = report.sched.percentile(0.99);
        let dispatch_p99 = report.dispatch.percentile(0.99);
        assert!(
            sched_p99 >= Duration::from_millis(50),
            "scheduled-clock p99 must surface the stall, got {sched_p99:?}"
        );
        assert!(
            dispatch_p99 < Duration::from_millis(10),
            "dispatch-clock control hides the stall, got {dispatch_p99:?}"
        );
        assert!(
            report.max_lag >= Duration::from_millis(50),
            "max lag must record the backlog, got {:?}",
            report.max_lag
        );
    }

    // ---- multi-coordinator submission -------------------------------

    #[test]
    fn round_robin_reaches_every_site_within_fairness_band() {
        let env = OpenLoopEnv::standard(ProtocolKind::Xdgl);
        let cell = run_cell(&env, 3_000.0, 1_200, Arrivals::Poisson);
        assert_eq!(cell.terminated, 1_200);
        assert_eq!(cell.coordinators.len(), 4, "all four sites coordinated");
        let commits: Vec<u64> = cell.coordinators.iter().map(|c| c.committed).collect();
        let (min, max) = (
            *commits.iter().min().unwrap(),
            *commits.iter().max().unwrap(),
        );
        assert!(
            min > 0,
            "every coordinator committed something: {commits:?}"
        );
        assert!(
            max <= min * 2,
            "per-coordinator commit spread outside the fairness band: {commits:?}"
        );
        // Round-robin attach splits submissions evenly by construction.
        for c in &cell.coordinators {
            assert_eq!(c.submitted, 300, "striped submissions per site");
        }
        assert!(cell.p50_ms > 0.0 && cell.p50_ms <= cell.p99_ms && cell.p99_ms <= cell.p999_ms);
    }

    #[test]
    fn cluster_submit_round_robin_cycles_all_sites() {
        let mut config = ClusterConfig::new(3, ProtocolKind::Xdgl);
        config.seed = 1;
        let cluster = Cluster::start(config);
        cluster
            .load_document("d", "<r><x>1</x></r>", &cluster.sites())
            .unwrap();
        let spec = TxnSpec::new(vec![OpSpec::query("d", Query::parse("/r/x").unwrap())]);
        let mut seen = Vec::new();
        let pending: Vec<_> = (0..6)
            .map(|_| {
                let (site, rx) = cluster.submit_round_robin(spec.clone());
                seen.push(site);
                rx
            })
            .collect();
        for rx in pending {
            assert!(rx.recv().unwrap().committed());
        }
        let sites = cluster.sites();
        assert_eq!(&seen[..3], &sites[..], "first lap covers every site");
        assert_eq!(&seen[3..], &sites[..], "second lap repeats the cycle");
        for &site in &sites {
            assert_eq!(cluster.metrics().coord_submitted(site), 2);
            assert_eq!(cluster.metrics().coord_committed(site), 2);
        }
        cluster.shutdown();
    }

    #[test]
    fn traced_two_site_open_loop_run_still_certifies() {
        let mut env = OpenLoopEnv::standard(ProtocolKind::Xdgl);
        env.sites = 2;
        env.trace = true;
        let cell = run_cell(&env, 2_000.0, 600, Arrivals::Poisson);
        assert_eq!(cell.coordinators.len(), 2);
        assert!(cell.trace_events > 0, "armed run must capture events");
        assert!(cell.trace_complete, "trace must be complete (no drops)");
        assert_eq!(
            cell.trace_violations, 0,
            "open-loop traffic must still satisfy every protocol law"
        );
    }
}
