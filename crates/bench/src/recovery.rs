//! Shared harness for the durability experiments: WAL replay timing,
//! the kill-the-coordinator-mid-2PC matrix, and seeded message-loss
//! chaos. `bench_recovery` sweeps these and records
//! `BENCH_recovery.json`; `check_bench` re-runs smoke cells against the
//! same helpers so the fresh gate measures exactly what the witness
//! recorded.

use dtx_core::{
    Cluster, ClusterConfig, CrashPoint, OpResult, OpSpec, ProtocolKind, SiteId, TxnSpec,
};
use dtx_xml::{Fragment, InsertPos};
use dtx_xpath::{Query, UpdateOp};
use std::time::Duration;

const DOC: &str = "<products>\
    <product><id>4</id><name>Monitor</name><price>120.00</price></product>\
    <product><id>14</id><name>Printer</name><price>55.50</price></product>\
    </products>";

/// The four coordinator crash points with their phase label and the
/// outcome presumed-abort 2PC mandates for each.
pub const PHASES: [(CrashPoint, &str, &str); 4] = [
    (CrashPoint::InRemoteOps, "in_remote_ops", "abort"),
    (CrashPoint::AfterPrepare, "after_prepare", "abort"),
    (CrashPoint::AfterDecide, "after_decide", "commit"),
    (
        CrashPoint::AfterDecideSendOne,
        "mid_commit_delivery",
        "commit",
    ),
];

/// One WAL-replay measurement: a participant restarted against a log of
/// `txns` committed transactions.
#[derive(Debug, Clone)]
pub struct ReplayPoint {
    /// Committed transactions on the log.
    pub txns: usize,
    /// Log records replayed.
    pub records: usize,
    /// Log bytes replayed.
    pub bytes: u64,
    /// Wall-clock replay time in milliseconds.
    pub elapsed_ms: f64,
    /// Redo records re-applied.
    pub redo_applied: usize,
    /// Transactions replayed to commit.
    pub committed: usize,
    /// Whether the restarted replica's dump is byte-identical to the
    /// never-crashed replica's.
    pub identical: bool,
}

/// One crash-matrix cell: where the coordinator died, what the protocol
/// mandates, and what the cluster actually converged to.
#[derive(Debug, Clone)]
pub struct MatrixOutcome {
    /// Phase label (see [`PHASES`]).
    pub phase: &'static str,
    /// Mandated outcome: "commit" iff the decision was forced.
    pub expected: &'static str,
    /// The outcome every surviving site actually converged to.
    pub outcome: &'static str,
    /// Whether a conflicting follow-up writer committed (all in-doubt
    /// work resolved everywhere).
    pub converged: bool,
    /// Whether a forced commit decision survived the crash (always true
    /// for abort phases — nothing was promised).
    pub preserved: bool,
    /// Replica dumps byte-identical after convergence.
    pub identical: bool,
}

/// One seeded-chaos cell: a write workload under deterministic message
/// loss, then healed and converged.
#[derive(Debug, Clone)]
pub struct ChaosOutcome {
    /// Transactions submitted.
    pub txns: usize,
    /// Transactions that reached a terminal state.
    pub terminated: usize,
    /// Transactions that committed despite the loss.
    pub committed: usize,
    /// Messages the fault plan dropped.
    pub dropped: u64,
    /// Replica dumps byte-identical after healing.
    pub identical: bool,
}

fn q(s: &str) -> Query {
    Query::parse(s).unwrap()
}

fn insert_txn(id: usize) -> TxnSpec {
    TxnSpec::new(vec![OpSpec::update(
        "d",
        UpdateOp::Insert {
            target: q("/products"),
            fragment: Fragment::elem(
                "product",
                vec![
                    Fragment::elem_text("id", id.to_string()),
                    Fragment::elem_text("price", "9.99"),
                ],
            ),
            pos: InsertPos::Into,
        },
    )])
}

fn change_txn(v: &str) -> TxnSpec {
    TxnSpec::new(vec![OpSpec::update(
        "d",
        UpdateOp::Change {
            target: q("/products/product[id=14]/price"),
            new_value: v.into(),
        },
    )])
}

fn count_products(cluster: &Cluster, site: SiteId) -> usize {
    let out = cluster.submit(
        site,
        TxnSpec::new(vec![OpSpec::query("d", q("/products/product/id"))]),
    );
    assert!(out.committed(), "read@{site}: {:?}", out.status);
    match &out.results[0] {
        OpResult::Query { values } => values.len(),
        other => panic!("{other:?}"),
    }
}

fn replicas_identical(cluster: &Cluster, a: SiteId, b: SiteId) -> bool {
    let da = cluster.instance(a).dump_document("d").unwrap();
    let db = cluster.instance(b).dump_document("d").unwrap();
    da.xml == db.xml && da.guide_wire == db.guide_wire
}

/// Recovery-tuned cluster: tight in-doubt / orphan timers so resolution
/// plays out at benchmark speed. Zero network latency — replay time and
/// protocol convergence are the measurands, not wire time.
fn recovery_cluster(seed: u64) -> Cluster {
    let mut cfg = ClusterConfig::new(3, ProtocolKind::Xdgl);
    cfg.seed = seed;
    cfg.scheduler.remote_timeout = Duration::from_millis(300);
    cfg.scheduler.indoubt_period = Duration::from_millis(25);
    cfg.scheduler.orphan_timeout = Duration::from_millis(200);
    let cluster = Cluster::start(cfg);
    cluster
        .load_document("d", DOC, &[SiteId(1), SiteId(2)])
        .unwrap();
    cluster
}

/// Commits `txns` distributed updates (coordinator holds no replica, so
/// every one runs the full prepare/decide rounds), kills participant
/// site 1 and restarts it from its WAL. Returns the replay measurement.
pub fn replay_point(txns: usize, seed: u64) -> ReplayPoint {
    let mut cluster = recovery_cluster(seed);
    for i in 0..txns {
        let out = cluster.submit(SiteId(0), insert_txn(100 + i));
        assert!(out.committed(), "{:?}", out.status);
    }
    cluster.kill_site(SiteId(1));
    let report = cluster.restart_site(SiteId(1));
    let identical = replicas_identical(&cluster, SiteId(1), SiteId(2));
    let point = ReplayPoint {
        txns,
        records: report.records,
        bytes: report.bytes,
        elapsed_ms: report.elapsed.as_secs_f64() * 1e3,
        redo_applied: report.redo_applied,
        committed: report.committed,
        identical,
    };
    cluster.shutdown();
    point
}

/// Runs one crash-matrix cell: the coordinator (site 0, no replica)
/// dies at `point` mid-transaction and is restarted from its WAL; the
/// cell records what the survivors and the restarted site converged to.
pub fn crash_case(point: CrashPoint, phase: &'static str, expected: &'static str) -> MatrixOutcome {
    let mut cluster = recovery_cluster(0);
    cluster.arm_crash(SiteId(0), point);
    let rx = cluster.submit_async(SiteId(0), insert_txn(13));
    cluster.wait_site_down(SiteId(0));
    drop(rx);

    // Mid-delivery, cooperative termination must converge the survivors
    // before the coordinator comes back; every other phase resolves
    // against the restarted coordinator's log.
    let restart_first = !matches!(point, CrashPoint::AfterDecideSendOne);
    if restart_first {
        cluster.restart_site(SiteId(0));
    }
    let converged = cluster
        .submit_async(SiteId(1), change_txn("88.80"))
        .recv_timeout(Duration::from_secs(30))
        .map(|out| out.committed())
        .unwrap_or(false);
    if !restart_first {
        cluster.restart_site(SiteId(0));
    }

    let counts: Vec<usize> = [SiteId(0), SiteId(1), SiteId(2)]
        .into_iter()
        .map(|s| count_products(&cluster, s))
        .collect();
    let agreed = counts.iter().all(|&c| c == counts[0]);
    let outcome = match (agreed, counts[0]) {
        (true, 3) => "commit",
        (true, 2) => "abort",
        _ => "diverged",
    };
    let preserved = expected != "commit" || outcome == "commit";
    let identical = replicas_identical(&cluster, SiteId(1), SiteId(2));
    cluster.shutdown();
    MatrixOutcome {
        phase,
        expected,
        outcome,
        converged,
        preserved,
        identical,
    }
}

/// Runs `txns` updates under seed-deterministic message loss
/// (`per_mille` ‰ of messages silently dropped), then heals the network
/// and converges. Replaying with the same seed replays the same fault
/// plan.
pub fn chaos_case(seed: u64, per_mille: u32, txns: usize) -> ChaosOutcome {
    let cluster = recovery_cluster(seed);
    cluster.set_message_drops(seed, per_mille);
    let (mut terminated, mut committed) = (0, 0);
    for i in 0..txns {
        if let Ok(out) = cluster
            .submit_async(SiteId(0), change_txn(&format!("{i}.50")))
            .recv_timeout(Duration::from_secs(30))
        {
            terminated += 1;
            committed += usize::from(out.committed());
        }
    }
    let dropped = cluster.net_dropped();
    cluster.set_message_drops(seed, 0);
    let healed = cluster
        .submit_async(SiteId(1), change_txn("100.00"))
        .recv_timeout(Duration::from_secs(30))
        .map(|out| out.committed())
        .unwrap_or(false);
    let identical = healed && replicas_identical(&cluster, SiteId(1), SiteId(2));
    cluster.shutdown();
    ChaosOutcome {
        txns,
        terminated,
        committed,
        dropped,
        identical,
    }
}
