//! Tracing-overhead measurement cells, shared by `bench_trace` (which
//! records `BENCH_trace.json`) and `check_bench` (which re-runs a smoke
//! cell fresh).
//!
//! One cell is a fig12-style XDGL run over the standard 4-site partial
//! layout, either with the event tracer armed or with every sink
//! disabled. The traced cell also collects the merged timeline and runs
//! the protocol-invariant checker over it, so the overhead number and
//! the certification come from the *same* run — the gate never certifies
//! a trace it did not pay for.

use crate::{ms, run, setup, ExpEnv};
use dtx_core::ProtocolKind;
use dtx_trace::check::check;
use dtx_xmark::workload::WorkloadConfig;

/// One measured cell: a workload run with tracing on or off.
#[derive(Debug, Clone)]
pub struct TraceCell {
    /// Whether the tracer was armed.
    pub traced: bool,
    /// Committed transactions.
    pub committed: usize,
    /// Submitted transactions.
    pub submitted: usize,
    /// Workload wall time (ms).
    pub wall_ms: f64,
    /// Committed-transaction response-time percentiles (ms), from the
    /// metrics histograms.
    pub p50_ms: f64,
    /// 99th percentile (ms).
    pub p99_ms: f64,
    /// 99.9th percentile (ms).
    pub p999_ms: f64,
    /// Events captured (0 when untraced).
    pub events: usize,
    /// Events lost to full rings — must be 0 for certification.
    pub dropped: u64,
    /// Invariant violations found by the checker (traced cells only).
    pub violations: usize,
    /// Whether the checker saw a complete trace (no drops).
    pub complete: bool,
    /// Yes-votes observed in the trace.
    pub votes: u64,
    /// Commit batches observed in the trace.
    pub commits: u64,
    /// Distinct delivery links observed in the trace.
    pub links: u64,
}

/// Runs one cell: `clients` mixed clients (20 % update transactions,
/// the fig12 mix) on a fresh standard cluster, traced or not. The
/// traced variant collects and certifies the timeline after shutdown.
pub fn run_cell(clients: usize, seed: u64, traced: bool) -> TraceCell {
    let mut env = ExpEnv::standard(ProtocolKind::Xdgl).with_seed(seed);
    if traced {
        env = env.with_tracing();
    }
    let (cluster, frags) = setup(env);
    let report = run(
        &cluster,
        &frags,
        WorkloadConfig::with_updates(clients, 20, seed),
    );
    let summary = cluster.metrics().summary();
    let tracer = cluster.tracer();
    cluster.shutdown();
    let mut cell = TraceCell {
        traced,
        committed: report.committed(),
        submitted: report.outcomes.len(),
        wall_ms: ms(report.wall),
        p50_ms: ms(summary.p50_response),
        p99_ms: ms(summary.p99_response),
        p999_ms: ms(summary.p999_response),
        events: 0,
        dropped: 0,
        violations: 0,
        complete: true,
        votes: 0,
        commits: 0,
        links: 0,
    };
    if let Some(tracer) = tracer {
        let trace = tracer.collect();
        let rpt = check(&trace);
        cell.events = trace.events.len();
        cell.dropped = trace.dropped;
        cell.violations = rpt.violations.len();
        cell.complete = rpt.complete;
        cell.votes = rpt.stats.votes as u64;
        cell.commits = rpt.stats.commits as u64;
        cell.links = rpt.stats.links as u64;
    }
    cell
}

/// Runs `iters` identical cells and returns the fastest, because the
/// wall-time minimum is the least-noise estimator on a shared host —
/// scheduler jitter on a sub-second workload can swamp the per-event
/// ring-push cost in either direction. Certification stays conjunctive
/// across every iteration: a violation, drop, or incomplete trace in
/// *any* run fails, whichever run was fastest.
pub fn best_of(iters: usize, clients: usize, seed: u64, traced: bool) -> TraceCell {
    let cells: Vec<TraceCell> = (0..iters)
        .map(|_| run_cell(clients, seed, traced))
        .collect();
    let mut best = cells
        .iter()
        .min_by(|a, b| a.wall_ms.partial_cmp(&b.wall_ms).expect("finite"))
        .expect("iters > 0")
        .clone();
    best.violations = cells.iter().map(|c| c.violations).sum();
    best.dropped = cells.iter().map(|c| c.dropped).sum();
    best.complete = cells.iter().all(|c| c.complete);
    best
}

/// Tracing overhead in percent: how much slower the traced run's wall
/// time is than the untraced run's. Negative values (host noise making
/// the traced run *faster*) clamp to zero — the band is one-sided.
pub fn overhead_pct(untraced_wall_ms: f64, traced_wall_ms: f64) -> f64 {
    ((traced_wall_ms - untraced_wall_ms) / untraced_wall_ms.max(1e-9) * 100.0).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_is_one_sided() {
        assert!((overhead_pct(100.0, 105.0) - 5.0).abs() < 1e-9);
        assert_eq!(overhead_pct(100.0, 90.0), 0.0);
    }
}
