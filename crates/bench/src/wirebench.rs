//! Multi-process experiment plumbing: the `dtx-site` driver and the
//! wire-codec microbenchmark behind `bench_wire` and the CI gate.
//!
//! Everything else in this harness runs the cluster inside one process
//! over the simulated LAN. This module instead spawns each site as a
//! **separate OS process** (the `dtx-site` binary), drives the run over
//! the `WIRE.md` control plane ([`dtx_core::CtrlMsg`]), and reports real
//! bytes-on-wire — the multi-process counterpart of fig12's workload.
//! The driver is deliberately dumb: launch, mesh, load, submit, collect,
//! shut down; all protocol behavior lives in the site processes.

use dtx_core::wire::CtrlMsg;
use dtx_core::{CtrlClient, Message, SiteId, TxnStatus};
use dtx_net::wire::WireCodec;
use dtx_xmark::fragment::{fragment_doc, LOGICAL_DOC};
use dtx_xmark::generator::{generate, XmarkConfig};
use dtx_xmark::workload::{generate as gen_workload, WorkloadConfig};
use std::collections::HashMap;
use std::io::BufRead;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// How long the driver waits on any single control-plane reply before
/// declaring the run wedged (generous: CI hosts stall).
const REPLY_TIMEOUT: Duration = Duration::from_secs(60);

/// One multi-process run's environment.
#[derive(Debug, Clone, Copy)]
pub struct WireEnv {
    /// Number of sites — and of `dtx-site` OS processes (one each).
    pub sites: u16,
    /// Closed-loop clients (client *i* coordinates at site `i % sites`).
    pub clients: usize,
    /// Update-transaction percentage of the workload mix.
    pub update_pct: u32,
    /// Base size in bytes.
    pub base_bytes: usize,
    /// Seed (base, workload, per-site scheduler jitter).
    pub seed: u64,
}

impl WireEnv {
    /// The fig12 counterpart: 4 sites, 50 clients × 5 txns, 20 %
    /// updates, standard base.
    pub fn fig12(seed: u64) -> Self {
        WireEnv {
            sites: 4,
            clients: 50,
            update_pct: 20,
            base_bytes: crate::BASE_BYTES,
            seed,
        }
    }

    /// The CI smoke cell: 2 processes, 10 clients × 5 txns = 50
    /// transactions over a small base.
    pub fn smoke(seed: u64) -> Self {
        WireEnv {
            sites: 2,
            clients: 10,
            update_pct: 20,
            base_bytes: 60_000,
            seed,
        }
    }
}

/// What one multi-process run measured.
#[derive(Debug, Clone)]
pub struct WireRun {
    /// Sites = OS processes spawned.
    pub sites: u16,
    /// Transactions submitted.
    pub txns: usize,
    /// Transactions committed.
    pub committed: usize,
    /// Transactions aborted (any reason).
    pub aborted: usize,
    /// Response-time percentiles (ms) over all outcomes.
    pub p50_ms: f64,
    /// 99th percentile (ms).
    pub p99_ms: f64,
    /// 99.9th percentile (ms).
    pub p999_ms: f64,
    /// Wall time of the submit/collect phase (s).
    pub wall_s: f64,
    /// Real framed bytes written to sockets, summed over site processes.
    pub bytes_out: u64,
    /// Real framed bytes read from sockets, summed over site processes.
    pub bytes_in: u64,
    /// Frames sent, summed over site processes.
    pub frames_out: u64,
    /// Frames received, summed over site processes.
    pub frames_in: u64,
}

impl WireRun {
    /// Mean framed bytes per frame across the site processes.
    pub fn bytes_per_frame(&self) -> f64 {
        self.bytes_out as f64 / (self.frames_out as f64).max(1.0)
    }
}

/// Locates the `dtx-site` binary: a sibling of the current executable
/// (benches and `check_bench` live in `target/<profile>/`; integration
/// tests live one level down in `deps/`).
pub fn site_binary() -> Result<PathBuf, String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let mut dirs = Vec::new();
    if let Some(d) = exe.parent() {
        dirs.push(d.to_path_buf());
        if d.ends_with("deps") {
            if let Some(p) = d.parent() {
                dirs.push(p.to_path_buf());
            }
        }
    }
    for d in &dirs {
        let cand = d.join("dtx-site");
        if cand.is_file() {
            return Ok(cand);
        }
    }
    Err(format!(
        "dtx-site binary not found next to {} — build it first: \
         cargo build --release -p dtx-bench --bin dtx-site",
        exe.display()
    ))
}

/// One spawned site process.
struct SiteProc {
    site: SiteId,
    addr: String,
    child: Child,
}

/// Spawns `dtx-site` hosting `site`, reading its advertised listen
/// address off stdout.
fn spawn_site(bin: &PathBuf, site: SiteId, total: u16, seed: u64) -> Result<SiteProc, String> {
    let mut child = Command::new(bin)
        .args([
            "--host".into(),
            site.0.to_string(),
            "--total".into(),
            total.to_string(),
            "--seed".into(),
            seed.to_string(),
        ])
        .stdout(Stdio::piped())
        .spawn()
        .map_err(|e| format!("spawn {}: {e}", bin.display()))?;
    let stdout = child.stdout.take().ok_or("no child stdout")?;
    let mut lines = std::io::BufReader::new(stdout).lines();
    let line = lines
        .next()
        .ok_or("dtx-site exited before advertising its address")?
        .map_err(|e| format!("read dtx-site stdout: {e}"))?;
    let addr = line
        .strip_prefix("DTX-SITE LISTENING ")
        .ok_or_else(|| format!("unexpected dtx-site banner: {line:?}"))?
        .to_string();
    // Keep draining the pipe so the child never blocks on a full one.
    std::thread::spawn(move || for _ in lines.map_while(Result::ok) {});
    Ok(SiteProc { site, addr, child })
}

/// Waits for one control reply matching `want`, ignoring gossip and
/// unrelated traffic.
fn await_reply<T>(
    client: &CtrlClient,
    mut want: impl FnMut(CtrlMsg) -> Option<T>,
) -> Result<T, String> {
    let deadline = Instant::now() + REPLY_TIMEOUT;
    while Instant::now() < deadline {
        let Some((_, msg)) = client.recv(deadline - Instant::now()) else {
            break;
        };
        if let Some(v) = want(msg) {
            return Ok(v);
        }
    }
    Err("timed out waiting for a control reply".into())
}

/// Runs the closed-loop workload against a cluster of `dtx-site` OS
/// processes — the multi-process fig12. Every step is control-plane
/// traffic over real sockets; nothing shares memory with the sites.
pub fn run_process_cluster(env: WireEnv) -> Result<WireRun, String> {
    let bin = site_binary()?;
    let total = env.sites;
    // ---- launch + mesh ----------------------------------------------
    let mut procs = Vec::new();
    for i in 0..total {
        procs.push(spawn_site(&bin, SiteId(i), total, env.seed)?);
    }
    let result = drive(&procs, env);
    // Always reap the children, even on a failed drive.
    for p in &mut procs {
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match p.child.try_wait() {
                Ok(Some(_)) => break,
                Ok(None) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(20))
                }
                _ => {
                    let _ = p.child.kill();
                    let _ = p.child.wait();
                    break;
                }
            }
        }
    }
    result
}

/// The driver proper, separated so the caller can reap children on any
/// error path.
fn drive(procs: &[SiteProc], env: WireEnv) -> Result<WireRun, String> {
    let total = env.sites;
    let client = CtrlClient::bind()?;
    for p in procs {
        client.connect(&p.addr, &[p.site])?;
    }
    let peers: Vec<(SiteId, String)> = procs.iter().map(|p| (p.site, p.addr.clone())).collect();
    for p in procs {
        client.send(
            p.site,
            &CtrlMsg::Peers {
                total_sites: total,
                peers: peers.clone(),
            },
        )?;
    }
    let mut ready = 0;
    while ready < procs.len() {
        await_reply(&client, |m| match m {
            CtrlMsg::Ready { .. } => Some(()),
            _ => None,
        })?;
        ready += 1;
    }

    // ---- load + register (same order as Cluster::load_fragments:
    // every fragment in place before the placement is published) ------
    let doc = generate(XmarkConfig::sized(env.base_bytes, env.seed));
    let frags = fragment_doc(&doc, total as usize);
    for (i, frag) in frags.fragments.iter().enumerate() {
        let corr = client.corr();
        client.send(
            SiteId(i as u16),
            &CtrlMsg::LoadDoc {
                corr,
                doc: LOGICAL_DOC.into(),
                xml: frag.xml.clone(),
            },
        )?;
        let ok = await_reply(&client, |m| match m {
            CtrlMsg::Ack {
                corr: c,
                ok,
                detail,
            } if c == corr => Some((ok, detail)),
            _ => None,
        })?;
        if !ok.0 {
            return Err(format!("load fragment {i}: {}", ok.1));
        }
    }
    let sites: Vec<SiteId> = (0..total).map(SiteId).collect();
    for p in procs {
        let corr = client.corr();
        client.send(
            p.site,
            &CtrlMsg::Register {
                corr,
                doc: LOGICAL_DOC.into(),
                sites: sites.clone(),
                fragmented: true,
            },
        )?;
        await_reply(&client, |m| match m {
            CtrlMsg::Ack { corr: c, .. } if c == corr => Some(()),
            _ => None,
        })?;
    }

    // ---- closed-loop submit/collect ---------------------------------
    // One outstanding transaction per client, like the fig12 tester's
    // client threads — but multiplexed on the driver's single reply
    // stream and correlated by id.
    let wl = gen_workload(
        WorkloadConfig::with_updates(env.clients, env.update_pct, env.seed),
        &frags,
    );
    let txns: usize = wl.clients.iter().map(Vec::len).sum();
    let mut cursors: Vec<usize> = vec![0; wl.clients.len()];
    let mut by_corr: HashMap<u64, usize> = HashMap::new();
    let start = Instant::now();
    let submit = |ci: usize,
                  cursors: &mut Vec<usize>,
                  by_corr: &mut HashMap<u64, usize>|
     -> Result<bool, String> {
        let k = cursors[ci];
        if k >= wl.clients[ci].len() {
            return Ok(false);
        }
        cursors[ci] = k + 1;
        let corr = client.corr();
        by_corr.insert(corr, ci);
        client.send(
            SiteId((ci % total as usize) as u16),
            &CtrlMsg::Submit {
                corr,
                spec: wl.clients[ci][k].clone(),
            },
        )?;
        Ok(true)
    };
    // Ramp the clients in rather than firing one synchronized burst:
    // the in-process tester's client *threads* start staggered by spawn
    // and scheduling time, and the paper's clients are independent
    // machines — a same-instant thundering herd is an artifact of
    // multiplexing all clients onto one driver loop.
    for ci in 0..wl.clients.len() {
        submit(ci, &mut cursors, &mut by_corr)?;
        std::thread::sleep(Duration::from_micros(500));
    }
    let (mut committed, mut aborted) = (0usize, 0usize);
    let mut response_ms: Vec<f64> = Vec::with_capacity(txns);
    while response_ms.len() < txns {
        let (corr, status, response_us) = await_reply(&client, |m| match m {
            CtrlMsg::Outcome {
                corr,
                status,
                response_us,
                ..
            } => Some((corr, status, response_us)),
            _ => None,
        })?;
        let ci = by_corr
            .remove(&corr)
            .ok_or_else(|| format!("outcome with unknown corr {corr}"))?;
        match status {
            TxnStatus::Committed => committed += 1,
            _ => aborted += 1,
        }
        response_ms.push(response_us as f64 / 1e3);
        submit(ci, &mut cursors, &mut by_corr)?;
    }
    let wall_s = start.elapsed().as_secs_f64();

    // ---- wire stats + shutdown --------------------------------------
    let (mut bytes_out, mut bytes_in, mut frames_out, mut frames_in) = (0, 0, 0, 0);
    for p in procs {
        let corr = client.corr();
        client.send(p.site, &CtrlMsg::StatsRequest { corr })?;
        let s = await_reply(&client, |m| match m {
            CtrlMsg::StatsReply {
                corr: c,
                bytes_out,
                bytes_in,
                frames_out,
                frames_in,
            } if c == corr => Some((bytes_out, bytes_in, frames_out, frames_in)),
            _ => None,
        })?;
        bytes_out += s.0;
        bytes_in += s.1;
        frames_out += s.2;
        frames_in += s.3;
    }
    for p in procs {
        client.send(p.site, &CtrlMsg::Shutdown)?;
    }
    client.shutdown();

    response_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let pct = |q: f64| -> f64 {
        let idx = ((response_ms.len() as f64 * q).ceil() as usize).max(1) - 1;
        response_ms.get(idx).copied().unwrap_or(0.0)
    };
    Ok(WireRun {
        sites: total,
        txns,
        committed,
        aborted,
        p50_ms: pct(0.50),
        p99_ms: pct(0.99),
        p999_ms: pct(0.999),
        wall_s,
        bytes_out,
        bytes_in,
        frames_out,
        frames_in,
    })
}

/// Codec microbench result: per-message encode/decode cost and size.
#[derive(Debug, Clone, Copy)]
pub struct CodecBench {
    /// Mean encode cost (ns/message) over the mix.
    pub encode_ns: f64,
    /// Mean decode cost (ns/message) over the mix.
    pub decode_ns: f64,
    /// Mean encoded body size (bytes/message) over the mix.
    pub mean_bytes: f64,
}

/// A representative protocol mix for the codec microbench: the hot
/// fig12 messages (remote execution round trip, batched termination,
/// 2PC votes) weighted roughly as they occur on the wire.
fn codec_mix() -> Vec<Message> {
    use dtx_core::{OpKind, OpSpec, TxnId};
    use dtx_xpath::Query;
    let q = Query::parse("/site/people/person[id=42]").expect("query parses");
    let exec = Message::ExecRemote {
        txn: TxnId(71),
        coordinator: SiteId(1),
        op_seq: 2,
        op: OpSpec {
            doc: LOGICAL_DOC.into(),
            kind: OpKind::Query(q),
        },
        corr: 4242,
        update_txn: true,
        doc_version: 9,
        fragment: true,
    };
    let done = Message::RemoteDone {
        txn: TxnId(71),
        op_seq: 2,
        corr: 4242,
        site: SiteId(3),
        acquired: true,
        executed: true,
        failed: false,
        deadlock: false,
        stale: false,
        result: Some(dtx_core::OpResult::Query {
            values: vec!["Alice Cooper".into()],
        }),
    };
    let batch = Message::TerminateBatch {
        commits: (0..8).map(|i| TxnId(4 * i + 1)).collect(),
        aborts: vec![TxnId(99)],
    };
    let prepare = Message::Prepare {
        txn: TxnId(71),
        corr: 4243,
        participants: vec![SiteId(0), SiteId(2), SiteId(3)],
    };
    let ack = Message::PrepareAck {
        txn: TxnId(71),
        corr: 4243,
        site: SiteId(2),
        ok: true,
    };
    vec![exec, done, batch, prepare, ack]
}

/// Measures per-message encode/decode cost over the protocol mix.
pub fn codec_bench(iters: usize) -> CodecBench {
    let mix = codec_mix();
    let encoded: Vec<Vec<u8>> = mix.iter().map(|m| m.encode()).collect();
    let total_bytes: usize = encoded.iter().map(Vec::len).sum();

    let t0 = Instant::now();
    let mut sink = 0usize;
    for _ in 0..iters {
        for m in &mix {
            sink = sink.wrapping_add(m.encode().len());
        }
    }
    let encode_ns = t0.elapsed().as_nanos() as f64 / (iters * mix.len()) as f64;

    let t0 = Instant::now();
    for _ in 0..iters {
        for bytes in &encoded {
            let m = Message::decode(bytes).expect("mix decodes");
            sink = sink.wrapping_add(std::mem::size_of_val(&m));
        }
    }
    let decode_ns = t0.elapsed().as_nanos() as f64 / (iters * mix.len()) as f64;
    assert!(sink > 0, "keep the optimizer honest");
    CodecBench {
        encode_ns,
        decode_ns,
        mean_bytes: total_bytes as f64 / mix.len() as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_bench_reports_sane_numbers() {
        let b = codec_bench(200);
        assert!(b.encode_ns > 0.0 && b.decode_ns > 0.0);
        // The mix averages well under a simulated-LAN MTU: compactness
        // is the point of a hand-rolled binary codec.
        assert!(
            b.mean_bytes > 10.0 && b.mean_bytes < 512.0,
            "mean body {} bytes",
            b.mean_bytes
        );
    }

    #[test]
    fn site_binary_error_names_the_build_command() {
        // In unit-test context the binary may or may not exist; when it
        // does not, the error must tell the operator what to build.
        if let Err(e) = site_binary() {
            assert!(e.contains("--bin dtx-site"), "unhelpful error: {e}");
        }
    }
}
