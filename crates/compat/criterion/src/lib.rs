//! Offline shim for the `criterion` API subset DTX's micro-benchmarks use.
//!
//! Implements a small but honest measurement loop: per benchmark it
//! calibrates an iteration count to a target measurement time, runs
//! batched samples, and reports min/mean/max per-iteration time (plus
//! derived throughput when one was declared). No plotting, no statistics
//! beyond the three-point summary — the numbers land on stdout and in the
//! JSON the bench binaries write themselves.
//!
//! Supported: `Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Throughput`, `BatchSize`,
//! `black_box`, `criterion_group!`, `criterion_main!`.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle.
pub struct Criterion {
    /// Target time each benchmark spends measuring.
    measurement_time: Duration,
    /// Substring filter from the command line (criterion-compatible).
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_millis(400),
            filter: None,
        }
    }
}

impl Criterion {
    /// Applies a benchmark-name substring filter.
    pub fn with_filter(mut self, filter: Option<String>) -> Self {
        self.filter = filter;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            header_printed: false,
        }
    }
}

/// Declared work-per-iteration, used to derive throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` form.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Batch sizing for `iter_batched`; the shim treats every variant the same.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// A group of benchmarks sharing a name prefix and throughput declaration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    header_printed: bool,
}

impl BenchmarkGroup<'_> {
    /// Declares the work performed per iteration.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        if let Some(f) = &self.criterion.filter {
            if !full.contains(f.as_str()) {
                return;
            }
        }
        if !self.header_printed {
            println!("group {}", self.name);
            self.header_printed = true;
        }
        let mut bencher = Bencher {
            measurement_time: self.criterion.measurement_time,
            samples: Vec::new(),
        };
        routine(&mut bencher);
        report(&full, &bencher.samples, self.throughput);
    }

    /// Benchmarks `routine` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: F,
    ) where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| routine(b, input));
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Per-sample measurement state handed to the benchmark closure.
pub struct Bencher {
    measurement_time: Duration,
    /// (iterations, elapsed) per sample.
    samples: Vec<(u64, Duration)>,
}

impl Bencher {
    /// Measures `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: grow the iteration count until one sample is ≥ 1/20 of
        // the measurement budget, then take up to 20 samples.
        let budget = self.measurement_time;
        let mut iters: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let dt = t0.elapsed();
            if dt >= budget / 20 || iters >= 1 << 30 {
                self.samples.push((iters, dt));
                break;
            }
            iters = iters.saturating_mul(2);
        }
        let mut spent = self.samples.last().map(|(_, d)| *d).unwrap_or_default();
        while spent < budget && self.samples.len() < 20 {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let dt = t0.elapsed();
            spent += dt;
            self.samples.push((iters, dt));
        }
    }

    /// Measures `routine` over fresh inputs built by `setup` (setup time
    /// excluded from the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let budget = self.measurement_time;
        let mut spent = Duration::ZERO;
        while spent < budget && self.samples.len() < 200 {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            let dt = t0.elapsed();
            spent += dt;
            self.samples.push((1, dt));
        }
    }
}

fn report(name: &str, samples: &[(u64, Duration)], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("  {name}: no samples");
        return;
    }
    let per_iter: Vec<f64> = samples
        .iter()
        .map(|(n, d)| d.as_secs_f64() / (*n).max(1) as f64)
        .collect();
    let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = per_iter.iter().cloned().fold(0.0, f64::max);
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let tp = match throughput {
        Some(Throughput::Bytes(b)) => {
            format!("  {:.1} MiB/s", b as f64 / mean / (1024.0 * 1024.0))
        }
        Some(Throughput::Elements(e)) => format!("  {:.0} elem/s", e as f64 / mean),
        None => String::new(),
    };
    println!(
        "  {name}: [{} {} {}]{tp}",
        fmt_seconds(min),
        fmt_seconds(mean),
        fmt_seconds(max)
    );
}

fn fmt_seconds(s: f64) -> String {
    if s < 1e-6 {
        format!("{:.1} ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:.2} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{s:.3} s")
    }
}

/// Entry point used by `criterion_main!`: builds a `Criterion` from the
/// command line (ignoring harness flags, honouring a name filter) and runs
/// every registered group function.
pub fn run_registered(groups: &[fn(&mut Criterion)]) {
    let filter = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with('-') && a != "bench");
    let mut c = Criterion::default().with_filter(filter);
    for g in groups {
        g(&mut c);
    }
}

/// Registers benchmark functions under a group name (criterion-compatible).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Generates `fn main()` running the registered groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $crate::run_registered(&[$($group),+]);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_samples_and_output() {
        let mut c = Criterion {
            measurement_time: Duration::from_millis(5),
            filter: None,
        };
        let mut group = c.benchmark_group("shim");
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            measurement_time: Duration::from_millis(5),
            filter: Some("other".into()),
        };
        let mut group = c.benchmark_group("shim");
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| ());
            ran = true;
        });
        group.finish();
        assert!(!ran);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion {
            measurement_time: Duration::from_millis(2),
            filter: None,
        };
        let mut group = c.benchmark_group("shim");
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }
}
