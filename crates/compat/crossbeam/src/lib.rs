//! Offline shim for the `crossbeam::channel` API subset DTX uses.
//!
//! Backed by `std::sync::mpsc`, whose `Sender` has been `Sync` since Rust
//! 1.72, which is all the multi-producer use in this workspace needs.
//! `bounded(n)` is backed by an unbounded queue: every bounded channel in
//! DTX is a single-use reply channel (capacity 1, exactly one send), so
//! backpressure never engages and the relaxation is unobservable.

pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Sending half of a channel (multi-producer via `Clone`).
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends a message; errors when every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value)
        }
    }

    /// Receiving half of a channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocking receive.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv()
        }

        /// Receive with a timeout.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv()
        }

        /// Iterator over currently queued messages (non-blocking).
        pub fn try_iter(&self) -> mpsc::TryIter<'_, T> {
            self.inner.try_iter()
        }
    }

    /// An unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    /// A "bounded" channel; see the module note on the capacity relaxation.
    pub fn bounded<T>(_cap: usize) -> (Sender<T>, Receiver<T>) {
        unbounded()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, RecvTimeoutError, TryRecvError};
    use std::time::Duration;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv().unwrap(), i);
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn clone_sender_multi_producer() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        std::thread::spawn(move || tx2.send(42).unwrap())
            .join()
            .unwrap();
        tx.send(7).unwrap();
        let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
        got.sort();
        assert_eq!(got, vec![7, 42]);
    }

    #[test]
    fn timeout_and_disconnect() {
        let (tx, rx) = bounded::<u32>(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
    }
}
