//! Offline shim for the `parking_lot` API subset DTX uses: `Mutex` and
//! `RwLock` whose lock methods return guards directly (no poison `Result`).
//! Backed by `std::sync`; a poisoned lock is recovered by taking the inner
//! guard, matching parking_lot's no-poisoning semantics.

use std::fmt;
use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex returning its guard directly from `lock()`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// A reader-writer lock returning guards directly from `read()`/`write()`.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock guarding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires the exclusive write guard, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }
}
