//! Offline shim for the `rand` 0.8 API subset DTX uses: a seedable
//! deterministic RNG (`rngs::StdRng`), `SeedableRng::seed_from_u64`, and
//! `Rng::{gen_range, gen_bool}` over integer ranges.
//!
//! The generator is splitmix64-seeded xorshift64* — tiny, fast, and (the
//! property the workspace actually depends on) **bit-for-bit reproducible
//! from the seed on every platform and every run**. All XMark data and
//! workload generation flows through this, so experiment inputs are fully
//! seed-deterministic.

use std::ops::Range;

/// Types constructible from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from an integer seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The sampling methods DTX uses.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from `range` (half-open). Panics on an empty range.
    fn gen_range<T: UniformInt>(&mut self, range: Range<T>) -> T {
        T::sample(self.next_u64(), range)
    }

    /// Bernoulli sample: `true` with probability `p` (clamped to [0, 1]).
    fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // 53 high bits → uniform f64 in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

/// Integer types `gen_range` can sample.
pub trait UniformInt: Copy {
    /// Maps 64 uniform bits into `range`.
    fn sample(bits: u64, range: Range<Self>) -> Self;
}

macro_rules! impl_uniform_uint {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample(bits: u64, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range on empty range");
                let span = (range.end - range.start) as u64;
                // Lemire-style multiply-shift: bias < 2^-64 per draw,
                // irrelevant for workload generation.
                let off = ((bits as u128 * span as u128) >> 64) as u64;
                range.start + off as $t
            }
        }
    )*};
}

impl_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl UniformInt for $t {
            fn sample(bits: u64, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range on empty range");
                let span = range.end.wrapping_sub(range.start) as $u as u64;
                let off = ((bits as u128 * span as u128) >> 64) as u64;
                range.start.wrapping_add(off as $t)
            }
        }
    )*};
}

impl_uniform_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Deterministic generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard RNG: splitmix64-seeded xorshift64*.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 scrambles low-entropy seeds (0, 1, 2, ...) into
            // well-distributed xorshift states, and maps the one pathological
            // xorshift state (0) away.
            let mut z = seed.wrapping_add(0x9E3779B97F4A7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            StdRng { state: z | 1 }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545F4914F6CDD1D)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..6);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 0..6 hit: {seen:?}");
        for _ in 0..1000 {
            let v = rng.gen_range(25i32..60);
            assert!((25..60).contains(&v));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "~30% expected, got {hits}");
    }
}
