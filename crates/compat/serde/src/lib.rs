//! Offline shim for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` purely as markers (the
//! simulated transport passes payloads by move, never through bytes), so
//! this shim provides the two trait names with blanket implementations and
//! re-exports the no-op derive macros. Replacing it with the real serde is
//! a one-line change in the workspace manifest; the derive attributes in
//! the code are already the real thing.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all types.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
