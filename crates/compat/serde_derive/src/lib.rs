//! Offline shim for `serde_derive`.
//!
//! The workspace has no registry access, and nothing in it actually
//! serializes — the `#[derive(Serialize, Deserialize)]` attributes only
//! mark types as wire-representable for a future real-network backend.
//! The sibling `serde` shim blanket-implements both traits, so these
//! derives can expand to nothing.

use proc_macro::TokenStream;

/// No-op `Serialize` derive; the `serde` shim's blanket impl covers the type.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive; the `serde` shim's blanket impl covers the type.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
