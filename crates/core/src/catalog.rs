//! The versioned replica catalog: which sites hold which documents, and
//! how operations are routed to them.
//!
//! DTX "operates on totally or partially replicated XML data" (§2). The
//! catalog is the cluster-wide mapping from document (or fragment) name to
//! the set of sites holding a replica; the coordinator consults it to
//! decide where an operation must execute (Algorithm 1 l. 12
//! `sites.get_participants(operation.get_sites())`) — but through one
//! entry point, [`Catalog::route`], which turns an operation into an
//! explicit [`RoutingPlan`] under the installed [`PlacementPolicy`].
//!
//! The catalog is versioned at **two granularities**. Every mutation
//! bumps a catalog-global **epoch** (used by [`Catalog::render_allocation`]
//! to stamp placement snapshots), and stamps the *mutated entry* with that
//! epoch value as its **per-document version**. Remote dispatches carry
//! the target document's version; a participant that observes a different
//! version for that document refuses the operation as stale and the
//! coordinator re-routes under the fresh catalog — which is what makes
//! **online re-replication** ([`Catalog::add_replica`] /
//! [`Catalog::drop_replica`] under traffic) safe to express. Versioning
//! per document means a placement mutation on one document no longer
//! stale-refuses in-flight dispatches of every *other* document (the
//! catalog-global epoch used to, safely but wastefully, under placement
//! churn).

use crate::gossip::CatalogDelta;
use crate::op::OpSpec;
use crate::routing::{PlacementPolicy, PolicyKind, ReadChoice, RoutingCtx, RoutingPlan};
use dtx_net::SiteId;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// One catalog entry: a document's replica set, shape and placement
/// version.
#[derive(Debug)]
struct Entry {
    sites: Vec<SiteId>,
    fragmented: bool,
    /// The global epoch value at this entry's last mutation — the
    /// document's placement version, stamped onto remote dispatches so
    /// participants can detect routing decisions made under an older
    /// placement *of this document*.
    version: u64,
    /// Replica-copy fence: raised by `Cluster::add_replica` while the
    /// source copy is being drained and dumped. Schedulers pause **new**
    /// update executions on a fenced document (transactions that already
    /// applied updates to it ride through so the drain can complete);
    /// reads are unaffected. Not versioned — a fence is a transient
    /// execution gate, not a placement change.
    fenced: bool,
}

/// Thread-safe, versioned document → replica-sites mapping with a
/// pluggable placement policy.
///
/// A document is either **replicated** (every listed site holds a full
/// copy; results agree and one site's answer suffices) or **fragmented**
/// (each listed site holds a disjoint fragment of the logical document;
/// an operation executes on every fragment and the coordinator merges
/// the per-site results).
#[derive(Debug)]
pub struct Catalog {
    map: RwLock<BTreeMap<String, Entry>>,
    /// Bumped by every mutation (any document); versions placement
    /// snapshots like [`Catalog::render_allocation`].
    epoch: AtomicU64,
    policy: RwLock<Box<dyn PlacementPolicy>>,
}

impl Default for Catalog {
    fn default() -> Self {
        Catalog {
            map: RwLock::new(BTreeMap::new()),
            epoch: AtomicU64::new(1),
            policy: RwLock::new(PolicyKind::default().instantiate()),
        }
    }
}

impl Catalog {
    /// Empty catalog at epoch 1 under the default ([`PolicyKind::Primary`])
    /// policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current catalog version. Any two [`Catalog::route`] calls that
    /// observed the same epoch saw the same placement.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    fn bump_epoch(&self) -> u64 {
        self.epoch.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Installs a placement policy (cluster-wide; takes effect on the next
    /// routed operation). Policy changes do not bump the epoch: placement
    /// *data* is unchanged, only the read-replica choice.
    pub fn set_policy(&self, policy: Box<dyn PlacementPolicy>) {
        *self.policy.write() = policy;
    }

    /// The installed policy's display name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.read().name()
    }

    /// Registers (or replaces) the replica set of `doc` (full copies).
    /// Site lists are kept sorted and deduplicated. Bumps the epoch and
    /// the document's version.
    pub fn register(&self, doc: &str, sites: &[SiteId]) {
        let mut sites = sites.to_vec();
        sites.sort();
        sites.dedup();
        let version = self.bump_epoch();
        self.map.write().insert(
            doc.to_owned(),
            Entry {
                sites,
                fragmented: false,
                version,
                fenced: false,
            },
        );
    }

    /// Registers `doc` as horizontally fragmented over `sites` (each site
    /// holds a disjoint fragment under the same logical name). Bumps the
    /// epoch and the document's version.
    pub fn register_fragmented(&self, doc: &str, sites: &[SiteId]) {
        let mut sites = sites.to_vec();
        sites.sort();
        sites.dedup();
        let version = self.bump_epoch();
        self.map.write().insert(
            doc.to_owned(),
            Entry {
                sites,
                fragmented: true,
                version,
                fenced: false,
            },
        );
    }

    /// The placement version of `doc`: the epoch value of its last
    /// mutation (0 when unknown to the catalog). Two [`Catalog::route`]
    /// calls that observed the same version saw the same placement of
    /// `doc` — mutations of *other* documents leave it untouched.
    pub fn version_of(&self, doc: &str) -> u64 {
        self.map.read().get(doc).map(|e| e.version).unwrap_or(0)
    }

    /// Adds `site` to the replica set of the replicated document `doc`,
    /// bumping the epoch. The caller must have loaded the document's data
    /// at `site` **before** publishing it here (new reads may route to it
    /// immediately after). Idempotent: adding an existing replica is a
    /// no-op that leaves the epoch alone.
    pub fn add_replica(&self, doc: &str, site: SiteId) -> Result<(), String> {
        let mut map = self.map.write();
        let Some(entry) = map.get_mut(doc) else {
            return Err(format!("document {doc:?} unknown to catalog"));
        };
        if entry.fragmented {
            return Err(format!("document {doc:?} is fragmented, not replicated"));
        }
        if entry.sites.contains(&site) {
            return Ok(());
        }
        entry.sites.push(site);
        entry.sites.sort();
        entry.version = self.bump_epoch();
        Ok(())
    }

    /// Removes `site` from the replica set of the replicated document
    /// `doc`, bumping the epoch. The last replica cannot be dropped.
    /// Idempotent: dropping a non-replica is a no-op that leaves the epoch
    /// alone.
    pub fn drop_replica(&self, doc: &str, site: SiteId) -> Result<(), String> {
        let mut map = self.map.write();
        let Some(entry) = map.get_mut(doc) else {
            return Err(format!("document {doc:?} unknown to catalog"));
        };
        if entry.fragmented {
            return Err(format!("document {doc:?} is fragmented, not replicated"));
        }
        if !entry.sites.contains(&site) {
            return Ok(());
        }
        if entry.sites.len() == 1 {
            return Err(format!("cannot drop the last replica of {doc:?}"));
        }
        entry.sites.retain(|&s| s != site);
        entry.version = self.bump_epoch();
        Ok(())
    }

    /// Exports every document's placement as a [`CatalogDelta`] stamped
    /// `origin` — the payload one anti-entropy gossip round ships to a
    /// peer process (see [`crate::gossip`]).
    pub fn export_deltas(&self, origin: SiteId) -> Vec<CatalogDelta> {
        self.map
            .read()
            .iter()
            .map(|(doc, e)| CatalogDelta {
                doc: doc.clone(),
                version: e.version,
                sites: e.sites.clone(),
                fragmented: e.fragmented,
                origin,
            })
            .collect()
    }

    /// Merges one gossiped delta by **dominance**: installed iff its
    /// version is strictly greater than the local version of the same
    /// document (0 when unknown), else ignored. Returns whether it was
    /// installed. Installation adopts the delta's version verbatim (no
    /// re-mint — every catalog must converge to identical versions) and
    /// ratchets the epoch to at least that version, so later local
    /// mutations always dominate everything already seen. A local
    /// replica-copy fence survives the merge: the fence is a transient
    /// local execution gate, not placement data.
    pub fn apply_delta(&self, delta: &CatalogDelta) -> bool {
        let mut map = self.map.write();
        let (dominates, fenced) = match map.get(&delta.doc) {
            None => (delta.version > 0, false),
            Some(e) => (delta.version > e.version, e.fenced),
        };
        if !dominates {
            return false;
        }
        let mut sites = delta.sites.clone();
        sites.sort();
        sites.dedup();
        map.insert(
            delta.doc.clone(),
            Entry {
                sites,
                fragmented: delta.fragmented,
                version: delta.version,
                fenced,
            },
        );
        self.epoch.fetch_max(delta.version, Ordering::SeqCst);
        true
    }

    /// Routes one operation: the single placement entry point the
    /// scheduler uses (Alg. 1 l. 12, generalized). Returns `None` when the
    /// document is unknown to the catalog.
    ///
    /// Structure is decided here — updates and fragment operations have no
    /// placement freedom — and only the read-replica choice on replicated
    /// documents is delegated to the installed [`PlacementPolicy`]. Any
    /// plan that collapses to "the coordinator alone" normalizes to
    /// [`RoutingPlan::Local`].
    pub fn route(&self, op: &OpSpec, ctx: &RoutingCtx<'_>) -> Option<RoutingPlan> {
        let (sites, fragmented) = {
            let map = self.map.read();
            let entry = map.get(&op.doc)?;
            (entry.sites.clone(), entry.fragmented)
        };
        if sites.is_empty() {
            // A registration with no sites is as unroutable as an unknown
            // document (and policies must never see an empty replica set).
            return None;
        }
        let solo_coordinator = sites.len() == 1 && sites[0] == ctx.coordinator;
        if fragmented {
            return Some(if solo_coordinator {
                RoutingPlan::Local
            } else {
                RoutingPlan::FragmentFanOut { sites }
            });
        }
        if op.is_update() || solo_coordinator {
            return Some(if solo_coordinator {
                RoutingPlan::Local
            } else {
                RoutingPlan::WriteAll { sites }
            });
        }
        // Read on a replicated document: the policy's call.
        Some(match self.policy.read().read_site(&op.doc, &sites, ctx) {
            ReadChoice::All => RoutingPlan::WriteAll { sites },
            ReadChoice::One(site) if site == ctx.coordinator => RoutingPlan::Local,
            ReadChoice::One(site) => {
                debug_assert!(sites.contains(&site), "policy chose a non-replica");
                RoutingPlan::ReadOne { site }
            }
        })
    }

    /// Routes a query of a **read-only** transaction: snapshot reads take
    /// no locks, so a single replica's answer always suffices and the
    /// plan is never `WriteAll`.
    ///
    /// * fragmented documents still fan out (each site holds a disjoint
    ///   piece of the logical document);
    /// * when the coordinator itself holds a replica the read stays
    ///   [`RoutingPlan::Local`] — zero messages — regardless of policy;
    /// * otherwise the installed policy picks one replica
    ///   ([`ReadChoice::All`] degrades to the first replica: with no
    ///   locks there is nothing for a fan-out read to agree on).
    ///
    /// Returns `None` when the document is unknown or has no sites, like
    /// [`Catalog::route`].
    pub fn route_snapshot_read(&self, op: &OpSpec, ctx: &RoutingCtx<'_>) -> Option<RoutingPlan> {
        debug_assert!(!op.is_update(), "snapshot routing is for queries only");
        let (sites, fragmented) = {
            let map = self.map.read();
            let entry = map.get(&op.doc)?;
            (entry.sites.clone(), entry.fragmented)
        };
        if sites.is_empty() {
            return None;
        }
        let solo_coordinator = sites.len() == 1 && sites[0] == ctx.coordinator;
        if fragmented {
            return Some(if solo_coordinator {
                RoutingPlan::Local
            } else {
                RoutingPlan::FragmentFanOut { sites }
            });
        }
        if sites.contains(&ctx.coordinator) {
            return Some(RoutingPlan::Local);
        }
        Some(match self.policy.read().read_site(&op.doc, &sites, ctx) {
            ReadChoice::One(site) if sites.contains(&site) => RoutingPlan::ReadOne { site },
            // `All` (or a stray non-replica choice) degrades to one
            // replica: a lock-free read has no reason to visit them all.
            _ => RoutingPlan::ReadOne { site: sites[0] },
        })
    }

    /// Raises the replica-copy fence on `doc`: schedulers pause new
    /// update executions on it until [`Catalog::unfence`]. Unknown
    /// documents are ignored (the fence is advisory, not placement).
    pub fn fence(&self, doc: &str) {
        if let Some(e) = self.map.write().get_mut(doc) {
            e.fenced = true;
        }
    }

    /// Lowers the replica-copy fence on `doc`.
    pub fn unfence(&self, doc: &str) {
        if let Some(e) = self.map.write().get_mut(doc) {
            e.fenced = false;
        }
    }

    /// True while `doc` is under a replica-copy fence.
    pub fn is_fenced(&self, doc: &str) -> bool {
        self.map.read().get(doc).map(|e| e.fenced).unwrap_or(false)
    }

    /// True when `doc` is registered as fragmented.
    pub fn is_fragmented(&self, doc: &str) -> bool {
        self.map
            .read()
            .get(doc)
            .map(|e| e.fragmented)
            .unwrap_or(false)
    }

    /// The replica sites of `doc` (empty when unknown).
    pub fn sites_of(&self, doc: &str) -> Vec<SiteId> {
        self.map
            .read()
            .get(doc)
            .map(|e| e.sites.clone())
            .unwrap_or_default()
    }

    /// True when `site` holds a replica of `doc`.
    pub fn holds(&self, site: SiteId, doc: &str) -> bool {
        self.map
            .read()
            .get(doc)
            .map(|e| e.sites.contains(&site))
            .unwrap_or(false)
    }

    /// All document names (sorted).
    pub fn documents(&self) -> Vec<String> {
        self.map.read().keys().cloned().collect()
    }

    /// Documents held by `site` (sorted).
    pub fn documents_at(&self, site: SiteId) -> Vec<String> {
        self.map
            .read()
            .iter()
            .filter(|(_, e)| e.sites.contains(&site))
            .map(|(d, _)| d.clone())
            .collect()
    }

    /// Renders the allocation as a table in the style of the paper's
    /// Fig. 8 (site → contents), versioned by the current epoch.
    ///
    /// `all_sites` is the cluster's full site set: sites holding nothing
    /// are listed as `(empty)` instead of silently disappearing, and
    /// sites known only to the catalog are appended even if missing from
    /// `all_sites`. Fragmented entries are marked with `[frag]` so they
    /// are distinguishable from replicated full copies.
    pub fn render_allocation(&self, all_sites: &[SiteId]) -> String {
        let map = self.map.read();
        let mut by_site: BTreeMap<SiteId, Vec<String>> = BTreeMap::new();
        for &s in all_sites {
            by_site.entry(s).or_default();
        }
        for (doc, entry) in map.iter() {
            let label = if entry.fragmented {
                format!("{doc}[frag]")
            } else {
                doc.clone()
            };
            for &s in &entry.sites {
                by_site.entry(s).or_default().push(label.clone());
            }
        }
        let mut out = format!("catalog epoch {}\n", self.epoch());
        for (site, docs) in by_site {
            if docs.is_empty() {
                out.push_str(&format!("{site}: (empty)\n"));
            } else {
                out.push_str(&format!("{site}: {}\n", docs.join(", ")));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::OpSpec;
    use dtx_xpath::{Query, UpdateOp};

    fn read(doc: &str) -> OpSpec {
        OpSpec::query(doc, Query::parse("/a/b").unwrap())
    }

    fn write(doc: &str) -> OpSpec {
        OpSpec::update(
            doc,
            UpdateOp::Change {
                target: Query::parse("/a/b").unwrap(),
                new_value: "x".into(),
            },
        )
    }

    #[test]
    fn register_and_lookup() {
        let c = Catalog::new();
        c.register("d1", &[SiteId(0), SiteId(1)]);
        c.register("d2", &[SiteId(1)]);
        assert_eq!(c.sites_of("d1"), vec![SiteId(0), SiteId(1)]);
        assert_eq!(c.sites_of("d2"), vec![SiteId(1)]);
        assert!(c.sites_of("ghost").is_empty());
        assert!(c.holds(SiteId(1), "d2"));
        assert!(!c.holds(SiteId(0), "d2"));
    }

    #[test]
    fn register_sorts_and_dedupes() {
        let c = Catalog::new();
        c.register("d", &[SiteId(3), SiteId(1), SiteId(3)]);
        assert_eq!(c.sites_of("d"), vec![SiteId(1), SiteId(3)]);
    }

    #[test]
    fn documents_at_site() {
        let c = Catalog::new();
        c.register("d1", &[SiteId(0), SiteId(1)]);
        c.register("d2", &[SiteId(1)]);
        assert_eq!(
            c.documents_at(SiteId(1)),
            vec!["d1".to_owned(), "d2".to_owned()]
        );
        assert_eq!(c.documents_at(SiteId(0)), vec!["d1".to_owned()]);
        assert_eq!(c.documents(), vec!["d1".to_owned(), "d2".to_owned()]);
    }

    #[test]
    fn fragmented_registration() {
        let c = Catalog::new();
        c.register_fragmented("x", &[SiteId(0), SiteId(1)]);
        c.register("y", &[SiteId(0)]);
        assert!(c.is_fragmented("x"));
        assert!(!c.is_fragmented("y"));
        assert!(!c.is_fragmented("ghost"));
        assert_eq!(c.sites_of("x").len(), 2);
    }

    #[test]
    fn every_mutation_bumps_the_epoch() {
        let c = Catalog::new();
        let e0 = c.epoch();
        c.register("d", &[SiteId(0)]);
        let e1 = c.epoch();
        assert!(e1 > e0);
        c.add_replica("d", SiteId(1)).unwrap();
        let e2 = c.epoch();
        assert!(e2 > e1);
        c.drop_replica("d", SiteId(0)).unwrap();
        assert!(c.epoch() > e2);
        c.register_fragmented("f", &[SiteId(0), SiteId(1)]);
        assert!(c.epoch() > e2 + 1);
    }

    #[test]
    fn per_document_versions_are_independent() {
        let c = Catalog::new();
        assert_eq!(c.version_of("ghost"), 0);
        c.register("d1", &[SiteId(0)]);
        c.register("d2", &[SiteId(1)]);
        let (v1, v2) = (c.version_of("d1"), c.version_of("d2"));
        assert!(v1 > 0 && v2 > v1, "versions are epoch values, monotone");
        // Mutating d2 leaves d1's version untouched (the whole point:
        // placement churn on one document must not stale-refuse in-flight
        // dispatches of another).
        c.add_replica("d2", SiteId(2)).unwrap();
        assert_eq!(c.version_of("d1"), v1);
        assert!(c.version_of("d2") > v2);
        // ... while the global epoch (snapshot stamp) still advances.
        let epoch_before = c.epoch();
        c.drop_replica("d2", SiteId(1)).unwrap();
        assert!(c.epoch() > epoch_before);
        assert_eq!(c.version_of("d1"), v1);
        // Re-registering a document refreshes its version.
        c.register("d1", &[SiteId(0), SiteId(1)]);
        assert!(c.version_of("d1") > v1);
        // Idempotent mutations leave the version alone.
        let v2 = c.version_of("d2");
        c.add_replica("d2", SiteId(2)).unwrap();
        assert_eq!(c.version_of("d2"), v2);
    }

    #[test]
    fn add_and_drop_replica_edit_the_set() {
        let c = Catalog::new();
        c.register("d", &[SiteId(0)]);
        c.add_replica("d", SiteId(2)).unwrap();
        assert_eq!(c.sites_of("d"), vec![SiteId(0), SiteId(2)]);
        // Idempotent add: no epoch bump.
        let e = c.epoch();
        c.add_replica("d", SiteId(2)).unwrap();
        assert_eq!(c.epoch(), e);
        c.drop_replica("d", SiteId(0)).unwrap();
        assert_eq!(c.sites_of("d"), vec![SiteId(2)]);
        // Idempotent drop: no epoch bump.
        let e = c.epoch();
        c.drop_replica("d", SiteId(0)).unwrap();
        assert_eq!(c.epoch(), e);
        // The last replica is protected.
        assert!(c.drop_replica("d", SiteId(2)).is_err());
        // Unknown / fragmented documents are rejected.
        assert!(c.add_replica("ghost", SiteId(0)).is_err());
        c.register_fragmented("f", &[SiteId(0), SiteId(1)]);
        assert!(c.add_replica("f", SiteId(2)).is_err());
        assert!(c.drop_replica("f", SiteId(0)).is_err());
    }

    #[test]
    fn route_unknown_document_is_none() {
        let c = Catalog::new();
        assert_eq!(c.route(&read("ghost"), &RoutingCtx::new(SiteId(0))), None);
        // An empty registration is equally unroutable (and must not reach
        // a policy, whose replica set is contractually non-empty).
        c.register("empty", &[]);
        for kind in PolicyKind::ALL {
            c.set_policy(kind.instantiate());
            assert_eq!(c.route(&read("empty"), &RoutingCtx::new(SiteId(0))), None);
        }
    }

    #[test]
    fn route_normalizes_solo_coordinator_to_local() {
        let c = Catalog::new();
        c.register("d", &[SiteId(0)]);
        c.register_fragmented("f", &[SiteId(0)]);
        let ctx = RoutingCtx::new(SiteId(0));
        assert_eq!(c.route(&read("d"), &ctx), Some(RoutingPlan::Local));
        assert_eq!(c.route(&write("d"), &ctx), Some(RoutingPlan::Local));
        assert_eq!(c.route(&read("f"), &ctx), Some(RoutingPlan::Local));
    }

    #[test]
    fn route_updates_always_write_all() {
        let c = Catalog::new();
        c.register("d", &[SiteId(0), SiteId(1)]);
        c.set_policy(PolicyKind::Locality.instantiate());
        assert_eq!(
            c.route(&write("d"), &RoutingCtx::new(SiteId(0))),
            Some(RoutingPlan::WriteAll {
                sites: vec![SiteId(0), SiteId(1)]
            })
        );
    }

    #[test]
    fn route_fragments_always_fan_out() {
        let c = Catalog::new();
        c.register_fragmented("f", &[SiteId(0), SiteId(1), SiteId(2)]);
        c.set_policy(PolicyKind::RoundRobin.instantiate());
        let plan = c.route(&read("f"), &RoutingCtx::new(SiteId(0))).unwrap();
        assert_eq!(
            plan,
            RoutingPlan::FragmentFanOut {
                sites: vec![SiteId(0), SiteId(1), SiteId(2)]
            }
        );
        assert!(plan.is_fragment_fan_out());
    }

    #[test]
    fn route_replicated_read_follows_policy() {
        let c = Catalog::new();
        c.register("d", &[SiteId(0), SiteId(1), SiteId(2)]);
        // Default (primary): everywhere.
        assert_eq!(
            c.route(&read("d"), &RoutingCtx::new(SiteId(9))),
            Some(RoutingPlan::WriteAll {
                sites: vec![SiteId(0), SiteId(1), SiteId(2)]
            })
        );
        // Locality from a replica-holding coordinator: local, no messages.
        c.set_policy(PolicyKind::Locality.instantiate());
        assert_eq!(
            c.route(&read("d"), &RoutingCtx::new(SiteId(1))),
            Some(RoutingPlan::Local)
        );
        // Locality from elsewhere: one replica serves the read.
        assert_eq!(
            c.route(&read("d"), &RoutingCtx::new(SiteId(9))),
            Some(RoutingPlan::ReadOne { site: SiteId(0) })
        );
        assert_eq!(c.policy_name(), "locality");
    }

    #[test]
    fn snapshot_read_routing_never_writes_all() {
        let c = Catalog::new();
        c.register("d", &[SiteId(0), SiteId(1), SiteId(2)]);
        // Default (primary) policy answers All for locked reads — the
        // snapshot route degrades that to one replica.
        assert_eq!(
            c.route_snapshot_read(&read("d"), &RoutingCtx::new(SiteId(9))),
            Some(RoutingPlan::ReadOne { site: SiteId(0) })
        );
        // A replica-holding coordinator reads locally: zero messages.
        assert_eq!(
            c.route_snapshot_read(&read("d"), &RoutingCtx::new(SiteId(1))),
            Some(RoutingPlan::Local)
        );
        // A One-policy still picks its replica.
        c.set_policy(PolicyKind::Locality.instantiate());
        assert_eq!(
            c.route_snapshot_read(&read("d"), &RoutingCtx::new(SiteId(9))),
            Some(RoutingPlan::ReadOne { site: SiteId(0) })
        );
        // Fragmented documents still fan out (disjoint pieces).
        c.register_fragmented("f", &[SiteId(0), SiteId(1)]);
        assert_eq!(
            c.route_snapshot_read(&read("f"), &RoutingCtx::new(SiteId(2))),
            Some(RoutingPlan::FragmentFanOut {
                sites: vec![SiteId(0), SiteId(1)]
            })
        );
        c.register_fragmented("f1", &[SiteId(0)]);
        assert_eq!(
            c.route_snapshot_read(&read("f1"), &RoutingCtx::new(SiteId(0))),
            Some(RoutingPlan::Local)
        );
        // Unknown / empty entries stay unroutable.
        assert_eq!(
            c.route_snapshot_read(&read("ghost"), &RoutingCtx::new(SiteId(0))),
            None
        );
        c.register("empty", &[]);
        assert_eq!(
            c.route_snapshot_read(&read("empty"), &RoutingCtx::new(SiteId(0))),
            None
        );
    }

    #[test]
    fn fence_raises_and_lowers_without_touching_versions() {
        let c = Catalog::new();
        c.register("d", &[SiteId(0)]);
        let v = c.version_of("d");
        let e = c.epoch();
        assert!(!c.is_fenced("d"));
        c.fence("d");
        assert!(c.is_fenced("d"));
        c.unfence("d");
        assert!(!c.is_fenced("d"));
        assert_eq!(c.version_of("d"), v, "fencing is not a placement change");
        assert_eq!(c.epoch(), e);
        // Unknown documents: advisory no-op.
        c.fence("ghost");
        assert!(!c.is_fenced("ghost"));
    }

    #[test]
    fn allocation_rendering_lists_empty_sites_and_marks_fragments() {
        let c = Catalog::new();
        c.register("d1", &[SiteId(0)]);
        c.register("d2", &[SiteId(0), SiteId(1)]);
        c.register_fragmented("fx", &[SiteId(1)]);
        let r = c.render_allocation(&[SiteId(0), SiteId(1), SiteId(2)]);
        assert!(r.contains(&format!("catalog epoch {}", c.epoch())));
        assert!(r.contains("s0: d1, d2"));
        assert!(r.contains("s1: d2, fx[frag]"));
        assert!(r.contains("s2: (empty)"), "empty site must be listed: {r}");
    }
}
