//! The replica catalog: which sites hold which documents.
//!
//! DTX "operates on totally or partially replicated XML data" (§2). The
//! catalog is the cluster-wide mapping from document (or fragment) name to
//! the set of sites holding a replica; the coordinator consults it to
//! decide where an operation must execute (Algorithm 1 l. 12
//! `sites.get_participants(operation.get_sites())`).

use dtx_net::SiteId;
use parking_lot::RwLock;
use std::collections::BTreeMap;

/// Thread-safe document → replica-sites mapping.
///
/// A document is either **replicated** (every listed site holds a full
/// copy; results agree and one site's answer suffices) or **fragmented**
/// (each listed site holds a disjoint fragment of the logical document;
/// an operation executes on every fragment and the coordinator merges
/// the per-site results).
#[derive(Debug, Default)]
pub struct Catalog {
    map: RwLock<BTreeMap<String, (Vec<SiteId>, bool)>>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) the replica set of `doc` (full copies).
    /// Site lists are kept sorted and deduplicated.
    pub fn register(&self, doc: &str, sites: &[SiteId]) {
        let mut sites = sites.to_vec();
        sites.sort();
        sites.dedup();
        self.map.write().insert(doc.to_owned(), (sites, false));
    }

    /// Registers `doc` as horizontally fragmented over `sites` (each site
    /// holds a disjoint fragment under the same logical name).
    pub fn register_fragmented(&self, doc: &str, sites: &[SiteId]) {
        let mut sites = sites.to_vec();
        sites.sort();
        sites.dedup();
        self.map.write().insert(doc.to_owned(), (sites, true));
    }

    /// True when `doc` is registered as fragmented.
    pub fn is_fragmented(&self, doc: &str) -> bool {
        self.map.read().get(doc).map(|(_, f)| *f).unwrap_or(false)
    }

    /// The replica sites of `doc` (empty when unknown).
    pub fn sites_of(&self, doc: &str) -> Vec<SiteId> {
        self.map
            .read()
            .get(doc)
            .map(|(s, _)| s.clone())
            .unwrap_or_default()
    }

    /// True when `site` holds a replica of `doc`.
    pub fn holds(&self, site: SiteId, doc: &str) -> bool {
        self.map
            .read()
            .get(doc)
            .map(|(s, _)| s.contains(&site))
            .unwrap_or(false)
    }

    /// All document names (sorted).
    pub fn documents(&self) -> Vec<String> {
        self.map.read().keys().cloned().collect()
    }

    /// Documents held by `site` (sorted).
    pub fn documents_at(&self, site: SiteId) -> Vec<String> {
        self.map
            .read()
            .iter()
            .filter(|(_, (sites, _))| sites.contains(&site))
            .map(|(d, _)| d.clone())
            .collect()
    }

    /// Renders the allocation as a table in the style of the paper's
    /// Fig. 8 (site → contents).
    pub fn render_allocation(&self) -> String {
        let map = self.map.read();
        let mut by_site: BTreeMap<SiteId, Vec<&str>> = BTreeMap::new();
        for (doc, (sites, _)) in map.iter() {
            for &s in sites {
                by_site.entry(s).or_default().push(doc);
            }
        }
        let mut out = String::new();
        for (site, docs) in by_site {
            out.push_str(&format!("{site}: {}\n", docs.join(", ")));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let c = Catalog::new();
        c.register("d1", &[SiteId(0), SiteId(1)]);
        c.register("d2", &[SiteId(1)]);
        assert_eq!(c.sites_of("d1"), vec![SiteId(0), SiteId(1)]);
        assert_eq!(c.sites_of("d2"), vec![SiteId(1)]);
        assert!(c.sites_of("ghost").is_empty());
        assert!(c.holds(SiteId(1), "d2"));
        assert!(!c.holds(SiteId(0), "d2"));
    }

    #[test]
    fn register_sorts_and_dedupes() {
        let c = Catalog::new();
        c.register("d", &[SiteId(3), SiteId(1), SiteId(3)]);
        assert_eq!(c.sites_of("d"), vec![SiteId(1), SiteId(3)]);
    }

    #[test]
    fn documents_at_site() {
        let c = Catalog::new();
        c.register("d1", &[SiteId(0), SiteId(1)]);
        c.register("d2", &[SiteId(1)]);
        assert_eq!(
            c.documents_at(SiteId(1)),
            vec!["d1".to_owned(), "d2".to_owned()]
        );
        assert_eq!(c.documents_at(SiteId(0)), vec!["d1".to_owned()]);
        assert_eq!(c.documents(), vec!["d1".to_owned(), "d2".to_owned()]);
    }

    #[test]
    fn fragmented_registration() {
        let c = Catalog::new();
        c.register_fragmented("x", &[SiteId(0), SiteId(1)]);
        c.register("y", &[SiteId(0)]);
        assert!(c.is_fragmented("x"));
        assert!(!c.is_fragmented("y"));
        assert!(!c.is_fragmented("ghost"));
        assert_eq!(c.sites_of("x").len(), 2);
    }

    #[test]
    fn allocation_rendering() {
        let c = Catalog::new();
        c.register("d1", &[SiteId(0)]);
        c.register("d2", &[SiteId(0), SiteId(1)]);
        let r = c.render_allocation();
        assert!(r.contains("s0: d1, d2"));
        assert!(r.contains("s1: d2"));
    }
}
