//! DTX instances and clusters.
//!
//! A [`DtxInstance`] is the per-site assembly of the paper's Fig. 1
//! architecture: a *Listener* (the control channel clients submit
//! through), a *TransactionManager* (the scheduler thread with its lock
//! manager) and a *DataManager* (the storage backend inside the lock
//! manager). A [`Cluster`] bootstraps N instances over a shared simulated
//! network, a replica catalog, a transaction-id generator and a metrics
//! collector — the whole "set of sites S = {S1..SN}" of §3.1.

use crate::catalog::Catalog;
use crate::lockmgr::{LockManager, OpCostModel};
use crate::metrics::Metrics;
use crate::msg::Message;
use crate::op::{TxnOutcome, TxnSpec};
use crate::routing::PolicyKind;
use crate::scheduler::{
    Control, CrashPoint, DocShipment, FaultHooks, RecoveredState, Scheduler, SchedulerConfig,
};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use dtx_dataguide::DataGuide;
use dtx_locks::txn::TxnIdGen;
use dtx_locks::{ProtocolKind, TxnId};
use dtx_net::{LatencyModel, NetConfig, Network, SiteId, Topology};
use dtx_storage::{CostModel, MemStore, Wal, WalRecord};
use dtx_trace::{EventKind, Tracer};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Cluster-wide configuration.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Number of sites.
    pub sites: u16,
    /// Concurrency-control protocol run by every instance.
    pub protocol: ProtocolKind,
    /// Network latency model (default: zero — synchronous delivery; use
    /// [`ClusterConfig::with_lan_profile`] for experiment realism).
    pub latency: LatencyModel,
    /// Storage I/O cost model (default: free).
    pub storage_cost: CostModel,
    /// Per-operation processing/lock-management cost model (default:
    /// free; [`ClusterConfig::with_lan_profile`] enables the calibrated
    /// one).
    pub op_cost: OpCostModel,
    /// Scheduler tuning.
    pub scheduler: SchedulerConfig,
    /// Network delivery tuning: the reactor's worker-pool bound and
    /// timer-wheel geometry (default: `min(8, cores)` workers — the
    /// delivery thread count is O(workers), not O(sites²)).
    pub net: NetConfig,
    /// Placement policy installed in the catalog (how reads are spread
    /// over replicas; default: [`PolicyKind::Primary`], the paper's
    /// everywhere-read behavior).
    pub policy: PolicyKind,
    /// Master seed (drives retry jitter and network jitter).
    pub seed: u64,
    /// Whether the cluster records a causal event trace: one bounded
    /// per-site ring fed by the network, the WAL, the lock table and the
    /// scheduler (default: off — every sink is a no-op and the hot paths
    /// skip even the event construction).
    pub trace: bool,
    /// Per-site trace ring capacity (events), used when `trace` is on.
    pub trace_capacity: usize,
}

impl ClusterConfig {
    /// A test-friendly config: zero latency, free storage.
    pub fn new(sites: u16, protocol: ProtocolKind) -> Self {
        ClusterConfig {
            sites,
            protocol,
            latency: LatencyModel::zero(),
            storage_cost: CostModel::zero(),
            op_cost: OpCostModel::zero(),
            scheduler: SchedulerConfig::default(),
            net: NetConfig::default(),
            policy: PolicyKind::default(),
            seed: 0xD7C5,
            trace: false,
            trace_capacity: dtx_trace::DEFAULT_CAPACITY,
        }
    }

    /// Experiment profile: 100 Mbit/s LAN latency and the default storage
    /// cost model — the substituted equivalents of the paper's testbed.
    pub fn with_lan_profile(mut self) -> Self {
        self.latency = LatencyModel::lan(self.seed);
        self.storage_cost = CostModel::default();
        self.op_cost = OpCostModel::realistic();
        self
    }

    /// Sets the deadlock-detection period.
    pub fn with_deadlock_period(mut self, period: Duration) -> Self {
        self.scheduler.deadlock_period = period;
        self
    }

    /// Selects the placement policy installed in the catalog.
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Bounds the network reactor's delivery-worker pool.
    pub fn with_net_workers(mut self, workers: usize) -> Self {
        self.net = self.net.with_workers(workers);
        self
    }

    /// Sets the group-commit flush window: termination decisions may be
    /// held in the outbox for up to this latency budget (while fewer
    /// than the configured pending threshold have accumulated) to form
    /// larger [`crate::msg::Message::TerminateBatch`]es. Zero (the
    /// default) flushes every event-loop tick.
    pub fn with_flush_window(mut self, window: Duration) -> Self {
        self.scheduler.flush_window = window;
        self
    }

    /// Arms causal event tracing (see [`Cluster::tracer`]).
    pub fn with_tracing(mut self) -> Self {
        self.trace = true;
        self
    }
}

/// One DTX instance: the Listener side of a scheduler thread.
pub struct DtxInstance {
    /// This instance's site id.
    pub site: SiteId,
    control: Sender<Control>,
    handle: Option<JoinHandle<()>>,
}

impl DtxInstance {
    /// Submits a transaction, returning the outcome channel immediately.
    pub fn submit_async(&self, spec: TxnSpec) -> Receiver<TxnOutcome> {
        let (reply, rx) = bounded(1);
        let _ = self.control.send(Control::Submit { spec, reply });
        rx
    }

    /// Submits a transaction and blocks for its outcome.
    pub fn submit(&self, spec: TxnSpec) -> TxnOutcome {
        self.submit_async(spec).recv().expect("scheduler alive")
    }

    /// Loads a document (name + raw XML) into this instance's store.
    pub fn load_document(&self, name: &str, xml: &str) -> Result<(), String> {
        self.load_document_with_guide(name, xml, None)
    }

    /// Loads a document with an optional pre-built DataGuide (shipped by
    /// a source replica): the instance adopts the guide instead of
    /// rebuilding one from the parsed data.
    pub fn load_document_with_guide(
        &self,
        name: &str,
        xml: &str,
        guide: Option<DataGuide>,
    ) -> Result<(), String> {
        let (ack, rx) = bounded(1);
        self.control
            .send(Control::LoadDoc {
                name: name.to_owned(),
                xml: xml.to_owned(),
                guide: guide.map(Box::new),
                ack,
            })
            .map_err(|_| "scheduler is down".to_owned())?;
        rx.recv().map_err(|_| "scheduler is down".to_owned())?
    }

    /// Installs an already-built document (streaming ingestion: tree and
    /// guide come straight from event sinks; nothing is parsed).
    pub fn load_built(
        &self,
        name: &str,
        doc: dtx_xml::Document,
        guide: Option<DataGuide>,
    ) -> Result<(), String> {
        let (ack, rx) = bounded(1);
        self.control
            .send(Control::LoadBuilt {
                name: name.to_owned(),
                doc: Box::new(doc),
                guide: guide.map(Box::new),
                ack,
            })
            .map_err(|_| "scheduler is down".to_owned())?;
        rx.recv().map_err(|_| "scheduler is down".to_owned())?
    }

    /// Serializes the last committed state of a document hosted at this
    /// instance plus its DataGuide (the shipment sent to a new replica).
    pub fn dump_document(&self, name: &str) -> Result<DocShipment, String> {
        let (reply, rx) = bounded(1);
        self.control
            .send(Control::DumpDoc {
                name: name.to_owned(),
                reply,
            })
            .map_err(|_| "scheduler is down".to_owned())?;
        rx.recv().map_err(|_| "scheduler is down".to_owned())?
    }

    /// Asks this instance's scheduler whether `name` currently has no
    /// applied, not-yet-terminated updates (the replica copy fence's
    /// drain poll; see [`Cluster::add_replica`]).
    pub fn doc_quiescent(&self, name: &str) -> Result<bool, String> {
        let (reply, rx) = bounded(1);
        self.control
            .send(Control::DocQuiesced {
                name: name.to_owned(),
                reply,
            })
            .map_err(|_| "scheduler is down".to_owned())?;
        rx.recv().map_err(|_| "scheduler is down".to_owned())
    }

    fn shutdown(&mut self) {
        let _ = self.control.send(Control::Shutdown);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// A running DTX cluster.
pub struct Cluster {
    instances: Vec<DtxInstance>,
    net: Network<Message>,
    catalog: Arc<Catalog>,
    metrics: Arc<Metrics>,
    config: ClusterConfig,
    idgen: Arc<TxnIdGen>,
    /// Per-site durable registry: each site's WAL, owned HERE so a killed
    /// scheduler thread loses its memory but never its log — the
    /// simulation's stable storage.
    durables: Vec<Arc<Wal>>,
    /// Per-site kill switches and armed crash points.
    faults: Vec<FaultHooks>,
    /// The causal event tracer, when [`ClusterConfig::trace`] armed one.
    /// Shared with the network; each site's scheduler, lock manager and
    /// WAL hold sinks into its per-site rings.
    tracer: Option<Arc<Tracer>>,
    /// Round-robin cursor of [`Cluster::submit_round_robin`]: the
    /// multi-coordinator submission path spreads successive transactions
    /// over every site.
    next_coord: AtomicUsize,
}

/// What one site restart replayed — reporting surface of
/// [`Cluster::restart_site`] and the recovery benchmark's measurement.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Log records replayed.
    pub records: usize,
    /// Log bytes replayed.
    pub bytes: u64,
    /// Document images rebuilt.
    pub docs: usize,
    /// Redo records re-applied.
    pub redo_applied: usize,
    /// Transactions whose local commit was replayed to completion.
    pub committed: usize,
    /// Transactions rolled back by replay (logged aborts plus
    /// presumed-abort leftovers).
    pub aborted: usize,
    /// Transactions left in doubt (prepared, no outcome on the log);
    /// the restarted scheduler resolves them against the coordinator.
    pub in_doubt: usize,
    /// Commit decisions found without an `End`: re-delivered to their
    /// participants by the restarted coordinator.
    pub undelivered: usize,
    /// Wall-clock replay time.
    pub elapsed: Duration,
}

/// Replays a WAL snapshot into a fresh lock manager (the WAL must NOT be
/// attached to it yet — replay repeats history, it must not re-log it).
/// Returns the 2PC state that survives into the restarted scheduler plus
/// the replay counters (caller fills in sizes and timing).
fn replay_wal(
    records: &[WalRecord],
    lockmgr: &mut LockManager,
) -> (RecoveredState, RecoveryReport) {
    let mut report = RecoveryReport::default();
    // Document images under assembly: name → (guide wire, XML so far).
    let mut images: HashMap<String, (String, String)> = HashMap::new();
    // Transactions with replayed, un-terminated effects.
    let mut live: HashSet<TxnId> = HashSet::new();
    // Prepared records without an outcome yet: txn → (coordinator, peers).
    let mut prepared: HashMap<TxnId, (SiteId, Vec<SiteId>)> = HashMap::new();
    // Commit decisions without an `End` yet: txn → owed participants.
    let mut decided: HashMap<TxnId, Vec<SiteId>> = HashMap::new();
    for rec in records {
        match rec {
            WalRecord::DocBegin { doc, guide_wire } => {
                images.insert(doc.clone(), (guide_wire.clone(), String::new()));
            }
            WalRecord::DocChunk { doc, xml } => {
                if let Some((_, acc)) = images.get_mut(doc) {
                    acc.push_str(xml);
                }
            }
            WalRecord::DocEnd { doc } => {
                if let Some((guide_wire, xml)) = images.remove(doc) {
                    let guide = DataGuide::from_wire(&guide_wire).ok();
                    if let Ok(parsed) = dtx_xml::parse(&xml) {
                        if lockmgr.install_document(doc, parsed, guide).is_ok() {
                            report.docs += 1;
                        }
                    }
                }
            }
            WalRecord::Applied {
                txn,
                doc,
                op_seq,
                op,
            } => {
                if lockmgr.replay_apply(*txn, doc, *op_seq, op) {
                    report.redo_applied += 1;
                    live.insert(*txn);
                }
            }
            WalRecord::Undone { txn, op_seq } => {
                let _ = lockmgr.undo_op(*txn, *op_seq);
            }
            WalRecord::Prepared {
                txn,
                coordinator,
                participants,
            } => {
                prepared.insert(*txn, (*coordinator, participants.clone()));
            }
            WalRecord::Decision { txn, participants } => {
                decided.insert(*txn, participants.clone());
            }
            WalRecord::Committed { txn } => {
                prepared.remove(txn);
                if live.remove(txn) {
                    let _ = lockmgr.commit_local(*txn);
                    report.committed += 1;
                }
            }
            WalRecord::Aborted { txn } => {
                prepared.remove(txn);
                if live.remove(txn) {
                    let _ = lockmgr.abort_local(*txn);
                    report.aborted += 1;
                }
            }
            WalRecord::End { txn } => {
                decided.remove(txn);
            }
        }
    }
    // End of log. A decision without `End` commits locally (the decision
    // was forced, so it holds) and is re-delivered to the participants
    // still owed it — re-commits there are idempotent no-ops.
    let mut undelivered: Vec<(TxnId, Vec<SiteId>)> = Vec::new();
    for (txn, participants) in decided {
        prepared.remove(&txn);
        if live.remove(&txn) {
            let _ = lockmgr.commit_local(txn);
            report.committed += 1;
        }
        undelivered.push((txn, participants));
    }
    // Prepared without an outcome: genuinely in doubt. The effects stay
    // applied (the restarted scheduler fences their documents) until the
    // termination protocol resolves them.
    let mut in_doubt: Vec<(TxnId, SiteId, Vec<SiteId>)> = Vec::new();
    for (txn, (coordinator, peers)) in prepared {
        live.remove(&txn);
        in_doubt.push((txn, coordinator, peers));
    }
    // Everything else that was live at the crash never prepared and never
    // decided: presumed abort, roll it back.
    for txn in live {
        let _ = lockmgr.abort_local(txn);
        report.aborted += 1;
    }
    in_doubt.sort_by_key(|(t, _, _)| *t);
    undelivered.sort_by_key(|(t, _)| *t);
    (
        RecoveredState {
            in_doubt,
            undelivered,
        },
        report,
    )
}

impl Cluster {
    /// Boots `config.sites` instances, each with its own scheduler thread,
    /// in-memory store and lock manager, sharing one simulated network.
    pub fn start(config: ClusterConfig) -> Self {
        let mut latency = config.latency;
        latency.seed = config.seed;
        let net: Network<Message> = Network::with_config(latency, Topology::default(), config.net);
        let catalog = Arc::new(Catalog::new());
        catalog.set_policy(config.policy.instantiate());
        let idgen = Arc::new(TxnIdGen::new());
        let metrics = Arc::new(Metrics::new());
        let tracer = config
            .trace
            .then(|| Arc::new(Tracer::new(config.sites as usize, config.trace_capacity)));
        net.set_tracer(tracer.clone());
        let mut instances = Vec::with_capacity(config.sites as usize);
        let mut durables = Vec::with_capacity(config.sites as usize);
        let mut faults = Vec::with_capacity(config.sites as usize);
        for i in 0..config.sites {
            let site = SiteId(i);
            let endpoint = net.register(site);
            let (control_tx, control_rx): (Sender<Control>, Receiver<Control>) = unbounded();
            let store = MemStore::new(config.storage_cost);
            let mut lockmgr = LockManager::with_cost(
                config.protocol.instantiate(),
                Box::new(store),
                config.op_cost,
            );
            let wal = Arc::new(Wal::new());
            lockmgr.set_wal(Arc::clone(&wal));
            if let Some(t) = &tracer {
                wal.set_trace(t.sink(i));
                lockmgr.set_trace(t.sink(i));
            }
            let hooks = FaultHooks::default();
            let mut sched_cfg = config.scheduler;
            sched_cfg.seed = config.seed.wrapping_add(i as u64);
            let mut scheduler = Scheduler::new(
                site,
                net.clone(),
                endpoint,
                control_rx,
                catalog.clone(),
                lockmgr,
                idgen.clone(),
                metrics.clone(),
                sched_cfg,
                Arc::clone(&wal),
                hooks.clone(),
                RecoveredState::default(),
            );
            if let Some(t) = &tracer {
                scheduler.set_trace(t.sink(i));
            }
            let handle = std::thread::Builder::new()
                .name(format!("dtx-scheduler-{site}"))
                .spawn(move || scheduler.run())
                .expect("spawn scheduler");
            instances.push(DtxInstance {
                site,
                control: control_tx,
                handle: Some(handle),
            });
            durables.push(wal);
            faults.push(hooks);
        }
        Cluster {
            instances,
            net,
            catalog,
            metrics,
            config,
            idgen,
            durables,
            faults,
            tracer,
            next_coord: AtomicUsize::new(0),
        }
    }

    /// The causal event tracer, when [`ClusterConfig::trace`] armed one.
    /// Call [`dtx_trace::Tracer::collect`] after quiescing (or after
    /// [`Cluster::shutdown`] via a pre-shutdown clone) to get the merged
    /// timeline.
    pub fn tracer(&self) -> Option<Arc<Tracer>> {
        self.tracer.clone()
    }

    /// The cluster's configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The site ids.
    pub fn sites(&self) -> Vec<SiteId> {
        self.instances.iter().map(|i| i.site).collect()
    }

    /// Registers `doc` (raw XML) at the given replica sites and updates
    /// the catalog. With `sites` = all sites this is total replication;
    /// a singleton is an unreplicated placement.
    pub fn load_document(&self, name: &str, xml: &str, sites: &[SiteId]) -> Result<(), String> {
        if sites.is_empty() {
            return Err("replica set must not be empty".into());
        }
        for &s in sites {
            let inst = self
                .instances
                .iter()
                .find(|i| i.site == s)
                .ok_or_else(|| format!("unknown site {s}"))?;
            inst.load_document(name, xml)?;
        }
        self.catalog.register(name, sites);
        Ok(())
    }

    /// Registers `doc` as horizontally fragmented: each `(site, xml)`
    /// pair loads that site's fragment under the shared logical name.
    /// Operations on `doc` will execute on every fragment and merge.
    pub fn load_fragments(&self, name: &str, parts: &[(SiteId, String)]) -> Result<(), String> {
        if parts.is_empty() {
            return Err("fragment set must not be empty".into());
        }
        let mut sites = Vec::with_capacity(parts.len());
        for (s, xml) in parts {
            let inst = self
                .instances
                .iter()
                .find(|i| i.site == *s)
                .ok_or_else(|| format!("unknown site {s}"))?;
            inst.load_document(name, xml)?;
            sites.push(*s);
        }
        self.catalog.register_fragmented(name, &sites);
        Ok(())
    }

    /// Registers `doc` as horizontally fragmented from **already-built**
    /// per-site documents and guides (the streaming ingestion path: no
    /// XML strings exist, nothing is parsed, no guide is rebuilt).
    pub fn load_built_fragments(
        &self,
        name: &str,
        parts: Vec<(SiteId, dtx_xml::Document, DataGuide)>,
    ) -> Result<(), String> {
        if parts.is_empty() {
            return Err("fragment set must not be empty".into());
        }
        let mut sites = Vec::with_capacity(parts.len());
        for (s, doc, guide) in parts {
            let inst = self
                .instances
                .iter()
                .find(|i| i.site == s)
                .ok_or_else(|| format!("unknown site {s}"))?;
            inst.load_built(name, doc, Some(guide))?;
            sites.push(s);
        }
        self.catalog.register_fragmented(name, &sites);
        Ok(())
    }

    /// Online re-replication: copies the replicated document `doc` to
    /// `to` — **shipping the source site's DataGuide alongside the
    /// data**, so the new replica serves structure-matched reads
    /// immediately instead of rebuilding the guide from the document —
    /// and publishes the new replica in the catalog (epoch + document
    /// version bump).
    ///
    /// Works under traffic: the data is loaded at `to` *before* the
    /// catalog mutation, so any read routed to the new replica finds it;
    /// in-flight dispatches routed under the old placement version are
    /// refused as stale by participants and transparently re-routed by
    /// their coordinators. Placement mutations of *other* documents do
    /// not disturb in-flight dispatches of `doc` (per-document
    /// versioning).
    ///
    /// **Copy fence:** before dumping, the document is fenced in the
    /// catalog — updates that have not yet touched `doc` park instead of
    /// starting (transactions with applied updates ride through so the
    /// drain cannot livelock) — and the source site is polled until no
    /// in-flight update holds undo state on `doc`. Only then is the
    /// committed state dumped, loaded at `to` and the replica published;
    /// the fence is lifted afterwards and parked updates resume against
    /// the *new* replica set. An update whose write-all had partially
    /// applied when the fence rose is refused at the source, undone at
    /// the sites it reached and retried after the publish — no write can
    /// land on the old replica set after the copy, so replicas cannot
    /// diverge.
    pub fn add_replica(&self, doc: &str, to: SiteId) -> Result<(), String> {
        if self.catalog.is_fragmented(doc) {
            return Err(format!("document {doc:?} is fragmented, not replicated"));
        }
        if self.catalog.holds(to, doc) {
            return Ok(());
        }
        let sites = self.catalog.sites_of(doc);
        let src = *sites
            .first()
            .ok_or_else(|| format!("document {doc:?} unknown to catalog"))?;
        self.catalog.fence(doc);
        let result = self.copy_replica(doc, src, to);
        self.catalog.unfence(doc);
        result
    }

    /// The fenced section of [`Cluster::add_replica`]: drain, dump, load,
    /// publish. Factored out so the fence is lifted on every exit path.
    fn copy_replica(&self, doc: &str, src: SiteId, to: SiteId) -> Result<(), String> {
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while !self.instance(src).doc_quiescent(doc)? {
            if std::time::Instant::now() >= deadline {
                return Err(format!(
                    "copy fence timed out draining in-flight updates on {doc:?}"
                ));
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let shipment = self.instance(src).dump_document(doc)?;
        let guide = DataGuide::from_wire(&shipment.guide_wire)
            .map_err(|e| format!("shipped guide corrupt: {e}"))?;
        self.instance(to)
            .load_document_with_guide(doc, &shipment.xml, Some(guide))?;
        self.catalog.add_replica(doc, to)
    }

    /// Online re-replication: unpublishes the replica of `doc` at `from`
    /// (epoch bump), then **evicts the site's copy** — the in-memory
    /// document, the store copy, and every retained snapshot version, so
    /// `snapshots_live` / `snapshot_bytes` fall back down after the drop.
    /// Dropping the last replica is refused. Eviction waits for in-flight
    /// updates on the old placement to drain; readers mid-transaction are
    /// safe regardless, because a pinned [`dtx_dataguide::Snapshot`] owns
    /// `Arc`s to its data — eviction only drops the store's references.
    pub fn drop_replica(&self, doc: &str, from: SiteId) -> Result<(), String> {
        self.catalog.drop_replica(doc, from)?;
        // Unpublished: new routes no longer reach `from`. Drain whatever
        // was already in flight there before releasing the copy.
        let deadline = Instant::now() + Duration::from_secs(30);
        while !self.instance(from).doc_quiescent(doc)? {
            if Instant::now() >= deadline {
                return Err(format!(
                    "drop_replica timed out draining in-flight updates on {doc:?}"
                ));
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let (ack, rx) = bounded(1);
        self.instance(from)
            .control
            .send(Control::EvictDoc {
                name: doc.to_owned(),
                ack,
            })
            .map_err(|_| "scheduler is down".to_owned())?;
        rx.recv().map_err(|_| "scheduler is down".to_owned())?;
        Ok(())
    }

    // -----------------------------------------------------------------
    // Fault injection & recovery
    // -----------------------------------------------------------------

    /// Kills `site`'s scheduler mid-flight: the kill switch flips, the
    /// thread exits at its next loop iteration **without** flushing,
    /// aborting, or replying to anything, and this call joins it. All
    /// in-memory state (lock table, documents, snapshots, in-flight 2PC
    /// tables) dies with the thread; only the cluster-owned WAL survives.
    pub fn kill_site(&mut self, site: SiteId) {
        let idx = self.index_of(site);
        self.faults[idx].kill.store(true, Ordering::Relaxed);
        if let Some(h) = self.instances[idx].handle.take() {
            let _ = h.join();
            self.record_crash(site);
        }
    }

    /// Records a [`dtx_trace::EventKind::Crash`] for `site` — called
    /// after the dead scheduler thread is joined, so the event lands
    /// strictly after everything the doomed incarnation recorded.
    fn record_crash(&self, site: SiteId) {
        if let Some(t) = &self.tracer {
            t.record(site.0, EventKind::Crash);
        }
    }

    /// Arms a one-shot crash point at `site`: the scheduler dies the
    /// moment its coordinator path reaches `point` (see [`CrashPoint`]).
    /// Use [`Cluster::wait_site_down`] to join the death.
    pub fn arm_crash(&self, site: SiteId, point: CrashPoint) {
        let idx = self.index_of(site);
        *self.faults[idx].crash.lock() = Some(point);
    }

    /// Joins `site`'s scheduler thread after an armed crash fired (or a
    /// kill), without restarting it. Blocks until the thread exits — the
    /// caller must have arranged for the crash to actually trigger.
    pub fn wait_site_down(&mut self, site: SiteId) {
        let idx = self.index_of(site);
        if let Some(h) = self.instances[idx].handle.take() {
            let _ = h.join();
            self.record_crash(site);
        }
    }

    /// Severs the ordered network link `from → to` (chaos harness): every
    /// send on it is silently dropped until [`Cluster::heal_link`]. One
    /// direction alone models the silent-drop failure — requests arrive,
    /// answers vanish.
    pub fn block_link(&self, from: SiteId, to: SiteId) {
        self.net.block_link(from, to);
    }

    /// Restores the ordered link `from → to`.
    pub fn heal_link(&self, from: SiteId, to: SiteId) {
        self.net.heal_link(from, to);
    }

    /// Arms seed-deterministic random message loss on every link (chaos
    /// harness): each send drops with probability `per_mille`/1000,
    /// decided purely by `(seed, from, to, attempt#)` so a chaos schedule
    /// replays exactly from its seed. Zero disarms.
    pub fn set_message_drops(&self, seed: u64, per_mille: u32) {
        self.net.set_message_drops(seed, per_mille);
    }

    /// Messages the network swallowed through fault injection (blocked
    /// links, seeded drops, traffic to dead sites).
    pub fn net_dropped(&self) -> u64 {
        self.net.stats().dropped()
    }

    /// The durable WAL of `site` — survives kills and crashes; inspect it
    /// in tests, measure it in the recovery benchmark.
    pub fn wal(&self, site: SiteId) -> Arc<Wal> {
        Arc::clone(&self.durables[self.index_of(site)])
    }

    /// Restarts a killed or crashed site from its WAL. Replay repeats
    /// history: the logged document images are reinstalled (adopting
    /// their shipped DataGuides), redo records re-apply through the same
    /// code paths as live execution (node-id assignment is deterministic,
    /// so the rebuilt state is byte-identical to a replica that never
    /// crashed), logged outcomes resolve, and what remains is presumed
    /// aborted — except prepared-but-undecided transactions, which stay
    /// applied with their documents fenced until the restarted
    /// scheduler's termination protocol resolves them, and decisions
    /// without an `End`, which the restarted coordinator re-delivers.
    /// The network endpoint is registered *before* replay so messages
    /// arriving during recovery queue instead of dropping.
    pub fn restart_site(&mut self, site: SiteId) -> RecoveryReport {
        let idx = self.index_of(site);
        if let Some(h) = self.instances[idx].handle.take() {
            let _ = h.join();
            self.record_crash(site);
        }
        self.faults[idx].kill.store(false, Ordering::Relaxed);
        *self.faults[idx].crash.lock() = None;
        let endpoint = self.net.register(site);
        let store = MemStore::new(self.config.storage_cost);
        let mut lockmgr = LockManager::with_cost(
            self.config.protocol.instantiate(),
            Box::new(store),
            self.config.op_cost,
        );
        let started = Instant::now();
        let wal = Arc::clone(&self.durables[idx]);
        let records = wal.snapshot();
        let (recovered, mut report) = replay_wal(&records, &mut lockmgr);
        // Attach the log only AFTER replay: repeating history must not
        // re-log it.
        lockmgr.set_wal(Arc::clone(&wal));
        if let Some(t) = &self.tracer {
            lockmgr.set_trace(t.sink(site.0));
            t.record(
                site.0,
                EventKind::Restart {
                    in_doubt: recovered.in_doubt.len() as u32,
                    undelivered: recovered.undelivered.len() as u32,
                },
            );
        }
        for (txn, _, _) in &recovered.in_doubt {
            lockmgr.block_indoubt(*txn);
        }
        report.records = records.len();
        report.bytes = wal.bytes();
        report.in_doubt = recovered.in_doubt.len();
        report.undelivered = recovered.undelivered.len();
        report.elapsed = started.elapsed();
        let (control_tx, control_rx) = unbounded();
        let mut sched_cfg = self.config.scheduler;
        sched_cfg.seed = self.config.seed.wrapping_add(site.0 as u64);
        let mut scheduler = Scheduler::new(
            site,
            self.net.clone(),
            endpoint,
            control_rx,
            self.catalog.clone(),
            lockmgr,
            self.idgen.clone(),
            self.metrics.clone(),
            sched_cfg,
            wal,
            self.faults[idx].clone(),
            recovered,
        );
        if let Some(t) = &self.tracer {
            scheduler.set_trace(t.sink(site.0));
        }
        let handle = std::thread::Builder::new()
            .name(format!("dtx-scheduler-{site}"))
            .spawn(move || scheduler.run())
            .expect("spawn scheduler");
        self.instances[idx].control = control_tx;
        self.instances[idx].handle = Some(handle);
        self.metrics.note_recovery();
        report
    }

    fn index_of(&self, site: SiteId) -> usize {
        self.instances
            .iter()
            .position(|i| i.site == site)
            .expect("site exists")
    }

    /// Renders the catalog's current placement over this cluster's sites
    /// (the paper's Fig. 8 table, versioned by the catalog epoch).
    pub fn render_allocation(&self) -> String {
        self.catalog.render_allocation(&self.sites())
    }

    /// Submits a transaction at `site` and blocks for the outcome.
    pub fn submit(&self, site: SiteId, spec: TxnSpec) -> TxnOutcome {
        self.instance(site).submit(spec)
    }

    /// Submits a transaction at `site`, returning its outcome channel.
    pub fn submit_async(&self, site: SiteId, spec: TxnSpec) -> Receiver<TxnOutcome> {
        self.instance(site).submit_async(spec)
    }

    /// The multi-coordinator submission path: submits a transaction at
    /// the next site in round-robin order, so a stream of calls attaches
    /// clients to **all** sites as coordinators instead of one. Returns
    /// the chosen coordinator and the outcome channel. Per-coordinator
    /// submission/commit/inflight accounting rides in
    /// [`Metrics::coord_stats`](crate::Metrics::coord_stats).
    pub fn submit_round_robin(&self, spec: TxnSpec) -> (SiteId, Receiver<TxnOutcome>) {
        let n = self.next_coord.fetch_add(1, Ordering::Relaxed);
        let inst = &self.instances[n % self.instances.len()];
        (inst.site, inst.submit_async(spec))
    }

    /// The instance at `site`.
    ///
    /// # Panics
    /// Panics when `site` is not part of this cluster.
    pub fn instance(&self, site: SiteId) -> &DtxInstance {
        self.instances
            .iter()
            .find(|i| i.site == site)
            .expect("site exists")
    }

    /// The shared replica catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The shared metrics collector.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Network counters.
    pub fn net_messages(&self) -> u64 {
        self.net.stats().messages()
    }

    /// Network byte counter.
    pub fn net_bytes(&self) -> u64 {
        self.net.stats().bytes()
    }

    /// Delivery links the network has tracked (distinct ordered site
    /// pairs that carried delayed traffic — zero under the zero-latency
    /// model). Links are queue bookkeeping, not threads: see
    /// [`Cluster::net_worker_threads`].
    pub fn net_links_active(&self) -> u64 {
        self.net.stats().links_active()
    }

    /// Network delivery worker threads spawned. Under the default
    /// reactor topology this is bounded by [`NetConfig::workers`]
    /// regardless of how many links exist.
    pub fn net_worker_threads(&self) -> u64 {
        self.net.stats().delivery_threads()
    }

    /// Stops all schedulers and tears the network down. In-flight
    /// transactions are aborted with [`crate::op::AbortReason::Shutdown`].
    /// The final delivery-thread count is recorded into the
    /// [`Metrics::net_worker_threads`] gauge — the [`Metrics`] handle
    /// outlives the cluster, so post-run reports read it from there.
    pub fn shutdown(mut self) {
        self.metrics
            .note_net_workers(self.net.stats().delivery_threads());
        for inst in &mut self.instances {
            inst.shutdown();
        }
        self.refresh_wal_gauges();
        self.net.shutdown();
    }

    /// Republishes the [`Metrics::wal_appends`] / [`Metrics::wal_forces`]
    /// gauges from the durable registry (the cluster owns every site's
    /// WAL, so the totals survive kills). [`Cluster::shutdown`] does this
    /// automatically; benches call it mid-run before reading a summary.
    pub fn refresh_wal_gauges(&self) {
        let appends: u64 = self.durables.iter().map(|w| w.len() as u64).sum();
        let forces: u64 = self.durables.iter().map(|w| w.forces()).sum();
        self.metrics.set_wal_totals(appends, forces);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{OpSpec, TxnStatus};
    use dtx_xml::document::{Fragment, InsertPos};
    use dtx_xpath::{Query, UpdateOp};

    fn q(s: &str) -> Query {
        Query::parse(s).unwrap()
    }

    const D1: &str = "<people><person><id>4</id><name>John</name></person></people>";
    const D2: &str = "<products><product><id>14</id><price>55.50</price></product></products>";

    #[test]
    fn single_site_read_transaction() {
        let cluster = Cluster::start(ClusterConfig::new(1, ProtocolKind::Xdgl));
        cluster.load_document("d1", D1, &[SiteId(0)]).unwrap();
        let out = cluster.submit(
            SiteId(0),
            TxnSpec::new(vec![OpSpec::query("d1", q("/people/person/name"))]),
        );
        assert!(out.committed(), "{:?}", out.status);
        assert_eq!(
            out.results,
            vec![crate::op::OpResult::Query {
                values: vec!["John".to_owned()]
            }]
        );
        cluster.shutdown();
    }

    #[test]
    fn single_site_update_commits_and_persists() {
        let cluster = Cluster::start(ClusterConfig::new(1, ProtocolKind::Xdgl));
        cluster.load_document("d2", D2, &[SiteId(0)]).unwrap();
        let out = cluster.submit(
            SiteId(0),
            TxnSpec::new(vec![
                OpSpec::update(
                    "d2",
                    UpdateOp::Insert {
                        target: q("/products"),
                        fragment: Fragment::elem(
                            "product",
                            vec![
                                Fragment::elem_text("id", "13"),
                                Fragment::elem_text("price", "10.30"),
                            ],
                        ),
                        pos: InsertPos::Into,
                    },
                ),
                OpSpec::query("d2", q("/products/product/id")),
            ]),
        );
        assert!(out.committed(), "{:?}", out.status);
        match &out.results[1] {
            crate::op::OpResult::Query { values } => {
                assert_eq!(values, &vec!["14".to_owned(), "13".to_owned()])
            }
            other => panic!("{other:?}"),
        }
        cluster.shutdown();
    }

    #[test]
    fn replicated_read_serves_from_local_snapshot_without_messages() {
        // Historically a read on a replicated document locked every
        // replica over the network (the paper's t1op1). Read-only
        // transactions now pin a local snapshot instead: zero lock
        // acquisitions, zero WFG edges, zero network messages.
        let cfg = ClusterConfig::new(2, ProtocolKind::Xdgl)
            .with_deadlock_period(Duration::from_secs(600));
        let cluster = Cluster::start(cfg);
        cluster
            .load_document("d1", D1, &[SiteId(0), SiteId(1)])
            .unwrap();
        let out = cluster.submit(
            SiteId(0),
            TxnSpec::new(vec![OpSpec::query("d1", q("/people/person/name"))]),
        );
        assert!(out.committed(), "{:?}", out.status);
        assert_eq!(
            out.results,
            vec![crate::op::OpResult::Query {
                values: vec!["John".to_owned()]
            }]
        );
        assert!(cluster.metrics().snapshot_reads() >= 1);
        assert_eq!(
            cluster.net_messages(),
            0,
            "snapshot read must stay off the network"
        );
        cluster.shutdown();
    }

    #[test]
    fn add_replica_under_update_traffic_keeps_replicas_consistent() {
        // Satellite: the copy fence. Hammer a document with updates while
        // a new replica is being published; the fence drains in-flight
        // updates before the dump, so the copy plus all later write-alls
        // leave both replicas identical.
        let cluster = Cluster::start(ClusterConfig::new(2, ProtocolKind::Xdgl));
        cluster.load_document("d2", D2, &[SiteId(0)]).unwrap();
        let mut rxs = Vec::new();
        for i in 0..12 {
            rxs.push(cluster.submit_async(
                SiteId(0),
                TxnSpec::new(vec![OpSpec::update(
                    "d2",
                    UpdateOp::Change {
                        target: q("/products/product[id=14]/price"),
                        new_value: format!("{i}.00"),
                    },
                )]),
            ));
        }
        cluster.add_replica("d2", SiteId(1)).unwrap();
        assert!(
            !cluster.catalog().is_fenced("d2"),
            "fence lifted after copy"
        );
        for rx in rxs {
            let out = rx.recv().unwrap();
            assert!(out.committed(), "{:?}", out.status);
        }
        // A post-copy update must reach both replicas...
        let out = cluster.submit(
            SiteId(0),
            TxnSpec::new(vec![OpSpec::update(
                "d2",
                UpdateOp::Change {
                    target: q("/products/product[id=14]/price"),
                    new_value: "99.99".into(),
                },
            )]),
        );
        assert!(out.committed(), "{:?}", out.status);
        // ...and each site's (locally served) snapshot read agrees.
        for s in [SiteId(0), SiteId(1)] {
            let out = cluster.submit(
                s,
                TxnSpec::new(vec![OpSpec::query("d2", q("/products/product/price"))]),
            );
            match &out.results[0] {
                crate::op::OpResult::Query { values } => {
                    assert_eq!(values, &vec!["99.99".to_owned()], "site {s}")
                }
                other => panic!("{other:?}"),
            }
        }
        cluster.shutdown();
    }

    #[test]
    fn snapshot_gc_returns_to_single_live_version_after_read_burst() {
        // Satellite: retention bound. Interleave version-publishing
        // updates with read bursts that pin whatever is latest; once the
        // burst drains, GC must be back down to exactly the one current
        // version (nothing pinned, history reclaimed).
        let cluster = Cluster::start(ClusterConfig::new(1, ProtocolKind::Xdgl));
        cluster.load_document("d2", D2, &[SiteId(0)]).unwrap();
        for i in 0..4 {
            let mut rxs = Vec::new();
            for _ in 0..4 {
                rxs.push(cluster.submit_async(
                    SiteId(0),
                    TxnSpec::new(vec![OpSpec::query("d2", q("/products/product/price"))]),
                ));
            }
            let up = cluster.submit(
                SiteId(0),
                TxnSpec::new(vec![OpSpec::update(
                    "d2",
                    UpdateOp::Change {
                        target: q("/products/product[id=14]/price"),
                        new_value: format!("{i}.50"),
                    },
                )]),
            );
            assert!(up.committed(), "{:?}", up.status);
            for rx in rxs {
                assert!(rx.recv().unwrap().committed());
            }
        }
        assert!(cluster.metrics().snapshot_reads() >= 16);
        assert_eq!(
            cluster.metrics().snapshots_live(),
            1,
            "all read pins released → only the latest version survives GC"
        );
        assert!(cluster.metrics().snapshot_bytes() > 0);
        cluster.shutdown();
    }

    #[test]
    fn remote_only_document_is_reachable() {
        let cluster = Cluster::start(ClusterConfig::new(2, ProtocolKind::Xdgl));
        cluster.load_document("d2", D2, &[SiteId(1)]).unwrap();
        // Submitted at site 0, data only at site 1.
        let out = cluster.submit(
            SiteId(0),
            TxnSpec::new(vec![OpSpec::update(
                "d2",
                UpdateOp::Change {
                    target: q("/products/product/price"),
                    new_value: "60".into(),
                },
            )]),
        );
        assert!(out.committed(), "{:?}", out.status);
        // Verify at site 1 via a follow-up read.
        let out = cluster.submit(
            SiteId(1),
            TxnSpec::new(vec![OpSpec::query("d2", q("/products/product/price"))]),
        );
        match &out.results[0] {
            crate::op::OpResult::Query { values } => assert_eq!(values, &vec!["60".to_owned()]),
            other => panic!("{other:?}"),
        }
        cluster.shutdown();
    }

    #[test]
    fn replicated_update_applies_everywhere() {
        let cluster = Cluster::start(ClusterConfig::new(3, ProtocolKind::Xdgl));
        let all = [SiteId(0), SiteId(1), SiteId(2)];
        cluster.load_document("d2", D2, &all).unwrap();
        let out = cluster.submit(
            SiteId(2),
            TxnSpec::new(vec![OpSpec::update(
                "d2",
                UpdateOp::Change {
                    target: q("/products/product[id=14]/price"),
                    new_value: "1.00".into(),
                },
            )]),
        );
        assert!(out.committed(), "{:?}", out.status);
        // Read from every site: replicas agree.
        for s in all {
            let out = cluster.submit(
                s,
                TxnSpec::new(vec![OpSpec::query("d2", q("/products/product/price"))]),
            );
            match &out.results[0] {
                crate::op::OpResult::Query { values } => {
                    assert_eq!(values, &vec!["1.00".to_owned()], "site {s}")
                }
                other => panic!("{other:?}"),
            }
        }
        cluster.shutdown();
    }

    #[test]
    fn unknown_document_aborts() {
        let cluster = Cluster::start(ClusterConfig::new(1, ProtocolKind::Xdgl));
        let out = cluster.submit(
            SiteId(0),
            TxnSpec::new(vec![OpSpec::query("ghost", q("/a"))]),
        );
        assert!(matches!(
            out.status,
            TxnStatus::Aborted(crate::op::AbortReason::OperationFailed(_))
        ));
        cluster.shutdown();
    }

    #[test]
    fn failed_update_rolls_back_everything() {
        let cluster = Cluster::start(ClusterConfig::new(1, ProtocolKind::Xdgl));
        cluster.load_document("d2", D2, &[SiteId(0)]).unwrap();
        let out = cluster.submit(
            SiteId(0),
            TxnSpec::new(vec![
                OpSpec::update(
                    "d2",
                    UpdateOp::Change {
                        target: q("/products/product/price"),
                        new_value: "9".into(),
                    },
                ),
                // This remove targets nothing → operation fails → abort.
                OpSpec::update(
                    "d2",
                    UpdateOp::Remove {
                        target: q("/products/widget"),
                    },
                ),
            ]),
        );
        assert!(!out.committed());
        // First op's change must have been rolled back.
        let check = cluster.submit(
            SiteId(0),
            TxnSpec::new(vec![OpSpec::query("d2", q("/products/product/price"))]),
        );
        match &check.results[0] {
            crate::op::OpResult::Query { values } => assert_eq!(values, &vec!["55.50".to_owned()]),
            other => panic!("{other:?}"),
        }
        cluster.shutdown();
    }

    #[test]
    fn concurrent_disjoint_transactions_all_commit() {
        let cluster = Cluster::start(ClusterConfig::new(2, ProtocolKind::Xdgl));
        cluster.load_document("d1", D1, &[SiteId(0)]).unwrap();
        cluster.load_document("d2", D2, &[SiteId(1)]).unwrap();
        let rx1 = cluster.submit_async(
            SiteId(0),
            TxnSpec::new(vec![OpSpec::query("d1", q("/people/person"))]),
        );
        let rx2 = cluster.submit_async(
            SiteId(1),
            TxnSpec::new(vec![OpSpec::query("d2", q("/products/product"))]),
        );
        assert!(rx1.recv().unwrap().committed());
        assert!(rx2.recv().unwrap().committed());
        let s = cluster.metrics().summary();
        assert_eq!(s.committed, 2);
        cluster.shutdown();
    }

    #[test]
    fn contended_updates_serialize_but_commit() {
        // Many clients hammering the same path: strict 2PL must serialize
        // them; every transaction eventually commits.
        let cluster = Cluster::start(ClusterConfig::new(1, ProtocolKind::Xdgl));
        cluster.load_document("d2", D2, &[SiteId(0)]).unwrap();
        let mut rxs = Vec::new();
        for i in 0..8 {
            rxs.push(cluster.submit_async(
                SiteId(0),
                TxnSpec::new(vec![OpSpec::update(
                    "d2",
                    UpdateOp::Change {
                        target: q("/products/product[id=14]/price"),
                        new_value: format!("{i}.00"),
                    },
                )]),
            ));
        }
        for rx in rxs {
            let out = rx.recv().unwrap();
            assert!(out.committed(), "{:?}", out.status);
        }
        cluster.shutdown();
    }

    #[test]
    fn two_phase_commit_forces_exactly_twice_per_site() {
        // Satellite: the presumed-abort force budget. One replicated
        // update transaction costs each participant exactly two forced
        // writes (Prepared + Committed) and the coordinator exactly two
        // (Decision + Committed). Document loading also forces (the
        // logged images are made durable up front), so the assertion is
        // on the per-submit *delta*.
        let cluster = Cluster::start(ClusterConfig::new(2, ProtocolKind::Xdgl));
        cluster
            .load_document("d2", D2, &[SiteId(0), SiteId(1)])
            .unwrap();
        let before: Vec<u64> = [SiteId(0), SiteId(1)]
            .iter()
            .map(|&s| cluster.wal(s).forces())
            .collect();
        let out = cluster.submit(
            SiteId(0),
            TxnSpec::new(vec![OpSpec::update(
                "d2",
                UpdateOp::Change {
                    target: q("/products/product[id=14]/price"),
                    new_value: "2.00".into(),
                },
            )]),
        );
        assert!(out.committed(), "{:?}", out.status);
        for (i, &s) in [SiteId(0), SiteId(1)].iter().enumerate() {
            assert_eq!(
                cluster.wal(s).forces() - before[i],
                2,
                "site {s}: 2PC must force exactly twice (coordinator: \
                 Decision + Committed; participant: Prepared + Committed)"
            );
        }
        cluster.refresh_wal_gauges();
        let s = cluster.metrics().summary();
        assert!(s.wal_appends >= s.wal_forces);
        assert!(s.wal_forces >= 4, "doc loads + 2PC forces");
        cluster.shutdown();
    }

    #[test]
    fn traced_distributed_update_yields_certified_timeline() {
        // Tentpole end-to-end: run a distributed update with tracing on,
        // collect the merged timeline and certify it against every
        // protocol law. The "life of txn" view must tell the story too.
        let cfg = ClusterConfig::new(2, ProtocolKind::Xdgl).with_tracing();
        let cluster = Cluster::start(cfg);
        cluster
            .load_document("d2", D2, &[SiteId(0), SiteId(1)])
            .unwrap();
        let out = cluster.submit(
            SiteId(0),
            TxnSpec::new(vec![OpSpec::update(
                "d2",
                UpdateOp::Change {
                    target: q("/products/product[id=14]/price"),
                    new_value: "3.00".into(),
                },
            )]),
        );
        assert!(out.committed(), "{:?}", out.status);
        let read = cluster.submit(
            SiteId(1),
            TxnSpec::new(vec![OpSpec::query("d2", q("/products/product/price"))]),
        );
        assert!(read.committed());
        let tracer = cluster.tracer().expect("tracing armed");
        cluster.shutdown();
        let trace = tracer.collect();
        assert!(!trace.events.is_empty());
        let report = dtx_trace::check::check(&trace);
        assert!(report.ok(), "{}", report.summary());
        assert!(report.stats.votes >= 1, "participant voted yes");
        assert!(report.stats.commits >= 1, "commit batch sent");
        assert!(report.stats.pins >= 1, "snapshot read pinned");
        let life = trace.life_of(out.txn.0);
        assert!(
            life.contains("phase") && life.contains("wal"),
            "life-of view covers phases and durability:\n{life}"
        );
    }

    #[test]
    fn distributed_deadlock_resolved_by_detector() {
        // The paper's §2.4 shape: t1 reads d1 (both sites) then writes d2;
        // t2 reads d2 then writes d1. With unlucky interleaving this forms
        // a distributed cycle; the detector must abort the newest and let
        // the other commit. With lucky interleaving both commit. Either
        // way, BOTH terminate.
        let cfg = ClusterConfig::new(2, ProtocolKind::Xdgl)
            .with_deadlock_period(Duration::from_millis(20));
        let cluster = Cluster::start(cfg);
        cluster
            .load_document("d1", D1, &[SiteId(0), SiteId(1)])
            .unwrap();
        cluster.load_document("d2", D2, &[SiteId(1)]).unwrap();
        let t1 = TxnSpec::new(vec![
            OpSpec::query("d1", q("/people/person")),
            OpSpec::update(
                "d2",
                UpdateOp::Insert {
                    target: q("/products"),
                    fragment: Fragment::elem("product", vec![Fragment::elem_text("id", "13")]),
                    pos: InsertPos::Into,
                },
            ),
        ]);
        let t2 = TxnSpec::new(vec![
            OpSpec::query("d2", q("/products/product")),
            OpSpec::update(
                "d1",
                UpdateOp::Insert {
                    target: q("/people"),
                    fragment: Fragment::elem("person", vec![Fragment::elem_text("id", "22")]),
                    pos: InsertPos::Into,
                },
            ),
        ]);
        let rx1 = cluster.submit_async(SiteId(0), t1);
        let rx2 = cluster.submit_async(SiteId(1), t2);
        let o1 = rx1
            .recv_timeout(Duration::from_secs(60))
            .expect("t1 terminates");
        let o2 = rx2
            .recv_timeout(Duration::from_secs(60))
            .expect("t2 terminates");
        // At least one commits; a deadlock abort is acceptable for the other.
        assert!(
            o1.committed() || o2.committed(),
            "o1={:?} o2={:?}",
            o1.status,
            o2.status
        );
        for o in [&o1, &o2] {
            assert!(
                o.committed() || o.deadlocked(),
                "unexpected terminal status {:?}",
                o.status
            );
        }
        cluster.shutdown();
    }
}
