//! Epoch-tagged catalog gossip: placement deltas that converge by
//! dominance.
//!
//! In a single process every site shares one [`crate::Catalog`] behind an
//! `Arc`; across processes each node holds its own catalog instance and
//! placement changes travel as [`CatalogDelta`]s — one per document,
//! stamped with the document's **placement version** (the per-document
//! version PR 3 introduced for stale-dispatch detection, now doing double
//! duty as the gossip merge key).
//!
//! Convergence is by **dominance**: a receiver installs a delta iff its
//! version is strictly greater than the local version of the same
//! document ([`crate::Catalog::apply_delta`]); otherwise the delta is
//! ignored. Versions are minted from the catalog epoch, which
//! [`crate::Catalog::apply_delta`] ratchets to at least every installed
//! version — so a later local mutation anywhere always outranks every
//! delta it has seen, and replaying any subset of deltas in any order,
//! any number of times, reaches the same fixed point (the merge is
//! idempotent, commutative and associative over the per-doc max). The
//! anti-entropy loop in [`crate::process::SiteHost`] ships each node's
//! full delta set to its peers periodically and after local mutations;
//! `tests/process.rs` pins convergence under random delivery orders.

use crate::catalog::Catalog;
use dtx_net::SiteId;

/// One document's placement, as shipped between processes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatalogDelta {
    /// Document (or logical fragmented document) name.
    pub doc: String,
    /// The document's placement version — the merge key. Strictly
    /// greater wins; equal or smaller is stale and ignored.
    pub version: u64,
    /// Replica (or fragment) sites, sorted.
    pub sites: Vec<SiteId>,
    /// Whether the sites hold disjoint fragments rather than full copies.
    pub fragmented: bool,
    /// Site that minted this version (observability / tie diagnostics —
    /// dominance alone decides installation).
    pub origin: SiteId,
}

/// Applies every delta to `catalog`, returning how many dominated (were
/// actually installed). The building block of the anti-entropy exchange.
pub fn merge_deltas(catalog: &Catalog, deltas: &[CatalogDelta]) -> usize {
    deltas.iter().filter(|d| catalog.apply_delta(d)).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delta(doc: &str, version: u64, sites: &[u16]) -> CatalogDelta {
        CatalogDelta {
            doc: doc.into(),
            version,
            sites: sites.iter().map(|&s| SiteId(s)).collect(),
            fragmented: false,
            origin: SiteId(0),
        }
    }

    #[test]
    fn dominance_installs_only_strictly_newer_versions() {
        let c = Catalog::new();
        c.register("d", &[SiteId(0)]);
        let v = c.version_of("d");
        assert!(!c.apply_delta(&delta("d", v, &[0, 1])), "equal is stale");
        assert!(
            !c.apply_delta(&delta("d", v - 1, &[0, 1])),
            "older is stale"
        );
        assert!(c.apply_delta(&delta("d", v + 5, &[0, 1])), "newer wins");
        assert_eq!(c.version_of("d"), v + 5);
        assert_eq!(c.sites_of("d"), vec![SiteId(0), SiteId(1)]);
        // The epoch ratcheted: the next local mint outranks the delta.
        c.register("e", &[SiteId(2)]);
        assert!(c.version_of("e") > v + 5);
    }

    #[test]
    fn unknown_documents_are_adopted() {
        let c = Catalog::new();
        assert!(c.apply_delta(&delta("new", 7, &[1, 2])));
        assert_eq!(c.sites_of("new"), vec![SiteId(1), SiteId(2)]);
        assert_eq!(c.version_of("new"), 7);
    }

    #[test]
    fn convergence_is_order_independent() {
        // Three catalogs, each the origin of some mutations; shipping
        // every delta set to every catalog in different orders (with
        // duplicates) must reach identical placements everywhere.
        let a = Catalog::new();
        let b = Catalog::new();
        let c = Catalog::new();
        a.register("x", &[SiteId(0)]);
        a.register("y", &[SiteId(0), SiteId(1)]);
        b.register("x", &[SiteId(2)]); // same doc, independently minted
        b.register("z", &[SiteId(2)]);
        c.register_fragmented("w", &[SiteId(0), SiteId(1), SiteId(2)]);
        // Give the same doc a dominating version on b by mutating again.
        b.register("x", &[SiteId(2), SiteId(1)]);
        let (da, db, dc) = (
            a.export_deltas(SiteId(0)),
            b.export_deltas(SiteId(1)),
            c.export_deltas(SiteId(2)),
        );
        // Deterministic pseudo-random orders per receiver.
        let all: Vec<&CatalogDelta> = da.iter().chain(&db).chain(&dc).collect();
        let orders: [Vec<usize>; 3] = {
            let n = all.len();
            let mut o = [Vec::new(), Vec::new(), Vec::new()];
            let mut s = 2009u64;
            for (k, ord) in o.iter_mut().enumerate() {
                // Each receiver sees every delta twice, shuffled.
                let mut idx: Vec<usize> = (0..n).chain(0..n).collect();
                for i in (1..idx.len()).rev() {
                    s = s
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(k as u64 + 1);
                    idx.swap(i, (s >> 33) as usize % (i + 1));
                }
                *ord = idx;
            }
            o
        };
        for (cat, order) in [(&a, &orders[0]), (&b, &orders[1]), (&c, &orders[2])] {
            for &i in order.iter() {
                cat.apply_delta(all[i]);
            }
        }
        // Same fixed point everywhere: per-doc (version, sites, frag).
        let view = |cat: &Catalog| {
            let mut docs = cat.documents();
            docs.sort();
            docs.into_iter()
                .map(|d| {
                    (
                        d.clone(),
                        cat.version_of(&d),
                        cat.sites_of(&d),
                        cat.is_fragmented(&d),
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(view(&a), view(&b));
        assert_eq!(view(&b), view(&c));
        // And the winner of the contended doc is the dominating version.
        assert_eq!(a.sites_of("x"), vec![SiteId(1), SiteId(2)]);
    }
}
