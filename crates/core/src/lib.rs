//! # dtx-core — the DTX engine
//!
//! The primary contribution of the paper: a **distributed concurrency
//! control mechanism for XML data**. This crate assembles the substrates
//! (`dtx-xml`, `dtx-xpath`, `dtx-dataguide`, `dtx-locks`, `dtx-storage`,
//! `dtx-net`) into the architecture of the paper's Fig. 1:
//!
//! * [`cluster::DtxInstance`] — Listener + TransactionManager +
//!   DataManager for one site;
//! * [`scheduler::Scheduler`] — Algorithms 1 (coordinator), 2
//!   (participant), 4 (distributed deadlock detection), 5 (commit) and 6
//!   (abort);
//! * [`lockmgr::LockManager`] — Algorithm 3 over the DataGuide lock
//!   table, protocol-agnostic via [`dtx_locks::LockProtocol`];
//! * [`cluster::Cluster`] — bootstraps N sites over the simulated network
//!   with total or partial replication via the [`catalog::Catalog`];
//! * [`metrics::Metrics`] — response times, deadlock counts, throughput
//!   and concurrency-degree series (everything §3 measures).
//!
//! Transactions follow strict two-phase locking, commit only when they
//! depend on no other active transaction, and terminate in exactly one of
//! the paper's three states: committed, aborted, or failed.
//!
//! Placement is a layer of its own ([`routing`]): the scheduler asks the
//! versioned [`catalog::Catalog`] to [`catalog::Catalog::route`] each
//! operation into an explicit [`routing::RoutingPlan`] under a pluggable
//! [`routing::PlacementPolicy`], so swapping how reads are spread over
//! replicas requires no scheduler change.

#![deny(missing_docs)]

pub mod catalog;
pub mod cluster;
pub mod gossip;
pub mod lockmgr;
pub mod metrics;
pub mod msg;
pub mod op;
pub mod process;
pub mod routing;
pub mod scheduler;
pub mod wire;

pub use catalog::Catalog;
pub use cluster::{Cluster, ClusterConfig, DtxInstance, RecoveryReport};
pub use dtx_locks::{ProtocolKind, TxnId};
pub use dtx_net::{NetConfig, SiteId};
pub use gossip::CatalogDelta;
pub use lockmgr::{LockManager, OpCostModel, ProcessResult};
pub use metrics::{CoordStats, Histogram, Metrics, PhaseTimes, Summary, TxnRecord};
pub use msg::Message;
pub use op::{AbortReason, OpKind, OpResult, OpSpec, TxnOutcome, TxnSpec, TxnStatus};
pub use process::{CtrlClient, SiteHost, SiteHostConfig};
pub use routing::{PlacementPolicy, PolicyKind, ReadChoice, RoutingCtx, RoutingPlan};
pub use scheduler::{
    Control, CrashPoint, DocShipment, FaultHooks, RecoveredState, Scheduler, SchedulerConfig,
};
pub use wire::{CtrlMsg, CTRL_TAGS, MESSAGE_TAGS};
