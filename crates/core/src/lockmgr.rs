//! The per-site LockManager (paper §2.1, Algorithm 3).
//!
//! "The LockManager ... contains the data representation and locking
//! structure (i.e., DataGuide) used to go through XML data in an optimized
//! fashion; this second part also contains the rules for granting locks
//! and the XML data handling operations."
//!
//! One [`LockManager`] owns, per document replica hosted at its site:
//! the in-memory [`Document`], its [`DataGuide`], and a [`LockTable`].
//! [`LockManager::process_operation`] is Algorithm 3: walk the guide nodes
//! the operation touches, try to acquire each lock, and either execute the
//! operation (recording undo information) or report the conflicting
//! transactions after rolling back partial acquisitions. Commit and abort
//! apply/undo the recorded effects and release everything (strict 2PL).

use crate::op::{OpKind, OpResult, OpSpec};
use dtx_dataguide::{incremental, DataGuide, Snapshot, SnapshotStore};
use dtx_locks::{LockOutcome, LockProtocol, LockTable, TxnId, TxnMode, WaitForGraph};
use dtx_storage::{DataManager, StorageError, StorageResult, Wal, WalRecord};
use dtx_trace::{doc_hash, EventKind, TraceSink};
use dtx_xml::Document;
use dtx_xpath::{apply_update, eval, undo_update, UndoRecord, UpdateOp};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Result of processing one operation at one site.
#[derive(Debug)]
pub enum ProcessResult {
    /// Locks acquired and operation executed.
    Executed(OpResult),
    /// A lock could not be acquired; the holders are reported and the
    /// operation's partial effects have been rolled back. `deadlock` is
    /// set when the new wait edges closed a cycle in the *local* graph.
    Conflict {
        /// Transactions holding conflicting locks.
        holders: Vec<TxnId>,
        /// Local deadlock detected on edge insertion (Alg. 3 l. 9-10).
        deadlock: bool,
    },
    /// The operation failed for a non-lock reason (bad target path,
    /// malformed update); the transaction must abort.
    Failed(String),
}

/// State of one hosted document replica.
struct DocState {
    doc: Document,
    guide: DataGuide,
    /// Dirty since last persist (commit persists only touched docs).
    dirty: bool,
    /// Guide changed structurally since the last snapshot publication.
    /// Value-only updates leave this false, so the next publication shares
    /// `snap_guide` unchanged (the COW fast path).
    guide_dirty: bool,
    /// The guide `Arc` shipped with the last published snapshot.
    snap_guide: Arc<DataGuide>,
    /// Site-local tag making this document's guide ids disjoint from other
    /// documents' in the shared lock table.
    tag: u32,
}

/// Undo log entry: one applied update.
struct UndoEntry {
    doc: String,
    op_seq: usize,
    record: UndoRecord,
}

/// One acquired lock: guide node, mode, owning document.
type AcquiredLock = (dtx_dataguide::GuideId, dtx_locks::LockMode, String);

/// Wall-clock cost charged per operation, modelling the work a real
/// deployment spends that this in-memory reproduction otherwise wouldn't:
/// lock-table maintenance (per [`LockProtocol::lock_weight`] unit — this
/// is where document-tree locking pays per covered node while XDGL pays
/// per DataGuide node) and data processing (per node produced/affected).
///
/// Defaults are calibrated so that at the default experiment scale the
/// storage/lock/CPU cost *ratios* resemble the paper's Sedna deployment;
/// see DESIGN.md. Tests use [`OpCostModel::zero`].
#[derive(Debug, Clone, Copy)]
pub struct OpCostModel {
    /// Cost per lock-management work unit.
    pub per_lock_unit: std::time::Duration,
    /// Cost per result/affected document node.
    pub per_node: std::time::Duration,
    /// Fixed per-operation cost (parsing, planning, dispatch).
    pub base: std::time::Duration,
}

impl OpCostModel {
    /// Charge nothing (unit tests).
    pub fn zero() -> Self {
        OpCostModel {
            per_lock_unit: std::time::Duration::ZERO,
            per_node: std::time::Duration::ZERO,
            base: std::time::Duration::ZERO,
        }
    }

    /// Experiment calibration: 400 ns per lock unit, 300 ns per node,
    /// 20 µs per operation (tuned so the XDGL:Node2PL response ratio at
    /// the default scale lands near the paper's ~10x, see EXPERIMENTS.md).
    pub fn realistic() -> Self {
        OpCostModel {
            per_lock_unit: std::time::Duration::from_nanos(400),
            per_node: std::time::Duration::from_nanos(300),
            base: std::time::Duration::from_micros(20),
        }
    }

    fn charge(&self, lock_units: u64, nodes: u64) {
        let d = self.base
            + self.per_lock_unit * (lock_units.min(u32::MAX as u64) as u32)
            + self.per_node * (nodes.min(u32::MAX as u64) as u32);
        if !d.is_zero() {
            std::thread::sleep(d);
        }
    }
}

/// The lock manager of one DTX instance.
pub struct LockManager {
    protocol: Box<dyn LockProtocol>,
    store: Box<dyn DataManager>,
    cost: OpCostModel,
    docs: HashMap<String, DocState>,
    table: LockTable,
    /// Applied-update log per transaction (in application order).
    undo_log: HashMap<TxnId, Vec<UndoEntry>>,
    /// Locks acquired per (txn, op_seq), so a partially-executed
    /// distributed operation can release exactly its own locks
    /// (Alg. 1 l. 16 / Alg. 3 l. 12).
    op_locks: HashMap<(TxnId, usize), Vec<AcquiredLock>>,
    /// Documents touched (locked or read) per transaction.
    touched: HashMap<TxnId, Vec<String>>,
    /// This site's waits-for relation. Owned here so lock releases can
    /// eagerly prune edges pointing at transactions that no longer hold
    /// anything (stale edges would fabricate deadlocks out of retries).
    wfg: WaitForGraph,
    /// Versioned snapshots of every hosted document, republished at each
    /// local commit/abort that changed the document. Read-only
    /// transactions answer from here ([`LockManager::snapshot_read`])
    /// without ever touching `table` or `wfg`.
    snapshots: SnapshotStore,
    /// Snapshot versions pinned per read transaction: `(doc, seq)` pairs,
    /// released at local commit/abort.
    snap_pins: HashMap<TxnId, Vec<(String, u64)>>,
    /// This site's write-ahead log, when durability is wired (the cluster
    /// owns the `Arc` so the log survives a scheduler kill). `None` during
    /// recovery replay — replayed records must not be re-logged — and in
    /// bare unit tests.
    wal: Option<Arc<Wal>>,
    /// Documents held hostage by **in-doubt** transactions after a
    /// restart: the replayed locks are gone (the lock table died with the
    /// process), so a coarse per-document block stands in until the 2PC
    /// outcome arrives. Writers conflict against the blocking transaction;
    /// snapshot readers are unaffected.
    indoubt_blocks: HashMap<String, HashSet<TxnId>>,
    /// Event sink for snapshot pin/unpin/GC tracing. Disabled by default;
    /// the cluster arms it (and the lock table's copy) via
    /// [`LockManager::set_trace`] before the scheduler thread starts.
    trace: TraceSink,
}

impl LockManager {
    /// Creates a lock manager over `store` using `protocol`, charging no
    /// operation costs (tests). See [`LockManager::with_cost`].
    pub fn new(protocol: Box<dyn LockProtocol>, store: Box<dyn DataManager>) -> Self {
        Self::with_cost(protocol, store, OpCostModel::zero())
    }

    /// Creates a lock manager with an explicit operation cost model.
    pub fn with_cost(
        protocol: Box<dyn LockProtocol>,
        store: Box<dyn DataManager>,
        cost: OpCostModel,
    ) -> Self {
        LockManager {
            protocol,
            store,
            cost,
            docs: HashMap::new(),
            table: LockTable::new(),
            undo_log: HashMap::new(),
            op_locks: HashMap::new(),
            touched: HashMap::new(),
            wfg: WaitForGraph::new(),
            snapshots: SnapshotStore::new(),
            snap_pins: HashMap::new(),
            wal: None,
            indoubt_blocks: HashMap::new(),
            trace: TraceSink::disabled(),
        }
    }

    /// Arms event tracing: snapshot pin/unpin/GC events flow to `sink`,
    /// and the lock table gets a clone for its wait/grant/release events.
    pub fn set_trace(&mut self, sink: TraceSink) {
        self.table.set_trace(sink.clone());
        self.trace = sink;
    }

    /// Wires the site's write-ahead log: from now on applied updates,
    /// undos and local 2PC outcomes are logged (see the hooks in
    /// [`LockManager::process_operation`], [`LockManager::undo_op`],
    /// [`LockManager::commit_local`] and [`LockManager::abort_local`]).
    /// Recovery replays with the log *detached* and attaches it last, so
    /// replay never re-logs history.
    pub fn set_wal(&mut self, wal: Arc<Wal>) {
        self.wal = Some(wal);
    }

    /// Loads `name` from the store into memory and builds its DataGuide
    /// (the DataManager's "recovering XML data from the storage structure,
    /// converting it into a proper representation structure").
    pub fn load_document(&mut self, name: &str) -> StorageResult<()> {
        let doc = self.store.load(name)?;
        self.adopt(name, doc, None);
        Ok(())
    }

    /// Installs `doc` under `name`: persist to the store and keep in
    /// memory. With `guide` (shipped by a source replica or built during
    /// streaming ingest) the DataGuide is **not** rebuilt from the data.
    /// Returns whether a guide had to be built.
    pub fn install_document(
        &mut self,
        name: &str,
        doc: dtx_xml::Document,
        guide: Option<DataGuide>,
    ) -> StorageResult<bool> {
        self.store.persist(name, &doc)?;
        Ok(self.adopt(name, doc, guide))
    }

    /// Keeps `doc` (and its guide, building one only when not provided)
    /// as the hosted state of `name`. Returns whether a guide was built.
    fn adopt(&mut self, name: &str, doc: dtx_xml::Document, guide: Option<DataGuide>) -> bool {
        let built = guide.is_none();
        let guide = guide.unwrap_or_else(|| DataGuide::build(&doc));
        // Keep an existing tag on reload; assign the next free one on
        // first load. Tags keep per-document guide ids disjoint in the
        // shared lock table.
        let tag = self
            .docs
            .get(name)
            .map(|d| d.tag)
            .unwrap_or_else(|| (self.docs.len() as u32) << 24);
        let snap_guide = Arc::new(guide.clone());
        self.docs.insert(
            name.to_owned(),
            DocState {
                doc,
                guide,
                dirty: false,
                guide_dirty: false,
                snap_guide,
                tag,
            },
        );
        // Publish the initial snapshot so read-only transactions can pin
        // the document from the moment it is hosted.
        self.publish_snapshot(name);
        built
    }

    /// Publishes a new immutable snapshot of `name` from the current
    /// in-memory state, sharing the previous guide `Arc` when no applied
    /// or undone update moved extents since the last publication. Returns
    /// the new per-document commit sequence (`None`: not hosted).
    fn publish_snapshot(&mut self, name: &str) -> Option<u64> {
        let state = self.docs.get_mut(name)?;
        if state.guide_dirty {
            state.snap_guide = Arc::new(state.guide.clone());
            state.guide_dirty = false;
        }
        let doc = Arc::new(state.doc.clone());
        let guide = Arc::clone(&state.snap_guide);
        Some(self.snapshots.publish(name, doc, guide))
    }

    /// Stores raw XML and loads it (bulk load path).
    pub fn put_and_load(&mut self, name: &str, xml: &str) -> StorageResult<()> {
        self.put_and_load_with_guide(name, xml, None).map(|_| ())
    }

    /// Stores raw XML and loads it; with `guide` the shipped DataGuide is
    /// adopted instead of rebuilding one from the parsed data (replica
    /// bootstrap). Returns whether a guide had to be built.
    pub fn put_and_load_with_guide(
        &mut self,
        name: &str,
        xml: &str,
        guide: Option<DataGuide>,
    ) -> StorageResult<bool> {
        self.store.put_raw(name, xml)?;
        let doc = self.store.load(name)?;
        Ok(self.adopt(name, doc, guide))
    }

    /// True when this site hosts `name` in memory.
    pub fn hosts(&self, name: &str) -> bool {
        self.docs.contains_key(name)
    }

    /// Hosted document names (sorted).
    pub fn hosted(&self) -> Vec<String> {
        let mut v: Vec<String> = self.docs.keys().cloned().collect();
        v.sort();
        v
    }

    /// Read-only access to a hosted document (tests, examples).
    pub fn document(&self, name: &str) -> Option<&Document> {
        self.docs.get(name).map(|d| &d.doc)
    }

    /// Read-only access to a hosted document's DataGuide.
    pub fn guide(&self, name: &str) -> Option<&DataGuide> {
        self.docs.get(name).map(|d| &d.guide)
    }

    /// Current number of granted lock entries (lock-management overhead
    /// metric).
    pub fn lock_entries(&self) -> usize {
        self.table.total_grants()
    }

    /// Algorithm 3 (`process_operation`): acquire the operation's locks
    /// and execute it, or report conflicts/failure.
    ///
    /// On conflict the operation's own acquisitions are rolled back and a
    /// wait-for edge `txn → holder` is added to `wfg` for every holder; if
    /// that closes a cycle the result carries `deadlock = true` for the
    /// scheduler to handle (Alg. 1 l. 19).
    /// `tolerate_empty` is set when the document is a *fragment* of a
    /// logical document: an update whose target matches nothing in this
    /// fragment is a no-op here (the entity lives in a sibling fragment),
    /// not an error. The coordinator verifies that the update matched
    /// somewhere.
    pub fn process_operation(
        &mut self,
        txn: TxnId,
        op_seq: usize,
        op: &OpSpec,
        mode: TxnMode,
        tolerate_empty: bool,
    ) -> ProcessResult {
        // In-doubt fence: a restarted site holds whole documents for its
        // prepared-but-undecided transactions (their fine-grained locks
        // died with the lock table). Writers wait exactly as they would on
        // a lock conflict; the blockers resolve via the termination
        // protocol, never by waiting on anyone, so no deadlock edge is
        // possible through this fence.
        if let Some(blockers) = self.indoubt_blocks.get(&op.doc) {
            let holders: Vec<TxnId> = blockers.iter().copied().filter(|&t| t != txn).collect();
            if !holders.is_empty() {
                return ProcessResult::Conflict {
                    holders,
                    deadlock: false,
                };
            }
        }
        let Some(state) = self.docs.get_mut(&op.doc) else {
            return ProcessResult::Failed(format!("document {:?} not hosted here", op.doc));
        };
        let tag = state.tag;
        // 1. Compute the lock requests under the active protocol.
        let requests = match &op.kind {
            OpKind::Query(q) => self.protocol.query_requests(&mut state.guide, q, mode),
            OpKind::Update(u) => self.protocol.update_requests(&mut state.guide, u, mode),
        };
        // Lock-management work this operation performs (per protocol —
        // this is where document-tree locking pays per covered node).
        let lock_units: u64 = requests
            .iter()
            .map(|r| self.protocol.lock_weight(&state.guide, r))
            .sum();
        // 2. Walk the guide elements of the operation, acquiring locks
        //    (Alg. 3 l. 3-4). Guide ids are offset by the document tag so
        //    replicas of different documents never alias in the shared
        //    table.
        let mut acquired: Vec<(dtx_dataguide::GuideId, dtx_locks::LockMode, String)> = Vec::new();
        for req in &requests {
            match self
                .table
                .try_acquire(txn, doc_scoped(tag, req.node), req.mode)
            {
                LockOutcome::Granted => {
                    acquired.push((doc_scoped(tag, req.node), req.mode, op.doc.clone()))
                }
                LockOutcome::Conflict(holders) => {
                    // Roll back this operation's acquisitions (Alg. 3 l. 12).
                    let pairs: Vec<_> = acquired.iter().map(|(g, m, _)| (*g, *m)).collect();
                    self.table.release_scoped(txn, &pairs);
                    // Record the wait (Alg. 3 l. 8) and check for a local
                    // cycle (l. 9). A transaction executes one operation at
                    // a time, so its current waits *replace* the ones from
                    // earlier retries of this operation — accumulating them
                    // would let stale edges (holders that have since
                    // released) fabricate deadlock cycles out of plain
                    // retries. The deadlock tag is raised only when `txn`
                    // is the *newest* transaction in a cycle through
                    // itself, matching the paper's victim rule ("the most
                    // recent transaction involved in the circle is rolled
                    // back"): every member of a cycle retries and conflicts
                    // here, so the newest is always flagged eventually, and
                    // tagging only it keeps the immediate tag and the
                    // periodic detector (Alg. 4) choosing the *same*
                    // victim — otherwise two mutually-deadlocked
                    // transactions retrying in lockstep (speculative wakes
                    // synchronize retries) can both see the cycle and both
                    // abort.
                    self.wfg.clear_waits_of(txn);
                    self.wfg.add_edges(txn, &holders);
                    let deadlock = self
                        .wfg
                        .cycle_containing(txn)
                        .map(|c| c.into_iter().max() == Some(txn))
                        .unwrap_or(false);
                    // The traversal + partial acquisition work was done.
                    self.cost.charge(lock_units, 0);
                    return ProcessResult::Conflict { holders, deadlock };
                }
            }
        }
        // All locks held: the transaction no longer waits (Alg. 1: waiting
        // transactions "start executing again").
        self.wfg.clear_waits_of(txn);
        self.op_locks
            .entry((txn, op_seq))
            .or_default()
            .extend(acquired);
        let touched = self.touched.entry(txn).or_default();
        if !touched.contains(&op.doc) {
            touched.push(op.doc.clone());
        }
        // 3. Execute against the in-memory document (Alg. 3 l. 6).
        match &op.kind {
            OpKind::Query(q) => {
                let nodes = eval(&state.doc, q);
                let values: Vec<String> = nodes
                    .iter()
                    .map(|&n| dtx_xpath::eval::string_value(&state.doc, n))
                    .collect();
                self.cost.charge(lock_units, nodes.len() as u64);
                ProcessResult::Executed(OpResult::Query { values })
            }
            OpKind::Update(u) => match apply_update(&mut state.doc, u) {
                Ok(record) => {
                    let affected = undo_size(&record);
                    state.dirty = true;
                    state.guide_dirty |= incremental::mutates_extents(&record);
                    // Incremental guide maintenance: extents (and any new
                    // label paths) follow the applied update at O(changed
                    // subtree) cost — the guide is never rebuilt.
                    incremental::note_applied(&mut state.guide, &state.doc, &record);
                    self.undo_log.entry(txn).or_default().push(UndoEntry {
                        doc: op.doc.clone(),
                        op_seq,
                        record,
                    });
                    // Redo record (unforced — the commit record is the
                    // durable point; losing tail Applied records of an
                    // undecided transaction only shortens replay).
                    if let Some(w) = &self.wal {
                        w.append(WalRecord::Applied {
                            txn,
                            doc: op.doc.clone(),
                            op_seq,
                            op: u.clone(),
                        });
                    }
                    self.cost.charge(lock_units, affected as u64);
                    ProcessResult::Executed(OpResult::Update { affected })
                }
                Err(dtx_xpath::UpdateError::EmptyTarget(_)) if tolerate_empty => {
                    // The entity lives in another fragment; nothing to do
                    // here. Locks stay (the paths were still read).
                    ProcessResult::Executed(OpResult::Update { affected: 0 })
                }
                Err(e) => {
                    // Target resolution failed — locks stay (strict 2PL);
                    // the scheduler aborts the transaction, which releases
                    // them and undoes prior operations.
                    ProcessResult::Failed(e.to_string())
                }
            },
        }
    }

    /// Undoes one specific operation of `txn` (a remote operation that
    /// executed here but failed to acquire locks at a sibling site —
    /// Alg. 1 l. 16) and releases the locks that operation took.
    ///
    /// Returns the transactions that were waiting on `txn` here and may
    /// now be able to acquire their locks (speculative-wake feed).
    pub fn undo_op(&mut self, txn: TxnId, op_seq: usize) -> Vec<TxnId> {
        if let Some(entries) = self.undo_log.get_mut(&txn) {
            // Undo in reverse application order.
            let mut kept = Vec::with_capacity(entries.len());
            let mut undone = Vec::new();
            while let Some(e) = entries.pop() {
                if e.op_seq == op_seq {
                    undone.push(e);
                } else {
                    kept.push(e);
                }
            }
            kept.reverse();
            *entries = kept;
            if !undone.is_empty() {
                if let Some(w) = &self.wal {
                    w.append(WalRecord::Undone { txn, op_seq });
                }
            }
            for e in undone {
                if let Some(state) = self.docs.get_mut(&e.doc) {
                    state.guide_dirty |= incremental::mutates_extents(&e.record);
                    incremental::note_undone(&mut state.guide, &state.doc, &e.record);
                    let _ = undo_update(&mut state.doc, &e.record);
                }
            }
        }
        if let Some(locks) = self.op_locks.remove(&(txn, op_seq)) {
            let pairs: Vec<_> = locks.iter().map(|(g, m, _)| (*g, *m)).collect();
            self.table.release_scoped(txn, &pairs);
        }
        // If the transaction no longer holds anything here, nobody is
        // genuinely waiting for it here either.
        if self.table.is_lock_free(txn) {
            let waiters = self.wfg.waiters_of(txn);
            self.wfg.remove_edges_into(txn);
            waiters
        } else {
            Vec::new()
        }
    }

    /// Commits `txn` locally: persist touched documents (Alg. 5 l. 10) and
    /// release all its locks (l. 11).
    ///
    /// On success returns the transactions that were waiting on `txn` here
    /// (speculative-wake feed: they may now acquire their locks).
    pub fn commit_local(&mut self, txn: TxnId) -> StorageResult<Vec<TxnId>> {
        self.release_snapshots(txn);
        // Forced commit record *before* the effects become visible: a
        // restart after this line replays the transaction as committed, a
        // restart before it presumes abort. Read-only terminations (no
        // undo entries) log nothing.
        if self.undo_log.get(&txn).is_some_and(|e| !e.is_empty()) {
            if let Some(w) = &self.wal {
                w.force(WalRecord::Committed { txn });
            }
        }
        self.undo_log.remove(&txn);
        self.clear_indoubt(txn);
        self.op_locks.retain(|(t, _), _| *t != txn);
        if let Some(docs) = self.touched.remove(&txn) {
            for name in docs {
                let mut publish = false;
                if let Some(state) = self.docs.get_mut(&name) {
                    if state.dirty {
                        self.store.persist(&name, &state.doc)?;
                        state.dirty = false;
                        publish = true;
                    }
                }
                if publish {
                    // New commit point: readers starting after this line
                    // pin the post-commit state.
                    self.publish_snapshot(&name);
                }
            }
        }
        self.table.release_all(txn);
        let waiters = self.wfg.waiters_of(txn);
        self.wfg.remove_txn(txn);
        Ok(waiters)
    }

    /// Aborts `txn` locally: undo every applied update in reverse order
    /// (Alg. 6 l. 13) and release all locks (l. 14).
    ///
    /// Returns the transactions that were waiting on `txn` here
    /// (speculative-wake feed: they may now acquire their locks).
    pub fn abort_local(&mut self, txn: TxnId) -> Vec<TxnId> {
        self.release_snapshots(txn);
        self.clear_indoubt(txn);
        let mut undone_docs: Vec<String> = Vec::new();
        if let Some(mut entries) = self.undo_log.remove(&txn) {
            if !entries.is_empty() {
                // Unforced abort hint: losing it only costs replay a
                // redundant presumed-abort resolution.
                if let Some(w) = &self.wal {
                    w.append(WalRecord::Aborted { txn });
                }
            }
            while let Some(e) = entries.pop() {
                if let Some(state) = self.docs.get_mut(&e.doc) {
                    state.guide_dirty |= incremental::mutates_extents(&e.record);
                    incremental::note_undone(&mut state.guide, &state.doc, &e.record);
                    let _ = undo_update(&mut state.doc, &e.record);
                    if !undone_docs.contains(&e.doc) {
                        undone_docs.push(e.doc.clone());
                    }
                }
            }
        }
        // Republish the post-undo state: an intervening commit on the same
        // document may have published a snapshot that still contained this
        // transaction's now-rolled-back changes.
        for name in undone_docs {
            self.publish_snapshot(&name);
        }
        self.op_locks.retain(|(t, _), _| *t != txn);
        self.touched.remove(&txn);
        self.table.release_all(txn);
        let waiters = self.wfg.waiters_of(txn);
        self.wfg.remove_txn(txn);
        waiters
    }

    /// Executes a read-only transaction's query against its pinned
    /// snapshot of `op.doc` — **zero lock acquisitions, zero WFG edges**.
    ///
    /// The first touch of a document pins the latest published snapshot
    /// for `txn`; later operations on the same document reuse that pinned
    /// version, so the transaction sees one consistent commit point per
    /// document regardless of concurrent writers. This method never
    /// touches the lock table or the waits-for graph (the only paths that
    /// do are in [`LockManager::process_operation`]), so snapshot readers
    /// can neither block, be blocked, nor participate in a deadlock.
    ///
    /// Update operations are rejected: the scheduler only routes here for
    /// transactions classified [`TxnMode::ReadOnly`] up front.
    pub fn snapshot_read(&mut self, txn: TxnId, op: &OpSpec) -> ProcessResult {
        let OpKind::Query(q) = &op.kind else {
            return ProcessResult::Failed("snapshot read given an update operation".to_owned());
        };
        let pinned = self
            .snap_pins
            .get(&txn)
            .and_then(|pins| pins.iter().find(|(n, _)| n == &op.doc).map(|&(_, s)| s));
        let snap = match pinned {
            Some(seq) => self.snapshots.at(&op.doc, seq),
            None => {
                let snap = self.snapshots.pin_latest(&op.doc);
                if let Some(s) = &snap {
                    self.snap_pins
                        .entry(txn)
                        .or_default()
                        .push((op.doc.clone(), s.seq));
                    let version = s.seq;
                    self.trace.emit(|| EventKind::SnapPin {
                        txn: txn.0,
                        doc: doc_hash(&op.doc),
                        version,
                    });
                }
                snap
            }
        };
        let Some(snap) = snap else {
            return ProcessResult::Failed(format!("document {:?} not hosted here", op.doc));
        };
        let nodes = eval(&snap.doc, q);
        let values: Vec<String> = nodes
            .iter()
            .map(|&n| dtx_xpath::eval::string_value(&snap.doc, n))
            .collect();
        // Zero lock units charged: only data-processing cost remains.
        self.cost.charge(0, nodes.len() as u64);
        ProcessResult::Executed(OpResult::Query { values })
    }

    /// Releases every snapshot pin `txn` holds, letting superseded
    /// versions be garbage-collected. Runs at the head of both
    /// [`LockManager::commit_local`] and [`LockManager::abort_local`], so
    /// read-only transactions terminate through the unchanged 2PC path.
    fn release_snapshots(&mut self, txn: TxnId) {
        if let Some(pins) = self.snap_pins.remove(&txn) {
            for (name, seq) in pins {
                let live_before = self.snapshots.live(&name);
                self.snapshots.unpin(&name, seq);
                self.trace.emit(|| EventKind::SnapUnpin {
                    txn: txn.0,
                    doc: doc_hash(&name),
                    version: seq,
                });
                if self.trace.is_enabled() {
                    let retired = live_before.saturating_sub(self.snapshots.live(&name));
                    if retired > 0 {
                        self.trace.emit(|| EventKind::SnapGc {
                            doc: doc_hash(&name),
                            retired: retired as u32,
                        });
                    }
                }
            }
        }
    }

    /// The snapshot commit sequence `txn` has pinned for `doc`, if any
    /// (the equivalence property compares a snapshot read against a
    /// locked read at this commit point).
    pub fn pinned_seq(&self, txn: TxnId, doc: &str) -> Option<u64> {
        self.snap_pins
            .get(&txn)?
            .iter()
            .find(|(n, _)| n == doc)
            .map(|&(_, s)| s)
    }

    /// Read access to the published snapshot of `name` at exactly `seq`
    /// (test/audit hook; live readers pin via [`Self::snapshot_read`]).
    pub fn snapshot_at(&self, name: &str, seq: u64) -> Option<Snapshot> {
        self.snapshots.at(name, seq)
    }

    /// Latest published snapshot sequence of `name`, if hosted.
    pub fn latest_snapshot_seq(&self, name: &str) -> Option<u64> {
        self.snapshots.latest_seq(name)
    }

    /// Live snapshot versions of `name` at this site.
    pub fn snapshots_live_of(&self, name: &str) -> usize {
        self.snapshots.live(name)
    }

    /// `(total live snapshot versions, approximate resident bytes)` at
    /// this site — the scheduler republishes these as metrics gauges.
    pub fn snapshot_stats(&self) -> (usize, u64) {
        (self.snapshots.total_live(), self.snapshots.approx_bytes())
    }

    /// True when `txn` has applied, not-yet-terminated updates on `name`
    /// here. The replica copy fence lets such transactions ride through
    /// (they must be able to finish for the document to drain).
    pub fn has_applied_updates(&self, txn: TxnId, name: &str) -> bool {
        self.undo_log
            .get(&txn)
            .is_some_and(|es| es.iter().any(|e| e.doc == name))
    }

    /// True when **no** transaction has applied, not-yet-terminated
    /// updates on `name` at this site — the drain condition the replica
    /// copy fence polls before dumping the source copy.
    pub fn doc_quiescent(&self, name: &str) -> bool {
        !self
            .undo_log
            .values()
            .any(|es| es.iter().any(|e| e.doc == name))
    }

    /// Serializes the last **committed** (persisted) state of `name` from
    /// the store — the copy shipped to a new replica during online
    /// re-replication. Uncommitted in-memory changes are excluded; the
    /// replica copy fence in `Cluster::add_replica` pauses new updates
    /// and drains applied ones before this dump is taken.
    pub fn dump_committed(&mut self, name: &str) -> StorageResult<String> {
        Ok(self.store.load(name)?.to_xml())
    }

    /// [`LockManager::dump_committed`] plus this site's DataGuide for the
    /// document — the full replica-bootstrap shipment. The live guide is
    /// a conservative superset of the committed data's paths (guides
    /// never shrink), so adopting it at the receiver is always safe.
    pub fn dump_with_guide(&mut self, name: &str) -> StorageResult<(String, DataGuide)> {
        let xml = self.dump_committed(name)?;
        let guide = self
            .docs
            .get(name)
            .map(|d| d.guide.clone())
            .ok_or_else(|| crate::lockmgr::not_hosted(name))?;
        Ok((xml, guide))
    }

    /// Storage statistics of the underlying store.
    pub fn store_stats(&self) -> dtx_storage::StoreStats {
        self.store.stats()
    }

    /// Read access to this site's waits-for relation (the scheduler
    /// serves it to the distributed detector, Alg. 4 l. 4).
    pub fn wfg(&self) -> &WaitForGraph {
        &self.wfg
    }

    /// Drops every wait edge out of `txn`: it stopped waiting here
    /// without retrying (its coordinator re-routed the blocked operation
    /// to a different placement).
    pub fn clear_waits(&mut self, txn: TxnId) {
        self.wfg.clear_waits_of(txn);
    }

    /// Recovery redo: re-applies one logged update through the same code
    /// path as live execution ([`dtx_xpath::apply_update`] + incremental
    /// guide maintenance + undo-log entry), but with **no locks and no
    /// logging** — the replayed site is single-threaded and the log
    /// already holds this record. Node-id assignment is deterministic, so
    /// repeating history reproduces the pre-crash state byte-for-byte.
    /// Returns whether the update applied.
    pub fn replay_apply(&mut self, txn: TxnId, doc: &str, op_seq: usize, op: &UpdateOp) -> bool {
        let Some(state) = self.docs.get_mut(doc) else {
            return false;
        };
        match apply_update(&mut state.doc, op) {
            Ok(record) => {
                state.dirty = true;
                state.guide_dirty |= incremental::mutates_extents(&record);
                incremental::note_applied(&mut state.guide, &state.doc, &record);
                self.undo_log.entry(txn).or_default().push(UndoEntry {
                    doc: doc.to_owned(),
                    op_seq,
                    record,
                });
                let touched = self.touched.entry(txn).or_default();
                if !touched.iter().any(|d| d == doc) {
                    touched.push(doc.to_owned());
                }
                true
            }
            Err(_) => false,
        }
    }

    /// Transactions with applied, not-yet-terminated updates here
    /// (sorted). At the end of recovery replay these are the live losers:
    /// everything not committed and not in doubt is presumed aborted.
    pub fn active_txns(&self) -> Vec<TxnId> {
        let mut v: Vec<TxnId> = self
            .undo_log
            .iter()
            .filter(|(_, es)| !es.is_empty())
            .map(|(t, _)| *t)
            .collect();
        v.sort();
        v
    }

    /// Drops `name` entirely from this site: the in-memory state, **every**
    /// snapshot version (pinned or not — the caller quiesced the document
    /// first), and the store copy. Returns whether the document was
    /// hosted. This is the memory-release half of `drop_replica`; the
    /// catalog half routes new work away before this runs.
    pub fn evict_document(&mut self, name: &str) -> bool {
        let was_hosted = self.docs.remove(name).is_some();
        self.snapshots.evict(name);
        let _ = self.store.remove(name);
        was_hosted
    }

    /// Marks every document `txn` has replayed updates on as blocked by an
    /// in-doubt transaction (coarse doc-level stand-in for the lock table
    /// lost in the crash). Returns the blocked document names. Cleared by
    /// [`LockManager::commit_local`] / [`LockManager::abort_local`] when
    /// the 2PC outcome arrives.
    pub fn block_indoubt(&mut self, txn: TxnId) -> Vec<String> {
        let mut docs: Vec<String> = Vec::new();
        if let Some(es) = self.undo_log.get(&txn) {
            for e in es {
                if !docs.contains(&e.doc) {
                    docs.push(e.doc.clone());
                }
            }
        }
        for d in &docs {
            self.indoubt_blocks
                .entry(d.clone())
                .or_default()
                .insert(txn);
        }
        docs
    }

    /// True while any in-doubt transaction blocks writers on `doc`.
    pub fn indoubt_blocked(&self, doc: &str) -> bool {
        self.indoubt_blocks.get(doc).is_some_and(|s| !s.is_empty())
    }

    /// Removes `txn` from every in-doubt document block.
    fn clear_indoubt(&mut self, txn: TxnId) {
        if self.indoubt_blocks.is_empty() {
            return;
        }
        self.indoubt_blocks.retain(|_, s| {
            s.remove(&txn);
            !s.is_empty()
        });
    }
}

fn not_hosted(name: &str) -> StorageError {
    StorageError::NotFound(name.to_owned())
}

/// Guide ids are document-local; offset them into disjoint ranges per
/// document (by the document's site-local tag) so one shared lock table
/// can serve every hosted replica. 24 bits of guide id per document is far
/// beyond any real DataGuide (one node per distinct label path).
fn doc_scoped(tag: u32, gid: dtx_dataguide::GuideId) -> dtx_dataguide::GuideId {
    dtx_dataguide::GuideId(tag | (gid.0 & 0x00FF_FFFF))
}

fn undo_size(record: &UndoRecord) -> usize {
    match record {
        UndoRecord::Insert(ids) => ids.len(),
        UndoRecord::Remove(recs) => recs.len(),
        UndoRecord::Rename(v) => v.len(),
        UndoRecord::Change(v) => v.len(),
        UndoRecord::Transpose(_, _) => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtx_locks::ProtocolKind;
    use dtx_storage::MemStore;
    use dtx_xml::document::{Fragment, InsertPos};
    use dtx_xpath::{Query, UpdateOp};

    fn manager() -> LockManager {
        let mut store = MemStore::free();
        store
            .put_raw(
                "d2",
                "<products><product><id>4</id><name>Monitor</name><price>120.00</price></product>\
                 <product><id>14</id><name>Printer</name><price>55.50</price></product></products>",
            )
            .unwrap();
        let mut lm = LockManager::new(ProtocolKind::Xdgl.instantiate(), Box::new(store));
        lm.load_document("d2").unwrap();
        lm
    }

    fn q(s: &str) -> Query {
        Query::parse(s).unwrap()
    }

    #[test]
    fn query_executes_and_returns_values() {
        let mut lm = manager();
        let op = OpSpec::query("d2", q("/products/product/name"));
        match lm.process_operation(TxnId(1), 0, &op, TxnMode::Updating, false) {
            ProcessResult::Executed(OpResult::Query { values }) => {
                assert_eq!(values, vec!["Monitor".to_owned(), "Printer".to_owned()]);
            }
            other => panic!("{other:?}"),
        }
        assert!(lm.lock_entries() > 0, "strict 2PL keeps locks after the op");
        lm.commit_local(TxnId(1)).unwrap();
        assert_eq!(lm.lock_entries(), 0);
    }

    #[test]
    fn update_applies_and_abort_rolls_back() {
        let mut lm = manager();
        let before = lm.document("d2").unwrap().to_xml();
        let op = OpSpec::update(
            "d2",
            UpdateOp::Insert {
                target: q("/products"),
                fragment: Fragment::elem(
                    "product",
                    vec![
                        Fragment::elem_text("id", "13"),
                        Fragment::elem_text("name", "Mouse"),
                    ],
                ),
                pos: InsertPos::Into,
            },
        );
        match lm.process_operation(TxnId(1), 0, &op, TxnMode::Updating, false) {
            ProcessResult::Executed(OpResult::Update { affected }) => assert_eq!(affected, 1),
            other => panic!("{other:?}"),
        }
        assert_ne!(lm.document("d2").unwrap().to_xml(), before);
        lm.abort_local(TxnId(1));
        assert_eq!(lm.document("d2").unwrap().to_xml(), before);
        assert_eq!(lm.lock_entries(), 0);
    }

    #[test]
    fn commit_persists_to_store() {
        let mut lm = manager();
        let op = OpSpec::update(
            "d2",
            UpdateOp::Change {
                target: q("/products/product[id=4]/price"),
                new_value: "99".into(),
            },
        );
        assert!(matches!(
            lm.process_operation(TxnId(1), 0, &op, TxnMode::Updating, false),
            ProcessResult::Executed(_)
        ));
        lm.commit_local(TxnId(1)).unwrap();
        assert_eq!(lm.store_stats().persists, 1);
        // Reload from store: the change survived.
        lm.load_document("d2").unwrap();
        let doc = lm.document("d2").unwrap();
        let prices = dtx_xpath::eval(doc, &q("/products/product[id=4]/price"));
        assert_eq!(doc.text_of(prices[0]).unwrap(), "99");
    }

    #[test]
    fn conflict_reports_holders_and_adds_wait_edges() {
        let mut lm = manager();
        // t1 scans all products (ST on product).
        let scan = OpSpec::query("d2", q("/products/product"));
        assert!(matches!(
            lm.process_operation(TxnId(1), 0, &scan, TxnMode::ReadOnly, false),
            ProcessResult::Executed(_)
        ));
        // t2 inserts a product → X on product guide node → conflict.
        let ins = OpSpec::update(
            "d2",
            UpdateOp::Insert {
                target: q("/products"),
                fragment: Fragment::elem("product", vec![]),
                pos: InsertPos::Into,
            },
        );
        match lm.process_operation(TxnId(2), 0, &ins, TxnMode::Updating, false) {
            ProcessResult::Conflict { holders, deadlock } => {
                assert_eq!(holders, vec![TxnId(1)]);
                assert!(!deadlock);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(lm.wfg().waits_for(TxnId(2)), vec![TxnId(1)]);
        // The failed op holds no locks: after t1 commits, t2 can proceed.
        lm.commit_local(TxnId(1)).unwrap();
        assert!(matches!(
            lm.process_operation(TxnId(2), 0, &ins, TxnMode::Updating, false),
            ProcessResult::Executed(_)
        ));
        // And its wait edges were cleared on success.
        assert!(lm.wfg().waits_for(TxnId(2)).is_empty());
    }

    #[test]
    fn release_reports_waiters_for_speculative_wake() {
        let mut lm = manager();
        let scan = OpSpec::query("d2", q("/products/product"));
        assert!(matches!(
            lm.process_operation(TxnId(1), 0, &scan, TxnMode::ReadOnly, false),
            ProcessResult::Executed(_)
        ));
        let ins = OpSpec::update(
            "d2",
            UpdateOp::Insert {
                target: q("/products"),
                fragment: Fragment::elem("product", vec![]),
                pos: InsertPos::Into,
            },
        );
        // t2 and t3 both block on t1's scan lock.
        for t in [TxnId(2), TxnId(3)] {
            assert!(matches!(
                lm.process_operation(t, 0, &ins, TxnMode::Updating, false),
                ProcessResult::Conflict { .. }
            ));
        }
        assert_eq!(lm.commit_local(TxnId(1)).unwrap(), vec![TxnId(2), TxnId(3)]);
        // A release with nobody waiting reports nothing.
        assert!(matches!(
            lm.process_operation(TxnId(2), 0, &ins, TxnMode::Updating, false),
            ProcessResult::Executed(_)
        ));
        assert!(lm.abort_local(TxnId(3)).is_empty());
        assert_eq!(lm.commit_local(TxnId(2)).unwrap(), vec![]);
    }

    #[test]
    fn dump_committed_excludes_uncommitted_changes() {
        let mut lm = manager();
        let committed = lm.document("d2").unwrap().to_xml();
        let op = OpSpec::update(
            "d2",
            UpdateOp::Change {
                target: q("/products/product[id=4]/price"),
                new_value: "1".into(),
            },
        );
        assert!(matches!(
            lm.process_operation(TxnId(1), 0, &op, TxnMode::Updating, false),
            ProcessResult::Executed(_)
        ));
        // In-memory state changed; the committed dump has not.
        assert_ne!(lm.document("d2").unwrap().to_xml(), committed);
        assert_eq!(lm.dump_committed("d2").unwrap(), committed);
        lm.commit_local(TxnId(1)).unwrap();
        assert_eq!(
            lm.dump_committed("d2").unwrap(),
            lm.document("d2").unwrap().to_xml()
        );
    }

    #[test]
    fn local_deadlock_flagged() {
        let mut lm = manager();
        // t1 scans products (ST product), t2 scans prices (ST price).
        let scan_products = OpSpec::query("d2", q("/products/product"));
        let change_price = OpSpec::update(
            "d2",
            UpdateOp::Change {
                target: q("/products/product/price"),
                new_value: "0".into(),
            },
        );
        let scan_price = OpSpec::query("d2", q("/products/product/price"));
        let insert_product = OpSpec::update(
            "d2",
            UpdateOp::Insert {
                target: q("/products"),
                fragment: Fragment::elem("product", vec![]),
                pos: InsertPos::Into,
            },
        );
        // t1 holds ST(product); t2 holds ST(price) — wait: scan_price puts
        // ST on price and IS on product/products: compatible with t1.
        assert!(matches!(
            lm.process_operation(TxnId(1), 0, &scan_products, TxnMode::Updating, false),
            ProcessResult::Executed(_)
        ));
        assert!(matches!(
            lm.process_operation(TxnId(2), 0, &scan_price, TxnMode::Updating, false),
            ProcessResult::Executed(_)
        ));
        // t1 now wants to change price → X(price) vs t2's ST(price): waits.
        match lm.process_operation(TxnId(1), 1, &change_price, TxnMode::Updating, false) {
            ProcessResult::Conflict { deadlock, .. } => assert!(!deadlock),
            other => panic!("{other:?}"),
        }
        // t2 wants to insert a product → X(product) vs t1's ST(product):
        // waits → cycle → deadlock flag.
        match lm.process_operation(TxnId(2), 1, &insert_product, TxnMode::Updating, false) {
            ProcessResult::Conflict { deadlock, .. } => assert!(deadlock),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn undo_op_reverts_single_operation() {
        let mut lm = manager();
        let before = lm.document("d2").unwrap().to_xml();
        let op0 = OpSpec::update(
            "d2",
            UpdateOp::Change {
                target: q("/products/product[id=4]/price"),
                new_value: "1".into(),
            },
        );
        let op1 = OpSpec::update(
            "d2",
            UpdateOp::Change {
                target: q("/products/product[id=14]/price"),
                new_value: "2".into(),
            },
        );
        assert!(matches!(
            lm.process_operation(TxnId(1), 0, &op0, TxnMode::Updating, false),
            ProcessResult::Executed(_)
        ));
        assert!(matches!(
            lm.process_operation(TxnId(1), 1, &op1, TxnMode::Updating, false),
            ProcessResult::Executed(_)
        ));
        // Undo only op 1.
        lm.undo_op(TxnId(1), 1);
        let doc = lm.document("d2").unwrap();
        let p4 = dtx_xpath::eval(doc, &q("/products/product[id=4]/price"));
        let p14 = dtx_xpath::eval(doc, &q("/products/product[id=14]/price"));
        assert_eq!(doc.text_of(p4[0]).unwrap(), "1");
        assert_eq!(doc.text_of(p14[0]).unwrap(), "55.50");
        // Abort reverts the rest.
        lm.abort_local(TxnId(1));
        assert_eq!(lm.document("d2").unwrap().to_xml(), before);
    }

    #[test]
    fn failed_target_reports_failure() {
        let mut lm = manager();
        let op = OpSpec::update(
            "d2",
            UpdateOp::Remove {
                target: q("/products/widget"),
            },
        );
        assert!(matches!(
            lm.process_operation(TxnId(1), 0, &op, TxnMode::Updating, false),
            ProcessResult::Failed(_)
        ));
    }

    #[test]
    fn unknown_document_fails() {
        let mut lm = manager();
        let op = OpSpec::query("ghost", q("/a"));
        assert!(matches!(
            lm.process_operation(TxnId(1), 0, &op, TxnMode::Updating, false),
            ProcessResult::Failed(_)
        ));
    }

    #[test]
    fn multiple_documents_do_not_alias_locks() {
        let mut store = MemStore::free();
        store.put_raw("a", "<r><x>1</x></r>").unwrap();
        store.put_raw("b", "<r><x>1</x></r>").unwrap();
        let mut lm = LockManager::new(ProtocolKind::DocLock.instantiate(), Box::new(store));
        lm.load_document("a").unwrap();
        lm.load_document("b").unwrap();
        // t1 exclusively locks doc a (root), t2 exclusively locks doc b.
        let upd_a = OpSpec::update(
            "a",
            UpdateOp::Change {
                target: q("/r/x"),
                new_value: "2".into(),
            },
        );
        let upd_b = OpSpec::update(
            "b",
            UpdateOp::Change {
                target: q("/r/x"),
                new_value: "3".into(),
            },
        );
        assert!(matches!(
            lm.process_operation(TxnId(1), 0, &upd_a, TxnMode::Updating, false),
            ProcessResult::Executed(_)
        ));
        // Same guide id (root = 0) in a different document must not clash.
        assert!(matches!(
            lm.process_operation(TxnId(2), 0, &upd_b, TxnMode::Updating, false),
            ProcessResult::Executed(_)
        ));
    }

    #[test]
    fn hosted_listing() {
        let lm = manager();
        assert!(lm.hosts("d2"));
        assert!(!lm.hosts("d1"));
        assert_eq!(lm.hosted(), vec!["d2".to_owned()]);
        assert!(lm.guide("d2").is_some());
    }

    #[test]
    fn snapshot_read_takes_no_locks_and_adds_no_wfg_edges() {
        let mut lm = manager();
        let op = OpSpec::query("d2", q("/products/product/name"));
        match lm.snapshot_read(TxnId(1), &op) {
            ProcessResult::Executed(OpResult::Query { values }) => {
                assert_eq!(values, vec!["Monitor".to_owned(), "Printer".to_owned()]);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(lm.lock_entries(), 0, "snapshot reads hold no locks");
        assert!(lm.wfg().is_empty(), "snapshot reads add no wait edges");
        assert_eq!(lm.pinned_seq(TxnId(1), "d2"), Some(0));
        lm.commit_local(TxnId(1)).unwrap();
        assert!(lm.pinned_seq(TxnId(1), "d2").is_none());
    }

    #[test]
    fn snapshot_reader_is_stable_across_writer_commits() {
        let mut lm = manager();
        let read = OpSpec::query("d2", q("/products/product[id=4]/price"));
        // Reader pins the initial snapshot.
        match lm.snapshot_read(TxnId(1), &read) {
            ProcessResult::Executed(OpResult::Query { values }) => {
                assert_eq!(values, vec!["120.00".to_owned()]);
            }
            other => panic!("{other:?}"),
        }
        // A writer changes the price and commits (publishing a version).
        let upd = OpSpec::update(
            "d2",
            UpdateOp::Change {
                target: q("/products/product[id=4]/price"),
                new_value: "99".into(),
            },
        );
        assert!(matches!(
            lm.process_operation(TxnId(2), 0, &upd, TxnMode::Updating, false),
            ProcessResult::Executed(_)
        ));
        lm.commit_local(TxnId(2)).unwrap();
        // The pinned reader still sees its commit point…
        match lm.snapshot_read(TxnId(1), &read) {
            ProcessResult::Executed(OpResult::Query { values }) => {
                assert_eq!(values, vec!["120.00".to_owned()]);
            }
            other => panic!("{other:?}"),
        }
        // …while a fresh reader pins the post-commit state.
        match lm.snapshot_read(TxnId(3), &read) {
            ProcessResult::Executed(OpResult::Query { values }) => {
                assert_eq!(values, vec!["99".to_owned()]);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(lm.snapshots_live_of("d2"), 2);
        // Draining both readers collects the superseded version.
        lm.commit_local(TxnId(1)).unwrap();
        lm.commit_local(TxnId(3)).unwrap();
        assert_eq!(lm.snapshots_live_of("d2"), 1);
    }

    #[test]
    fn abort_republishes_rolled_back_state() {
        let mut lm = manager();
        let upd = OpSpec::update(
            "d2",
            UpdateOp::Change {
                target: q("/products/product[id=4]/price"),
                new_value: "1".into(),
            },
        );
        assert!(matches!(
            lm.process_operation(TxnId(1), 0, &upd, TxnMode::Updating, false),
            ProcessResult::Executed(_)
        ));
        let seq_before = lm.latest_snapshot_seq("d2").unwrap();
        lm.abort_local(TxnId(1));
        // The abort republished the post-undo state.
        assert!(lm.latest_snapshot_seq("d2").unwrap() > seq_before);
        let read = OpSpec::query("d2", q("/products/product[id=4]/price"));
        match lm.snapshot_read(TxnId(2), &read) {
            ProcessResult::Executed(OpResult::Query { values }) => {
                assert_eq!(values, vec!["120.00".to_owned()]);
            }
            other => panic!("{other:?}"),
        }
        lm.commit_local(TxnId(2)).unwrap();
    }

    #[test]
    fn snapshot_read_rejects_updates_and_unknown_docs() {
        let mut lm = manager();
        let upd = OpSpec::update(
            "d2",
            UpdateOp::Change {
                target: q("/products/product/price"),
                new_value: "0".into(),
            },
        );
        assert!(matches!(
            lm.snapshot_read(TxnId(1), &upd),
            ProcessResult::Failed(_)
        ));
        let ghost = OpSpec::query("ghost", q("/a"));
        assert!(matches!(
            lm.snapshot_read(TxnId(1), &ghost),
            ProcessResult::Failed(_)
        ));
    }

    #[test]
    fn value_only_commits_share_the_guide_arc() {
        let mut lm = manager();
        let s0 = lm
            .snapshot_at("d2", lm.latest_snapshot_seq("d2").unwrap())
            .unwrap();
        let pin = lm.snapshot_read(TxnId(9), &OpSpec::query("d2", q("/products")));
        assert!(matches!(pin, ProcessResult::Executed(_)));
        // Change commits are structurally inert → same guide Arc.
        let change = OpSpec::update(
            "d2",
            UpdateOp::Change {
                target: q("/products/product/price"),
                new_value: "7".into(),
            },
        );
        assert!(matches!(
            lm.process_operation(TxnId(1), 0, &change, TxnMode::Updating, false),
            ProcessResult::Executed(_)
        ));
        lm.commit_local(TxnId(1)).unwrap();
        let s1 = lm
            .snapshot_at("d2", lm.latest_snapshot_seq("d2").unwrap())
            .unwrap();
        assert!(Arc::ptr_eq(&s0.guide, &s1.guide), "COW: guide shared");
        // An insert commit moves extents → fresh guide Arc.
        let ins = OpSpec::update(
            "d2",
            UpdateOp::Insert {
                target: q("/products"),
                fragment: Fragment::elem("product", vec![]),
                pos: InsertPos::Into,
            },
        );
        assert!(matches!(
            lm.process_operation(TxnId(2), 0, &ins, TxnMode::Updating, false),
            ProcessResult::Executed(_)
        ));
        lm.commit_local(TxnId(2)).unwrap();
        let s2 = lm
            .snapshot_at("d2", lm.latest_snapshot_seq("d2").unwrap())
            .unwrap();
        assert!(!Arc::ptr_eq(&s1.guide, &s2.guide));
        lm.commit_local(TxnId(9)).unwrap();
    }

    #[test]
    fn wal_hooks_log_apply_commit_and_abort() {
        let mut lm = manager();
        let wal = Arc::new(dtx_storage::Wal::new());
        lm.set_wal(Arc::clone(&wal));
        let upd = OpSpec::update(
            "d2",
            UpdateOp::Change {
                target: q("/products/product[id=4]/price"),
                new_value: "1".into(),
            },
        );
        assert!(matches!(
            lm.process_operation(TxnId(1), 0, &upd, TxnMode::Updating, false),
            ProcessResult::Executed(_)
        ));
        assert_eq!(lm.active_txns(), vec![TxnId(1)]);
        lm.commit_local(TxnId(1)).unwrap();
        assert_eq!(wal.forces(), 1, "commit record is forced");
        // Aborted writer leaves an unforced hint.
        assert!(matches!(
            lm.process_operation(TxnId(2), 0, &upd, TxnMode::Updating, false),
            ProcessResult::Executed(_)
        ));
        lm.abort_local(TxnId(2));
        assert_eq!(wal.forces(), 1);
        let kinds: Vec<&'static str> = wal
            .snapshot()
            .iter()
            .map(|r| match r {
                WalRecord::Applied { .. } => "applied",
                WalRecord::Committed { .. } => "committed",
                WalRecord::Aborted { .. } => "aborted",
                _ => "other",
            })
            .collect();
        assert_eq!(kinds, vec!["applied", "committed", "applied", "aborted"]);
        // A read-only termination logs nothing.
        let len = wal.len();
        lm.commit_local(TxnId(9)).unwrap();
        assert_eq!(wal.len(), len);
    }

    #[test]
    fn replay_apply_reproduces_live_execution_byte_for_byte() {
        let mut live = manager();
        let mut replayed = manager();
        let op = UpdateOp::Insert {
            target: q("/products"),
            fragment: Fragment::elem(
                "product",
                vec![
                    Fragment::elem_text("id", "30"),
                    Fragment::elem_text("name", "Desk"),
                ],
            ),
            pos: InsertPos::Into,
        };
        assert!(matches!(
            live.process_operation(
                TxnId(1),
                0,
                &OpSpec::update("d2", op.clone()),
                TxnMode::Updating,
                false
            ),
            ProcessResult::Executed(_)
        ));
        assert!(replayed.replay_apply(TxnId(1), "d2", 0, &op));
        assert_eq!(
            live.document("d2").unwrap().to_xml(),
            replayed.document("d2").unwrap().to_xml()
        );
        // Replayed undo state is live too: abort rolls it back.
        replayed.abort_local(TxnId(1));
        live.abort_local(TxnId(1));
        assert_eq!(
            live.document("d2").unwrap().to_xml(),
            replayed.document("d2").unwrap().to_xml()
        );
        assert!(!replayed.replay_apply(TxnId(2), "ghost", 0, &op));
    }

    #[test]
    fn indoubt_block_stalls_writers_but_not_snapshot_readers() {
        let mut lm = manager();
        let upd = OpSpec::update(
            "d2",
            UpdateOp::Change {
                target: q("/products/product[id=4]/price"),
                new_value: "1".into(),
            },
        );
        // Simulate a recovered in-doubt transaction: replayed update, then
        // the doc-level block.
        let OpKind::Update(u) = upd.kind.clone() else {
            unreachable!()
        };
        assert!(lm.replay_apply(TxnId(7), "d2", 0, &u));
        assert_eq!(lm.block_indoubt(TxnId(7)), vec!["d2".to_owned()]);
        assert!(lm.indoubt_blocked("d2"));
        // A writer conflicts against the in-doubt holder…
        match lm.process_operation(TxnId(8), 0, &upd, TxnMode::Updating, false) {
            ProcessResult::Conflict { holders, deadlock } => {
                assert_eq!(holders, vec![TxnId(7)]);
                assert!(!deadlock);
            }
            other => panic!("{other:?}"),
        }
        // …the holder itself is not self-blocked…
        assert!(matches!(
            lm.process_operation(TxnId(7), 1, &upd, TxnMode::Updating, false),
            ProcessResult::Executed(_)
        ));
        // …and snapshot readers sail through.
        assert!(matches!(
            lm.snapshot_read(TxnId(9), &OpSpec::query("d2", q("/products/product/name"))),
            ProcessResult::Executed(_)
        ));
        lm.commit_local(TxnId(9)).unwrap();
        // Outcome arrival clears the fence.
        lm.commit_local(TxnId(7)).unwrap();
        assert!(!lm.indoubt_blocked("d2"));
        assert!(matches!(
            lm.process_operation(TxnId(8), 0, &upd, TxnMode::Updating, false),
            ProcessResult::Executed(_)
        ));
        lm.abort_local(TxnId(8));
    }

    #[test]
    fn evict_document_releases_everything() {
        let mut lm = manager();
        // Pin a snapshot so eviction has retained state to free.
        assert!(matches!(
            lm.snapshot_read(TxnId(1), &OpSpec::query("d2", q("/products"))),
            ProcessResult::Executed(_)
        ));
        assert!(lm.hosts("d2"));
        assert!(lm.snapshots_live_of("d2") > 0);
        assert!(lm.evict_document("d2"));
        assert!(!lm.hosts("d2"));
        assert_eq!(lm.snapshots_live_of("d2"), 0);
        assert_eq!(lm.snapshot_stats().0, 0);
        assert!(!lm.evict_document("d2"), "second evict is a no-op");
        // Operations on the evicted document now fail cleanly.
        assert!(matches!(
            lm.process_operation(
                TxnId(2),
                0,
                &OpSpec::query("d2", q("/products")),
                TxnMode::Updating,
                false
            ),
            ProcessResult::Failed(_)
        ));
    }

    #[test]
    fn quiescence_tracks_applied_updates() {
        let mut lm = manager();
        assert!(lm.doc_quiescent("d2"));
        assert!(!lm.has_applied_updates(TxnId(1), "d2"));
        let upd = OpSpec::update(
            "d2",
            UpdateOp::Change {
                target: q("/products/product[id=4]/price"),
                new_value: "1".into(),
            },
        );
        assert!(matches!(
            lm.process_operation(TxnId(1), 0, &upd, TxnMode::Updating, false),
            ProcessResult::Executed(_)
        ));
        assert!(!lm.doc_quiescent("d2"));
        assert!(lm.has_applied_updates(TxnId(1), "d2"));
        assert!(!lm.has_applied_updates(TxnId(2), "d2"));
        lm.commit_local(TxnId(1)).unwrap();
        assert!(lm.doc_quiescent("d2"));
    }
}
