//! Cluster-wide experiment metrics.
//!
//! The paper's evaluation measures "response time and number of
//! deadlocks" (§3.2), plus throughput / concurrency degree over time
//! (Fig. 12: "the number of transactions consolidated at each time
//! interval"). This module records one [`TxnRecord`] per terminated
//! transaction and derives all of those series.

use crate::op::{AbortReason, TxnStatus};
use dtx_locks::TxnId;
use dtx_net::SiteId;
use parking_lot::Mutex;
use std::time::{Duration, Instant};

/// One terminated transaction.
#[derive(Debug, Clone)]
pub struct TxnRecord {
    /// The transaction.
    pub txn: TxnId,
    /// Coordinator site.
    pub coordinator: SiteId,
    /// Submission time.
    pub submitted: Instant,
    /// Termination time.
    pub finished: Instant,
    /// Terminal status.
    pub status: TxnStatus,
    /// Number of operations in the transaction.
    pub ops: usize,
    /// Whether any operation was an update.
    pub is_update: bool,
}

impl TxnRecord {
    /// Response time (submission → termination).
    pub fn response_time(&self) -> Duration {
        self.finished.duration_since(self.submitted)
    }
}

/// Shared metrics collector.
#[derive(Debug)]
pub struct Metrics {
    origin: Instant,
    records: Mutex<Vec<TxnRecord>>,
    detector_runs: Mutex<u64>,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// New collector; `origin` is "time zero" for the series.
    pub fn new() -> Self {
        Metrics { origin: Instant::now(), records: Mutex::new(Vec::new()), detector_runs: Mutex::new(0) }
    }

    /// Records a terminated transaction.
    pub fn record(&self, rec: TxnRecord) {
        self.records.lock().push(rec);
    }

    /// Notes one execution of the distributed deadlock detector.
    pub fn note_detector_run(&self) {
        *self.detector_runs.lock() += 1;
    }

    /// Number of detector executions.
    pub fn detector_runs(&self) -> u64 {
        *self.detector_runs.lock()
    }

    /// Snapshot of all records.
    pub fn records(&self) -> Vec<TxnRecord> {
        self.records.lock().clone()
    }

    /// Aggregated summary.
    pub fn summary(&self) -> Summary {
        let records = self.records.lock();
        let mut s = Summary::default();
        let mut rts: Vec<Duration> = Vec::with_capacity(records.len());
        let mut first: Option<Instant> = None;
        let mut last: Option<Instant> = None;
        for r in records.iter() {
            s.terminated += 1;
            match &r.status {
                TxnStatus::Committed => {
                    s.committed += 1;
                    rts.push(r.response_time());
                }
                TxnStatus::Aborted(AbortReason::Deadlock) => {
                    s.aborted += 1;
                    s.deadlocks += 1;
                }
                TxnStatus::Aborted(_) => s.aborted += 1,
                TxnStatus::Failed(_) => s.failed += 1,
            }
            first = Some(first.map_or(r.submitted, |f| f.min(r.submitted)));
            last = Some(last.map_or(r.finished, |l| l.max(r.finished)));
        }
        if let (Some(f), Some(l)) = (first, last) {
            s.makespan = l.duration_since(f);
        }
        if !rts.is_empty() {
            rts.sort();
            s.mean_response = rts.iter().sum::<Duration>() / (rts.len() as u32);
            s.p50_response = rts[rts.len() / 2];
            s.p95_response = rts[(rts.len() * 95 / 100).min(rts.len() - 1)];
            s.max_response = *rts.last().expect("non-empty");
        }
        s
    }

    /// Fig. 12 series: cumulative committed transactions at the end of
    /// each `bucket`-sized interval since the first submission.
    pub fn throughput_series(&self, bucket: Duration) -> Vec<(Duration, usize)> {
        let records = self.records.lock();
        let Some(start) = records.iter().map(|r| r.submitted).min() else { return Vec::new() };
        let mut ends: Vec<Duration> = records
            .iter()
            .filter(|r| r.status == TxnStatus::Committed)
            .map(|r| r.finished.duration_since(start))
            .collect();
        ends.sort();
        let Some(&latest) = ends.last() else { return Vec::new() };
        let buckets = (latest.as_nanos() / bucket.as_nanos().max(1)) as usize + 1;
        let mut out = Vec::with_capacity(buckets);
        for b in 1..=buckets {
            let t = bucket * (b as u32);
            let cum = ends.iter().take_while(|&&e| e <= t).count();
            out.push((t, cum));
        }
        out
    }

    /// Concurrency-degree series: average number of in-flight transactions
    /// during each `bucket`-sized interval.
    pub fn concurrency_series(&self, bucket: Duration) -> Vec<(Duration, f64)> {
        let records = self.records.lock();
        let Some(start) = records.iter().map(|r| r.submitted).min() else { return Vec::new() };
        let Some(end) = records.iter().map(|r| r.finished).max() else { return Vec::new() };
        let total = end.duration_since(start);
        let buckets = (total.as_nanos() / bucket.as_nanos().max(1)) as usize + 1;
        let mut out = Vec::with_capacity(buckets);
        for b in 0..buckets {
            let lo = bucket * (b as u32);
            let hi = bucket * ((b + 1) as u32);
            // Overlap of [submitted, finished) with [lo, hi), averaged.
            let mut busy = Duration::ZERO;
            for r in records.iter() {
                let s = r.submitted.duration_since(start);
                let f = r.finished.duration_since(start);
                let o_lo = s.max(lo);
                let o_hi = f.min(hi);
                if o_hi > o_lo {
                    busy += o_hi - o_lo;
                }
            }
            out.push((hi, busy.as_secs_f64() / bucket.as_secs_f64()));
        }
        out
    }

    /// Seconds since collector creation (for traces).
    pub fn elapsed(&self) -> Duration {
        self.origin.elapsed()
    }
}

/// Aggregate counters; see [`Metrics::summary`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Summary {
    /// Terminated transactions.
    pub terminated: usize,
    /// Committed.
    pub committed: usize,
    /// Aborted (all reasons, including deadlock).
    pub aborted: usize,
    /// Failed (abort could not complete).
    pub failed: usize,
    /// Aborts whose reason was deadlock victimization.
    pub deadlocks: usize,
    /// Mean response time of committed transactions.
    pub mean_response: Duration,
    /// Median response time.
    pub p50_response: Duration,
    /// 95th percentile response time.
    pub p95_response: Duration,
    /// Maximum response time.
    pub max_response: Duration,
    /// First submission → last termination.
    pub makespan: Duration,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(txn: u64, start_ms: u64, end_ms: u64, status: TxnStatus, base: Instant) -> TxnRecord {
        TxnRecord {
            txn: TxnId(txn),
            coordinator: SiteId(0),
            submitted: base + Duration::from_millis(start_ms),
            finished: base + Duration::from_millis(end_ms),
            status,
            ops: 5,
            is_update: false,
        }
    }

    #[test]
    fn summary_counts_and_percentiles() {
        let m = Metrics::new();
        let base = Instant::now();
        m.record(rec(1, 0, 10, TxnStatus::Committed, base));
        m.record(rec(2, 0, 20, TxnStatus::Committed, base));
        m.record(rec(3, 0, 30, TxnStatus::Committed, base));
        m.record(rec(4, 0, 5, TxnStatus::Aborted(AbortReason::Deadlock), base));
        m.record(rec(5, 0, 5, TxnStatus::Failed("x".into()), base));
        let s = m.summary();
        assert_eq!(s.terminated, 5);
        assert_eq!(s.committed, 3);
        assert_eq!(s.aborted, 1);
        assert_eq!(s.deadlocks, 1);
        assert_eq!(s.failed, 1);
        assert_eq!(s.mean_response, Duration::from_millis(20));
        assert_eq!(s.p50_response, Duration::from_millis(20));
        assert_eq!(s.max_response, Duration::from_millis(30));
        assert_eq!(s.makespan, Duration::from_millis(30));
    }

    #[test]
    fn empty_summary_is_zero() {
        let s = Metrics::new().summary();
        assert_eq!(s, Summary::default());
    }

    #[test]
    fn throughput_series_is_cumulative() {
        let m = Metrics::new();
        let base = Instant::now();
        m.record(rec(1, 0, 10, TxnStatus::Committed, base));
        m.record(rec(2, 0, 25, TxnStatus::Committed, base));
        m.record(rec(3, 0, 25, TxnStatus::Aborted(AbortReason::Deadlock), base));
        let series = m.throughput_series(Duration::from_millis(10));
        // Buckets at 10, 20, 30 ms → cumulative 1, 1, 2.
        assert_eq!(series.len(), 3);
        assert_eq!(series[0].1, 1);
        assert_eq!(series[1].1, 1);
        assert_eq!(series[2].1, 2);
        // Monotone non-decreasing.
        assert!(series.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn concurrency_series_reflects_overlap() {
        let m = Metrics::new();
        let base = Instant::now();
        // Two fully-overlapping txns for 10ms.
        m.record(rec(1, 0, 10, TxnStatus::Committed, base));
        m.record(rec(2, 0, 10, TxnStatus::Committed, base));
        let series = m.concurrency_series(Duration::from_millis(10));
        assert!(!series.is_empty());
        assert!((series[0].1 - 2.0).abs() < 0.01, "got {}", series[0].1);
    }

    #[test]
    fn detector_run_counter() {
        let m = Metrics::new();
        m.note_detector_run();
        m.note_detector_run();
        assert_eq!(m.detector_runs(), 2);
    }
}
