//! Cluster-wide experiment metrics.
//!
//! The paper's evaluation measures "response time and number of
//! deadlocks" (§3.2), plus throughput / concurrency degree over time
//! (Fig. 12: "the number of transactions consolidated at each time
//! interval"). This module records one [`TxnRecord`] per terminated
//! transaction and derives all of those series.

use crate::op::{AbortReason, TxnStatus};
use dtx_locks::TxnId;
use dtx_net::SiteId;
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Sub-bucket resolution bits of [`Histogram`]: 2⁴ = 16 linear
/// sub-buckets per power of two, bounding relative quantization error
/// at 1/16 ≈ 6%.
const HIST_SUB_BITS: u32 = 4;
const HIST_SUB: usize = 1 << HIST_SUB_BITS;
/// Bucket count covering the full `u64` nanosecond range.
const HIST_BUCKETS: usize = (64 - HIST_SUB_BITS as usize) * HIST_SUB + HIST_SUB;

/// Index of the log-bucket holding `v`: exact below [`HIST_SUB`], then
/// 16 linear sub-buckets per octave (HDR-histogram layout).
fn hist_index(v: u64) -> usize {
    if v < HIST_SUB as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let sub = ((v >> (msb - HIST_SUB_BITS)) & (HIST_SUB as u64 - 1)) as usize;
    (msb - HIST_SUB_BITS + 1) as usize * HIST_SUB + sub
}

/// Midpoint value of bucket `idx` — what percentile extraction reports.
fn hist_value(idx: usize) -> u64 {
    if idx < HIST_SUB {
        return idx as u64;
    }
    let msb = (idx / HIST_SUB - 1) as u32 + HIST_SUB_BITS;
    let sub = (idx % HIST_SUB) as u64;
    let width = 1u64 << (msb - HIST_SUB_BITS);
    let base = (1u64 << msb) | (sub * width);
    base + width / 2
}

/// A lock-free log-bucketed latency histogram (HDR style): fixed
/// memory, O(1) recording from any thread, percentile extraction with
/// at most ~6% relative error. This is what replaced mean-only response
/// reporting — tail percentiles (p99, p999) are invisible to means and
/// are the numbers open-loop load experiments are judged by.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram covering 1 ns … `u64::MAX` ns.
    pub fn new() -> Self {
        Histogram {
            buckets: (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    /// Records one duration.
    pub fn record(&self, d: Duration) {
        self.record_ns(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Records one raw nanosecond value.
    pub fn record_ns(&self, ns: u64) {
        self.buckets[hist_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Mean of all recorded values (exact, from the running sum).
    pub fn mean(&self) -> Duration {
        let count = self.count();
        if count == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(self.sum_ns.load(Ordering::Relaxed) / count)
    }

    /// Largest recorded value (exact).
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_ns.load(Ordering::Relaxed))
    }

    /// Adds every sample of `other` into `self`, bucket by bucket.
    ///
    /// Because both histograms share the same fixed bucket layout, a
    /// merge is exact: percentiles of the merged histogram equal the
    /// percentiles of a single histogram that recorded the union of
    /// both sample sets. This is how the open-loop driver folds its
    /// per-worker histograms into one summary without any cross-thread
    /// contention on the record path.
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum_ns
            .fetch_add(other.sum_ns.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max_ns
            .fetch_max(other.max_ns.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// The `q`-quantile (`0.0 < q <= 1.0`, e.g. `0.999`), accurate to
    /// the bucket width (≤ ~6% relative error), capped at the exact
    /// maximum so a tail quantile never reports past the observed max.
    pub fn percentile(&self, q: f64) -> Duration {
        let count = self.count();
        if count == 0 {
            return Duration::ZERO;
        }
        let target = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (idx, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return Duration::from_nanos(
                    hist_value(idx).min(self.max_ns.load(Ordering::Relaxed)),
                );
            }
        }
        self.max()
    }
}

/// Time a coordinated transaction spent in each scheduler state.
///
/// The scheduler advances every transaction through an explicit state
/// machine (ready → waiting / awaiting-remote-ops → terminating); these
/// buckets partition the whole response time, so they localize where
/// latency goes: lock contention shows up in `waiting`, network
/// round-trips in `remote`, commit/abort protocol cost in `terminating`,
/// and scheduler queueing in `ready`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimes {
    /// Runnable but not yet dispatched (scheduler queueing delay).
    pub ready: Duration,
    /// In wait mode after a lock denial, until the retry fired.
    pub waiting: Duration,
    /// Awaiting remote-operation responses (`AwaitingRemoteOps`).
    pub remote: Duration,
    /// Awaiting commit/abort acknowledgements.
    pub terminating: Duration,
}

impl PhaseTimes {
    /// Adds `other` into `self`, bucket by bucket.
    pub fn accumulate(&mut self, other: &PhaseTimes) {
        self.ready += other.ready;
        self.waiting += other.waiting;
        self.remote += other.remote;
        self.terminating += other.terminating;
    }
}

/// One terminated transaction.
#[derive(Debug, Clone)]
pub struct TxnRecord {
    /// The transaction.
    pub txn: TxnId,
    /// Coordinator site.
    pub coordinator: SiteId,
    /// Submission time.
    pub submitted: Instant,
    /// Termination time.
    pub finished: Instant,
    /// Terminal status.
    pub status: TxnStatus,
    /// Number of operations in the transaction.
    pub ops: usize,
    /// Whether any operation was an update.
    pub is_update: bool,
    /// Per-scheduler-state timing breakdown.
    pub phase_times: PhaseTimes,
}

impl TxnRecord {
    /// Response time (submission → termination).
    pub fn response_time(&self) -> Duration {
        self.finished.duration_since(self.submitted)
    }
}

/// Shared metrics collector.
#[derive(Debug)]
pub struct Metrics {
    origin: Instant,
    records: Mutex<Vec<TxnRecord>>,
    detector_runs: Mutex<u64>,
    /// High-water mark of transactions simultaneously in
    /// `AwaitingRemoteOps` at any single coordinator — the direct measure
    /// of distributed-operation pipelining (the blocking nested-pump
    /// design pinned this at 1 per site).
    max_inflight_remote: AtomicUsize,
    /// Coordinator → participant `ExecRemote` dispatches — the per-plan
    /// remote message cost of placement. Read-one routing cuts this from
    /// `|replicas|` to at most 1 per read operation.
    remote_msgs: AtomicU64,
    /// Operations routed per site (local executions included), indexed by
    /// site id: the load feed of the hotness-aware placement policy. The
    /// vector grows on first touch of a site; reads and increments are
    /// lock-free thereafter (this sits on every scheduler's dispatch hot
    /// path, and the hotness policy reads it per routed operation).
    site_ops: RwLock<Vec<AtomicU64>>,
    /// Dispatches refused as stale (document placement-version mismatch)
    /// and re-routed by their coordinator under the fresh placement.
    stale_reroutes: AtomicU64,
    /// DataGuides built from scratch across the cluster (document loads
    /// without a shipped/streamed guide). Replica bootstrap ships the
    /// source's guide, so `add_replica` must not move this counter.
    guides_built: AtomicU64,
    /// Termination-protocol messages actually sent (`TerminateBatch` and
    /// its acks, both directions). Group commit coalesces per (site,
    /// tick), so under heavy traffic this sits strictly below
    /// [`Metrics::termination_msgs_unbatched`].
    termination_msgs: AtomicU64,
    /// What the per-transaction termination protocol *would* have sent:
    /// one `Commit`/`Abort` per (transaction, site) plus one ack each —
    /// the batching win's regression witness.
    termination_msgs_unbatched: AtomicU64,
    /// Query operations answered from a pinned snapshot (the lock-free
    /// read path): no lock table, no WFG. Together with the per-site
    /// gauges below this is the witness that read-only transactions
    /// really bypassed XDGL.
    snapshot_reads: AtomicU64,
    /// Live snapshot versions per site (gauge: last reported value, not a
    /// running sum). Summed across sites by [`Metrics::snapshots_live`].
    snapshots_live: RwLock<Vec<AtomicU64>>,
    /// Approximate resident snapshot bytes per site (gauge, shared-`Arc`
    /// structures counted once per site store).
    snapshot_bytes: RwLock<Vec<AtomicU64>>,
    /// High-water mark of network delivery worker threads. Under the
    /// default reactor topology this is bounded by the configured pool
    /// size (`NetConfig::workers`) no matter how many site pairs carry
    /// traffic — the gauge that replaced the unbounded per-link count
    /// (one thread per ordered pair). Recorded by `Cluster::shutdown`
    /// (the metrics handle outlives the cluster); live values are read
    /// off `Cluster::net_worker_threads` directly.
    net_worker_threads: AtomicU64,
    /// Site restarts that replayed a write-ahead log (WAL recovery runs).
    recoveries: AtomicU64,
    /// Presumed-abort prepare rounds started by coordinators (one per
    /// distributed update transaction that reached its commit point).
    prepare_rounds: AtomicU64,
    /// In-doubt transactions resolved to **commit** at a participant by
    /// the termination protocol (decision re-delivery, a coordinator
    /// answer to `DecisionRequest`, or a peer answer to `InDoubtQuery`)
    /// rather than by the normal commit path.
    indoubt_commits: AtomicU64,
    /// In-doubt transactions resolved to **abort** at a participant
    /// (presumed abort after coordinator restart, or a vouched abort
    /// answer).
    indoubt_aborts: AtomicU64,
    /// Orphaned remote work aborted by a participant sweep: the
    /// coordinator died before prepare, so nothing was ever decided and
    /// the participant reclaims the locks unilaterally.
    orphan_aborts: AtomicU64,
    /// Response-time histogram of **committed** transactions — the
    /// p50/p99/p999 source ([`Summary`] and the bench witnesses read it).
    response_hist: Histogram,
    /// Per-scheduler-phase histograms over all terminated transactions,
    /// same buckets as [`PhaseTimes`]: ready, waiting, remote,
    /// terminating. Tail latency localized: lock contention shows in
    /// `waiting`'s p99, network round-trips in `remote`'s.
    phase_ready_hist: Histogram,
    phase_waiting_hist: Histogram,
    phase_remote_hist: Histogram,
    phase_terminating_hist: Histogram,
    /// WAL records appended across the cluster (gauge — set from the
    /// durable registry totals). With `wal_forces` this is the
    /// disk-WAL follow-up's "force count ≪ append count" witness.
    wal_appends: AtomicU64,
    /// WAL forced writes (would-be fsyncs) across the cluster (gauge).
    wal_forces: AtomicU64,
    /// Transactions submitted per coordinator site — the multi-coordinator
    /// load harness attaches clients round-robin to every site, and this
    /// is the witness that every site actually coordinated.
    coord_submitted: RwLock<Vec<AtomicU64>>,
    /// Transactions committed per coordinator site (the commit-spread
    /// fairness source of `BENCH_openloop.json`).
    coord_committed: RwLock<Vec<AtomicU64>>,
    /// Transactions currently open (submitted, not yet terminated) per
    /// coordinator site. Under an open-loop driver this is the queue the
    /// offered rate builds at each coordinator.
    coord_inflight: RwLock<Vec<AtomicU64>>,
    /// High-water mark of `coord_inflight` per site.
    coord_inflight_peak: RwLock<Vec<AtomicU64>>,
    /// Whether [`Metrics::record`] retains full [`TxnRecord`]s. Figure
    /// runs keep them (the throughput/concurrency series need every
    /// record); million-transaction open-loop runs switch to
    /// counters+histograms only, so the record path stays O(1) memory
    /// and never contends on the records mutex.
    retain_records: AtomicBool,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// New collector; `origin` is "time zero" for the series.
    pub fn new() -> Self {
        Metrics {
            origin: Instant::now(),
            records: Mutex::new(Vec::new()),
            detector_runs: Mutex::new(0),
            max_inflight_remote: AtomicUsize::new(0),
            remote_msgs: AtomicU64::new(0),
            site_ops: RwLock::new(Vec::new()),
            stale_reroutes: AtomicU64::new(0),
            guides_built: AtomicU64::new(0),
            termination_msgs: AtomicU64::new(0),
            termination_msgs_unbatched: AtomicU64::new(0),
            snapshot_reads: AtomicU64::new(0),
            snapshots_live: RwLock::new(Vec::new()),
            snapshot_bytes: RwLock::new(Vec::new()),
            net_worker_threads: AtomicU64::new(0),
            recoveries: AtomicU64::new(0),
            prepare_rounds: AtomicU64::new(0),
            indoubt_commits: AtomicU64::new(0),
            indoubt_aborts: AtomicU64::new(0),
            orphan_aborts: AtomicU64::new(0),
            response_hist: Histogram::new(),
            phase_ready_hist: Histogram::new(),
            phase_waiting_hist: Histogram::new(),
            phase_remote_hist: Histogram::new(),
            phase_terminating_hist: Histogram::new(),
            wal_appends: AtomicU64::new(0),
            wal_forces: AtomicU64::new(0),
            coord_submitted: RwLock::new(Vec::new()),
            coord_committed: RwLock::new(Vec::new()),
            coord_inflight: RwLock::new(Vec::new()),
            coord_inflight_peak: RwLock::new(Vec::new()),
            retain_records: AtomicBool::new(true),
        }
    }

    /// Selects whether [`Metrics::record`] retains full per-transaction
    /// records (`true`, the default) or only feeds the histograms and
    /// counters (`false` — constant memory, for sustained open-loop runs
    /// of 10⁶+ transactions). With retention off, the record-derived
    /// surfaces ([`Metrics::records`], [`Metrics::summary`]'s exact
    /// fields, the throughput/concurrency series) cover only what was
    /// recorded while retention was on.
    pub fn set_retain_records(&self, retain: bool) {
        self.retain_records.store(retain, Ordering::Relaxed);
    }

    /// Counts one transaction accepted by its coordinator `site`:
    /// per-coordinator submission count and inflight gauge move up, and
    /// the inflight high-water mark is kept. The matching decrement
    /// happens in [`Metrics::record`] when the transaction terminates.
    pub fn note_coord_submit(&self, site: SiteId) {
        bump_slot(&self.coord_submitted, site, 1);
        let inflight = bump_slot(&self.coord_inflight, site, 1);
        max_slot(&self.coord_inflight_peak, site, inflight);
    }

    /// Transactions submitted with `site` as coordinator so far.
    pub fn coord_submitted(&self, site: SiteId) -> u64 {
        load_slot(&self.coord_submitted, site)
    }

    /// Transactions committed with `site` as coordinator so far.
    pub fn coord_committed(&self, site: SiteId) -> u64 {
        load_slot(&self.coord_committed, site)
    }

    /// Transactions currently open at coordinator `site`.
    pub fn coord_inflight(&self, site: SiteId) -> u64 {
        load_slot(&self.coord_inflight, site)
    }

    /// High-water mark of simultaneously open transactions at `site`.
    pub fn coord_inflight_peak(&self, site: SiteId) -> u64 {
        load_slot(&self.coord_inflight_peak, site)
    }

    /// Per-coordinator `(site, submitted, committed, inflight peak)`
    /// rows, for every site that coordinated at least one transaction.
    pub fn coord_stats(&self) -> Vec<CoordStats> {
        let submitted = self.coord_submitted.read();
        submitted
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let site = SiteId(i as u16);
                CoordStats {
                    site,
                    submitted: s.load(Ordering::Relaxed),
                    committed: self.coord_committed(site),
                    inflight_peak: self.coord_inflight_peak(site),
                }
            })
            .filter(|c| c.submitted > 0)
            .collect()
    }

    /// Counts one site restart that replayed its write-ahead log.
    pub fn note_recovery(&self) {
        self.recoveries.fetch_add(1, Ordering::Relaxed);
    }

    /// WAL recovery runs so far.
    pub fn recoveries(&self) -> u64 {
        self.recoveries.load(Ordering::Relaxed)
    }

    /// Counts one coordinator prepare round (presumed-abort 2PC vote
    /// phase for a distributed update transaction).
    pub fn note_prepare_round(&self) {
        self.prepare_rounds.fetch_add(1, Ordering::Relaxed);
    }

    /// Prepare rounds started so far.
    pub fn prepare_rounds(&self) -> u64 {
        self.prepare_rounds.load(Ordering::Relaxed)
    }

    /// Counts one in-doubt transaction resolved to commit at a
    /// participant by the termination protocol.
    pub fn note_indoubt_commit(&self) {
        self.indoubt_commits.fetch_add(1, Ordering::Relaxed);
    }

    /// In-doubt → commit resolutions so far.
    pub fn indoubt_commits(&self) -> u64 {
        self.indoubt_commits.load(Ordering::Relaxed)
    }

    /// Counts one in-doubt transaction resolved to abort at a
    /// participant (presumed abort or a vouched abort answer).
    pub fn note_indoubt_abort(&self) {
        self.indoubt_aborts.fetch_add(1, Ordering::Relaxed);
    }

    /// In-doubt → abort resolutions so far.
    pub fn indoubt_aborts(&self) -> u64 {
        self.indoubt_aborts.load(Ordering::Relaxed)
    }

    /// Counts one orphaned transaction aborted by a participant sweep
    /// (its coordinator died before ever starting the vote phase).
    pub fn note_orphan_abort(&self) {
        self.orphan_aborts.fetch_add(1, Ordering::Relaxed);
    }

    /// Orphan aborts so far.
    pub fn orphan_aborts(&self) -> u64 {
        self.orphan_aborts.load(Ordering::Relaxed)
    }

    /// Counts one query operation answered from a pinned snapshot.
    pub fn note_snapshot_read(&self) {
        self.snapshot_reads.fetch_add(1, Ordering::Relaxed);
    }

    /// Query operations answered from pinned snapshots so far.
    pub fn snapshot_reads(&self) -> u64 {
        self.snapshot_reads.load(Ordering::Relaxed)
    }

    /// Reports site-local snapshot-store state: `live` versions and
    /// `bytes` of approximate resident size. Gauges, not counters — each
    /// report *replaces* the site's previous value.
    pub fn set_snapshot_gauges(&self, site: SiteId, live: u64, bytes: u64) {
        store_gauge(&self.snapshots_live, site, live);
        store_gauge(&self.snapshot_bytes, site, bytes);
    }

    /// Live snapshot versions, summed over all sites (last reported).
    pub fn snapshots_live(&self) -> u64 {
        sum_gauges(&self.snapshots_live)
    }

    /// Approximate resident snapshot bytes, summed over all sites (last
    /// reported).
    pub fn snapshot_bytes(&self) -> u64 {
        sum_gauges(&self.snapshot_bytes)
    }

    /// Counts one termination-protocol message (a `TerminateBatch` or its
    /// ack) that batched `entries` per-transaction decisions; the
    /// unbatched counter advances by what the per-transaction protocol
    /// would have sent for the same work.
    pub fn note_termination_msg(&self, entries: u64) {
        self.termination_msgs.fetch_add(1, Ordering::Relaxed);
        self.termination_msgs_unbatched
            .fetch_add(entries, Ordering::Relaxed);
    }

    /// Termination-protocol messages actually sent (batched protocol).
    pub fn termination_msgs(&self) -> u64 {
        self.termination_msgs.load(Ordering::Relaxed)
    }

    /// Termination-protocol messages the unbatched per-transaction
    /// protocol would have sent — the baseline the batching win is
    /// measured against.
    pub fn termination_msgs_unbatched(&self) -> u64 {
        self.termination_msgs_unbatched.load(Ordering::Relaxed)
    }

    /// Reports the number of network delivery worker threads; the
    /// high-water mark is kept.
    pub fn note_net_workers(&self, n: u64) {
        self.net_worker_threads.fetch_max(n, Ordering::Relaxed);
    }

    /// High-water mark of network delivery worker threads.
    pub fn net_worker_threads(&self) -> u64 {
        self.net_worker_threads.load(Ordering::Relaxed)
    }

    /// Counts `n` coordinator → participant operation dispatches.
    pub fn note_remote_msgs(&self, n: u64) {
        self.remote_msgs.fetch_add(n, Ordering::Relaxed);
    }

    /// Total `ExecRemote` dispatches so far (the placement message cost).
    pub fn remote_msgs(&self) -> u64 {
        self.remote_msgs.load(Ordering::Relaxed)
    }

    /// Counts one operation routed to `site` (local or remote): feeds the
    /// hotness-aware placement policy.
    ///
    /// Counted per **dispatch attempt** — a blocked operation re-counts
    /// its plan's sites on every retry. That is deliberate: retries load
    /// a site's scheduler and lock table just like executions do, and the
    /// hotness policy is steering *future* reads away from busy sites,
    /// not accounting for completed work.
    pub fn note_site_op(&self, site: SiteId) {
        let idx = site.0 as usize;
        {
            let ops = self.site_ops.read();
            if let Some(c) = ops.get(idx) {
                c.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        let mut ops = self.site_ops.write();
        while ops.len() <= idx {
            ops.push(AtomicU64::new(0));
        }
        ops[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Operations routed to `site` so far.
    pub fn site_ops(&self, site: SiteId) -> u64 {
        self.site_ops
            .read()
            .get(site.0 as usize)
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Per-site operation counts (sites touched at least once, sorted).
    pub fn site_ops_snapshot(&self) -> Vec<(SiteId, u64)> {
        self.site_ops
            .read()
            .iter()
            .enumerate()
            .map(|(i, c)| (SiteId(i as u16), c.load(Ordering::Relaxed)))
            .filter(|&(_, n)| n > 0)
            .collect()
    }

    /// Counts one stale-version refusal that was re-routed.
    pub fn note_stale_reroute(&self) {
        self.stale_reroutes.fetch_add(1, Ordering::Relaxed);
    }

    /// Dispatches refused for a stale document placement version and
    /// re-routed.
    pub fn stale_reroutes(&self) -> u64 {
        self.stale_reroutes.load(Ordering::Relaxed)
    }

    /// Counts one from-scratch DataGuide build (a load without a shipped
    /// or streamed guide).
    pub fn note_guide_build(&self) {
        self.guides_built.fetch_add(1, Ordering::Relaxed);
    }

    /// From-scratch DataGuide builds across the cluster so far.
    pub fn guides_built(&self) -> u64 {
        self.guides_built.load(Ordering::Relaxed)
    }

    /// Reports that a coordinator currently has `n` transactions in
    /// `AwaitingRemoteOps`; the high-water mark is kept.
    pub fn note_inflight_remote(&self, n: usize) {
        self.max_inflight_remote.fetch_max(n, Ordering::Relaxed);
    }

    /// Highest number of distributed operations any single coordinator
    /// had in flight simultaneously.
    pub fn max_inflight_remote(&self) -> usize {
        self.max_inflight_remote.load(Ordering::Relaxed)
    }

    /// Records a terminated transaction, feeding the response-time and
    /// per-phase histograms and closing the per-coordinator inflight
    /// accounting opened by [`Metrics::note_coord_submit`].
    pub fn record(&self, rec: TxnRecord) {
        if rec.status == TxnStatus::Committed {
            self.response_hist.record(rec.response_time());
            bump_slot(&self.coord_committed, rec.coordinator, 1);
        }
        dec_slot(&self.coord_inflight, rec.coordinator);
        self.phase_ready_hist.record(rec.phase_times.ready);
        self.phase_waiting_hist.record(rec.phase_times.waiting);
        self.phase_remote_hist.record(rec.phase_times.remote);
        self.phase_terminating_hist
            .record(rec.phase_times.terminating);
        if self.retain_records.load(Ordering::Relaxed) {
            self.records.lock().push(rec);
        }
    }

    /// The committed-response-time histogram (p50/p99/p999 source).
    pub fn response_histogram(&self) -> &Histogram {
        &self.response_hist
    }

    /// The per-phase histograms as `(name, histogram)` pairs, in
    /// [`PhaseTimes`] field order.
    pub fn phase_histograms(&self) -> [(&'static str, &Histogram); 4] {
        [
            ("ready", &self.phase_ready_hist),
            ("waiting", &self.phase_waiting_hist),
            ("remote", &self.phase_remote_hist),
            ("terminating", &self.phase_terminating_hist),
        ]
    }

    /// Sets the cluster-wide WAL totals (gauges — each call replaces the
    /// previous values; the cluster sums its durable registry).
    pub fn set_wal_totals(&self, appends: u64, forces: u64) {
        self.wal_appends.store(appends, Ordering::Relaxed);
        self.wal_forces.store(forces, Ordering::Relaxed);
    }

    /// WAL records appended across the cluster (last reported).
    pub fn wal_appends(&self) -> u64 {
        self.wal_appends.load(Ordering::Relaxed)
    }

    /// WAL forced writes (would-be fsyncs) across the cluster (last
    /// reported).
    pub fn wal_forces(&self) -> u64 {
        self.wal_forces.load(Ordering::Relaxed)
    }

    /// Notes one execution of the distributed deadlock detector.
    pub fn note_detector_run(&self) {
        *self.detector_runs.lock() += 1;
    }

    /// Number of detector executions.
    pub fn detector_runs(&self) -> u64 {
        *self.detector_runs.lock()
    }

    /// Snapshot of all records.
    pub fn records(&self) -> Vec<TxnRecord> {
        self.records.lock().clone()
    }

    /// Aggregated summary.
    pub fn summary(&self) -> Summary {
        let records = self.records.lock();
        let mut s = Summary::default();
        let mut rts: Vec<Duration> = Vec::with_capacity(records.len());
        let mut first: Option<Instant> = None;
        let mut last: Option<Instant> = None;
        for r in records.iter() {
            s.terminated += 1;
            s.phase_times.accumulate(&r.phase_times);
            match &r.status {
                TxnStatus::Committed => {
                    s.committed += 1;
                    rts.push(r.response_time());
                }
                TxnStatus::Aborted(AbortReason::Deadlock) => {
                    s.aborted += 1;
                    s.deadlocks += 1;
                }
                TxnStatus::Aborted(_) => s.aborted += 1,
                TxnStatus::Failed(_) => s.failed += 1,
            }
            first = Some(first.map_or(r.submitted, |f| f.min(r.submitted)));
            last = Some(last.map_or(r.finished, |l| l.max(r.finished)));
        }
        if let (Some(f), Some(l)) = (first, last) {
            s.makespan = l.duration_since(f);
        }
        if !rts.is_empty() {
            rts.sort();
            s.mean_response = rts.iter().sum::<Duration>() / (rts.len() as u32);
            s.p50_response = rts[rts.len() / 2];
            s.p95_response = rts[(rts.len() * 95 / 100).min(rts.len() - 1)];
            s.max_response = *rts.last().expect("non-empty");
        }
        // Tail percentiles come from the log-bucketed histogram (what a
        // disk-backed run would have, where keeping every sample is not
        // an option); the exact fields above stay for witness
        // compatibility.
        s.p99_response = self.response_hist.percentile(0.99);
        s.p999_response = self.response_hist.percentile(0.999);
        s.phase_p99 = PhaseTimes {
            ready: self.phase_ready_hist.percentile(0.99),
            waiting: self.phase_waiting_hist.percentile(0.99),
            remote: self.phase_remote_hist.percentile(0.99),
            terminating: self.phase_terminating_hist.percentile(0.99),
        };
        s.wal_appends = self.wal_appends();
        s.wal_forces = self.wal_forces();
        s
    }

    /// Fig. 12 series: cumulative committed transactions at the end of
    /// each `bucket`-sized interval since the first submission.
    pub fn throughput_series(&self, bucket: Duration) -> Vec<(Duration, usize)> {
        let records = self.records.lock();
        let Some(start) = records.iter().map(|r| r.submitted).min() else {
            return Vec::new();
        };
        let mut ends: Vec<Duration> = records
            .iter()
            .filter(|r| r.status == TxnStatus::Committed)
            .map(|r| r.finished.duration_since(start))
            .collect();
        ends.sort();
        let Some(&latest) = ends.last() else {
            return Vec::new();
        };
        let buckets = (latest.as_nanos() / bucket.as_nanos().max(1)) as usize + 1;
        let mut out = Vec::with_capacity(buckets);
        for b in 1..=buckets {
            let t = bucket * (b as u32);
            let cum = ends.iter().take_while(|&&e| e <= t).count();
            out.push((t, cum));
        }
        out
    }

    /// Concurrency-degree series: average number of in-flight transactions
    /// during each `bucket`-sized interval.
    pub fn concurrency_series(&self, bucket: Duration) -> Vec<(Duration, f64)> {
        let records = self.records.lock();
        let Some(start) = records.iter().map(|r| r.submitted).min() else {
            return Vec::new();
        };
        let Some(end) = records.iter().map(|r| r.finished).max() else {
            return Vec::new();
        };
        let total = end.duration_since(start);
        let buckets = (total.as_nanos() / bucket.as_nanos().max(1)) as usize + 1;
        let mut out = Vec::with_capacity(buckets);
        for b in 0..buckets {
            let lo = bucket * (b as u32);
            let hi = bucket * ((b + 1) as u32);
            // Overlap of [submitted, finished) with [lo, hi), averaged.
            let mut busy = Duration::ZERO;
            for r in records.iter() {
                let s = r.submitted.duration_since(start);
                let f = r.finished.duration_since(start);
                let o_lo = s.max(lo);
                let o_hi = f.min(hi);
                if o_hi > o_lo {
                    busy += o_hi - o_lo;
                }
            }
            out.push((hi, busy.as_secs_f64() / bucket.as_secs_f64()));
        }
        out
    }

    /// Seconds since collector creation (for traces).
    pub fn elapsed(&self) -> Duration {
        self.origin.elapsed()
    }
}

/// Adds `delta` to the per-site counter slot (growing the vector on
/// first touch, same discipline as `Metrics::note_site_op`) and returns
/// the post-increment value.
fn bump_slot(slots: &RwLock<Vec<AtomicU64>>, site: SiteId, delta: u64) -> u64 {
    let idx = site.0 as usize;
    {
        let v = slots.read();
        if let Some(c) = v.get(idx) {
            return c.fetch_add(delta, Ordering::Relaxed) + delta;
        }
    }
    let mut v = slots.write();
    while v.len() <= idx {
        v.push(AtomicU64::new(0));
    }
    v[idx].fetch_add(delta, Ordering::Relaxed) + delta
}

/// Decrements the per-site counter slot, saturating at zero (a record
/// without a matching submit — direct `Metrics::record` callers — must
/// not wrap the gauge).
fn dec_slot(slots: &RwLock<Vec<AtomicU64>>, site: SiteId) {
    let v = slots.read();
    if let Some(c) = v.get(site.0 as usize) {
        let _ = c.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1));
    }
}

/// Raises the per-site slot to at least `value` (high-water mark).
fn max_slot(slots: &RwLock<Vec<AtomicU64>>, site: SiteId, value: u64) {
    let idx = site.0 as usize;
    {
        let v = slots.read();
        if let Some(c) = v.get(idx) {
            c.fetch_max(value, Ordering::Relaxed);
            return;
        }
    }
    let mut v = slots.write();
    while v.len() <= idx {
        v.push(AtomicU64::new(0));
    }
    v[idx].fetch_max(value, Ordering::Relaxed);
}

/// Reads the per-site counter slot (zero when the site was never touched).
fn load_slot(slots: &RwLock<Vec<AtomicU64>>, site: SiteId) -> u64 {
    slots
        .read()
        .get(site.0 as usize)
        .map(|c| c.load(Ordering::Relaxed))
        .unwrap_or(0)
}

/// Per-coordinator accounting rows (see [`Metrics::coord_stats`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoordStats {
    /// The coordinator site.
    pub site: SiteId,
    /// Transactions submitted with this site as coordinator.
    pub submitted: u64,
    /// Transactions committed with this site as coordinator.
    pub committed: u64,
    /// High-water mark of simultaneously open transactions here.
    pub inflight_peak: u64,
}

/// Stores `value` into the per-site gauge slot, growing the vector on
/// first touch of a site (same discipline as `Metrics::note_site_op`).
fn store_gauge(slots: &RwLock<Vec<AtomicU64>>, site: SiteId, value: u64) {
    let idx = site.0 as usize;
    {
        let v = slots.read();
        if let Some(c) = v.get(idx) {
            c.store(value, Ordering::Relaxed);
            return;
        }
    }
    let mut v = slots.write();
    while v.len() <= idx {
        v.push(AtomicU64::new(0));
    }
    v[idx].store(value, Ordering::Relaxed);
}

fn sum_gauges(slots: &RwLock<Vec<AtomicU64>>) -> u64 {
    slots.read().iter().map(|c| c.load(Ordering::Relaxed)).sum()
}

/// Aggregate counters; see [`Metrics::summary`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Summary {
    /// Terminated transactions.
    pub terminated: usize,
    /// Committed.
    pub committed: usize,
    /// Aborted (all reasons, including deadlock).
    pub aborted: usize,
    /// Failed (abort could not complete).
    pub failed: usize,
    /// Aborts whose reason was deadlock victimization.
    pub deadlocks: usize,
    /// Mean response time of committed transactions.
    pub mean_response: Duration,
    /// Median response time.
    pub p50_response: Duration,
    /// 95th percentile response time.
    pub p95_response: Duration,
    /// Maximum response time.
    pub max_response: Duration,
    /// First submission → last termination.
    pub makespan: Duration,
    /// Sum of per-state time over all terminated transactions (see
    /// [`PhaseTimes`]): where the response time actually went.
    pub phase_times: PhaseTimes,
    /// 99th percentile response time, from the log-bucketed
    /// [`Histogram`] (≤ ~6% quantization error).
    pub p99_response: Duration,
    /// 99.9th percentile response time, from the histogram.
    pub p999_response: Duration,
    /// Per-phase 99th percentiles across terminated transactions — the
    /// tail localized to ready/waiting/remote/terminating.
    pub phase_p99: PhaseTimes,
    /// WAL records appended across the cluster (last reported gauge).
    pub wal_appends: u64,
    /// WAL forced writes across the cluster (last reported gauge).
    pub wal_forces: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(txn: u64, start_ms: u64, end_ms: u64, status: TxnStatus, base: Instant) -> TxnRecord {
        TxnRecord {
            txn: TxnId(txn),
            coordinator: SiteId(0),
            submitted: base + Duration::from_millis(start_ms),
            finished: base + Duration::from_millis(end_ms),
            status,
            ops: 5,
            is_update: false,
            phase_times: PhaseTimes::default(),
        }
    }

    #[test]
    fn summary_counts_and_percentiles() {
        let m = Metrics::new();
        let base = Instant::now();
        m.record(rec(1, 0, 10, TxnStatus::Committed, base));
        m.record(rec(2, 0, 20, TxnStatus::Committed, base));
        m.record(rec(3, 0, 30, TxnStatus::Committed, base));
        m.record(rec(
            4,
            0,
            5,
            TxnStatus::Aborted(AbortReason::Deadlock),
            base,
        ));
        m.record(rec(5, 0, 5, TxnStatus::Failed("x".into()), base));
        let s = m.summary();
        assert_eq!(s.terminated, 5);
        assert_eq!(s.committed, 3);
        assert_eq!(s.aborted, 1);
        assert_eq!(s.deadlocks, 1);
        assert_eq!(s.failed, 1);
        assert_eq!(s.mean_response, Duration::from_millis(20));
        assert_eq!(s.p50_response, Duration::from_millis(20));
        assert_eq!(s.max_response, Duration::from_millis(30));
        assert_eq!(s.makespan, Duration::from_millis(30));
    }

    #[test]
    fn empty_summary_is_zero() {
        let s = Metrics::new().summary();
        assert_eq!(s, Summary::default());
    }

    #[test]
    fn throughput_series_is_cumulative() {
        let m = Metrics::new();
        let base = Instant::now();
        m.record(rec(1, 0, 10, TxnStatus::Committed, base));
        m.record(rec(2, 0, 25, TxnStatus::Committed, base));
        m.record(rec(
            3,
            0,
            25,
            TxnStatus::Aborted(AbortReason::Deadlock),
            base,
        ));
        let series = m.throughput_series(Duration::from_millis(10));
        // Buckets at 10, 20, 30 ms → cumulative 1, 1, 2.
        assert_eq!(series.len(), 3);
        assert_eq!(series[0].1, 1);
        assert_eq!(series[1].1, 1);
        assert_eq!(series[2].1, 2);
        // Monotone non-decreasing.
        assert!(series.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn concurrency_series_reflects_overlap() {
        let m = Metrics::new();
        let base = Instant::now();
        // Two fully-overlapping txns for 10ms.
        m.record(rec(1, 0, 10, TxnStatus::Committed, base));
        m.record(rec(2, 0, 10, TxnStatus::Committed, base));
        let series = m.concurrency_series(Duration::from_millis(10));
        assert!(!series.is_empty());
        assert!((series[0].1 - 2.0).abs() < 0.01, "got {}", series[0].1);
    }

    #[test]
    fn detector_run_counter() {
        let m = Metrics::new();
        m.note_detector_run();
        m.note_detector_run();
        assert_eq!(m.detector_runs(), 2);
    }

    #[test]
    fn inflight_remote_keeps_high_water_mark() {
        let m = Metrics::new();
        assert_eq!(m.max_inflight_remote(), 0);
        m.note_inflight_remote(2);
        m.note_inflight_remote(5);
        m.note_inflight_remote(3);
        assert_eq!(m.max_inflight_remote(), 5);
    }

    #[test]
    fn routing_counters_accumulate() {
        let m = Metrics::new();
        assert_eq!(m.remote_msgs(), 0);
        m.note_remote_msgs(3);
        m.note_remote_msgs(1);
        assert_eq!(m.remote_msgs(), 4);
        m.note_site_op(SiteId(1));
        m.note_site_op(SiteId(1));
        m.note_site_op(SiteId(0));
        assert_eq!(m.site_ops(SiteId(1)), 2);
        assert_eq!(m.site_ops(SiteId(9)), 0);
        assert_eq!(m.site_ops_snapshot(), vec![(SiteId(0), 1), (SiteId(1), 2)]);
        m.note_stale_reroute();
        assert_eq!(m.stale_reroutes(), 1);
    }

    #[test]
    fn termination_counters_track_batching_win() {
        let m = Metrics::new();
        assert_eq!(m.termination_msgs(), 0);
        assert_eq!(m.termination_msgs_unbatched(), 0);
        // One batch carrying 5 per-transaction decisions + its ack.
        m.note_termination_msg(5);
        m.note_termination_msg(5);
        assert_eq!(m.termination_msgs(), 2);
        assert_eq!(m.termination_msgs_unbatched(), 10);
        assert!(m.termination_msgs() < m.termination_msgs_unbatched());
    }

    #[test]
    fn snapshot_read_counter_accumulates() {
        let m = Metrics::new();
        assert_eq!(m.snapshot_reads(), 0);
        m.note_snapshot_read();
        m.note_snapshot_read();
        assert_eq!(m.snapshot_reads(), 2);
    }

    #[test]
    fn snapshot_gauges_replace_and_sum_per_site() {
        let m = Metrics::new();
        assert_eq!(m.snapshots_live(), 0);
        assert_eq!(m.snapshot_bytes(), 0);
        m.set_snapshot_gauges(SiteId(0), 3, 1000);
        m.set_snapshot_gauges(SiteId(2), 2, 500);
        assert_eq!(m.snapshots_live(), 5);
        assert_eq!(m.snapshot_bytes(), 1500);
        // Gauges replace, not accumulate.
        m.set_snapshot_gauges(SiteId(0), 1, 400);
        assert_eq!(m.snapshots_live(), 3);
        assert_eq!(m.snapshot_bytes(), 900);
    }

    #[test]
    fn net_worker_gauge_keeps_high_water_mark() {
        let m = Metrics::new();
        m.note_net_workers(3);
        m.note_net_workers(8);
        m.note_net_workers(7);
        assert_eq!(m.net_worker_threads(), 8);
    }

    #[test]
    fn recovery_counters_accumulate() {
        let m = Metrics::new();
        m.note_recovery();
        m.note_prepare_round();
        m.note_prepare_round();
        m.note_indoubt_commit();
        m.note_indoubt_abort();
        m.note_indoubt_abort();
        m.note_orphan_abort();
        assert_eq!(m.recoveries(), 1);
        assert_eq!(m.prepare_rounds(), 2);
        assert_eq!(m.indoubt_commits(), 1);
        assert_eq!(m.indoubt_aborts(), 2);
        assert_eq!(m.orphan_aborts(), 1);
    }

    #[test]
    fn histogram_buckets_are_monotone_and_self_consistent() {
        // Every value lands in a bucket whose midpoint is within the
        // promised ~6% relative error, and indices are monotone.
        let mut vals: Vec<u64> = (0..63)
            .flat_map(|exp| [0u64, 1, 3].map(|off| (1u64 << exp) + off))
            .collect();
        vals.sort_unstable();
        vals.dedup();
        let mut prev = 0usize;
        for v in vals {
            let idx = hist_index(v);
            assert!(idx >= prev, "index monotone at {v}");
            prev = idx;
            let mid = hist_value(idx);
            let err = (mid as f64 - v as f64).abs() / (v.max(1) as f64);
            assert!(err <= 0.07, "value {v} bucket mid {mid} err {err}");
        }
        assert!(hist_index(u64::MAX) < HIST_BUCKETS);
    }

    #[test]
    fn histogram_percentiles_track_known_distribution() {
        let h = Histogram::new();
        // 1000 samples: 1ms … 1000ms.
        for i in 1..=1000u64 {
            h.record(Duration::from_millis(i));
        }
        assert_eq!(h.count(), 1000);
        let close = |got: Duration, want_ms: u64| {
            let want = Duration::from_millis(want_ms).as_secs_f64();
            let got = got.as_secs_f64();
            assert!((got - want).abs() / want < 0.07, "got {got}s want ~{want}s");
        };
        close(h.percentile(0.50), 500);
        close(h.percentile(0.99), 990);
        close(h.percentile(0.999), 999);
        assert_eq!(h.max(), Duration::from_millis(1000));
        assert!(h.percentile(1.0) <= h.max(), "quantile capped at max");
        close(h.mean(), 500);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(0.99), Duration::ZERO);
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.max(), Duration::ZERO);
    }

    #[test]
    fn summary_surfaces_histogram_tails_and_wal_gauges() {
        let m = Metrics::new();
        let base = Instant::now();
        for i in 1..=100 {
            m.record(rec(i, 0, 10 * i, TxnStatus::Committed, base));
        }
        m.set_wal_totals(400, 20);
        let s = m.summary();
        // p99 from the histogram sits near the exact 99th value (990ms).
        let p99 = s.p99_response.as_secs_f64();
        assert!((p99 - 0.99).abs() / 0.99 < 0.08, "p99 {p99}");
        assert!(s.p999_response >= s.p99_response);
        assert_eq!(s.wal_appends, 400);
        assert_eq!(s.wal_forces, 20);
        // Replacing (gauge semantics), not accumulating.
        m.set_wal_totals(401, 21);
        assert_eq!(m.summary().wal_forces, 21);
    }

    #[test]
    fn phase_histograms_localize_the_tail() {
        let m = Metrics::new();
        let base = Instant::now();
        for i in 0..50 {
            let mut r = rec(i, 0, 10, TxnStatus::Committed, base);
            r.phase_times.waiting = Duration::from_millis(if i == 49 { 80 } else { 1 });
            r.phase_times.remote = Duration::from_millis(2);
            m.record(r);
        }
        let s = m.summary();
        // The one 80ms waiter dominates waiting's p99; remote stays ~2ms.
        assert!(s.phase_p99.waiting >= Duration::from_millis(70));
        assert!(s.phase_p99.remote < Duration::from_millis(4));
        let [(n0, h0), _, (n2, h2), _] = m.phase_histograms();
        assert_eq!((n0, n2), ("ready", "remote"));
        assert_eq!(h0.count(), 50);
        assert_eq!(h2.count(), 50);
    }

    #[test]
    fn histogram_merge_equals_union_of_samples() {
        // Merging N per-worker histograms must equal one histogram that
        // recorded the union of all samples: same bucket layout, so the
        // merge is exact — count, sum, max and every pinned percentile.
        let workers: Vec<Histogram> = (0..4).map(|_| Histogram::new()).collect();
        let union = Histogram::new();
        let mut rng_state = 42u64;
        for i in 0..8000u64 {
            // Deterministic spread over five orders of magnitude.
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let ns = 1_000 + rng_state % 100_000_000;
            workers[(i % 4) as usize].record_ns(ns);
            union.record_ns(ns);
        }
        let merged = Histogram::new();
        for w in &workers {
            merged.merge_from(w);
        }
        assert_eq!(merged.count(), union.count());
        assert_eq!(merged.mean(), union.mean());
        assert_eq!(merged.max(), union.max());
        for q in [0.50, 0.99, 0.999] {
            assert_eq!(
                merged.percentile(q),
                union.percentile(q),
                "merged and union-recorded p{q} must be identical"
            );
        }
    }

    #[test]
    fn coord_accounting_tracks_submit_commit_and_inflight() {
        let m = Metrics::new();
        let base = Instant::now();
        let (a, b) = (SiteId(0), SiteId(3));
        m.note_coord_submit(a);
        m.note_coord_submit(a);
        m.note_coord_submit(b);
        assert_eq!(m.coord_submitted(a), 2);
        assert_eq!(m.coord_submitted(b), 1);
        assert_eq!(m.coord_inflight(a), 2);
        assert_eq!(m.coord_inflight_peak(a), 2);
        let mut r = rec(1, 0, 10, TxnStatus::Committed, base);
        r.coordinator = a;
        m.record(r);
        let mut r = rec(2, 0, 12, TxnStatus::Aborted(AbortReason::Deadlock), base);
        r.coordinator = a;
        m.record(r);
        let mut r = rec(3, 0, 9, TxnStatus::Committed, base);
        r.coordinator = b;
        m.record(r);
        assert_eq!(m.coord_committed(a), 1, "aborts don't count as commits");
        assert_eq!(m.coord_committed(b), 1);
        assert_eq!(m.coord_inflight(a), 0);
        assert_eq!(m.coord_inflight(b), 0);
        assert_eq!(m.coord_inflight_peak(a), 2, "peak survives the drain");
        let stats = m.coord_stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(
            stats[0],
            CoordStats {
                site: a,
                submitted: 2,
                committed: 1,
                inflight_peak: 2
            }
        );
        // A record without a matching submit must not wrap the gauge.
        m.record(rec(4, 0, 5, TxnStatus::Committed, base));
        assert_eq!(m.coord_inflight(SiteId(0)), 0);
    }

    #[test]
    fn retain_records_off_keeps_histograms_and_counters_only() {
        let m = Metrics::new();
        let base = Instant::now();
        m.set_retain_records(false);
        m.note_coord_submit(SiteId(0));
        m.record(rec(1, 0, 10, TxnStatus::Committed, base));
        assert!(m.records().is_empty(), "no record retained");
        assert_eq!(m.response_histogram().count(), 1, "histogram still fed");
        assert_eq!(m.coord_committed(SiteId(0)), 1, "counters still fed");
        m.set_retain_records(true);
        m.record(rec(2, 0, 10, TxnStatus::Committed, base));
        assert_eq!(m.records().len(), 1);
    }

    #[test]
    fn summary_accumulates_phase_times() {
        let m = Metrics::new();
        let base = Instant::now();
        let mut r = rec(1, 0, 10, TxnStatus::Committed, base);
        r.phase_times.waiting = Duration::from_millis(4);
        r.phase_times.remote = Duration::from_millis(3);
        m.record(r);
        let mut r2 = rec(2, 0, 20, TxnStatus::Committed, base);
        r2.phase_times.waiting = Duration::from_millis(1);
        r2.phase_times.terminating = Duration::from_millis(2);
        m.record(r2);
        let s = m.summary();
        assert_eq!(s.phase_times.waiting, Duration::from_millis(5));
        assert_eq!(s.phase_times.remote, Duration::from_millis(3));
        assert_eq!(s.phase_times.terminating, Duration::from_millis(2));
    }
}
