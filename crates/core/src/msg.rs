//! Inter-scheduler messages.
//!
//! The paper's modification (i) to XDGL: "a communication infrastructure
//! between schedulers was inserted, allowing it to execute remote
//! functions, at the same time that it acquires necessary locks and allows
//! the commitment and abortion of a distributed transaction" (§2). These
//! are exactly the message kinds below, plus the wait-for-graph exchange
//! used by the distributed deadlock detector (Algorithm 4).

use crate::op::{OpResult, OpSpec};
use dtx_locks::{TxnId, WaitForGraph};
use dtx_net::{SiteId, Wire};

/// A message between DTX schedulers.
#[derive(Debug)]
pub enum Message {
    /// Coordinator → participant: execute operation `op_seq` of `txn`
    /// (Algorithm 1 l. 13 `participants.send_operation`).
    ExecRemote {
        /// The distributed transaction.
        txn: TxnId,
        /// Which site coordinates `txn` (participants learn this here).
        coordinator: SiteId,
        /// Index of the operation within the transaction.
        op_seq: usize,
        /// The operation itself.
        op: OpSpec,
        /// Correlation id of this dispatch, unique per coordinator
        /// scheduler. Echoed in the response: the coordinator's
        /// continuation table is keyed by it, so responses to undone
        /// retries or aborted transactions fall on the floor instead of
        /// polluting a newer dispatch.
        corr: u64,
        /// Whether the transaction contains updates (coarse protocols
        /// lock conservatively for updating transactions).
        update_txn: bool,
        /// Placement version of the *target document* the coordinator
        /// routed this dispatch under (the catalog's per-document
        /// version, not the global epoch — mutations of other documents
        /// do not invalidate this dispatch). A participant observing a
        /// different version for the document answers stale instead of
        /// executing; the coordinator re-routes under the fresh
        /// placement.
        doc_version: u64,
        /// Whether the target document is a fragment of a logical
        /// document at this site (an update matching nothing is then a
        /// no-op, not an error). Routed placement knowledge travels with
        /// the dispatch so participants need no catalog consultation.
        fragment: bool,
    },
    /// Participant → coordinator: status of a remote operation
    /// (Algorithm 2 l. 13 `send_remote_operation_coordinator`).
    RemoteDone {
        /// The transaction.
        txn: TxnId,
        /// Operation index.
        op_seq: usize,
        /// Correlation id this response answers.
        corr: u64,
        /// Reporting site.
        site: SiteId,
        /// Whether all locks were acquired (Alg. 2 l. 8 sets false).
        acquired: bool,
        /// Whether the operation executed (implies `acquired`).
        executed: bool,
        /// Whether the operation failed for a non-lock reason.
        failed: bool,
        /// Whether acquiring created a local wait-for cycle.
        deadlock: bool,
        /// The participant refused the dispatch because it carried a
        /// placement version of the target document different from the
        /// participant's view (`StaleCatalog`): nothing executed, no
        /// locks were taken; the coordinator must refresh its routing
        /// and re-dispatch.
        stale: bool,
        /// Query values when executed.
        result: Option<OpResult>,
    },
    /// Coordinator → participant: undo the effects of one operation that
    /// could not be executed at *all* sites (Alg. 1 l. 16).
    UndoOp {
        /// The transaction.
        txn: TxnId,
        /// Operation index to undo.
        op_seq: usize,
    },
    /// Coordinator → participant: **group termination** — every
    /// transaction this coordinator decided to consolidate (Algorithm 5
    /// l. 4) or cancel (Algorithm 6 l. 4) at this site since the last
    /// scheduler tick, coalesced into one message. Under heavy traffic
    /// this cuts the termination message count from O(txns × sites) to
    /// O(sites) per tick; a batch of one is the degenerate per-transaction
    /// protocol. Per-pair FIFO delivery still guarantees a batched abort
    /// cannot overtake the `ExecRemote` it cancels.
    TerminateBatch {
        /// Transactions to consolidate, in decision order.
        commits: Vec<TxnId>,
        /// Transactions to cancel, in decision order.
        aborts: Vec<TxnId>,
    },
    /// Participant → coordinator: one acknowledgement per
    /// [`Message::TerminateBatch`], carrying the per-transaction outcomes
    /// (the batched form of Alg. 5/6's per-transaction acks).
    TerminateBatchAck {
        /// Reporting site.
        site: SiteId,
        /// `(txn, consolidation succeeded)` per batched commit.
        commits: Vec<(TxnId, bool)>,
        /// `(txn, cancellation succeeded)` per batched abort.
        aborts: Vec<(TxnId, bool)>,
    },
    /// Coordinator → all: the transaction failed (Algorithm 6 l. 7);
    /// best-effort cleanup, no acknowledgement.
    Fail {
        /// The transaction.
        txn: TxnId,
    },
    /// Detector → site: request your wait-for graph (Alg. 4 l. 4).
    WfgRequest {
        /// Requesting site.
        from: SiteId,
        /// Round number, so stale replies are discarded.
        round: u64,
    },
    /// Site → detector: the local wait-for graph.
    WfgReply {
        /// Replying site.
        site: SiteId,
        /// Round this reply answers.
        round: u64,
        /// Snapshot of the local graph.
        graph: WaitForGraph,
    },
    /// Detector → coordinator of the victim: abort this transaction
    /// (Alg. 4 l. 8, when the victim is coordinated elsewhere).
    AbortVictim {
        /// The deadlock victim.
        txn: TxnId,
    },
    /// Participant → coordinator of a waiter: locks the waiter was blocked
    /// on were just released here — retry now instead of waiting out the
    /// blind retry timer. Purely an acceleration hint; losing it only
    /// costs the timer interval.
    Wake {
        /// The transaction that may now acquire its locks.
        txn: TxnId,
    },
    /// Coordinator → participant: `txn` abandoned the routing plan it was
    /// waiting under (stale-epoch re-route) — drop its wait-for edges
    /// here. Without this, a re-routed transaction's conflict edges would
    /// linger at sites its fresh plan no longer visits and fabricate
    /// phantom distributed deadlocks.
    ClearWaits {
        /// The re-routed transaction.
        txn: TxnId,
    },
    /// Coordinator → participant: presumed-abort 2PC vote request. A
    /// participant that executed operations of `txn` force-logs
    /// `Prepared` and answers yes; one that knows nothing of `txn` (or
    /// poisoned it after an orphan abort / cooperative-termination
    /// answer) answers no, which aborts the transaction.
    Prepare {
        /// The transaction.
        txn: TxnId,
        /// Correlation id of this vote round (stale acks are dropped).
        corr: u64,
        /// Every remote participant of `txn` — each receiver logs the
        /// others as its cooperative-termination peers.
        participants: Vec<SiteId>,
    },
    /// Participant → coordinator: the vote. `ok` implies the participant
    /// has force-logged `Prepared` and holds its locks until a decision
    /// (or presumed-abort resolution) arrives.
    PrepareAck {
        /// The transaction.
        txn: TxnId,
        /// Vote round this ack answers.
        corr: u64,
        /// Voting site.
        site: SiteId,
        /// The vote.
        ok: bool,
    },
    /// In-doubt participant → coordinator: what was decided for `txn`?
    /// Sent after a restart (prepared record without an outcome) or when
    /// the decision is overdue.
    DecisionRequest {
        /// The in-doubt transaction.
        txn: TxnId,
        /// Asking site (the reply's destination).
        from: SiteId,
    },
    /// Answer to [`Message::DecisionRequest`] / [`Message::InDoubtQuery`]:
    /// the presumed-abort verdict — commit iff a decision record exists,
    /// abort when the responder can vouch nothing was decided, uncertain
    /// when the responder is in doubt itself.
    DecisionReply {
        /// The transaction.
        txn: TxnId,
        /// The verdict.
        decision: Decision,
    },
    /// In-doubt participant → peer participant (cooperative termination):
    /// asked when the coordinator stays silent. A peer that saw the
    /// outcome answers it; a peer that never prepared answers abort *and
    /// poisons the transaction* so any late vote request is refused —
    /// which is what makes the abort answer safe to act on.
    InDoubtQuery {
        /// The in-doubt transaction.
        txn: TxnId,
        /// Asking site (the reply's destination).
        from: SiteId,
    },
}

/// The verdict carried by [`Message::DecisionReply`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// A commit decision is on record.
    Commit,
    /// Nothing was decided and the responder vouches nothing will be
    /// (presumed abort).
    Abort,
    /// The responder is in doubt itself; ask again or ask elsewhere.
    Uncertain,
}

impl Wire for Message {
    fn wire_label(&self) -> &'static str {
        match self {
            Message::ExecRemote { .. } => "ExecRemote",
            Message::RemoteDone { .. } => "RemoteDone",
            Message::UndoOp { .. } => "UndoOp",
            Message::TerminateBatch { .. } => "TerminateBatch",
            Message::TerminateBatchAck { .. } => "TerminateBatchAck",
            Message::Fail { .. } => "Fail",
            Message::WfgRequest { .. } => "WfgRequest",
            Message::WfgReply { .. } => "WfgReply",
            Message::AbortVictim { .. } => "AbortVictim",
            Message::Wake { .. } => "Wake",
            Message::ClearWaits { .. } => "ClearWaits",
            Message::Prepare { .. } => "Prepare",
            Message::PrepareAck { .. } => "PrepareAck",
            Message::DecisionRequest { .. } => "DecisionRequest",
            Message::DecisionReply { .. } => "DecisionReply",
            Message::InDoubtQuery { .. } => "InDoubtQuery",
        }
    }

    fn wire_size(&self) -> usize {
        match self {
            Message::ExecRemote { op, .. } => 48 + op.wire_size(),
            Message::RemoteDone { result, .. } => {
                64 + match result {
                    Some(OpResult::Query { values }) => {
                        values.iter().map(String::len).sum::<usize>()
                    }
                    _ => 0,
                }
            }
            Message::WfgReply { graph, .. } => 32 + graph.edge_count() * 16,
            Message::TerminateBatch { commits, aborts } => 16 + (commits.len() + aborts.len()) * 8,
            Message::TerminateBatchAck {
                commits, aborts, ..
            } => 16 + (commits.len() + aborts.len()) * 9,
            _ => 48,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtx_xpath::Query;

    #[test]
    fn wire_sizes_reflect_payloads() {
        let small = Message::TerminateBatch {
            commits: vec![TxnId(1)],
            aborts: vec![],
        };
        let op = OpSpec::query("d", Query::parse("/a/b/c").unwrap());
        let exec = Message::ExecRemote {
            txn: TxnId(1),
            coordinator: SiteId(0),
            op_seq: 0,
            op,
            corr: 1,
            update_txn: false,
            doc_version: 1,
            fragment: false,
        };
        assert!(exec.wire_size() > small.wire_size());

        let mut g = WaitForGraph::new();
        for i in 0..10 {
            g.add_edge(TxnId(i), TxnId(i + 1));
        }
        let reply = Message::WfgReply {
            site: SiteId(0),
            round: 1,
            graph: g,
        };
        assert!(reply.wire_size() >= 32 + 160);
    }
}
