//! Transaction and operation specifications, and their outcomes.

use dtx_locks::TxnId;
use dtx_xpath::{Query, UpdateOp};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// One operation of a transaction: a query or an update against a named
/// document (the paper's Fig. 3 lists transactions exactly like this).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpSpec {
    /// Target document (or fragment) name, resolved to sites through the
    /// catalog.
    pub doc: String,
    /// What to do.
    pub kind: OpKind,
}

/// Operation payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OpKind {
    /// Read-only XPath query.
    Query(Query),
    /// One of the five update operations.
    Update(UpdateOp),
}

impl OpSpec {
    /// A query operation.
    pub fn query(doc: impl Into<String>, query: Query) -> Self {
        OpSpec {
            doc: doc.into(),
            kind: OpKind::Query(query),
        }
    }

    /// An update operation.
    pub fn update(doc: impl Into<String>, op: UpdateOp) -> Self {
        OpSpec {
            doc: doc.into(),
            kind: OpKind::Update(op),
        }
    }

    /// True for updates.
    pub fn is_update(&self) -> bool {
        matches!(self.kind, OpKind::Update(_))
    }

    /// Approximate wire size of the operation (for the latency model).
    pub fn wire_size(&self) -> usize {
        let body = match &self.kind {
            OpKind::Query(q) => q.to_string().len(),
            OpKind::Update(u) => match u {
                UpdateOp::Insert {
                    target, fragment, ..
                } => target.to_string().len() + fragment.byte_size(),
                other => other.to_string().len(),
            },
        };
        self.doc.len() + body + 32
    }
}

/// A client transaction: an ordered list of operations executed under
/// strict two-phase locking.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TxnSpec {
    /// The operations, in program order.
    pub ops: Vec<OpSpec>,
}

impl TxnSpec {
    /// Builds a transaction from operations.
    pub fn new(ops: Vec<OpSpec>) -> Self {
        TxnSpec { ops }
    }

    /// True when no operation is an update (read-only transactions can
    /// never be undone-from, though they still lock).
    pub fn is_read_only(&self) -> bool {
        !self.ops.iter().any(OpSpec::is_update)
    }
}

/// Result of one executed operation, as returned to the client.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OpResult {
    /// Query: the string-values of the matched nodes.
    Query {
        /// String-value of each matched node, in document order.
        values: Vec<String>,
    },
    /// Update: number of document nodes affected.
    Update {
        /// Affected-node count.
        affected: usize,
    },
}

/// Why a transaction was aborted.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AbortReason {
    /// Chosen as a deadlock victim (local or distributed detection).
    Deadlock,
    /// An operation failed at some site (bad target, storage error, ...).
    OperationFailed(String),
    /// A remote site did not answer in time.
    RemoteTimeout,
    /// Routing kept racing catalog mutations: every re-route attempt was
    /// refused as stale until the retry budget ran out. Only reachable
    /// under pathological mutation rates — ordinary re-replication is
    /// absorbed by refresh-and-re-route without surfacing to the client.
    StaleCatalog,
    /// The commit protocol could not complete at some site.
    CommitFailed,
    /// The client/scheduler was shut down mid-flight.
    Shutdown,
}

/// Terminal status of a transaction: "one can always say that a
/// transaction either commits, aborts or fails" (paper §2.2).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TxnStatus {
    /// All operations executed and all sites confirmed the commit.
    Committed,
    /// Rolled back everywhere.
    Aborted(AbortReason),
    /// The abort itself could not complete at some site; the application
    /// is alerted ("In case of failure, DTX alerts the application").
    Failed(String),
}

/// What the client receives back.
#[derive(Debug, Clone, PartialEq)]
pub struct TxnOutcome {
    /// The transaction id assigned by its coordinator.
    pub txn: TxnId,
    /// Terminal status.
    pub status: TxnStatus,
    /// Submission-to-termination latency.
    pub response_time: Duration,
    /// Per-operation results (empty unless committed).
    pub results: Vec<OpResult>,
}

impl TxnOutcome {
    /// True when committed.
    pub fn committed(&self) -> bool {
        self.status == TxnStatus::Committed
    }

    /// True when aborted as a deadlock victim.
    pub fn deadlocked(&self) -> bool {
        matches!(self.status, TxnStatus::Aborted(AbortReason::Deadlock))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_constructors() {
        let q = OpSpec::query("d1", Query::parse("/people/person").unwrap());
        assert!(!q.is_update());
        let u = OpSpec::update(
            "d2",
            UpdateOp::Remove {
                target: Query::parse("/products/product").unwrap(),
            },
        );
        assert!(u.is_update());
        let t = TxnSpec::new(vec![q.clone(), u]);
        assert!(!t.is_read_only());
        assert!(TxnSpec::new(vec![q]).is_read_only());
    }

    #[test]
    fn wire_size_scales_with_fragment() {
        use dtx_xml::document::{Fragment, InsertPos};
        let small = OpSpec::update(
            "d",
            UpdateOp::Insert {
                target: Query::parse("/r").unwrap(),
                fragment: Fragment::text("x"),
                pos: InsertPos::Into,
            },
        );
        let big = OpSpec::update(
            "d",
            UpdateOp::Insert {
                target: Query::parse("/r").unwrap(),
                fragment: Fragment::elem_text("blob", "y".repeat(4096)),
                pos: InsertPos::Into,
            },
        );
        assert!(big.wire_size() > small.wire_size() + 4000);
    }

    #[test]
    fn outcome_predicates() {
        let ok = TxnOutcome {
            txn: TxnId(1),
            status: TxnStatus::Committed,
            response_time: Duration::from_millis(1),
            results: vec![],
        };
        assert!(ok.committed() && !ok.deadlocked());
        let dl = TxnOutcome {
            txn: TxnId(2),
            status: TxnStatus::Aborted(AbortReason::Deadlock),
            response_time: Duration::from_millis(1),
            results: vec![],
        };
        assert!(!dl.committed() && dl.deadlocked());
    }
}
