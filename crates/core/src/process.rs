//! Hosting DTX sites as standalone OS processes.
//!
//! A [`SiteHost`] is the process-mode counterpart of
//! [`crate::Cluster`]: it boots one or more scheduler sites inside the
//! current process and stitches them to the rest of the cluster over
//! real TCP ([`dtx_net::socket::SocketTransport`]) instead of the
//! simulated LAN. The schedulers are byte-for-byte the same — the only
//! difference is the transport seam:
//!
//! * outbound messages to non-hosted sites leave through the network's
//!   **uplink** ([`dtx_net::Network::set_uplink`]), which encodes them
//!   with the `WIRE.md` codec and queues them on the destination
//!   process's connection;
//! * inbound frames decode on a socket poller and enter through
//!   [`dtx_net::Network::deliver`], landing on the same endpoint channel
//!   a local send would.
//!
//! The control plane ([`crate::wire::CtrlMsg`]) replaces direct method
//! calls on [`crate::cluster::DtxInstance`]: a driver process registers
//! placements, loads documents, submits transactions and collects
//! outcomes over `Ctrl` frames; the `dtx-site` binary in `dtx-bench` is
//! a thin `main` around this type.
//!
//! Cross-process agreement rests on two conventions:
//!
//! * **Transaction ids** are strided ([`TxnIdGen::strided`]): each
//!   process draws from a disjoint residue class mod the cluster size,
//!   so ids are globally unique with zero coordination (and deadlock
//!   victim selection, which compares ids, stays total across
//!   processes).
//! * **Catalogs** converge by gossip ([`crate::gossip`]): every node
//!   applies the driver's identical `Register` sequence (minting
//!   identical placement versions), and an anti-entropy loop exchanges
//!   [`crate::CatalogDelta`]s so later placement changes propagate
//!   without a coordinator.

use crate::catalog::Catalog;
use crate::gossip::merge_deltas;
use crate::lockmgr::{LockManager, OpCostModel};
use crate::metrics::Metrics;
use crate::msg::Message;
use crate::routing::PolicyKind;
use crate::scheduler::{Control, FaultHooks, RecoveredState, Scheduler, SchedulerConfig};
use crate::wire::CtrlMsg;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use dtx_locks::txn::TxnIdGen;
use dtx_locks::ProtocolKind;
use dtx_net::socket::{SocketConfig, SocketTransport, DRIVER_SITE};
use dtx_net::wire::{FrameHeader, WireCodec};
use dtx_net::{LatencyModel, NetConfig, Network, SiteId, Topology};
use dtx_storage::{CostModel, MemStore, Wal};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Configuration of one site-hosting process.
#[derive(Debug, Clone)]
pub struct SiteHostConfig {
    /// Sites this process hosts (their schedulers run here).
    pub hosted: Vec<SiteId>,
    /// Total number of sites in the cluster — the stride of the txn-id
    /// generator; must match on every process.
    pub total_sites: u16,
    /// Listen address (`127.0.0.1:0` for an OS-assigned port).
    pub listen: String,
    /// Concurrency-control protocol run by the hosted schedulers.
    pub protocol: ProtocolKind,
    /// Scheduler tuning (per-site seeds derive from [`Self::seed`]).
    pub scheduler: SchedulerConfig,
    /// Read-placement policy of the local catalog.
    pub policy: PolicyKind,
    /// Per-operation processing cost model.
    pub op_cost: OpCostModel,
    /// Storage I/O cost model.
    pub storage_cost: CostModel,
    /// Master seed (retry jitter; offset per hosted site).
    pub seed: u64,
    /// Anti-entropy period of the catalog gossip loop.
    pub gossip_every: Duration,
    /// Socket transport tuning.
    pub socket: SocketConfig,
}

impl SiteHostConfig {
    /// Defaults for hosting `hosted` out of a `total_sites`-site
    /// cluster: XDGL, the calibrated op/storage cost models of the
    /// in-process figure runs (only network *latency* is the real
    /// wire's job now — processing cost is part of the workload model,
    /// not the transport), 25 ms gossip.
    pub fn new(hosted: &[SiteId], total_sites: u16) -> Self {
        // Cross-process WFG snapshots travel over the real wire, so a
        // fast detector keeps acting on stale wait edges and kills
        // phantom victims; a longer period than the in-process default
        // trades resolution latency of true cycles (still one round)
        // for far fewer false kills. 250 ms measured best on fig12.
        let scheduler = SchedulerConfig {
            deadlock_period: Duration::from_millis(250),
            ..SchedulerConfig::default()
        };
        SiteHostConfig {
            hosted: hosted.to_vec(),
            total_sites,
            listen: "127.0.0.1:0".into(),
            protocol: ProtocolKind::Xdgl,
            scheduler,
            policy: PolicyKind::default(),
            op_cost: OpCostModel::realistic(),
            storage_cost: CostModel::default(),
            seed: 0xD7C5,
            gossip_every: Duration::from_millis(25),
            socket: SocketConfig::default(),
        }
    }
}

/// One hosted scheduler site: its Listener handle.
struct Hosted {
    control: Sender<Control>,
    handle: Option<JoinHandle<()>>,
}

struct HostShared {
    sock: SocketTransport<Message>,
    net: Network<Message>,
    catalog: Arc<Catalog>,
    /// Lowest hosted site — this process's identity on the control plane.
    me: SiteId,
    /// Remote gossip targets: one representative (lowest) site per peer
    /// process, learned from the driver's `Peers` message.
    gossip_peers: RwLock<Vec<SiteId>>,
    stopping: AtomicBool,
}

/// A running process-mode node: local schedulers for the hosted sites,
/// a socket transport to everyone else, a control-plane thread and a
/// catalog gossip loop.
pub struct SiteHost {
    shared: Arc<HostShared>,
    hosted: HashMap<SiteId, Hosted>,
    metrics: Arc<Metrics>,
    ctrl_thread: Option<JoinHandle<()>>,
    gossip_thread: Option<JoinHandle<()>>,
    done_rx: Receiver<()>,
    config: SiteHostConfig,
}

impl SiteHost {
    /// Boots the hosted schedulers and binds the socket transport.
    /// Returns once the process is accepting connections (peers and
    /// placements arrive later over the control plane).
    pub fn start(config: SiteHostConfig) -> Result<SiteHost, String> {
        if config.hosted.is_empty() {
            return Err("must host at least one site".into());
        }
        let me = *config.hosted.iter().min().expect("nonempty");
        let sock: SocketTransport<Message> =
            SocketTransport::bind(&config.hosted, &config.listen, config.socket)
                .map_err(|e| format!("bind {}: {e}", config.listen))?;
        // Local fabric between hosted sites: zero latency, no faults —
        // realism now comes from the actual wire.
        let net: Network<Message> = Network::with_config(
            LatencyModel::zero(),
            Topology::default(),
            NetConfig::default(),
        );
        let catalog = Arc::new(Catalog::new());
        catalog.set_policy(config.policy.instantiate());
        let metrics = Arc::new(Metrics::new());
        // Disjoint residue classes: process hosting site k starts at
        // k+1 and strides by the cluster size.
        let idgen = Arc::new(TxnIdGen::strided(
            1 + me.0 as u64,
            config.total_sites.max(1) as u64,
        ));
        // Everything not hosted here is remote: sends to it take the
        // uplink, and the deadlock detector's broadcast set includes it.
        for i in 0..config.total_sites {
            let site = SiteId(i);
            if !config.hosted.contains(&site) {
                net.add_remote_site(site);
            }
        }
        {
            let sock = sock.clone();
            net.set_uplink(Some(Arc::new(move |env: dtx_net::Envelope<Message>| {
                let _ = sock.send_msg(env.from, env.to, &env.payload);
            })));
        }
        {
            let net = net.clone();
            sock.set_msg_handler(Some(Arc::new(move |env| {
                let _ = net.deliver(env);
            })));
        }
        let mut hosted = HashMap::new();
        for &site in &config.hosted {
            let endpoint = net.register(site);
            let (control_tx, control_rx): (Sender<Control>, Receiver<Control>) = unbounded();
            let store = MemStore::new(config.storage_cost);
            let mut lockmgr = LockManager::with_cost(
                config.protocol.instantiate(),
                Box::new(store),
                config.op_cost,
            );
            let wal = Arc::new(Wal::new());
            lockmgr.set_wal(Arc::clone(&wal));
            let mut sched_cfg = config.scheduler;
            sched_cfg.seed = config.seed.wrapping_add(site.0 as u64);
            let scheduler = Scheduler::new(
                site,
                net.clone(),
                endpoint,
                control_rx,
                catalog.clone(),
                lockmgr,
                idgen.clone(),
                metrics.clone(),
                sched_cfg,
                wal,
                FaultHooks::default(),
                RecoveredState::default(),
            );
            let handle = std::thread::Builder::new()
                .name(format!("dtx-scheduler-{site}"))
                .spawn(move || scheduler.run())
                .map_err(|e| format!("spawn scheduler: {e}"))?;
            hosted.insert(
                site,
                Hosted {
                    control: control_tx,
                    handle: Some(handle),
                },
            );
        }
        let shared = Arc::new(HostShared {
            sock: sock.clone(),
            net,
            catalog,
            me,
            gossip_peers: RwLock::new(Vec::new()),
            stopping: AtomicBool::new(false),
        });
        // Control frames arrive on socket pollers, which must not block:
        // they enqueue to a dedicated control thread.
        let (ctrl_tx, ctrl_rx) = unbounded::<(FrameHeader, Vec<u8>)>();
        sock.set_ctrl_handler(Some(Arc::new(move |header, body| {
            let _ = ctrl_tx.send((header, body));
        })));
        let (done_tx, done_rx) = bounded(1);
        let ctrl_thread = {
            let shared = Arc::clone(&shared);
            let controls: HashMap<SiteId, Sender<Control>> = hosted
                .iter()
                .map(|(&s, h)| (s, h.control.clone()))
                .collect();
            std::thread::Builder::new()
                .name(format!("dtx-ctrl-{me}"))
                .spawn(move || control_loop(shared, controls, ctrl_rx, done_tx))
                .map_err(|e| format!("spawn control thread: {e}"))?
        };
        let gossip_thread = {
            let shared = Arc::clone(&shared);
            let every = config.gossip_every;
            std::thread::Builder::new()
                .name(format!("dtx-gossip-{me}"))
                .spawn(move || gossip_loop(shared, every))
                .map_err(|e| format!("spawn gossip thread: {e}"))?
        };
        Ok(SiteHost {
            shared,
            hosted,
            metrics,
            ctrl_thread: Some(ctrl_thread),
            gossip_thread: Some(gossip_thread),
            done_rx,
            config,
        })
    }

    /// The bound listen address (resolves a port-0 bind).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.shared.sock.local_addr()
    }

    /// This node's identity on the control plane (lowest hosted site).
    pub fn node_id(&self) -> SiteId {
        self.shared.me
    }

    /// The node's catalog (gossip-converged placements).
    pub fn catalog(&self) -> Arc<Catalog> {
        Arc::clone(&self.shared.catalog)
    }

    /// The node's metrics collector.
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.metrics)
    }

    /// Real bytes-on-wire counters of the node's transport.
    pub fn wire_stats(&self) -> (u64, u64, u64, u64) {
        let s = self.shared.sock.stats();
        (s.bytes_out(), s.bytes_in(), s.frames_out(), s.frames_in())
    }

    /// Dials a peer process directly (tests; deployments normally let
    /// the driver's [`CtrlMsg::Peers`] drive connection setup).
    pub fn connect(&self, addr: &str, expect: &[SiteId]) -> Result<(), String> {
        self.shared
            .sock
            .connect(addr, expect)
            .map_err(|e| format!("connect {addr}: {e}"))
    }

    /// Blocks until a [`CtrlMsg::Shutdown`] arrives over the control
    /// plane (the `dtx-site` main parks here), with a timeout escape.
    pub fn wait_shutdown(&self, timeout: Duration) -> bool {
        self.done_rx.recv_timeout(timeout).is_ok()
    }

    /// Stops everything: schedulers (joined), gossip, control thread and
    /// the socket transport.
    pub fn shutdown(mut self) {
        self.shared.stopping.store(true, Ordering::SeqCst);
        for host in self.hosted.values_mut() {
            let _ = host.control.send(Control::Shutdown);
        }
        for host in self.hosted.values_mut() {
            if let Some(h) = host.handle.take() {
                let _ = h.join();
            }
        }
        if let Some(h) = self.gossip_thread.take() {
            let _ = h.join();
        }
        // Closing the transport clears its handlers, which drops the
        // control thread's sender — its loop then drains and exits; the
        // uplink goes too, severing the Network→transport reference.
        self.shared.net.set_uplink(None);
        self.shared.sock.shutdown();
        if let Some(h) = self.ctrl_thread.take() {
            let _ = h.join();
        }
    }

    /// The node's configuration.
    pub fn config(&self) -> &SiteHostConfig {
        &self.config
    }
}

/// The control-plane event loop: decodes [`CtrlMsg`] frames and drives
/// the hosted schedulers through their Listener channels.
fn control_loop(
    shared: Arc<HostShared>,
    controls: HashMap<SiteId, Sender<Control>>,
    ctrl_rx: Receiver<(FrameHeader, Vec<u8>)>,
    done_tx: Sender<()>,
) {
    while let Ok((header, body)) = ctrl_rx.recv() {
        let msg = match CtrlMsg::decode(&body) {
            Ok(m) => m,
            Err(_) => continue,
        };
        match msg {
            CtrlMsg::Peers { peers, .. } => {
                // Group peer sites by hosting process (address) and dial
                // every peer process whose lowest site outranks ours —
                // a deterministic direction, so the mesh has exactly one
                // connection per process pair.
                let mut by_addr: HashMap<String, Vec<SiteId>> = HashMap::new();
                for (site, addr) in &peers {
                    by_addr.entry(addr.clone()).or_default().push(*site);
                }
                let mut gossip_peers = Vec::new();
                for (addr, mut sites) in by_addr {
                    sites.sort();
                    let low = sites[0];
                    if controls.contains_key(&low) {
                        continue; // our own process
                    }
                    gossip_peers.push(low);
                    if low > shared.me {
                        let _ = shared.sock.connect(&addr, &sites);
                    }
                }
                gossip_peers.sort();
                *shared.gossip_peers.write() = gossip_peers;
                reply(&shared, header.from, &CtrlMsg::Ready { node: shared.me });
            }
            CtrlMsg::Register {
                corr,
                doc,
                sites,
                fragmented,
            } => {
                if fragmented {
                    shared.catalog.register_fragmented(&doc, &sites);
                } else {
                    shared.catalog.register(&doc, &sites);
                }
                reply(
                    &shared,
                    header.from,
                    &CtrlMsg::Ack {
                        corr,
                        ok: true,
                        detail: String::new(),
                    },
                );
            }
            CtrlMsg::LoadDoc { corr, doc, xml } => {
                let result = match controls.get(&header.to) {
                    Some(control) => {
                        let (ack, rx) = bounded(1);
                        let sent = control.send(Control::LoadDoc {
                            name: doc,
                            xml,
                            guide: None,
                            ack,
                        });
                        match sent {
                            Ok(()) => rx
                                .recv()
                                .unwrap_or_else(|_| Err("scheduler is down".into())),
                            Err(_) => Err("scheduler is down".into()),
                        }
                    }
                    None => Err(format!("site {} not hosted here", header.to)),
                };
                let (ok, detail) = match result {
                    Ok(()) => (true, String::new()),
                    Err(e) => (false, e),
                };
                reply(&shared, header.from, &CtrlMsg::Ack { corr, ok, detail });
            }
            CtrlMsg::Submit { corr, spec } => {
                // Block a throwaway thread on the outcome, not this loop:
                // submissions overlap and the control plane must keep
                // serving peers meanwhile.
                if let Some(control) = controls.get(&header.to) {
                    let (outcome_tx, outcome_rx) = bounded(1);
                    if control
                        .send(Control::Submit {
                            spec,
                            reply: outcome_tx,
                        })
                        .is_err()
                    {
                        continue;
                    }
                    let shared = Arc::clone(&shared);
                    let to = header.from;
                    let _ = std::thread::Builder::new()
                        .name("dtx-outcome".into())
                        .spawn(move || {
                            if let Ok(outcome) = outcome_rx.recv() {
                                reply(
                                    &shared,
                                    to,
                                    &CtrlMsg::Outcome {
                                        corr,
                                        txn: outcome.txn,
                                        status: outcome.status,
                                        response_us: outcome.response_time.as_micros() as u64,
                                        results: outcome.results,
                                    },
                                );
                            }
                        });
                }
            }
            CtrlMsg::Gossip { deltas } => {
                merge_deltas(&shared.catalog, &deltas);
            }
            CtrlMsg::StatsRequest { corr } => {
                let s = shared.sock.stats();
                reply(
                    &shared,
                    header.from,
                    &CtrlMsg::StatsReply {
                        corr,
                        bytes_out: s.bytes_out(),
                        bytes_in: s.bytes_in(),
                        frames_out: s.frames_out(),
                        frames_in: s.frames_in(),
                    },
                );
            }
            CtrlMsg::Shutdown => {
                let _ = done_tx.send(());
            }
            // Driver-bound messages; a node never receives them.
            CtrlMsg::Ready { .. }
            | CtrlMsg::Ack { .. }
            | CtrlMsg::Outcome { .. }
            | CtrlMsg::StatsReply { .. } => {}
        }
    }
}

/// Sends one control message back over the wire.
fn reply(shared: &HostShared, to: SiteId, msg: &CtrlMsg) {
    let _ = shared.sock.send_ctrl(shared.me, to, &msg.encode());
}

/// Anti-entropy: periodically ships this node's full delta set to every
/// peer process (idempotent — receivers install only dominating
/// versions, so re-sending converged state is a no-op).
fn gossip_loop(shared: Arc<HostShared>, every: Duration) {
    while !shared.stopping.load(Ordering::Relaxed) {
        std::thread::sleep(every);
        let deltas = shared.catalog.export_deltas(shared.me);
        if deltas.is_empty() {
            continue;
        }
        let peers = shared.gossip_peers.read().clone();
        for peer in peers {
            let msg = CtrlMsg::Gossip {
                deltas: deltas.clone(),
            };
            let _ = shared.sock.send_ctrl(shared.me, peer, &msg.encode());
        }
    }
}

/// The driver side of the control plane: a thin client used by the
/// multi-process bench driver and the integration tests. It owns a
/// transport bound as [`DRIVER_SITE`] and correlates replies.
pub struct CtrlClient {
    sock: SocketTransport<Message>,
    replies: Receiver<(FrameHeader, CtrlMsg)>,
    next_corr: std::sync::atomic::AtomicU64,
}

impl CtrlClient {
    /// Binds a driver-only transport (hosts no scheduler sites).
    pub fn bind() -> Result<CtrlClient, String> {
        let sock: SocketTransport<Message> =
            SocketTransport::bind(&[DRIVER_SITE], "127.0.0.1:0", SocketConfig::default())
                .map_err(|e| format!("bind driver: {e}"))?;
        let (tx, rx) = unbounded();
        sock.set_ctrl_handler(Some(Arc::new(move |header, body| {
            if let Ok(msg) = CtrlMsg::decode(&body) {
                let _ = tx.send((header, msg));
            }
        })));
        Ok(CtrlClient {
            sock,
            replies: rx,
            next_corr: std::sync::atomic::AtomicU64::new(1),
        })
    }

    /// Dials a node process, installing routes for its hosted sites.
    pub fn connect(&self, addr: &str, expect: &[SiteId]) -> Result<(), String> {
        self.sock
            .connect(addr, expect)
            .map_err(|e| format!("connect {addr}: {e}"))
    }

    /// A fresh correlation id.
    pub fn corr(&self) -> u64 {
        self.next_corr.fetch_add(1, Ordering::Relaxed)
    }

    /// Sends `msg` to `site` (routed to its hosting process).
    pub fn send(&self, site: SiteId, msg: &CtrlMsg) -> Result<(), String> {
        self.sock
            .send_ctrl(DRIVER_SITE, site, &msg.encode())
            .map_err(|e| format!("send to {site}: {e:?}"))
    }

    /// Receives the next control reply within `timeout`.
    pub fn recv(&self, timeout: Duration) -> Option<(FrameHeader, CtrlMsg)> {
        self.replies.recv_timeout(timeout).ok()
    }

    /// Real bytes-on-wire counters of the driver's transport.
    pub fn stats(&self) -> (u64, u64) {
        let s = self.sock.stats();
        (s.bytes_out(), s.bytes_in())
    }

    /// Closes the driver transport.
    pub fn shutdown(&self) {
        self.sock.shutdown();
    }
}
