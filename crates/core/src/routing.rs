//! Placement routing: where an operation executes.
//!
//! The paper's coordinator consults a static doc → sites map (Algorithm 1
//! l. 12 `sites.get_participants(operation.get_sites())`). This module
//! generalizes that lookup into an explicit routing layer: the scheduler
//! asks [`crate::Catalog::route`] for a [`RoutingPlan`] and executes it
//! without knowing *why* the sites were chosen. The *why* lives in a
//! pluggable [`PlacementPolicy`]: the seed's conservative everywhere-read
//! ([`Primary`]), or one of the read-one policies ([`RoundRobin`],
//! [`Locality`], [`HotnessAware`]) that serve a read on a replicated
//! document from a single replica — cutting the remote message count of a
//! read-only transaction from `|replicas|` to at most 1.

use crate::metrics::Metrics;
use dtx_net::SiteId;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

/// How one operation is placed across the cluster, as decided by
/// [`crate::Catalog::route`].
///
/// The plan is explicit about the execution shape so the scheduler needs
/// no catalog knowledge of its own: it either runs the operation locally
/// or dispatches it to the listed sites and merges per the variant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RoutingPlan {
    /// The operation involves only the coordinator site: execute it
    /// in-process, no messages (Alg. 1 l. 5-10).
    Local,
    /// A read on a replicated document served by a single chosen replica.
    /// One site's answer suffices because full copies agree.
    ReadOne {
        /// The replica chosen by the placement policy (never the
        /// coordinator — that case normalizes to [`RoutingPlan::Local`]).
        site: SiteId,
    },
    /// Execute at **every** replica: updates always (full copies must stay
    /// identical), and reads under the [`Primary`] policy (the seed
    /// behavior, locking all replicas like the paper's t1op1).
    WriteAll {
        /// All replica sites, coordinator included when it holds a copy.
        sites: Vec<SiteId>,
    },
    /// The document is horizontally fragmented: execute on every fragment
    /// and merge the per-site results (query values united in site order,
    /// update counts summed).
    FragmentFanOut {
        /// The fragment-holding sites.
        sites: Vec<SiteId>,
    },
}

impl RoutingPlan {
    /// The sites the operation executes at under this plan; `local` is the
    /// coordinator (for [`RoutingPlan::Local`]).
    pub fn sites(&self, local: SiteId) -> Vec<SiteId> {
        match self {
            RoutingPlan::Local => vec![local],
            RoutingPlan::ReadOne { site } => vec![*site],
            RoutingPlan::WriteAll { sites } | RoutingPlan::FragmentFanOut { sites } => {
                sites.clone()
            }
        }
    }

    /// True when per-site results must be merged as disjoint fragments.
    pub fn is_fragment_fan_out(&self) -> bool {
        matches!(self, RoutingPlan::FragmentFanOut { .. })
    }
}

/// Per-decision context a [`PlacementPolicy`] may consult.
pub struct RoutingCtx<'a> {
    /// The site coordinating the transaction (where the plan executes
    /// from).
    pub coordinator: SiteId,
    /// Cluster metrics, when available: the feed for load-aware policies
    /// (per-site operation counters).
    pub metrics: Option<&'a Metrics>,
}

impl<'a> RoutingCtx<'a> {
    /// Context without a metrics feed (load-aware policies fall back to
    /// deterministic choices).
    pub fn new(coordinator: SiteId) -> Self {
        RoutingCtx {
            coordinator,
            metrics: None,
        }
    }

    /// Operations routed to `site` so far (0 without a metrics feed).
    pub fn load_of(&self, site: SiteId) -> u64 {
        self.metrics.map(|m| m.site_ops(site)).unwrap_or(0)
    }
}

/// A policy's verdict for a read on a replicated document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadChoice {
    /// Serve the read from this single replica.
    One(SiteId),
    /// Lock and execute at every replica (the seed's conservative
    /// behavior).
    All,
}

/// Chooses which replica serves a read on a replicated document.
///
/// Policies only decide *reads on full replicas*; structure is fixed by
/// the catalog (updates go everywhere, fragments fan out, unreplicated
/// documents have no choice). Implementations must be cheap: the
/// scheduler consults the policy once per dispatched operation.
pub trait PlacementPolicy: Send + Sync + fmt::Debug {
    /// Display name (experiment tables).
    fn name(&self) -> &'static str;

    /// Picks the replica that serves a read of `doc`. `replicas` is the
    /// sorted, non-empty replica set from the catalog.
    fn read_site(&self, doc: &str, replicas: &[SiteId], ctx: &RoutingCtx<'_>) -> ReadChoice;
}

/// The seed behavior and default: a read locks and executes at **every**
/// replica, exactly like the paper's Algorithm 1 (t1op1 locks `d1` at both
/// sites). Maximally conservative — replicas can never drift unnoticed —
/// and maximally expensive: `|replicas|` messages per read.
#[derive(Debug, Default)]
pub struct Primary;

impl PlacementPolicy for Primary {
    fn name(&self) -> &'static str {
        "primary"
    }

    fn read_site(&self, _doc: &str, _replicas: &[SiteId], _ctx: &RoutingCtx<'_>) -> ReadChoice {
        ReadChoice::All
    }
}

/// Read-one, rotating: the k-th routed read goes to replica `k mod n`.
/// Spreads read load evenly regardless of where clients connect.
#[derive(Debug, Default)]
pub struct RoundRobin {
    cursor: AtomicUsize,
}

impl PlacementPolicy for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn read_site(&self, _doc: &str, replicas: &[SiteId], _ctx: &RoutingCtx<'_>) -> ReadChoice {
        let k = self.cursor.fetch_add(1, Ordering::Relaxed);
        ReadChoice::One(replicas[k % replicas.len()])
    }
}

/// Read-one, coordinator-first: serve the read from the coordinator's own
/// replica when it holds one (zero messages), else from the first replica.
#[derive(Debug, Default)]
pub struct Locality;

impl PlacementPolicy for Locality {
    fn name(&self) -> &'static str {
        "locality"
    }

    fn read_site(&self, _doc: &str, replicas: &[SiteId], ctx: &RoutingCtx<'_>) -> ReadChoice {
        if replicas.contains(&ctx.coordinator) {
            ReadChoice::One(ctx.coordinator)
        } else {
            ReadChoice::One(replicas[0])
        }
    }
}

/// Read-one, load-aware: route the read to the replica with the fewest
/// operations so far (per-site op counters fed from [`Metrics`]) — i.e.
/// *off* the hottest replica. Ties break to the lowest site id; without a
/// metrics feed every count is 0 and the first replica wins.
#[derive(Debug, Default)]
pub struct HotnessAware;

impl PlacementPolicy for HotnessAware {
    fn name(&self) -> &'static str {
        "hotness-aware"
    }

    fn read_site(&self, _doc: &str, replicas: &[SiteId], ctx: &RoutingCtx<'_>) -> ReadChoice {
        let coldest = replicas
            .iter()
            .copied()
            .min_by_key(|&s| (ctx.load_of(s), s))
            .expect("replica set is non-empty");
        ReadChoice::One(coldest)
    }
}

/// Nameable policy selection (cluster configuration, experiment tables).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PolicyKind {
    /// [`Primary`] — the seed behavior, default.
    #[default]
    Primary,
    /// [`RoundRobin`].
    RoundRobin,
    /// [`Locality`].
    Locality,
    /// [`HotnessAware`].
    HotnessAware,
}

impl PolicyKind {
    /// Every selectable policy, in ablation order.
    pub const ALL: [PolicyKind; 4] = [
        PolicyKind::Primary,
        PolicyKind::RoundRobin,
        PolicyKind::Locality,
        PolicyKind::HotnessAware,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Primary => "primary",
            PolicyKind::RoundRobin => "round-robin",
            PolicyKind::Locality => "locality",
            PolicyKind::HotnessAware => "hotness-aware",
        }
    }

    /// Builds the policy.
    pub fn instantiate(self) -> Box<dyn PlacementPolicy> {
        match self {
            PolicyKind::Primary => Box::new(Primary),
            PolicyKind::RoundRobin => Box::<RoundRobin>::default(),
            PolicyKind::Locality => Box::new(Locality),
            PolicyKind::HotnessAware => Box::new(HotnessAware),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(n: u16) -> SiteId {
        SiteId(n)
    }

    #[test]
    fn primary_reads_everywhere() {
        let p = Primary;
        let ctx = RoutingCtx::new(s(0));
        assert_eq!(p.read_site("d", &[s(0), s(1), s(2)], &ctx), ReadChoice::All);
    }

    #[test]
    fn round_robin_rotates_over_replicas() {
        let p = RoundRobin::default();
        let ctx = RoutingCtx::new(s(9));
        let replicas = [s(0), s(1), s(2)];
        let picks: Vec<ReadChoice> = (0..6).map(|_| p.read_site("d", &replicas, &ctx)).collect();
        assert_eq!(
            picks,
            vec![
                ReadChoice::One(s(0)),
                ReadChoice::One(s(1)),
                ReadChoice::One(s(2)),
                ReadChoice::One(s(0)),
                ReadChoice::One(s(1)),
                ReadChoice::One(s(2)),
            ]
        );
    }

    #[test]
    fn locality_prefers_coordinator_replica() {
        let p = Locality;
        let holds = RoutingCtx::new(s(1));
        assert_eq!(
            p.read_site("d", &[s(0), s(1)], &holds),
            ReadChoice::One(s(1))
        );
        let elsewhere = RoutingCtx::new(s(7));
        assert_eq!(
            p.read_site("d", &[s(0), s(1)], &elsewhere),
            ReadChoice::One(s(0))
        );
    }

    #[test]
    fn hotness_aware_picks_coldest_replica() {
        let metrics = Metrics::new();
        // Site 0 hot, site 1 lukewarm, site 2 untouched.
        for _ in 0..5 {
            metrics.note_site_op(s(0));
        }
        metrics.note_site_op(s(1));
        let ctx = RoutingCtx {
            coordinator: s(0),
            metrics: Some(&metrics),
        };
        let p = HotnessAware;
        assert_eq!(
            p.read_site("d", &[s(0), s(1), s(2)], &ctx),
            ReadChoice::One(s(2))
        );
        // Ties break to the lowest site id.
        let tied = RoutingCtx::new(s(0));
        assert_eq!(
            p.read_site("d", &[s(3), s(4)], &tied),
            ReadChoice::One(s(3))
        );
    }

    #[test]
    fn policy_kind_round_trips() {
        for kind in PolicyKind::ALL {
            assert_eq!(kind.instantiate().name(), kind.name());
        }
        assert_eq!(PolicyKind::default(), PolicyKind::Primary);
    }

    #[test]
    fn plan_sites_and_fragment_predicate() {
        assert_eq!(RoutingPlan::Local.sites(s(3)), vec![s(3)]);
        assert_eq!(RoutingPlan::ReadOne { site: s(2) }.sites(s(0)), vec![s(2)]);
        let wa = RoutingPlan::WriteAll {
            sites: vec![s(0), s(1)],
        };
        assert_eq!(wa.sites(s(0)), vec![s(0), s(1)]);
        assert!(!wa.is_fragment_fan_out());
        assert!(RoutingPlan::FragmentFanOut {
            sites: vec![s(0), s(1)]
        }
        .is_fragment_fan_out());
    }
}
