//! The per-site Scheduler: Algorithms 1, 2, 4, 5 and 6 of the paper.
//!
//! One scheduler thread runs per DTX instance. It plays **both** roles of
//! the distributed transaction model (§2.2): *coordinator* for the
//! transactions submitted at its site (Algorithm 1) and *participant* for
//! remote operations sent by other coordinators (Algorithm 2 — "this
//! procedure is also common to the coordinator"). It also runs the
//! periodic distributed deadlock detection (Algorithm 4) and the
//! commit/abort termination protocols (Algorithms 5 and 6).
//!
//! ## Concurrency model
//!
//! The scheduler is a single-threaded, **event-driven state machine**.
//! Every coordinated transaction carries an explicit `Phase`; the event
//! loop drains client submissions and scheduler-to-scheduler messages,
//! advances whichever transactions became runnable, and sweeps state
//! deadlines — it never blocks on a remote round-trip.
//!
//! Where Algorithm 1 says the coordinator "waits for the operation to be
//! executed on all the sites" (l. 14), the transaction enters
//! `Phase::AwaitingRemoteOps` and the loop moves on: the dispatched
//! operation lives in a continuation table keyed by a correlation id, and
//! the arrival of the last `RemoteDone` (or the deadline) resumes it.
//! Commit and abort acknowledgement waits (Alg. 5/6) work the same way
//! through `Phase::AwaitingCommitAcks` / `Phase::AwaitingAbortAcks`.
//! One scheduler thread therefore pipelines many in-flight distributed
//! transactions instead of head-of-line blocking on each round-trip — the
//! earlier design's nested message pump served participant duties while
//! blocked but could drive only **one** coordinated round-trip at a time.
//!
//! Transactions denied a lock enter **wait mode** (Alg. 1 l. 9/17,
//! `Phase::Waiting`) and are retried after a short jittered interval;
//! their wait-for edges live in the lock-holding site's graph until the
//! retry succeeds or a deadlock detector aborts a victim.
//!
//! ## Group commit
//!
//! Termination is **batched per (site, tick)**: instead of one
//! `Commit`/`Abort` (and one ack) per transaction per site, commit and
//! abort decisions accumulate in a per-site outbox and every event-loop
//! iteration flushes each site's accumulated decisions as a single
//! [`Message::TerminateBatch`]; the participant answers every batch with
//! a single [`Message::TerminateBatchAck`] carrying the per-transaction
//! outcomes. Transactions still park individually in
//! `Phase::AwaitingCommitAcks` / `Phase::AwaitingAbortAcks` and are
//! resumed individually as their entries in batched acks arrive — only
//! the wire traffic is coalesced, cutting termination messages from
//! O(txns × sites) to O(sites) per tick under heavy load
//! (`termination_msgs` vs `termination_msgs_unbatched` in
//! [`Metrics`] witness the ratio).

use crate::catalog::Catalog;
use crate::lockmgr::{LockManager, ProcessResult};
use crate::metrics::{Metrics, PhaseTimes, TxnRecord};
use crate::msg::{Decision, Message};
use crate::op::{AbortReason, OpResult, OpSpec, TxnOutcome, TxnSpec, TxnStatus};
use crate::routing::RoutingCtx;
use crossbeam::channel::{Receiver, Sender};
use dtx_dataguide::DataGuide;
use dtx_locks::txn::TxnIdGen;
use dtx_locks::{TxnId, TxnMode, WaitForGraph};
use dtx_net::{Endpoint, Envelope, Network, SiteId};
use dtx_storage::{LoggedOutcome, Wal, WalRecord};
use dtx_trace::{EventKind, TraceSink};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Upper bound of network envelopes handled per loop iteration, so a
/// message flood cannot starve transaction dispatch.
const DRAIN_BATCH: usize = 256;

/// How many times one transaction may be refused as stale (catalog epoch
/// mismatch) and re-routed before it aborts with
/// [`AbortReason::StaleCatalog`]. Each refusal implies a concurrent
/// catalog mutation; ordinary re-replication bumps the epoch a handful of
/// times, so hitting this cap means placement is churning pathologically.
const MAX_STALE_REROUTES: u32 = 16;

/// Chunk size for document images streamed into the WAL: the same
/// event-boundary chunking the replica copy path uses, so logging and
/// replaying an image both run in O(chunk + depth) transient memory.
const WAL_DOC_CHUNK: usize = 4096;

/// Tuning knobs of a scheduler.
#[derive(Debug, Clone, Copy)]
pub struct SchedulerConfig {
    /// How long a waiting transaction pauses before retrying its blocked
    /// operation (jittered ±50 %).
    pub retry_interval: Duration,
    /// Period of the distributed deadlock detector (Algorithm 4);
    /// staggered per site to avoid synchronized rounds.
    pub deadlock_period: Duration,
    /// How long a coordinator waits for remote-operation responses and
    /// commit/abort acknowledgements before treating the site as failed.
    pub remote_timeout: Duration,
    /// Safety net: a transaction continuously in wait mode longer than
    /// this is aborted (covers pathological workloads; the detector
    /// normally resolves deadlocks much sooner).
    pub wait_timeout: Duration,
    /// Event-loop poll interval when idle.
    pub idle_wait: Duration,
    /// Group-commit latency budget: termination decisions may sit in the
    /// outbox for up to this long (while fewer than
    /// [`SchedulerConfig::flush_min_pending`] have accumulated) before
    /// they are flushed, trading a bounded commit-latency cost for
    /// larger [`Message::TerminateBatch`]es under light load. Zero (the
    /// default) keeps the per-tick flush: the outbox never outlives one
    /// event-loop iteration.
    pub flush_window: Duration,
    /// Pending-decision threshold that overrides the flush window: once
    /// this many per-transaction decisions have accumulated, the outbox
    /// flushes immediately — the window only holds back *light* traffic,
    /// a loaded tick already batches well.
    pub flush_min_pending: usize,
    /// Period of the in-doubt resolution sweep: a prepared participant
    /// whose decision is overdue by this much re-asks its coordinator
    /// ([`Message::DecisionRequest`]); after several unanswered rounds it
    /// also asks its peer participants ([`Message::InDoubtQuery`],
    /// cooperative termination).
    pub indoubt_period: Duration,
    /// How long a participant keeps orphaned remote work (executed
    /// operations whose coordinator never started a vote or termination
    /// round) before unilaterally aborting it — presumed abort makes that
    /// safe, and the transaction is *poisoned* so a late vote request is
    /// refused.
    pub orphan_timeout: Duration,
    /// Seed for retry jitter.
    pub seed: u64,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            retry_interval: Duration::from_millis(2),
            deadlock_period: Duration::from_millis(50),
            remote_timeout: Duration::from_secs(60),
            wait_timeout: Duration::from_secs(180),
            idle_wait: Duration::from_micros(500),
            flush_window: Duration::ZERO,
            flush_min_pending: 8,
            indoubt_period: Duration::from_millis(50),
            orphan_timeout: Duration::from_secs(300),
            seed: 0x5EED,
        }
    }
}

/// Where an armed crash fires inside a coordinator's transaction path —
/// each is one "the coordinator dies here" case of the 2PC matrix. The
/// scheduler checks (and consumes) the armed point at the matching spot,
/// sets its crashed flag, and falls out of the event loop **without**
/// flushing, aborting, or replying — exactly what a process kill loses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// After the `ExecRemote` dispatches of a distributed operation went
    /// out: participants hold work for a coordinator that never decides
    /// anything (the orphan-abort case).
    InRemoteOps,
    /// After the vote requests went out: participants force-log
    /// `Prepared` and are in doubt for a decision that was never made
    /// (the presumed-abort case).
    AfterPrepare,
    /// After the commit decision was force-logged but before any commit
    /// message was sent: only the restarted coordinator's log knows the
    /// outcome (the decision-replay case).
    AfterDecide,
    /// After the decision was logged and the commit reached exactly one
    /// participant — the lowest site id: surviving participants must
    /// converge through peers (the cooperative-termination case).
    AfterDecideSendOne,
}

/// Kill/crash controls shared between the cluster (which arms them) and
/// the scheduler thread (which honors them). Cloned handles refer to the
/// same flags.
#[derive(Clone, Default)]
pub struct FaultHooks {
    /// Asynchronous kill switch: checked at the top of every event-loop
    /// iteration.
    pub kill: Arc<AtomicBool>,
    /// One-shot crash point: consumed when the scheduler reaches it.
    pub crash: Arc<Mutex<Option<CrashPoint>>>,
}

impl FaultHooks {
    /// Consumes the armed crash point iff it matches `p`.
    fn take_if(&self, p: CrashPoint) -> bool {
        let mut armed = self.crash.lock();
        if *armed == Some(p) {
            *armed = None;
            true
        } else {
            false
        }
    }
}

/// What WAL replay hands a restarted scheduler: the 2PC state that must
/// survive the crash (everything else is rebuilt or presumed aborted).
#[derive(Debug, Default)]
pub struct RecoveredState {
    /// Prepared-but-undecided transactions: `(txn, coordinator, peer
    /// participants)`. The scheduler keeps their replayed effects, blocks
    /// their documents, and runs the termination protocol until each
    /// resolves.
    pub in_doubt: Vec<(TxnId, SiteId, Vec<SiteId>)>,
    /// Commit decisions on the log without a matching `End`: the restarted
    /// coordinator re-sends the commit to every listed participant
    /// (participants that already committed treat it as a no-op).
    pub undelivered: Vec<(TxnId, Vec<SiteId>)>,
}

/// Client-side commands delivered through the Listener.
pub enum Control {
    /// Submit a transaction; the outcome is sent on `reply`.
    Submit {
        /// The transaction.
        spec: TxnSpec,
        /// Outcome channel.
        reply: Sender<TxnOutcome>,
    },
    /// Load a document into this site's store + memory.
    LoadDoc {
        /// Document name.
        name: String,
        /// Raw XML.
        xml: String,
        /// A pre-built DataGuide shipped alongside the data (replica
        /// bootstrap); `None` builds one from the document.
        guide: Option<Box<DataGuide>>,
        /// Ack channel (parse/storage errors reported).
        ack: Sender<Result<(), String>>,
    },
    /// Install an already-built document (the streaming ingestion path:
    /// the tree and guide were produced by event sinks — no XML string
    /// exists and none is parsed).
    LoadBuilt {
        /// Document name.
        name: String,
        /// The document tree.
        doc: Box<dtx_xml::Document>,
        /// Its DataGuide, when built during ingest; `None` builds one.
        guide: Option<Box<DataGuide>>,
        /// Ack channel (storage errors reported).
        ack: Sender<Result<(), String>>,
    },
    /// Serialize the last committed state of a hosted document plus its
    /// DataGuide (the shipment sent to a new replica during online
    /// re-replication, so the receiver serves structure-matched reads
    /// without rebuilding the guide).
    DumpDoc {
        /// Document name.
        name: String,
        /// Reply channel (shipment or an error).
        reply: Sender<Result<DocShipment, String>>,
    },
    /// Answers whether no transaction currently holds applied,
    /// not-yet-terminated updates on `name` at this site — the drain poll
    /// of the replica copy fence (`Cluster::add_replica` raises the fence,
    /// then polls this until the source copy is quiescent).
    DocQuiesced {
        /// Document name.
        name: String,
        /// Reply channel.
        reply: Sender<bool>,
    },
    /// Evict a dropped replica: release the in-memory copy, **every**
    /// snapshot version (the `drop_replica` quiesce already drained
    /// readers), and the store copy of `name` at this site. Replies
    /// whether the document was hosted.
    EvictDoc {
        /// Document name.
        name: String,
        /// Reply channel.
        ack: Sender<bool>,
    },
    /// Stop the scheduler; in-flight transactions are aborted.
    Shutdown,
}

/// What a source site ships for one document during replica bootstrap:
/// the committed data plus the serialized DataGuide, so the new replica
/// answers structure-dependent queries immediately instead of rebuilding
/// the summary from the data.
#[derive(Debug, Clone)]
pub struct DocShipment {
    /// The document's last committed state, serialized.
    pub xml: String,
    /// The source's DataGuide in wire form
    /// ([`dtx_dataguide::DataGuide::to_wire`]).
    pub guide_wire: String,
}

/// Execution state of one coordinated transaction — the explicit form of
/// every point where Algorithm 1/5/6 says "wait".
///
/// The event loop is the only thing that advances a transaction between
/// phases; message handlers record arrivals in the continuation tables and
/// trigger the transition when a phase's completion condition is met.
#[derive(Debug, Clone)]
enum Phase {
    /// Runnable: the next operation can be dispatched.
    Ready,
    /// Lock-denied (Alg. 1 l. 9/17): retry the blocked operation at
    /// `retry_at`.
    Waiting {
        /// When the jittered retry fires.
        retry_at: Instant,
    },
    /// A distributed operation is in flight (Alg. 1 l. 14): responses are
    /// collected under `corr` until every site in `sites` reported (or
    /// `deadline` passes).
    AwaitingRemoteOps {
        /// Correlation id of this dispatch (continuation-table key).
        corr: u64,
        /// Index of the in-flight operation.
        op_seq: usize,
        /// All sites the operation was dispatched to (self included when
        /// the coordinator holds data).
        sites: Vec<SiteId>,
        /// Whether the routing plan was a fragment fan-out (per-site
        /// results merge as disjoint fragments instead of agreeing
        /// replicas).
        fragmented: bool,
        /// Response deadline (remote timeout).
        deadline: Instant,
    },
    /// Presumed-abort vote requests sent ([`Message::Prepare`]); awaiting
    /// `expected` votes. Only distributed **update** transactions pass
    /// through here — read-only ones have nothing to make durable and
    /// keep the one-phase batched termination.
    AwaitingPrepareAcks {
        /// Number of votes required.
        expected: usize,
        /// Vote deadline (a missing vote aborts — presumed abort).
        deadline: Instant,
    },
    /// Commit requests sent (Alg. 5 l. 4); awaiting `expected` acks.
    AwaitingCommitAcks {
        /// Number of acknowledgements required.
        expected: usize,
        /// Ack deadline.
        deadline: Instant,
    },
    /// Abort requests sent (Alg. 6 l. 4); awaiting `expected` acks.
    AwaitingAbortAcks {
        /// Number of acknowledgements required.
        expected: usize,
        /// Why the transaction aborts (reported to the client).
        reason: AbortReason,
        /// Ack deadline.
        deadline: Instant,
    },
}

impl Phase {
    /// The phase's static name — what [`dtx_trace::EventKind::PhaseEnter`]
    /// events are stamped with.
    fn name(&self) -> &'static str {
        match self {
            Phase::Ready => "Ready",
            Phase::Waiting { .. } => "Waiting",
            Phase::AwaitingRemoteOps { .. } => "AwaitingRemoteOps",
            Phase::AwaitingPrepareAcks { .. } => "AwaitingPrepareAcks",
            Phase::AwaitingCommitAcks { .. } => "AwaitingCommitAcks",
            Phase::AwaitingAbortAcks { .. } => "AwaitingAbortAcks",
        }
    }
}

/// The placement a dispatched operation was routed under, pinned for the
/// operation's lifetime: wait-mode retries re-dispatch to the **same**
/// sites, so the wait-for edges a conflict left at a participant are
/// revisited (and replaced or cleared) by the retry instead of being
/// stranded there while the operation re-routes elsewhere — stranded
/// edges would fabricate phantom distributed deadlocks. A fresh route is
/// taken when the operation succeeds (next op), or when a participant
/// refuses the pinned document version as stale.
#[derive(Debug, Clone)]
struct PinnedPlan {
    sites: Vec<SiteId>,
    fragmented: bool,
    /// The target document's placement version the plan was routed under.
    version: u64,
}

/// Coordinator-side execution state (Alg. 1's view of one transaction).
struct CoordTxn {
    id: TxnId,
    spec: TxnSpec,
    next_op: usize,
    phase: Phase,
    /// When the current phase was entered (per-state timing).
    phase_entered: Instant,
    /// Accumulated per-state timing.
    times: PhaseTimes,
    /// First entry into the current wait-mode stretch (wait timeout).
    wait_since: Option<Instant>,
    /// Dispatches of the *current* operation refused for a stale catalog
    /// epoch and re-routed (aborts at [`MAX_STALE_REROUTES`]; reset when
    /// the operation succeeds).
    stale_retries: u32,
    /// The current operation's routed placement (see [`PinnedPlan`]).
    pinned: Option<PinnedPlan>,
    /// Remote sites that executed at least one operation (commit/abort
    /// must reach all of them).
    remote_sites: Vec<SiteId>,
    /// The commit decision was force-logged: consolidation must append an
    /// `End` record so the log can forget the transaction.
    decided: bool,
    results: Vec<OpResult>,
    submitted: Instant,
    reply: Sender<TxnOutcome>,
}

impl CoordTxn {
    /// Leaves the current phase, charging its elapsed time to the right
    /// bucket, and enters `next`.
    fn set_phase(&mut self, next: Phase) {
        let now = Instant::now();
        let dt = now.duration_since(self.phase_entered);
        match self.phase {
            Phase::Ready => self.times.ready += dt,
            Phase::Waiting { .. } => self.times.waiting += dt,
            Phase::AwaitingRemoteOps { .. } => self.times.remote += dt,
            Phase::AwaitingPrepareAcks { .. }
            | Phase::AwaitingCommitAcks { .. }
            | Phase::AwaitingAbortAcks { .. } => self.times.terminating += dt,
        }
        self.phase = next;
        self.phase_entered = now;
    }
}

/// Per-site accumulator of termination decisions (group commit): filled
/// by [`Scheduler::begin_commit`] / [`Scheduler::begin_abort`], drained
/// once per event-loop tick into a single [`Message::TerminateBatch`].
#[derive(Debug, Default)]
struct TermBatch {
    /// Transactions to consolidate at the site, in decision order.
    commits: Vec<TxnId>,
    /// Transactions to cancel at the site, in decision order.
    aborts: Vec<TxnId>,
}

/// Participant-side state of one prepared (in-doubt) transaction: who to
/// ask for the decision and how long the asking has gone unanswered.
#[derive(Debug)]
struct PreparedTxn {
    /// The transaction's coordinator (first to ask).
    coordinator: SiteId,
    /// The other participants (cooperative-termination peers).
    peers: Vec<SiteId>,
    /// When this entry last made progress (created or re-asked).
    since: Instant,
    /// Unanswered decision requests so far; past a small threshold the
    /// sweep also queries the peers.
    asked: u32,
    /// Seeded by WAL replay (vs a live prepare): its resolution counts as
    /// an in-doubt recovery outcome in the metrics.
    recovered: bool,
}

/// A participant's report about one remote operation.
#[derive(Debug, Clone)]
struct DoneInfo {
    acquired: bool,
    executed: bool,
    failed: bool,
    deadlock: bool,
    /// The participant refused the dispatch for a catalog-epoch mismatch
    /// (nothing executed, no locks taken).
    stale: bool,
    result: Option<OpResult>,
}

/// The scheduler of one DTX instance.
pub struct Scheduler {
    site: SiteId,
    net: Network<Message>,
    endpoint: Endpoint<Message>,
    control: Receiver<Control>,
    catalog: Arc<Catalog>,
    lockmgr: LockManager,
    txns: Vec<CoordTxn>,
    /// Coordinator of each transaction seen as a participant.
    txn_coord: HashMap<TxnId, SiteId>,
    /// Continuation table: responses collected per in-flight distributed
    /// operation, keyed by correlation id. Stale responses (undone retry,
    /// aborted transaction) find no entry and are dropped.
    pending_done: HashMap<u64, HashMap<SiteId, DoneInfo>>,
    /// Commit acknowledgements per transaction.
    pending_commit: HashMap<TxnId, HashMap<SiteId, bool>>,
    /// Abort acknowledgements per transaction.
    pending_abort: HashMap<TxnId, HashMap<SiteId, bool>>,
    /// Group-commit outbox: accumulated termination decisions, flushed
    /// as one [`Message::TerminateBatch`] per site — every tick by
    /// default, or held up to the configured flush window.
    term_outbox: HashMap<SiteId, TermBatch>,
    /// When the oldest decision entered the (currently non-empty)
    /// outbox — the flush window counts from here.
    outbox_since: Option<Instant>,
    /// Per-transaction decisions currently in the outbox (across sites).
    outbox_entries: usize,
    /// Current deadlock-detection round and its collected graphs.
    wfg_round: u64,
    wfg_replies: HashMap<SiteId, WaitForGraph>,
    /// Replies expected in the current round; `wfg_deadline` is `Some`
    /// while a round is being collected (the detector, too, is
    /// event-driven — it never pumps).
    wfg_expected: usize,
    wfg_deadline: Option<Instant>,
    idgen: Arc<TxnIdGen>,
    metrics: Arc<Metrics>,
    cfg: SchedulerConfig,
    /// Correlation-id source (unique per dispatch from this scheduler).
    next_corr: u64,
    next_detection: Instant,
    rr_cursor: usize,
    rng: u64,
    /// This site's write-ahead log (owned by the cluster so it survives a
    /// scheduler kill — the "stable storage" of the durability fiction).
    wal: Arc<Wal>,
    /// Kill switch + armed crash point, shared with the cluster.
    faults: FaultHooks,
    /// An armed crash point fired: fall out of the event loop without
    /// flushing, aborting or replying (a crash loses all of that).
    crashed: bool,
    /// Prepare votes per transaction: `(vote round corr, votes by site)`.
    pending_prepare: HashMap<TxnId, (u64, HashMap<SiteId, bool>)>,
    /// Participant-side in-doubt table: prepared transactions awaiting
    /// their decision.
    prepared: HashMap<TxnId, PreparedTxn>,
    /// Poisoned transactions: this site orphan-aborted them or vouched
    /// abort to a peer's in-doubt query, so any late [`Message::Prepare`]
    /// must be refused — that refusal is what makes those abort paths
    /// safe against an in-flight vote round.
    refused: HashSet<TxnId>,
    /// Last time each participant-side transaction showed coordinator
    /// activity (feeds the orphan sweep).
    participant_seen: HashMap<TxnId, Instant>,
    /// Commit decisions recovered from the log without an `End`:
    /// participants still owed the decision, per transaction. `End` is
    /// appended when the set drains.
    reco_commits: HashMap<TxnId, HashSet<SiteId>>,
    /// Next in-doubt/orphan sweep.
    next_indoubt_sweep: Instant,
    /// This site's trace sink (disabled by default; the cluster arms it
    /// before the scheduler thread starts). Phase transitions, yes-votes,
    /// batched commit/abort decisions and in-doubt resolutions are
    /// recorded here; the WAL and lock table carry their own sinks.
    trace: TraceSink,
}

impl Scheduler {
    /// Assembles a scheduler. `endpoint` must already be registered on
    /// `net` for `site`. `recovered` carries the 2PC state WAL replay
    /// salvaged after a restart ([`RecoveredState::default`] on a fresh
    /// boot): in-doubt transactions enter the prepared table (their first
    /// decision request goes out on the first sweep) and undelivered
    /// commit decisions are re-queued for their participants.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        site: SiteId,
        net: Network<Message>,
        endpoint: Endpoint<Message>,
        control: Receiver<Control>,
        catalog: Arc<Catalog>,
        lockmgr: LockManager,
        idgen: Arc<TxnIdGen>,
        metrics: Arc<Metrics>,
        cfg: SchedulerConfig,
        wal: Arc<Wal>,
        faults: FaultHooks,
        recovered: RecoveredState,
    ) -> Self {
        // Stagger detector rounds per site so sites do not all fire at once.
        let stagger = cfg.deadlock_period / 8 * (site.0 as u32 % 8);
        let now = Instant::now();
        let mut s = Scheduler {
            site,
            net,
            endpoint,
            control,
            catalog,
            lockmgr,
            txns: Vec::new(),
            txn_coord: HashMap::new(),
            pending_done: HashMap::new(),
            pending_commit: HashMap::new(),
            pending_abort: HashMap::new(),
            term_outbox: HashMap::new(),
            outbox_since: None,
            outbox_entries: 0,
            wfg_round: 0,
            wfg_replies: HashMap::new(),
            wfg_expected: 0,
            wfg_deadline: None,
            idgen,
            metrics,
            cfg,
            next_corr: 0,
            next_detection: now + cfg.deadlock_period + stagger,
            rr_cursor: 0,
            rng: cfg.seed ^ ((site.0 as u64) << 32) | 1,
            wal,
            faults,
            crashed: false,
            pending_prepare: HashMap::new(),
            prepared: HashMap::new(),
            refused: HashSet::new(),
            participant_seen: HashMap::new(),
            reco_commits: HashMap::new(),
            next_indoubt_sweep: now + cfg.indoubt_period,
            trace: TraceSink::disabled(),
        };
        for (txn, coordinator, peers) in recovered.in_doubt {
            s.txn_coord.insert(txn, coordinator);
            // Backdate `since` so the first sweep asks immediately.
            let since = now.checked_sub(s.cfg.indoubt_period).unwrap_or(now);
            s.prepared.insert(
                txn,
                PreparedTxn {
                    coordinator,
                    peers,
                    since,
                    asked: 0,
                    recovered: true,
                },
            );
        }
        for (txn, participants) in recovered.undelivered {
            s.reco_commits
                .insert(txn, participants.iter().copied().collect());
            for &p in &participants {
                s.enqueue_termination(p, txn, true);
            }
        }
        s
    }

    /// Arms this scheduler's trace sink (call before [`Scheduler::run`]).
    pub fn set_trace(&mut self, sink: TraceSink) {
        self.trace = sink;
    }

    /// Runs the event loop until a [`Control::Shutdown`] arrives — or the
    /// site is killed / hits an armed crash point, in which case the loop
    /// exits **abruptly**: no flush, no aborts, no client replies. Every
    /// in-memory structure dies with the thread; only the cluster-owned
    /// WAL survives, exactly as a crash loses RAM but not stable storage.
    pub fn run(mut self) {
        loop {
            // 0. Fault hooks: a killed or crashed site just stops.
            if self.crashed || self.faults.kill.load(Ordering::Relaxed) {
                self.net.deregister(self.site);
                return;
            }
            // 1. Client commands.
            loop {
                match self.control.try_recv() {
                    Ok(Control::Submit { spec, reply }) => {
                        let id = self.idgen.next();
                        let now = Instant::now();
                        self.metrics.note_coord_submit(self.site);
                        self.txns.push(CoordTxn {
                            id,
                            spec,
                            next_op: 0,
                            phase: Phase::Ready,
                            phase_entered: now,
                            times: PhaseTimes::default(),
                            wait_since: None,
                            stale_retries: 0,
                            pinned: None,
                            remote_sites: Vec::new(),
                            decided: false,
                            results: Vec::new(),
                            submitted: now,
                            reply,
                        });
                    }
                    Ok(Control::LoadDoc {
                        name,
                        xml,
                        guide,
                        ack,
                    }) => {
                        let r = self
                            .lockmgr
                            .put_and_load_with_guide(&name, &xml, guide.map(|g| *g))
                            .map(|built| {
                                if built {
                                    self.metrics.note_guide_build();
                                }
                            })
                            .map_err(|e| e.to_string());
                        if r.is_ok() {
                            self.log_doc_image(&name);
                        }
                        self.publish_snapshot_gauges();
                        let _ = ack.send(r);
                    }
                    Ok(Control::LoadBuilt {
                        name,
                        doc,
                        guide,
                        ack,
                    }) => {
                        let r = self
                            .lockmgr
                            .install_document(&name, *doc, guide.map(|g| *g))
                            .map(|built| {
                                if built {
                                    self.metrics.note_guide_build();
                                }
                            })
                            .map_err(|e| e.to_string());
                        if r.is_ok() {
                            self.log_doc_image(&name);
                        }
                        self.publish_snapshot_gauges();
                        let _ = ack.send(r);
                    }
                    Ok(Control::DumpDoc { name, reply }) => {
                        let r = self
                            .lockmgr
                            .dump_with_guide(&name)
                            .map(|(xml, guide)| DocShipment {
                                xml,
                                guide_wire: guide.to_wire(),
                            })
                            .map_err(|e| e.to_string());
                        let _ = reply.send(r);
                    }
                    Ok(Control::DocQuiesced { name, reply }) => {
                        let _ = reply.send(self.lockmgr.doc_quiescent(&name));
                    }
                    Ok(Control::EvictDoc { name, ack }) => {
                        let was = self.lockmgr.evict_document(&name);
                        self.publish_snapshot_gauges();
                        let _ = ack.send(was);
                    }
                    Ok(Control::Shutdown) => {
                        self.shutdown();
                        return;
                    }
                    Err(_) => break,
                }
            }
            // 2. Network messages (bounded batch; handlers advance any
            //    transaction whose completion condition is now met).
            for env in self.endpoint.drain(DRAIN_BATCH) {
                self.handle_message(env);
                if self.crashed {
                    break;
                }
            }
            if self.crashed {
                // An armed crash fired inside a handler: nothing below —
                // no flush, no sweep, no dispatch — may run.
                continue;
            }
            // 3. Periodic distributed deadlock detection (Algorithm 4).
            if Instant::now() >= self.next_detection {
                self.next_detection = Instant::now() + self.cfg.deadlock_period;
                if self.wfg_deadline.is_none()
                    && (!self.lockmgr.wfg().is_empty()
                        || self
                            .txns
                            .iter()
                            .any(|t| matches!(t.phase, Phase::Waiting { .. })))
                {
                    self.start_deadlock_round();
                }
            }
            self.maybe_finish_deadlock_round();
            // 4. State deadlines (remote/ack timeouts).
            self.sweep_deadlines();
            // 4¼. In-doubt resolution + orphan sweep (presumed abort).
            self.sweep_recovery();
            // 4½. Group commit: flush the accumulated termination
            //     decisions — one TerminateBatch per site, regardless of
            //     how many transactions terminated since the last flush
            //     (a nonzero flush window may hold a light outbox a
            //     little longer; see flush_terminations).
            self.flush_terminations(false);
            // 5. Dispatch the next operation of an available transaction
            //    (Alg. 1 l. 3: "next_transaction_available"). Dispatch
            //    never blocks, so consecutive iterations interleave many
            //    coordinated transactions.
            if let Some(id) = self.pick_available() {
                self.execute_next_op(id);
                continue;
            }
            // 6. Idle: block until the next timed event or message.
            let wait = self
                .next_wakeup()
                .map(|at| at.saturating_duration_since(Instant::now()))
                .unwrap_or(self.cfg.idle_wait)
                .min(self.cfg.idle_wait)
                .max(Duration::from_micros(50));
            if let Ok(Some(env)) = self.endpoint.recv_timeout(wait) {
                self.handle_message(env);
            }
        }
    }

    /// Logs the just-installed committed image of `name` (data + guide,
    /// chunk-streamed) so WAL replay can rebuild the document before
    /// re-applying its redo records.
    fn log_doc_image(&mut self, name: &str) {
        if let Ok((xml, guide)) = self.lockmgr.dump_with_guide(name) {
            let _ = self
                .wal
                .append_doc_image(name, &xml, &guide.to_wire(), WAL_DOC_CHUNK);
        }
    }

    fn shutdown(&mut self) {
        // Batched decisions already made must still reach their
        // participants (they release locks there) — the flush window
        // never holds a shutdown.
        self.flush_terminations(true);
        // Abort whatever is still in flight so clients unblock.
        while let Some(txn) = self.txns.pop() {
            let _ = self.lockmgr.abort_local(txn.id);
            let _ = txn.reply.send(TxnOutcome {
                txn: txn.id,
                status: TxnStatus::Aborted(AbortReason::Shutdown),
                response_time: txn.submitted.elapsed(),
                results: Vec::new(),
            });
        }
    }

    fn jitter(&mut self, base: Duration) -> Duration {
        // xorshift64 for ±50 % jitter.
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        let frac = 0.5 + ((x >> 33) as f64 / (1u64 << 31) as f64);
        Duration::from_nanos((base.as_nanos() as f64 * frac) as u64)
    }

    fn txn_index(&self, id: TxnId) -> Option<usize> {
        self.txns.iter().position(|t| t.id == id)
    }

    fn set_phase(&mut self, id: TxnId, phase: Phase) {
        if let Some(idx) = self.txn_index(id) {
            let name = phase.name();
            self.txns[idx].set_phase(phase);
            self.trace.emit(|| EventKind::PhaseEnter {
                txn: id.0,
                phase: name,
            });
        }
    }

    /// Earliest instant at which a timed event (retry, deadline, detector
    /// round) fires; `None` when nothing is scheduled.
    fn next_wakeup(&self) -> Option<Instant> {
        let mut earliest: Option<Instant> = Some(self.next_detection);
        let mut consider = |at: Instant| {
            earliest = Some(earliest.map_or(at, |e| e.min(at)));
        };
        if let Some(d) = self.wfg_deadline {
            consider(d);
        }
        if let Some(since) = self.outbox_since {
            // A held outbox must flush when its window elapses even if
            // no other event fires first.
            consider(since + self.cfg.flush_window);
        }
        if !self.prepared.is_empty() || !self.participant_seen.is_empty() {
            consider(self.next_indoubt_sweep);
        }
        for t in &self.txns {
            match t.phase {
                Phase::Waiting { retry_at } => consider(retry_at),
                Phase::AwaitingRemoteOps { deadline, .. }
                | Phase::AwaitingPrepareAcks { deadline, .. }
                | Phase::AwaitingCommitAcks { deadline, .. }
                | Phase::AwaitingAbortAcks { deadline, .. } => consider(deadline),
                Phase::Ready => consider(Instant::now()),
            }
        }
        earliest
    }

    /// Round-robin pick of a runnable coordinated transaction: in
    /// `Phase::Ready`, or in wait mode with an expired retry time.
    fn pick_available(&mut self) -> Option<TxnId> {
        if self.txns.is_empty() {
            return None;
        }
        let now = Instant::now();
        let n = self.txns.len();
        for off in 0..n {
            let idx = (self.rr_cursor + off) % n;
            let ready = match self.txns[idx].phase {
                Phase::Ready => true,
                Phase::Waiting { retry_at } => now >= retry_at,
                _ => false,
            };
            if ready {
                self.rr_cursor = (idx + 1) % n;
                return Some(self.txns[idx].id);
            }
        }
        None
    }

    /// Number of transactions currently awaiting remote responses; the
    /// metric witnesses pipelining (> 1 is impossible under a blocking
    /// coordinator).
    fn note_remote_inflight(&self) {
        let n = self
            .txns
            .iter()
            .filter(|t| matches!(t.phase, Phase::AwaitingRemoteOps { .. }))
            .count();
        self.metrics.note_inflight_remote(n);
    }

    // -----------------------------------------------------------------
    // Algorithm 1 — coordinator
    // -----------------------------------------------------------------

    fn execute_next_op(&mut self, id: TxnId) {
        let Some(idx) = self.txn_index(id) else {
            return;
        };
        // Wait-timeout safety net.
        if let Some(since) = self.txns[idx].wait_since {
            if since.elapsed() > self.cfg.wait_timeout {
                self.begin_abort(id, AbortReason::OperationFailed("wait-mode timeout".into()));
                return;
            }
        }
        let op_seq = self.txns[idx].next_op;
        if op_seq >= self.txns[idx].spec.ops.len() {
            // No available operation left (Alg. 1 l. 24) → commit.
            self.begin_commit(id);
            return;
        }
        let op = self.txns[idx].spec.ops[op_seq].clone();
        // A wait-mode retry re-dispatches under the operation's pinned
        // plan (see [`PinnedPlan`]) — but only while the pin's document
        // version is still current. A placement mutation *of this
        // document* invalidates the pin (mutations of other documents do
        // not): local execution has no participant to refuse the stale
        // version for it (a dropped local replica must not keep serving
        // reads), so the check happens here, and the abandoned plan's
        // wait edges are cleared at its sites before routing anew.
        let dead_pin_sites = match &self.txns[idx].pinned {
            Some(pin) if pin.version != self.catalog.version_of(&op.doc) => Some(pin.sites.clone()),
            _ => None,
        };
        if let Some(sites) = dead_pin_sites {
            self.abandon_plan(id, &sites);
            if let Some(idx) = self.txn_index(id) {
                self.txns[idx].pinned = None;
            }
        }
        let Some(idx) = self.txn_index(id) else {
            return;
        };
        let pin = match self.txns[idx].pinned.clone() {
            Some(pin) => pin,
            None => {
                // Placement is entirely the catalog's call (Alg. 1 l. 12,
                // generalized): the document's version is read *before*
                // routing so a mutation racing this dispatch can only make
                // the stamp conservatively stale — participants then
                // refuse and the operation re-routes.
                let version = self.catalog.version_of(&op.doc);
                let ctx = RoutingCtx {
                    coordinator: self.site,
                    metrics: Some(&self.metrics),
                };
                // Read-only transactions run against pinned snapshots and
                // never take locks, so their reads need only one replica
                // (or the local one when present) — never the write fan-out.
                let mode = self.coord_txn_mode(id);
                let plan = if mode == TxnMode::ReadOnly {
                    self.catalog.route_snapshot_read(&op, &ctx)
                } else {
                    self.catalog.route(&op, &ctx)
                };
                let Some(plan) = plan else {
                    self.begin_abort(
                        id,
                        AbortReason::OperationFailed(format!(
                            "document {:?} unknown to catalog",
                            op.doc
                        )),
                    );
                    return;
                };
                let pin = PinnedPlan {
                    sites: plan.sites(self.site),
                    fragmented: plan.is_fragment_fan_out(),
                    version,
                };
                self.txns[idx].pinned = Some(pin.clone());
                pin
            }
        };
        for &s in &pin.sites {
            self.metrics.note_site_op(s);
        }
        if pin.sites.len() == 1 && pin.sites[0] == self.site {
            self.execute_local_op(id, op_seq, &op);
        } else {
            self.dispatch_distributed_op(id, op_seq, &op, &pin.sites, pin.fragmented, pin.version);
        }
    }

    /// True when the replica copy fence on `doc` must pause this update:
    /// the document is fenced and `id` has not yet applied updates to it.
    /// Transactions that already touched the document ride through so the
    /// drain can complete (blocking them would livelock the fence).
    fn fence_blocks(&self, id: TxnId, doc: &str) -> bool {
        self.catalog.is_fenced(doc) && !self.lockmgr.has_applied_updates(id, doc)
    }

    fn coord_txn_mode(&self, id: TxnId) -> TxnMode {
        match self.txn_index(id) {
            Some(idx) if self.txns[idx].spec.is_read_only() => TxnMode::ReadOnly,
            _ => TxnMode::Updating,
        }
    }

    /// Alg. 1 l. 5-10: the operation only involves the coordinator site.
    fn execute_local_op(&mut self, id: TxnId, op_seq: usize, op: &OpSpec) {
        let mode = self.coord_txn_mode(id);
        if mode == TxnMode::ReadOnly && !op.is_update() {
            // Snapshot path: pin (or reuse) this txn's snapshot of the
            // document and answer from it — no lock table, no WFG edges.
            match self.lockmgr.snapshot_read(id, op) {
                ProcessResult::Executed(result) => {
                    self.metrics.note_snapshot_read();
                    self.op_succeeded(id, result);
                }
                ProcessResult::Conflict { .. } => {
                    // snapshot_read never conflicts; treat defensively.
                    self.enter_wait(id);
                }
                ProcessResult::Failed(e) => {
                    self.begin_abort(id, AbortReason::OperationFailed(e));
                }
            }
            return;
        }
        if op.is_update() && self.fence_blocks(id, &op.doc) {
            self.enter_wait(id);
            return;
        }
        match self.lockmgr.process_operation(id, op_seq, op, mode, false) {
            ProcessResult::Executed(result) => self.op_succeeded(id, result),
            ProcessResult::Conflict { deadlock, .. } => {
                if deadlock {
                    // Alg. 1 l. 19-20 via Alg. 3's deadlock tag.
                    self.begin_abort(id, AbortReason::Deadlock);
                } else {
                    self.enter_wait(id);
                }
            }
            ProcessResult::Failed(e) => {
                self.begin_abort(id, AbortReason::OperationFailed(e));
            }
        }
    }

    /// Alg. 1 l. 11-13: the operation involves other sites. Send it to the
    /// participants the routing plan selected and park the transaction in
    /// `Phase::AwaitingRemoteOps`; [`Self::finish_remote_op`] runs when
    /// the last response (or the deadline) arrives. The event loop keeps
    /// dispatching other transactions meanwhile.
    fn dispatch_distributed_op(
        &mut self,
        id: TxnId,
        op_seq: usize,
        op: &OpSpec,
        sites: &[SiteId],
        fragmented: bool,
        doc_version: u64,
    ) {
        self.next_corr += 1;
        let corr = self.next_corr;
        let mode = self.coord_txn_mode(id);
        self.pending_done.insert(corr, HashMap::new());
        // Send to remote participants (Alg. 1 l. 13).
        let mut sent = 0u64;
        for &s in sites {
            if s != self.site {
                sent += 1;
                let _ = self.net.send(
                    self.site,
                    s,
                    Message::ExecRemote {
                        txn: id,
                        coordinator: self.site,
                        op_seq,
                        op: op.clone(),
                        corr,
                        update_txn: mode == TxnMode::Updating,
                        doc_version,
                        fragment: fragmented,
                    },
                );
            }
        }
        self.metrics.note_remote_msgs(sent);
        if sent > 0 && self.faults.take_if(CrashPoint::InRemoteOps) {
            // Die with remote work outstanding: participants now hold
            // executed operations for a coordinator that will never vote
            // or terminate them — the orphan sweep must clean up.
            self.crashed = true;
            return;
        }
        // Execute locally when the coordinator also holds the data
        // ("including the coordinator if it contains data involved").
        if sites.contains(&self.site) {
            let done = self.participant_execute(id, op_seq, op, mode, fragmented);
            if let Some(map) = self.pending_done.get_mut(&corr) {
                map.insert(self.site, done);
            }
        }
        self.set_phase(
            id,
            Phase::AwaitingRemoteOps {
                corr,
                op_seq,
                sites: sites.to_vec(),
                fragmented,
                deadline: Instant::now() + self.cfg.remote_timeout,
            },
        );
        self.note_remote_inflight();
        // Degenerate completion (every participant local) resolves now.
        self.try_finish_remote_op(id);
    }

    /// Advances a transaction out of `Phase::AwaitingRemoteOps` if every
    /// dispatched site has reported.
    fn try_finish_remote_op(&mut self, id: TxnId) {
        let Some(idx) = self.txn_index(id) else {
            return;
        };
        let Phase::AwaitingRemoteOps {
            corr, ref sites, ..
        } = self.txns[idx].phase
        else {
            return;
        };
        let expected = sites.len();
        let complete = self
            .pending_done
            .get(&corr)
            .map(|m| m.len() >= expected)
            .unwrap_or(false);
        if complete {
            self.finish_remote_op(id, true);
        }
    }

    /// Alg. 1 l. 14-22, resumed event-style: all responses arrived
    /// (`complete`) or the deadline passed. Either advance, undo + wait,
    /// re-route (stale catalog), or abort.
    fn finish_remote_op(&mut self, id: TxnId, complete: bool) {
        let Some(idx) = self.txn_index(id) else {
            return;
        };
        let Phase::AwaitingRemoteOps {
            corr,
            op_seq,
            ref sites,
            fragmented,
            ..
        } = self.txns[idx].phase
        else {
            return;
        };
        let sites = sites.clone();
        let statuses = self.pending_done.remove(&corr).unwrap_or_default();
        if !complete {
            // A participant did not answer: undo what executed and abort.
            self.undo_partial(id, op_seq, &statuses);
            self.record_participation(id, &sites);
            self.begin_abort(id, AbortReason::RemoteTimeout);
            return;
        }
        if statuses.values().any(|d| d.stale) {
            // A participant refused the dispatch: its view of the target
            // document's placement version differs from the one this plan
            // was routed under. Undo whatever
            // executed at the sites that accepted and re-route the same
            // operation under the fresh placement — the transaction is NOT
            // aborted (the whole point of versioning the catalog). Refusing
            // sites executed nothing, took no locks and recorded no
            // coordinator, so they are excluded from the participant set —
            // commit/abort must not round-trip through them.
            let engaged: Vec<SiteId> = sites
                .iter()
                .copied()
                .filter(|s| !statuses.get(s).is_some_and(|d| d.stale))
                .collect();
            self.record_participation(id, &engaged);
            self.undo_partial(id, op_seq, &statuses);
            self.metrics.note_stale_reroute();
            // An engaged participant may still have tagged this
            // transaction as the deadlock victim — that verdict survives
            // the re-route decision (the cycle is real regardless of the
            // refused site).
            if statuses.values().any(|d| d.deadlock) {
                self.begin_abort(id, AbortReason::Deadlock);
                return;
            }
            let Some(idx) = self.txn_index(id) else {
                return;
            };
            self.txns[idx].stale_retries += 1;
            if self.txns[idx].stale_retries > MAX_STALE_REROUTES {
                self.begin_abort(id, AbortReason::StaleCatalog);
            } else {
                // Route anew next time: the pinned plan's version is dead.
                // Conflict edges this dispatch left at engaged sites are
                // dropped with it — the fresh plan may never revisit them.
                self.txns[idx].pinned = None;
                self.txns[idx].set_phase(Phase::Ready);
                self.abandon_plan(id, &engaged);
                self.note_remote_inflight();
            }
            return;
        }
        // Record participation for commit/abort routing.
        self.record_participation(id, &sites);
        let any_failed = statuses.values().any(|d| d.failed);
        let any_deadlock = statuses.values().any(|d| d.deadlock);
        let all_acquired = statuses.values().all(|d| d.acquired);
        if !all_acquired {
            // Alg. 1 l. 15-17: undo wherever it executed, then wait.
            self.undo_partial(id, op_seq, &statuses);
            if any_deadlock {
                self.begin_abort(id, AbortReason::Deadlock);
            } else {
                self.enter_wait(id);
            }
            return;
        }
        if any_failed || any_deadlock {
            // Alg. 1 l. 19-20.
            let reason = if any_deadlock {
                AbortReason::Deadlock
            } else {
                AbortReason::OperationFailed("remote operation failed".into())
            };
            self.begin_abort(id, reason);
            return;
        }
        // Success everywhere. For replicated documents the replicas agree
        // and one answer suffices; for fragmented documents the coordinator
        // merges the per-fragment results (query values united in site
        // order, update counts summed). The merge mode travels with the
        // routing plan — the scheduler never consults the catalog here.
        let result = if fragmented {
            let mut ordered: Vec<(&SiteId, &DoneInfo)> = statuses.iter().collect();
            ordered.sort_by_key(|(s, _)| **s);
            let mut values: Vec<String> = Vec::new();
            let mut affected = 0usize;
            let mut is_query = false;
            for (_, d) in ordered {
                match &d.result {
                    Some(OpResult::Query { values: v }) => {
                        is_query = true;
                        values.extend(v.iter().cloned());
                    }
                    Some(OpResult::Update { affected: a }) => affected += a,
                    None => {}
                }
            }
            if is_query {
                OpResult::Query { values }
            } else {
                if affected == 0 {
                    // The update matched no fragment: the logical target
                    // does not exist → the operation failed (Alg. 1 l. 19).
                    self.begin_abort(
                        id,
                        AbortReason::OperationFailed("update target matched no fragment".into()),
                    );
                    return;
                }
                OpResult::Update { affected }
            }
        } else {
            statuses
                .get(&self.site)
                .and_then(|d| d.result.clone())
                .or_else(|| statuses.values().find_map(|d| d.result.clone()))
                .unwrap_or(OpResult::Update { affected: 0 })
        };
        self.op_succeeded(id, result);
    }

    fn record_participation(&mut self, id: TxnId, sites: &[SiteId]) {
        let my_site = self.site;
        let Some(idx) = self.txn_index(id) else {
            return;
        };
        let txn = &mut self.txns[idx];
        for &s in sites {
            if s != my_site && !txn.remote_sites.contains(&s) {
                txn.remote_sites.push(s);
            }
        }
    }

    fn undo_partial(&mut self, id: TxnId, op_seq: usize, statuses: &HashMap<SiteId, DoneInfo>) {
        for (&site, done) in statuses {
            if done.executed {
                if site == self.site {
                    let waiters = self.lockmgr.undo_op(id, op_seq);
                    self.wake_waiters(waiters);
                } else {
                    let _ = self
                        .net
                        .send(self.site, site, Message::UndoOp { txn: id, op_seq });
                }
            }
        }
    }

    /// A transaction stops pursuing the given plan without retrying it:
    /// drop its wait-for edges at every plan site (locally and via
    /// [`Message::ClearWaits`]) so they cannot linger and fabricate
    /// phantom deadlock cycles once the fresh plan routes elsewhere.
    fn abandon_plan(&mut self, id: TxnId, sites: &[SiteId]) {
        for &s in sites {
            if s == self.site {
                self.lockmgr.clear_waits(id);
            } else {
                let _ = self.net.send(self.site, s, Message::ClearWaits { txn: id });
            }
        }
    }

    /// Speculative wake (the lock table's release feed): transactions that
    /// were blocked on just-released locks retry **now** instead of
    /// waiting out their blind retry timer. Local waiters' retry times are
    /// pulled to the present; waiters coordinated elsewhere get a
    /// [`Message::Wake`] hint.
    fn wake_waiters(&mut self, waiters: Vec<TxnId>) {
        let now = Instant::now();
        for w in waiters {
            if let Some(idx) = self.txn_index(w) {
                if matches!(self.txns[idx].phase, Phase::Waiting { .. }) {
                    self.txns[idx].set_phase(Phase::Waiting { retry_at: now });
                }
            } else if let Some(&coord) = self.txn_coord.get(&w) {
                if coord != self.site {
                    let _ = self.net.send(self.site, coord, Message::Wake { txn: w });
                }
            }
        }
    }

    fn op_succeeded(&mut self, id: TxnId, result: OpResult) {
        let Some(idx) = self.txn_index(id) else {
            return;
        };
        let txn = &mut self.txns[idx];
        txn.results.push(result);
        txn.next_op += 1;
        txn.wait_since = None;
        // The next operation routes fresh, with a fresh stale budget.
        txn.pinned = None;
        txn.stale_retries = 0;
        txn.set_phase(Phase::Ready);
        if txn.next_op >= txn.spec.ops.len() {
            self.begin_commit(id);
        }
    }

    fn enter_wait(&mut self, id: TxnId) {
        let retry = self.jitter(self.cfg.retry_interval);
        let Some(idx) = self.txn_index(id) else {
            return;
        };
        let txn = &mut self.txns[idx];
        txn.set_phase(Phase::Waiting {
            retry_at: Instant::now() + retry,
        });
        if txn.wait_since.is_none() {
            txn.wait_since = Some(Instant::now());
        }
    }

    // -----------------------------------------------------------------
    // Algorithm 5 — commit
    // -----------------------------------------------------------------

    /// Asks every involved site to consolidate (Alg. 5 l. 3-4). With no
    /// remote participants the transaction consolidates immediately.
    /// Distributed **update** transactions first run a presumed-abort
    /// vote round ([`Message::Prepare`]): each participant force-logs
    /// `Prepared` and answers; only a unanimous yes lets the coordinator
    /// force-log the commit decision and send the commit batch. Read-only
    /// transactions have nothing to make durable — they keep the
    /// one-phase batched termination (and its message economy).
    fn begin_commit(&mut self, id: TxnId) {
        let Some(idx) = self.txn_index(id) else {
            return;
        };
        let remotes = self.txns[idx].remote_sites.clone();
        if remotes.is_empty() {
            self.consolidate_local(id);
            return;
        }
        if self.txns[idx].spec.is_read_only() {
            self.pending_commit.insert(id, HashMap::new());
            for &s in &remotes {
                self.enqueue_termination(s, id, true);
            }
            self.set_phase(
                id,
                Phase::AwaitingCommitAcks {
                    expected: remotes.len(),
                    deadline: Instant::now() + self.cfg.remote_timeout,
                },
            );
            return;
        }
        // Phase 1: vote requests to every remote participant.
        self.metrics.note_prepare_round();
        self.next_corr += 1;
        let corr = self.next_corr;
        self.pending_prepare.insert(id, (corr, HashMap::new()));
        for &s in &remotes {
            let _ = self.net.send(
                self.site,
                s,
                Message::Prepare {
                    txn: id,
                    corr,
                    participants: remotes.clone(),
                },
            );
        }
        self.set_phase(
            id,
            Phase::AwaitingPrepareAcks {
                expected: remotes.len(),
                deadline: Instant::now() + self.cfg.remote_timeout,
            },
        );
        if self.faults.take_if(CrashPoint::AfterPrepare) {
            // Die between the vote requests and the decision: the
            // participants that vote yes are left in doubt for a decision
            // that will never be logged — presumed abort resolves them.
            self.crashed = true;
        }
    }

    /// Advances a transaction out of `Phase::AwaitingPrepareAcks` if
    /// every vote arrived.
    fn try_finish_prepare(&mut self, id: TxnId) {
        let Some(idx) = self.txn_index(id) else {
            return;
        };
        let Phase::AwaitingPrepareAcks { expected, .. } = self.txns[idx].phase else {
            return;
        };
        let complete = self
            .pending_prepare
            .get(&id)
            .map(|(_, votes)| votes.len() >= expected)
            .unwrap_or(false);
        if complete {
            self.finish_prepare(id, true);
        }
    }

    /// Phase 2 entry: all votes arrived (`complete`) or the vote deadline
    /// passed. A unanimous yes force-logs the commit decision (the only
    /// forced coordinator write of presumed abort) and sends the commit
    /// round; anything else aborts — a missing vote IS a no under
    /// presumed abort.
    fn finish_prepare(&mut self, id: TxnId, complete: bool) {
        let Some(idx) = self.txn_index(id) else {
            return;
        };
        if !matches!(self.txns[idx].phase, Phase::AwaitingPrepareAcks { .. }) {
            return;
        }
        let votes = self.pending_prepare.remove(&id);
        let all_yes =
            complete && votes.is_some_and(|(_, v)| !v.is_empty() && v.values().all(|&ok| ok));
        if !all_yes {
            self.begin_abort(id, AbortReason::CommitFailed);
            return;
        }
        let remotes = self.txns[idx].remote_sites.clone();
        self.wal.force(WalRecord::Decision {
            txn: id,
            participants: remotes.clone(),
        });
        self.txns[idx].decided = true;
        if self.faults.take_if(CrashPoint::AfterDecide) {
            // Die with the decision on stable storage but no commit sent:
            // only WAL replay can (and must) deliver it after restart.
            self.crashed = true;
            return;
        }
        self.pending_commit.insert(id, HashMap::new());
        for &s in &remotes {
            self.enqueue_termination(s, id, true);
        }
        self.set_phase(
            id,
            Phase::AwaitingCommitAcks {
                expected: remotes.len(),
                deadline: Instant::now() + self.cfg.remote_timeout,
            },
        );
        if self.faults.take_if(CrashPoint::AfterDecideSendOne) {
            // Die after the commit reached exactly one participant (the
            // lowest site id): the others must learn the outcome from
            // that peer through cooperative termination.
            self.flush_lowest_only();
            self.crashed = true;
        }
    }

    /// Crash-shaping helper for [`CrashPoint::AfterDecideSendOne`]: sends
    /// only the lowest-site batch of the outbox and drops the rest on the
    /// floor, exactly as a crash mid-flush would.
    fn flush_lowest_only(&mut self) {
        self.outbox_since = None;
        self.outbox_entries = 0;
        let mut batches: Vec<(SiteId, TermBatch)> = self.term_outbox.drain().collect();
        batches.sort_by_key(|(s, _)| *s);
        if let Some((site, batch)) = batches.into_iter().next() {
            self.trace_batch(site, &batch);
            let _ = self.net.send(
                self.site,
                site,
                Message::TerminateBatch {
                    commits: batch.commits,
                    aborts: batch.aborts,
                },
            );
        }
    }

    /// Traces a termination batch bound for `site`: one
    /// [`EventKind::CommitSent`] per commit whose decision was forced (a
    /// 2PC update or a recovered re-delivery — the checker holds those to
    /// the decision-before-commit law; one-phase read-only commits have
    /// no forced `Decision` and are not recorded), one
    /// [`EventKind::AbortSent`] per abort (never forced — presumed
    /// abort).
    fn trace_batch(&self, site: SiteId, batch: &TermBatch) {
        if !self.trace.is_enabled() {
            return;
        }
        for &txn in &batch.commits {
            let forced = self
                .txn_index(txn)
                .map(|i| self.txns[i].decided)
                .unwrap_or_else(|| self.reco_commits.contains_key(&txn));
            if forced {
                self.trace.emit(|| EventKind::CommitSent {
                    txn: txn.0,
                    to: site.0,
                });
            }
        }
        for &txn in &batch.aborts {
            self.trace.emit(|| EventKind::AbortSent {
                txn: txn.0,
                to: site.0,
            });
        }
    }

    /// Adds one termination decision to `site`'s outbox batch, arming
    /// the flush-window clock on the first entry.
    fn enqueue_termination(&mut self, site: SiteId, id: TxnId, commit: bool) {
        let batch = self.term_outbox.entry(site).or_default();
        if commit {
            batch.commits.push(id);
        } else {
            batch.aborts.push(id);
        }
        self.outbox_entries += 1;
        if self.outbox_since.is_none() {
            self.outbox_since = Some(Instant::now());
        }
    }

    /// Group commit: sends each site's accumulated termination decisions
    /// as one [`Message::TerminateBatch`], emptying the outbox. Called
    /// once per event-loop tick — with the default zero flush window the
    /// tick *is* the coalescing window; a nonzero window additionally
    /// holds a light outbox (fewer than
    /// [`SchedulerConfig::flush_min_pending`] decisions) until the
    /// window elapses, so slow decision trickles still form real
    /// batches. `force` (shutdown) overrides the hold — decisions
    /// already made must reach their participants. Sites are flushed in
    /// id order so runs are reproducible.
    fn flush_terminations(&mut self, force: bool) {
        if self.term_outbox.is_empty() {
            return;
        }
        if !force && !self.cfg.flush_window.is_zero() {
            let young = self
                .outbox_since
                .map(|t| t.elapsed() < self.cfg.flush_window)
                .unwrap_or(false);
            if young && self.outbox_entries < self.cfg.flush_min_pending {
                return;
            }
        }
        self.outbox_since = None;
        self.outbox_entries = 0;
        let mut batches: Vec<(SiteId, TermBatch)> = self.term_outbox.drain().collect();
        batches.sort_by_key(|(s, _)| *s);
        for (site, batch) in batches {
            let entries = (batch.commits.len() + batch.aborts.len()) as u64;
            self.metrics.note_termination_msg(entries);
            self.trace_batch(site, &batch);
            let _ = self.net.send(
                self.site,
                site,
                Message::TerminateBatch {
                    commits: batch.commits,
                    aborts: batch.aborts,
                },
            );
        }
    }

    /// Advances a transaction out of `Phase::AwaitingCommitAcks` if
    /// every ack arrived.
    fn try_finish_commit(&mut self, id: TxnId) {
        let Some(idx) = self.txn_index(id) else {
            return;
        };
        let Phase::AwaitingCommitAcks { expected, .. } = self.txns[idx].phase else {
            return;
        };
        let complete = self
            .pending_commit
            .get(&id)
            .map(|m| m.len() >= expected)
            .unwrap_or(false);
        if complete {
            self.finish_commit(id, true);
        }
    }

    /// Alg. 5 l. 5-11, resumed event-style.
    fn finish_commit(&mut self, id: TxnId, complete: bool) {
        let Some(idx) = self.txn_index(id) else {
            return;
        };
        let mut acks = self.pending_commit.remove(&id).unwrap_or_default();
        let all_ok = complete && acks.values().all(|&ok| ok);
        if !all_ok {
            if self.txns[idx].decided {
                // The commit decision is forced onto stable storage — it
                // can never be walked back (a prepared participant may
                // already have committed it). A missing ack means the
                // batch or its ack was lost: re-deliver to the
                // participants still owed the commit and keep waiting;
                // re-commits there are idempotent no-ops.
                let remotes = self.txns[idx].remote_sites.clone();
                acks.retain(|_, ok| *ok);
                let missing: Vec<SiteId> = remotes
                    .iter()
                    .copied()
                    .filter(|s| !acks.contains_key(s))
                    .collect();
                self.pending_commit.insert(id, acks);
                for &s in &missing {
                    self.enqueue_termination(s, id, true);
                }
                self.set_phase(
                    id,
                    Phase::AwaitingCommitAcks {
                        expected: remotes.len(),
                        deadline: Instant::now() + self.cfg.remote_timeout,
                    },
                );
                return;
            }
            // Alg. 5 l. 5-7 (one-phase read-only path): a site did not
            // consolidate → abort.
            self.begin_abort(id, AbortReason::CommitFailed);
            return;
        }
        self.consolidate_local(id);
    }

    /// Local consolidation: persist + release (Alg. 5 l. 10-11), then
    /// report the outcome.
    fn consolidate_local(&mut self, id: TxnId) {
        let Some(idx) = self.txn_index(id) else {
            return;
        };
        let decided = self.txns[idx].decided;
        let released = self.lockmgr.commit_local(id);
        if decided {
            // Every participant acked the commit: the unforced End lets
            // replay forget the decision instead of re-delivering it.
            self.wal.append(WalRecord::End { txn: id });
        }
        // Gauges go out before the client reply so a caller that observed
        // the outcome also observes the post-commit snapshot-store state.
        self.publish_snapshot_gauges();
        match released {
            Ok(waiters) => {
                let txn = self.txns.remove(idx);
                self.finish(txn, TxnStatus::Committed);
                self.wake_waiters(waiters);
            }
            Err(e) => {
                let txn = self.txns.remove(idx);
                self.finish(txn, TxnStatus::Failed(format!("local persist failed: {e}")));
            }
        }
    }

    /// Republishes this site's snapshot-store gauges (live versions and
    /// approximate retained bytes) after any commit/abort that could have
    /// published or garbage-collected a snapshot version.
    fn publish_snapshot_gauges(&self) {
        let (live, bytes) = self.lockmgr.snapshot_stats();
        self.metrics
            .set_snapshot_gauges(self.site, live as u64, bytes);
    }

    // -----------------------------------------------------------------
    // Algorithm 6 — abort
    // -----------------------------------------------------------------

    /// Cancels `id` everywhere (Alg. 6). Rolls back locally at once; if an
    /// operation was in flight its partial effects are undone and its
    /// participant set is folded into the abort targets. With no remote
    /// participants the transaction terminates immediately; otherwise the
    /// decision joins the group-commit outbox (batched with this tick's
    /// other terminations) and the transaction parks in
    /// `Phase::AwaitingAbortAcks`.
    fn begin_abort(&mut self, id: TxnId, reason: AbortReason) {
        let Some(idx) = self.txn_index(id) else {
            return;
        };
        // An in-flight distributed operation may have executed at sites not
        // yet recorded in `remote_sites`: undo what reported execution and
        // make sure the abort reaches every dispatched site (participants
        // that have not executed yet treat `Abort` as a no-op; the per-pair
        // FIFO transport guarantees `Abort` cannot overtake `ExecRemote`).
        if let Phase::AwaitingRemoteOps {
            corr,
            op_seq,
            sites,
            ..
        } = self.txns[idx].phase.clone()
        {
            let statuses = self.pending_done.remove(&corr).unwrap_or_default();
            self.undo_partial(id, op_seq, &statuses);
            self.record_participation(id, &sites);
            self.note_remote_inflight();
        }
        // Local rollback (Alg. 6 l. 13-14).
        let waiters = self.lockmgr.abort_local(id);
        self.wake_waiters(waiters);
        self.publish_snapshot_gauges();
        let Some(idx) = self.txn_index(id) else {
            return;
        };
        let remotes = self.txns[idx].remote_sites.clone();
        if remotes.is_empty() {
            let txn = self.txns.remove(idx);
            self.finish(txn, TxnStatus::Aborted(reason));
            return;
        }
        self.pending_abort.insert(id, HashMap::new());
        for &s in &remotes {
            self.enqueue_termination(s, id, false);
        }
        self.set_phase(
            id,
            Phase::AwaitingAbortAcks {
                expected: remotes.len(),
                reason,
                deadline: Instant::now() + self.cfg.remote_timeout,
            },
        );
    }

    /// Advances a transaction out of `Phase::AwaitingAbortAcks` if every
    /// ack arrived.
    fn try_finish_abort(&mut self, id: TxnId) {
        let Some(idx) = self.txn_index(id) else {
            return;
        };
        let Phase::AwaitingAbortAcks { expected, .. } = self.txns[idx].phase else {
            return;
        };
        let complete = self
            .pending_abort
            .get(&id)
            .map(|m| m.len() >= expected)
            .unwrap_or(false);
        if complete {
            self.finish_abort(id, true);
        }
    }

    /// Alg. 6 l. 5-14, resumed event-style.
    fn finish_abort(&mut self, id: TxnId, complete: bool) {
        let Some(idx) = self.txn_index(id) else {
            return;
        };
        let Phase::AwaitingAbortAcks { ref reason, .. } = self.txns[idx].phase else {
            return;
        };
        let reason = reason.clone();
        let acks = self.pending_abort.remove(&id).unwrap_or_default();
        let all_ok = complete && acks.values().all(|&ok| ok);
        let txn = self.txns.remove(idx);
        if !all_ok {
            // Alg. 6 l. 5-10: request failure everywhere; the transaction
            // *fails* and the application is alerted.
            for &s in &txn.remote_sites {
                let _ = self.net.send(self.site, s, Message::Fail { txn: id });
            }
            self.finish(
                txn,
                TxnStatus::Failed("abort could not complete at a site".into()),
            );
        } else {
            self.finish(txn, TxnStatus::Aborted(reason));
        }
    }

    fn finish(&mut self, mut txn: CoordTxn, status: TxnStatus) {
        let now = Instant::now();
        txn.set_phase(Phase::Ready); // close the timing bucket of the final phase
        self.metrics.record(TxnRecord {
            txn: txn.id,
            coordinator: self.site,
            submitted: txn.submitted,
            finished: now,
            status: status.clone(),
            ops: txn.spec.ops.len(),
            is_update: !txn.spec.is_read_only(),
            phase_times: txn.times,
        });
        let results = if status == TxnStatus::Committed {
            txn.results
        } else {
            Vec::new()
        };
        let _ = txn.reply.send(TxnOutcome {
            txn: txn.id,
            status,
            response_time: now.duration_since(txn.submitted),
            results,
        });
    }

    // -----------------------------------------------------------------
    // Deadline sweep
    // -----------------------------------------------------------------

    /// Times out phases whose deadline passed. Each expired transaction is
    /// resumed through the same completion path as a full set of arrivals,
    /// with `complete = false`.
    fn sweep_deadlines(&mut self) {
        let now = Instant::now();
        // Collect first: the handlers mutate `self.txns`.
        let mut remote_expired = Vec::new();
        let mut prepare_expired = Vec::new();
        let mut commit_expired = Vec::new();
        let mut abort_expired = Vec::new();
        for t in &self.txns {
            match t.phase {
                Phase::AwaitingRemoteOps { deadline, .. } if now >= deadline => {
                    remote_expired.push(t.id)
                }
                Phase::AwaitingPrepareAcks { deadline, .. } if now >= deadline => {
                    prepare_expired.push(t.id)
                }
                Phase::AwaitingCommitAcks { deadline, .. } if now >= deadline => {
                    commit_expired.push(t.id)
                }
                Phase::AwaitingAbortAcks { deadline, .. } if now >= deadline => {
                    abort_expired.push(t.id)
                }
                _ => {}
            }
        }
        for id in remote_expired {
            self.finish_remote_op(id, false);
        }
        for id in prepare_expired {
            // A missing vote is a no vote — presumed abort.
            self.finish_prepare(id, false);
        }
        for id in commit_expired {
            self.finish_commit(id, false);
        }
        for id in abort_expired {
            self.finish_abort(id, false);
        }
    }

    // -----------------------------------------------------------------
    // Algorithm 2 — participant
    // -----------------------------------------------------------------

    /// Executes one dispatched operation in the participant role.
    /// `tolerate_empty` travels with the routing plan (set for fragment
    /// fan-outs, where an update matching nothing locally is a no-op) —
    /// participants make no placement decisions of their own.
    fn participant_execute(
        &mut self,
        txn: TxnId,
        op_seq: usize,
        op: &OpSpec,
        mode: TxnMode,
        tolerate_empty: bool,
    ) -> DoneInfo {
        if mode == TxnMode::ReadOnly && !op.is_update() {
            // Snapshot path mirrors the coordinator's: answer from this
            // participant's pinned snapshot, touching neither the lock
            // table nor the wait-for graph.
            return match self.lockmgr.snapshot_read(txn, op) {
                ProcessResult::Executed(result) => {
                    self.metrics.note_snapshot_read();
                    DoneInfo {
                        acquired: true,
                        executed: true,
                        failed: false,
                        deadlock: false,
                        stale: false,
                        result: Some(result),
                    }
                }
                _ => DoneInfo {
                    acquired: true,
                    executed: false,
                    failed: true,
                    deadlock: false,
                    stale: false,
                    result: None,
                },
            };
        }
        if op.is_update() && self.fence_blocks(txn, &op.doc) {
            // Replica copy fence: report a (non-deadlock) conflict so the
            // coordinator parks the transaction and retries after the copy.
            return DoneInfo {
                acquired: false,
                executed: false,
                failed: false,
                deadlock: false,
                stale: false,
                result: None,
            };
        }
        match self
            .lockmgr
            .process_operation(txn, op_seq, op, mode, tolerate_empty)
        {
            ProcessResult::Executed(result) => DoneInfo {
                acquired: true,
                executed: true,
                failed: false,
                deadlock: false,
                stale: false,
                result: Some(result),
            },
            ProcessResult::Conflict { deadlock, .. } => DoneInfo {
                acquired: false,
                executed: false,
                failed: false,
                deadlock,
                stale: false,
                result: None,
            },
            ProcessResult::Failed(_) => DoneInfo {
                acquired: true,
                executed: false,
                failed: true,
                deadlock: false,
                stale: false,
                result: None,
            },
        }
    }

    // -----------------------------------------------------------------
    // Algorithm 4 — distributed deadlock detection
    // -----------------------------------------------------------------

    /// Starts a detection round: requests every site's wait-for graph and
    /// returns to the event loop. [`Self::maybe_finish_deadlock_round`]
    /// evaluates the union when the replies (or the deadline) are in.
    fn start_deadlock_round(&mut self) {
        self.metrics.note_detector_run();
        self.wfg_round += 1;
        let round = self.wfg_round;
        self.wfg_replies.clear();
        let sites: Vec<SiteId> = self
            .net
            .sites()
            .into_iter()
            .filter(|&s| s != self.site)
            .collect();
        for &s in &sites {
            let _ = self.net.send(
                self.site,
                s,
                Message::WfgRequest {
                    from: self.site,
                    round,
                },
            );
        }
        self.wfg_expected = sites.len();
        self.wfg_deadline =
            Some(Instant::now() + self.cfg.deadlock_period.min(Duration::from_millis(100)));
        if self.wfg_expected == 0 {
            self.maybe_finish_deadlock_round();
        }
    }

    /// Evaluates the current detection round once every reply arrived or
    /// the collection deadline passed.
    fn maybe_finish_deadlock_round(&mut self) {
        let Some(deadline) = self.wfg_deadline else {
            return;
        };
        if self.wfg_replies.len() < self.wfg_expected && Instant::now() < deadline {
            return;
        }
        self.wfg_deadline = None;
        // Union of all graphs (Alg. 4 l. 5), starting from the local one.
        let mut merged = self.lockmgr.wfg().clone();
        for g in self.wfg_replies.values() {
            merged.union(g);
        }
        self.wfg_replies.clear();
        if let Some(victim) = merged.newest_in_cycle() {
            // Alg. 4 l. 7-8: abort the most recent transaction in the circle.
            self.abort_victim(victim);
        }
    }

    /// Routes a detector verdict to the victim's coordinator.
    fn abort_victim(&mut self, victim: TxnId) {
        if let Some(idx) = self.txn_index(victim) {
            // Only transactions that can still be waiting are viable
            // victims; one already in its termination protocol holds no
            // waits (its graph edges are gone) and must not be disturbed.
            if matches!(
                self.txns[idx].phase,
                Phase::Ready | Phase::Waiting { .. } | Phase::AwaitingRemoteOps { .. }
            ) {
                self.begin_abort(victim, AbortReason::Deadlock);
            }
        } else if let Some(&coord) = self.txn_coord.get(&victim) {
            let _ = self
                .net
                .send(self.site, coord, Message::AbortVictim { txn: victim });
        } else {
            // Coordinator unknown here: tell everyone; the coordinator
            // will recognize its transaction.
            for s in self.net.sites() {
                if s != self.site {
                    let _ = self
                        .net
                        .send(self.site, s, Message::AbortVictim { txn: victim });
                }
            }
        }
    }

    // -----------------------------------------------------------------
    // Message handling
    // -----------------------------------------------------------------

    fn handle_message(&mut self, env: Envelope<Message>) {
        match env.payload {
            Message::ExecRemote {
                txn,
                coordinator,
                op_seq,
                op,
                corr,
                update_txn,
                doc_version,
                fragment,
            } => {
                // Placement-version check: a dispatch routed under a
                // different version *of this document* may be aimed at a
                // placement that no longer holds (this site gained/lost
                // the replica, the read-one choice is obsolete, ...).
                // Mutations of other documents leave the version — and
                // therefore this dispatch — untouched. Refuse without
                // executing — and without recording the coordinator: this
                // site did nothing for the transaction, so it must not be
                // treated as a participant needing cleanup.
                let done = if doc_version != self.catalog.version_of(&op.doc) {
                    DoneInfo {
                        acquired: false,
                        executed: false,
                        failed: false,
                        deadlock: false,
                        stale: true,
                        result: None,
                    }
                } else {
                    self.txn_coord.insert(txn, coordinator);
                    self.participant_seen.insert(txn, Instant::now());
                    let mode = if update_txn {
                        TxnMode::Updating
                    } else {
                        TxnMode::ReadOnly
                    };
                    self.participant_execute(txn, op_seq, &op, mode, fragment)
                };
                let _ = self.net.send(
                    self.site,
                    coordinator,
                    Message::RemoteDone {
                        txn,
                        op_seq,
                        corr,
                        site: self.site,
                        acquired: done.acquired,
                        executed: done.executed,
                        failed: done.failed,
                        deadlock: done.deadlock,
                        stale: done.stale,
                        result: done.result,
                    },
                );
            }
            Message::RemoteDone {
                txn,
                corr,
                site,
                acquired,
                executed,
                failed,
                deadlock,
                stale,
                result,
                ..
            } => {
                // Continuation-table lookup; stale correlation ids (undone
                // retries, aborted transactions) find no entry and drop.
                if let Some(map) = self.pending_done.get_mut(&corr) {
                    map.insert(
                        site,
                        DoneInfo {
                            acquired,
                            executed,
                            failed,
                            deadlock,
                            stale,
                            result,
                        },
                    );
                    self.try_finish_remote_op(txn);
                }
            }
            Message::UndoOp { txn, op_seq } => {
                let waiters = self.lockmgr.undo_op(txn, op_seq);
                self.wake_waiters(waiters);
            }
            Message::TerminateBatch { commits, aborts } => {
                // Participant side of group commit: apply every decision
                // in the batch, then answer the whole batch with ONE ack.
                let mut commit_acks = Vec::with_capacity(commits.len());
                for txn in commits {
                    if let Some(p) = self.prepared.remove(&txn) {
                        if p.recovered {
                            self.metrics.note_indoubt_commit();
                            self.trace.emit(|| EventKind::InDoubt {
                                txn: txn.0,
                                commit: true,
                            });
                        }
                    }
                    let released = self.lockmgr.commit_local(txn);
                    let ok = released.is_ok();
                    self.txn_coord.remove(&txn);
                    self.participant_seen.remove(&txn);
                    commit_acks.push((txn, ok));
                    if let Ok(waiters) = released {
                        self.wake_waiters(waiters);
                    }
                }
                let mut abort_acks = Vec::with_capacity(aborts.len());
                for txn in aborts {
                    if let Some(p) = self.prepared.remove(&txn) {
                        if p.recovered {
                            self.metrics.note_indoubt_abort();
                            self.trace.emit(|| EventKind::InDoubt {
                                txn: txn.0,
                                commit: false,
                            });
                        }
                    }
                    let waiters = self.lockmgr.abort_local(txn);
                    self.txn_coord.remove(&txn);
                    self.participant_seen.remove(&txn);
                    abort_acks.push((txn, true));
                    self.wake_waiters(waiters);
                }
                let entries = (commit_acks.len() + abort_acks.len()) as u64;
                self.metrics.note_termination_msg(entries);
                self.publish_snapshot_gauges();
                let _ = self.net.send(
                    self.site,
                    env.from,
                    Message::TerminateBatchAck {
                        site: self.site,
                        commits: commit_acks,
                        aborts: abort_acks,
                    },
                );
            }
            Message::TerminateBatchAck {
                site,
                commits,
                aborts,
            } => {
                // Unpack the batched ack into the per-transaction pending
                // tables; each transaction resumes individually.
                for (txn, ok) in commits {
                    if let Some(map) = self.pending_commit.get_mut(&txn) {
                        map.insert(site, ok);
                        self.try_finish_commit(txn);
                    } else if let Some(waiting) = self.reco_commits.get_mut(&txn) {
                        // Ack for a commit decision re-delivered after
                        // restart: once every owed participant answered,
                        // the log can forget the decision.
                        waiting.remove(&site);
                        if waiting.is_empty() {
                            self.reco_commits.remove(&txn);
                            self.wal.append(WalRecord::End { txn });
                        }
                    }
                }
                for (txn, ok) in aborts {
                    if let Some(map) = self.pending_abort.get_mut(&txn) {
                        map.insert(site, ok);
                        self.try_finish_abort(txn);
                    }
                }
            }
            Message::Fail { txn } => {
                self.prepared.remove(&txn);
                self.participant_seen.remove(&txn);
                let waiters = self.lockmgr.abort_local(txn);
                self.txn_coord.remove(&txn);
                self.wake_waiters(waiters);
                self.publish_snapshot_gauges();
            }
            Message::WfgRequest { from, round } => {
                let _ = self.net.send(
                    self.site,
                    from,
                    Message::WfgReply {
                        site: self.site,
                        round,
                        graph: self.lockmgr.wfg().clone(),
                    },
                );
            }
            Message::WfgReply { site, round, graph } => {
                if round == self.wfg_round {
                    self.wfg_replies.insert(site, graph);
                    self.maybe_finish_deadlock_round();
                }
            }
            Message::AbortVictim { txn } => {
                if self.txn_index(txn).is_some() {
                    self.abort_victim(txn);
                }
            }
            Message::Wake { txn } => {
                // A participant released locks this transaction was
                // blocked on: retry immediately instead of waiting out the
                // timer. (Only meaningful while it is still waiting.)
                if let Some(idx) = self.txn_index(txn) {
                    if matches!(self.txns[idx].phase, Phase::Waiting { .. }) {
                        self.txns[idx].set_phase(Phase::Waiting {
                            retry_at: Instant::now(),
                        });
                    }
                }
            }
            Message::ClearWaits { txn } => {
                self.lockmgr.clear_waits(txn);
            }
            Message::Prepare {
                txn,
                corr,
                participants,
            } => {
                // Vote yes iff this site executed operations of `txn` (it
                // recorded the coordinator) and never poisoned it. A yes
                // force-logs `Prepared` first — from here the site holds
                // its effects until a decision (or presumed-abort
                // resolution) arrives, surviving even its own crash.
                let ok = !self.refused.contains(&txn) && self.txn_coord.contains_key(&txn);
                if ok {
                    let peers: Vec<SiteId> = participants
                        .iter()
                        .copied()
                        .filter(|&s| s != self.site)
                        .collect();
                    self.wal.force(WalRecord::Prepared {
                        txn,
                        coordinator: env.from,
                        participants: peers.clone(),
                    });
                    // The yes-vote is only sent below; recording it after
                    // the force keeps ring order matching the
                    // prepared-before-vote law by construction.
                    self.trace.emit(|| EventKind::VoteYes { txn: txn.0 });
                    self.prepared.insert(
                        txn,
                        PreparedTxn {
                            coordinator: env.from,
                            peers,
                            since: Instant::now(),
                            asked: 0,
                            recovered: false,
                        },
                    );
                }
                let _ = self.net.send(
                    self.site,
                    env.from,
                    Message::PrepareAck {
                        txn,
                        corr,
                        site: self.site,
                        ok,
                    },
                );
            }
            Message::PrepareAck {
                txn,
                corr,
                site,
                ok,
            } => {
                // Stale vote rounds (re-routed, aborted) mismatch on corr
                // and drop.
                let mut recorded = false;
                if let Some((c, votes)) = self.pending_prepare.get_mut(&txn) {
                    if *c == corr {
                        votes.insert(site, ok);
                        recorded = true;
                    }
                }
                if recorded {
                    self.try_finish_prepare(txn);
                }
            }
            Message::DecisionRequest { txn, from } => {
                let decision = self.decision_answer(txn);
                let _ = self
                    .net
                    .send(self.site, from, Message::DecisionReply { txn, decision });
            }
            Message::DecisionReply { txn, decision } => {
                // Only meaningful while this site is in doubt about `txn`;
                // late and duplicate replies drop here.
                let Some(p) = self.prepared.get(&txn) else {
                    return;
                };
                let recovered = p.recovered;
                match decision {
                    Decision::Commit => {
                        self.prepared.remove(&txn);
                        let released = self.lockmgr.commit_local(txn);
                        self.txn_coord.remove(&txn);
                        self.participant_seen.remove(&txn);
                        if let Ok(waiters) = released {
                            self.wake_waiters(waiters);
                        }
                        self.publish_snapshot_gauges();
                        if recovered {
                            self.metrics.note_indoubt_commit();
                        }
                        self.trace.emit(|| EventKind::InDoubt {
                            txn: txn.0,
                            commit: true,
                        });
                    }
                    Decision::Abort => {
                        self.prepared.remove(&txn);
                        let waiters = self.lockmgr.abort_local(txn);
                        self.txn_coord.remove(&txn);
                        self.participant_seen.remove(&txn);
                        self.wake_waiters(waiters);
                        self.publish_snapshot_gauges();
                        if recovered {
                            self.metrics.note_indoubt_abort();
                        }
                        self.trace.emit(|| EventKind::InDoubt {
                            txn: txn.0,
                            commit: false,
                        });
                    }
                    Decision::Uncertain => {} // keep asking
                }
            }
            Message::InDoubtQuery { txn, from } => {
                let decision = if self.prepared.contains_key(&txn) {
                    Decision::Uncertain
                } else {
                    match self.wal.participant_outcome(txn) {
                        LoggedOutcome::Committed => Decision::Commit,
                        LoggedOutcome::InDoubt => Decision::Uncertain,
                        LoggedOutcome::Aborted => {
                            // Vouching abort to a peer binds this site:
                            // poison the transaction so a late vote
                            // request is refused instead of resurrecting
                            // what the peer is about to abort.
                            self.refused.insert(txn);
                            Decision::Abort
                        }
                    }
                };
                let _ = self
                    .net
                    .send(self.site, from, Message::DecisionReply { txn, decision });
            }
        }
    }

    /// The coordinator-side verdict for a participant's
    /// [`Message::DecisionRequest`]: a logged decision means commit; a
    /// transaction still live here (undecided, mid-vote, or re-delivering
    /// a recovered decision) gets no verdict yet; anything else is abort —
    /// the presumed-abort default a restarted coordinator gives for every
    /// transaction it has forgotten.
    fn decision_answer(&self, txn: TxnId) -> Decision {
        if self.wal.decision_of(txn) == LoggedOutcome::Committed {
            return Decision::Commit;
        }
        if self.txn_index(txn).is_some() || self.pending_prepare.contains_key(&txn) {
            Decision::Uncertain
        } else {
            Decision::Abort
        }
    }

    /// Periodic in-doubt resolution and orphan cleanup (participant
    /// side). Prepared transactions whose decision is overdue re-ask the
    /// coordinator; after several unanswered rounds they also query their
    /// peers (cooperative termination). Orphaned remote work — executed
    /// operations whose coordinator has gone silent without ever voting —
    /// is unilaterally aborted and poisoned once the orphan timeout
    /// passes: presumed abort makes the unilateral abort safe, the poison
    /// makes it safe even against a late vote request.
    fn sweep_recovery(&mut self) {
        let now = Instant::now();
        if now < self.next_indoubt_sweep {
            return;
        }
        self.next_indoubt_sweep = now + self.cfg.indoubt_period;
        let mut asks: Vec<(SiteId, TxnId)> = Vec::new();
        let mut peer_asks: Vec<(SiteId, TxnId)> = Vec::new();
        for (&txn, p) in self.prepared.iter_mut() {
            if now.duration_since(p.since) < self.cfg.indoubt_period {
                continue;
            }
            p.since = now;
            p.asked += 1;
            asks.push((p.coordinator, txn));
            if p.asked > 3 {
                for &peer in &p.peers {
                    peer_asks.push((peer, txn));
                }
            }
        }
        asks.sort();
        peer_asks.sort();
        for (to, txn) in asks {
            let _ = self.net.send(
                self.site,
                to,
                Message::DecisionRequest {
                    txn,
                    from: self.site,
                },
            );
        }
        for (to, txn) in peer_asks {
            let _ = self.net.send(
                self.site,
                to,
                Message::InDoubtQuery {
                    txn,
                    from: self.site,
                },
            );
        }
        let orphans: Vec<TxnId> = self
            .participant_seen
            .iter()
            .filter(|&(txn, &seen)| {
                now.duration_since(seen) >= self.cfg.orphan_timeout
                    && self.txn_index(*txn).is_none()
                    && !self.prepared.contains_key(txn)
                    && self.txn_coord.contains_key(txn)
            })
            .map(|(&txn, _)| txn)
            .collect();
        for txn in orphans {
            self.refused.insert(txn);
            self.txn_coord.remove(&txn);
            self.participant_seen.remove(&txn);
            let waiters = self.lockmgr.abort_local(txn);
            self.wake_waiters(waiters);
            self.publish_snapshot_gauges();
            self.metrics.note_orphan_abort();
        }
        // GC tracking entries for transactions already terminated.
        let coords = &self.txn_coord;
        self.participant_seen.retain(|t, _| coords.contains_key(t));
    }
}
