//! The per-site Scheduler: Algorithms 1, 2, 4, 5 and 6 of the paper.
//!
//! One scheduler thread runs per DTX instance. It plays **both** roles of
//! the distributed transaction model (§2.2): *coordinator* for the
//! transactions submitted at its site (Algorithm 1) and *participant* for
//! remote operations sent by other coordinators (Algorithm 2 — "this
//! procedure is also common to the coordinator"). It also runs the
//! periodic distributed deadlock detection (Algorithm 4) and the
//! commit/abort termination protocols (Algorithms 5 and 6).
//!
//! ## Concurrency model
//!
//! The scheduler is a single-threaded event loop: it alternates between
//! draining client submissions, draining scheduler-to-scheduler messages,
//! running deadlock detection when due, and executing the next available
//! operation of a coordinated transaction. While a coordinator "waits for
//! the operation to be executed on all the sites" (Alg. 1 l. 14) or for
//! commit/abort acknowledgements (Alg. 5/6), it keeps serving participant
//! duties through a nested message pump — otherwise two coordinators
//! waiting on each other's acknowledgements would deadlock the protocol
//! itself.
//!
//! Transactions denied a lock enter **wait mode** (Alg. 1 l. 9/17) and are
//! retried after a short jittered interval; their wait-for edges live in
//! the lock-holding site's graph until the retry succeeds or a deadlock
//! detector aborts a victim.

use crate::catalog::Catalog;
use crate::lockmgr::{LockManager, ProcessResult};
use crate::metrics::{Metrics, TxnRecord};
use crate::msg::Message;
use crate::op::{AbortReason, OpResult, OpSpec, TxnOutcome, TxnSpec, TxnStatus};
use crossbeam::channel::{Receiver, Sender};
use dtx_locks::{TxnId, TxnMode, WaitForGraph};
use dtx_locks::txn::TxnIdGen;
use dtx_net::{Endpoint, Envelope, Network, SiteId};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tuning knobs of a scheduler.
#[derive(Debug, Clone, Copy)]
pub struct SchedulerConfig {
    /// How long a waiting transaction pauses before retrying its blocked
    /// operation (jittered ±50 %).
    pub retry_interval: Duration,
    /// Period of the distributed deadlock detector (Algorithm 4);
    /// staggered per site to avoid synchronized rounds.
    pub deadlock_period: Duration,
    /// How long a coordinator waits for remote-operation responses and
    /// commit/abort acknowledgements before treating the site as failed.
    pub remote_timeout: Duration,
    /// Safety net: a transaction continuously in wait mode longer than
    /// this is aborted (covers pathological workloads; the detector
    /// normally resolves deadlocks much sooner).
    pub wait_timeout: Duration,
    /// Event-loop poll interval when idle.
    pub idle_wait: Duration,
    /// Seed for retry jitter.
    pub seed: u64,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            retry_interval: Duration::from_millis(2),
            deadlock_period: Duration::from_millis(50),
            remote_timeout: Duration::from_secs(60),
            wait_timeout: Duration::from_secs(180),
            idle_wait: Duration::from_micros(500),
            seed: 0x5EED,
        }
    }
}

/// Client-side commands delivered through the Listener.
pub enum Control {
    /// Submit a transaction; the outcome is sent on `reply`.
    Submit {
        /// The transaction.
        spec: TxnSpec,
        /// Outcome channel.
        reply: Sender<TxnOutcome>,
    },
    /// Load a document into this site's store + memory.
    LoadDoc {
        /// Document name.
        name: String,
        /// Raw XML.
        xml: String,
        /// Ack channel (parse/storage errors reported).
        ack: Sender<Result<(), String>>,
    },
    /// Stop the scheduler; in-flight transactions are aborted.
    Shutdown,
}

/// Coordinator-side execution state (Alg. 1's view of one transaction).
struct CoordTxn {
    id: TxnId,
    spec: TxnSpec,
    next_op: usize,
    waiting_until: Option<Instant>,
    wait_since: Option<Instant>,
    /// Remote sites that executed at least one operation (commit/abort
    /// must reach all of them).
    remote_sites: Vec<SiteId>,
    results: Vec<OpResult>,
    submitted: Instant,
    reply: Sender<TxnOutcome>,
}

/// A participant's report about one remote operation.
#[derive(Debug, Clone)]
struct DoneInfo {
    acquired: bool,
    executed: bool,
    failed: bool,
    deadlock: bool,
    result: Option<OpResult>,
}

/// The scheduler of one DTX instance.
pub struct Scheduler {
    site: SiteId,
    net: Network<Message>,
    endpoint: Endpoint<Message>,
    control: Receiver<Control>,
    catalog: Arc<Catalog>,
    lockmgr: LockManager,
    txns: Vec<CoordTxn>,
    /// Coordinator of each transaction seen as a participant.
    txn_coord: HashMap<TxnId, SiteId>,
    /// Responses collected for in-flight remote operations, keyed by
    /// (txn, op index, attempt) so stale retries cannot pollute new ones.
    pending_done: HashMap<(TxnId, usize, u64), HashMap<SiteId, DoneInfo>>,
    /// Commit acknowledgements per transaction.
    pending_commit: HashMap<TxnId, HashMap<SiteId, bool>>,
    /// Abort acknowledgements per transaction.
    pending_abort: HashMap<TxnId, HashMap<SiteId, bool>>,
    /// Current deadlock-detection round and its collected graphs.
    wfg_round: u64,
    wfg_replies: HashMap<SiteId, WaitForGraph>,
    idgen: Arc<TxnIdGen>,
    metrics: Arc<Metrics>,
    cfg: SchedulerConfig,
    attempt: u64,
    next_detection: Instant,
    rr_cursor: usize,
    rng: u64,
}

impl Scheduler {
    /// Assembles a scheduler. `endpoint` must already be registered on
    /// `net` for `site`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        site: SiteId,
        net: Network<Message>,
        endpoint: Endpoint<Message>,
        control: Receiver<Control>,
        catalog: Arc<Catalog>,
        lockmgr: LockManager,
        idgen: Arc<TxnIdGen>,
        metrics: Arc<Metrics>,
        cfg: SchedulerConfig,
    ) -> Self {
        // Stagger detector rounds per site so sites do not all fire at once.
        let stagger = cfg.deadlock_period / 8 * (site.0 as u32 % 8);
        Scheduler {
            site,
            net,
            endpoint,
            control,
            catalog,
            lockmgr,
            txns: Vec::new(),
            txn_coord: HashMap::new(),
            pending_done: HashMap::new(),
            pending_commit: HashMap::new(),
            pending_abort: HashMap::new(),
            wfg_round: 0,
            wfg_replies: HashMap::new(),
            idgen,
            metrics,
            cfg,
            attempt: 0,
            next_detection: Instant::now() + cfg.deadlock_period + stagger,
            rr_cursor: 0,
            rng: cfg.seed ^ ((site.0 as u64) << 32) | 1,
        }
    }

    /// Runs the event loop until a [`Control::Shutdown`] arrives.
    pub fn run(mut self) {
        loop {
            // 1. Client commands.
            loop {
                match self.control.try_recv() {
                    Ok(Control::Submit { spec, reply }) => {
                        let id = self.idgen.next();
                        self.txns.push(CoordTxn {
                            id,
                            spec,
                            next_op: 0,
                            waiting_until: None,
                            wait_since: None,
                            remote_sites: Vec::new(),
                            results: Vec::new(),
                            submitted: Instant::now(),
                            reply,
                        });
                    }
                    Ok(Control::LoadDoc { name, xml, ack }) => {
                        let r = self
                            .lockmgr
                            .put_and_load(&name, &xml)
                            .map_err(|e| e.to_string());
                        let _ = ack.send(r);
                    }
                    Ok(Control::Shutdown) => {
                        self.shutdown();
                        return;
                    }
                    Err(_) => break,
                }
            }
            // 2. Network messages.
            while let Some(env) = self.endpoint.try_recv() {
                self.handle_message(env);
            }
            // 3. Periodic distributed deadlock detection (Algorithm 4).
            if Instant::now() >= self.next_detection {
                self.next_detection = Instant::now() + self.cfg.deadlock_period;
                if !self.lockmgr.wfg().is_empty()
                    || self.txns.iter().any(|t| t.waiting_until.is_some())
                {
                    self.run_deadlock_detection();
                }
            }
            // 4. Execute the next operation of an available transaction
            //    (Alg. 1 l. 3: "next_transaction_available").
            if let Some(id) = self.pick_available() {
                self.execute_next_op(id);
                continue;
            }
            // 5. Idle: block briefly for the next message.
            let wait = self
                .txns
                .iter()
                .filter_map(|t| t.waiting_until)
                .min()
                .map(|at| at.saturating_duration_since(Instant::now()))
                .unwrap_or(self.cfg.idle_wait)
                .min(self.cfg.idle_wait)
                .max(Duration::from_micros(50));
            if let Ok(Some(env)) = self.endpoint.recv_timeout(wait) {
                self.handle_message(env);
            }
        }
    }

    fn shutdown(&mut self) {
        // Abort whatever is still in flight so clients unblock.
        while let Some(txn) = self.txns.pop() {
            self.lockmgr.abort_local(txn.id);
            let _ = txn.reply.send(TxnOutcome {
                txn: txn.id,
                status: TxnStatus::Aborted(AbortReason::Shutdown),
                response_time: txn.submitted.elapsed(),
                results: Vec::new(),
            });
        }
    }

    fn jitter(&mut self, base: Duration) -> Duration {
        // xorshift64 for ±50 % jitter.
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        let frac = 0.5 + ((x >> 33) as f64 / (1u64 << 31) as f64);
        Duration::from_nanos((base.as_nanos() as f64 * frac) as u64)
    }

    fn txn_index(&self, id: TxnId) -> Option<usize> {
        self.txns.iter().position(|t| t.id == id)
    }

    /// Round-robin pick of an available coordinated transaction: not in
    /// wait mode, or whose retry time has come.
    fn pick_available(&mut self) -> Option<TxnId> {
        if self.txns.is_empty() {
            return None;
        }
        let now = Instant::now();
        let n = self.txns.len();
        for off in 0..n {
            let idx = (self.rr_cursor + off) % n;
            let t = &self.txns[idx];
            let ready = match t.waiting_until {
                None => true,
                Some(at) => now >= at,
            };
            if ready {
                self.rr_cursor = (idx + 1) % n;
                return Some(t.id);
            }
        }
        None
    }

    // -----------------------------------------------------------------
    // Algorithm 1 — coordinator
    // -----------------------------------------------------------------

    fn execute_next_op(&mut self, id: TxnId) {
        let Some(idx) = self.txn_index(id) else { return };
        // Wait-timeout safety net.
        if let Some(since) = self.txns[idx].wait_since {
            if since.elapsed() > self.cfg.wait_timeout {
                self.abort_transaction(
                    id,
                    AbortReason::OperationFailed("wait-mode timeout".into()),
                );
                return;
            }
        }
        let op_seq = self.txns[idx].next_op;
        if op_seq >= self.txns[idx].spec.ops.len() {
            // No available operation left (Alg. 1 l. 24) → commit.
            self.commit_transaction(id);
            return;
        }
        let op = self.txns[idx].spec.ops[op_seq].clone();
        let sites = self.catalog.sites_of(&op.doc);
        if sites.is_empty() {
            self.abort_transaction(
                id,
                AbortReason::OperationFailed(format!("document {:?} unknown to catalog", op.doc)),
            );
            return;
        }
        if sites.len() == 1 && sites[0] == self.site {
            self.execute_local_op(id, op_seq, &op);
        } else {
            self.execute_distributed_op(id, op_seq, &op, &sites);
        }
    }

    fn coord_txn_mode(&self, id: TxnId) -> TxnMode {
        match self.txn_index(id) {
            Some(idx) if self.txns[idx].spec.is_read_only() => TxnMode::ReadOnly,
            _ => TxnMode::Updating,
        }
    }

    /// Alg. 1 l. 5-10: the operation only involves the coordinator site.
    fn execute_local_op(&mut self, id: TxnId, op_seq: usize, op: &OpSpec) {
        let mode = self.coord_txn_mode(id);
        match self.lockmgr.process_operation(id, op_seq, op, mode, false) {
            ProcessResult::Executed(result) => self.op_succeeded(id, result),
            ProcessResult::Conflict { deadlock, .. } => {
                if deadlock {
                    // Alg. 1 l. 19-20 via Alg. 3's deadlock tag.
                    self.abort_transaction(id, AbortReason::Deadlock);
                } else {
                    self.enter_wait(id);
                }
            }
            ProcessResult::Failed(e) => {
                self.abort_transaction(id, AbortReason::OperationFailed(e));
            }
        }
    }

    /// Alg. 1 l. 11-22: the operation involves other sites; send it to all
    /// participants holding the data, wait for every response, and either
    /// advance, undo + wait, or abort.
    fn execute_distributed_op(&mut self, id: TxnId, op_seq: usize, op: &OpSpec, sites: &[SiteId]) {
        self.attempt += 1;
        let attempt = self.attempt;
        let key = (id, op_seq, attempt);
        let mode = self.coord_txn_mode(id);
        self.pending_done.insert(key, HashMap::new());
        // Send to remote participants (Alg. 1 l. 13).
        for &s in sites {
            if s != self.site {
                let _ = self.net.send(
                    self.site,
                    s,
                    Message::ExecRemote {
                        txn: id,
                        coordinator: self.site,
                        op_seq,
                        op: op.clone(),
                        attempt,
                        update_txn: mode == TxnMode::Updating,
                    },
                );
            }
        }
        // Execute locally when the coordinator also holds the data
        // ("including the coordinator if it contains data involved").
        if sites.contains(&self.site) {
            let done = self.participant_execute(id, op_seq, op, mode);
            if let Some(map) = self.pending_done.get_mut(&key) {
                map.insert(self.site, done);
            }
        }
        // Wait for all responses (Alg. 1 l. 14) while serving other
        // traffic.
        let expected = sites.len();
        let deadline = Instant::now() + self.cfg.remote_timeout;
        let complete = self.pump_until(deadline, |me| {
            me.txn_index(id).is_none()
                || me.pending_done.get(&key).map(|m| m.len() >= expected).unwrap_or(true)
        });
        let Some(statuses) = self.pending_done.remove(&key) else { return };
        if self.txn_index(id).is_none() {
            // Aborted reentrantly (deadlock victim) while we pumped; the
            // abort already undid remote effects.
            return;
        }
        if !complete {
            // A participant did not answer: undo what executed and abort.
            self.undo_partial(id, op_seq, &statuses);
            self.abort_transaction(id, AbortReason::RemoteTimeout);
            return;
        }
        // Record participation for commit/abort routing.
        {
            let Some(idx) = self.txn_index(id) else { return };
            let txn = &mut self.txns[idx];
            for &s in sites {
                if s != self.site && !txn.remote_sites.contains(&s) {
                    txn.remote_sites.push(s);
                }
            }
        }
        let any_failed = statuses.values().any(|d| d.failed);
        let any_deadlock = statuses.values().any(|d| d.deadlock);
        let all_acquired = statuses.values().all(|d| d.acquired);
        if !all_acquired {
            // Alg. 1 l. 15-17: undo wherever it executed, then wait.
            self.undo_partial(id, op_seq, &statuses);
            if any_deadlock {
                self.abort_transaction(id, AbortReason::Deadlock);
            } else {
                self.enter_wait(id);
            }
            return;
        }
        if any_failed || any_deadlock {
            // Alg. 1 l. 19-20.
            let reason = if any_deadlock {
                AbortReason::Deadlock
            } else {
                AbortReason::OperationFailed("remote operation failed".into())
            };
            self.abort_transaction(id, reason);
            return;
        }
        // Success everywhere. For replicated documents the replicas agree
        // and one answer suffices; for fragmented documents the coordinator
        // merges the per-fragment results (query values united in site
        // order, update counts summed).
        let result = if self.catalog.is_fragmented(&op.doc) {
            let mut ordered: Vec<(&SiteId, &DoneInfo)> = statuses.iter().collect();
            ordered.sort_by_key(|(s, _)| **s);
            let mut values: Vec<String> = Vec::new();
            let mut affected = 0usize;
            let mut is_query = false;
            for (_, d) in ordered {
                match &d.result {
                    Some(OpResult::Query { values: v }) => {
                        is_query = true;
                        values.extend(v.iter().cloned());
                    }
                    Some(OpResult::Update { affected: a }) => affected += a,
                    None => {}
                }
            }
            if is_query {
                OpResult::Query { values }
            } else {
                if affected == 0 {
                    // The update matched no fragment: the logical target
                    // does not exist → the operation failed (Alg. 1 l. 19).
                    self.abort_transaction(
                        id,
                        AbortReason::OperationFailed(
                            "update target matched no fragment".into(),
                        ),
                    );
                    return;
                }
                OpResult::Update { affected }
            }
        } else {
            statuses
                .get(&self.site)
                .and_then(|d| d.result.clone())
                .or_else(|| statuses.values().find_map(|d| d.result.clone()))
                .unwrap_or(OpResult::Update { affected: 0 })
        };
        self.op_succeeded(id, result);
    }

    fn undo_partial(&mut self, id: TxnId, op_seq: usize, statuses: &HashMap<SiteId, DoneInfo>) {
        for (&site, done) in statuses {
            if done.executed {
                if site == self.site {
                    self.lockmgr.undo_op(id, op_seq);
                } else {
                    let _ = self.net.send(self.site, site, Message::UndoOp { txn: id, op_seq });
                }
            }
        }
    }

    fn op_succeeded(&mut self, id: TxnId, result: OpResult) {
        let Some(idx) = self.txn_index(id) else { return };
        let txn = &mut self.txns[idx];
        txn.results.push(result);
        txn.next_op += 1;
        txn.waiting_until = None;
        txn.wait_since = None;
        if txn.next_op >= txn.spec.ops.len() {
            self.commit_transaction(id);
        }
    }

    fn enter_wait(&mut self, id: TxnId) {
        let retry = self.jitter(self.cfg.retry_interval);
        let Some(idx) = self.txn_index(id) else { return };
        let txn = &mut self.txns[idx];
        txn.waiting_until = Some(Instant::now() + retry);
        if txn.wait_since.is_none() {
            txn.wait_since = Some(Instant::now());
        }
    }

    // -----------------------------------------------------------------
    // Algorithm 5 — commit
    // -----------------------------------------------------------------

    fn commit_transaction(&mut self, id: TxnId) {
        let Some(idx) = self.txn_index(id) else { return };
        let txn = self.txns.remove(idx);
        let remotes = txn.remote_sites.clone();
        // Ask every involved site to consolidate (Alg. 5 l. 3-4).
        self.pending_commit.insert(id, HashMap::new());
        for &s in &remotes {
            let _ = self.net.send(self.site, s, Message::Commit { txn: id });
        }
        let deadline = Instant::now() + self.cfg.remote_timeout;
        let expected = remotes.len();
        let complete = self
            .pump_until(deadline, |me| {
                me.pending_commit.get(&id).map(|m| m.len() >= expected).unwrap_or(true)
            });
        let acks = self.pending_commit.remove(&id).unwrap_or_default();
        let all_ok = complete && acks.values().all(|&ok| ok);
        if !all_ok {
            // Alg. 5 l. 5-7: a site did not consolidate → abort.
            self.finish_abort(txn, AbortReason::CommitFailed);
            return;
        }
        // Local consolidation: persist + release (Alg. 5 l. 10-11).
        match self.lockmgr.commit_local(id) {
            Ok(()) => self.finish(txn, TxnStatus::Committed),
            Err(e) => {
                self.finish(txn, TxnStatus::Failed(format!("local persist failed: {e}")))
            }
        }
    }

    // -----------------------------------------------------------------
    // Algorithm 6 — abort
    // -----------------------------------------------------------------

    fn abort_transaction(&mut self, id: TxnId, reason: AbortReason) {
        let Some(idx) = self.txn_index(id) else { return };
        let txn = self.txns.remove(idx);
        self.finish_abort(txn, reason);
    }

    fn finish_abort(&mut self, txn: CoordTxn, reason: AbortReason) {
        let id = txn.id;
        let remotes = txn.remote_sites.clone();
        self.pending_abort.insert(id, HashMap::new());
        for &s in &remotes {
            let _ = self.net.send(self.site, s, Message::Abort { txn: id });
        }
        let deadline = Instant::now() + self.cfg.remote_timeout;
        let expected = remotes.len();
        let complete = self.pump_until(deadline, |me| {
            me.pending_abort.get(&id).map(|m| m.len() >= expected).unwrap_or(true)
        });
        let acks = self.pending_abort.remove(&id).unwrap_or_default();
        let all_ok = complete && acks.values().all(|&ok| ok);
        // Local rollback either way (Alg. 6 l. 13-14).
        self.lockmgr.abort_local(id);
        // Drop any stale response buffers.
        self.pending_done.retain(|(t, _, _), _| *t != id);
        if !all_ok {
            // Alg. 6 l. 5-10: request failure everywhere; the transaction
            // *fails* and the application is alerted.
            for &s in &remotes {
                let _ = self.net.send(self.site, s, Message::Fail { txn: id });
            }
            self.finish(txn, TxnStatus::Failed("abort could not complete at a site".into()));
        } else {
            self.finish(txn, TxnStatus::Aborted(reason));
        }
    }

    fn finish(&mut self, txn: CoordTxn, status: TxnStatus) {
        let now = Instant::now();
        self.metrics.record(TxnRecord {
            txn: txn.id,
            coordinator: self.site,
            submitted: txn.submitted,
            finished: now,
            status: status.clone(),
            ops: txn.spec.ops.len(),
            is_update: !txn.spec.is_read_only(),
        });
        let results = if status == TxnStatus::Committed { txn.results } else { Vec::new() };
        let _ = txn.reply.send(TxnOutcome {
            txn: txn.id,
            status,
            response_time: now.duration_since(txn.submitted),
            results,
        });
    }

    // -----------------------------------------------------------------
    // Algorithm 2 — participant
    // -----------------------------------------------------------------

    fn participant_execute(
        &mut self,
        txn: TxnId,
        op_seq: usize,
        op: &OpSpec,
        mode: TxnMode,
    ) -> DoneInfo {
        let tolerate_empty = self.catalog.is_fragmented(&op.doc);
        match self.lockmgr.process_operation(txn, op_seq, op, mode, tolerate_empty) {
            ProcessResult::Executed(result) => DoneInfo {
                acquired: true,
                executed: true,
                failed: false,
                deadlock: false,
                result: Some(result),
            },
            ProcessResult::Conflict { deadlock, .. } => DoneInfo {
                acquired: false,
                executed: false,
                failed: false,
                deadlock,
                result: None,
            },
            ProcessResult::Failed(_) => DoneInfo {
                acquired: true,
                executed: false,
                failed: true,
                deadlock: false,
                result: None,
            },
        }
    }

    // -----------------------------------------------------------------
    // Algorithm 4 — distributed deadlock detection
    // -----------------------------------------------------------------

    fn run_deadlock_detection(&mut self) {
        self.metrics.note_detector_run();
        self.wfg_round += 1;
        let round = self.wfg_round;
        self.wfg_replies.clear();
        let sites: Vec<SiteId> = self.net.sites().into_iter().filter(|&s| s != self.site).collect();
        for &s in &sites {
            let _ = self.net.send(self.site, s, Message::WfgRequest { from: self.site, round });
        }
        let expected = sites.len();
        let deadline = Instant::now() + self.cfg.deadlock_period.min(Duration::from_millis(100));
        self.pump_until(deadline, |me| me.wfg_replies.len() >= expected);
        // Union of all graphs (Alg. 4 l. 5), starting from the local one.
        let mut merged = self.lockmgr.wfg().clone();
        for g in self.wfg_replies.values() {
            merged.union(g);
        }
        self.wfg_replies.clear();
        if let Some(victim) = merged.newest_in_cycle() {
            // Alg. 4 l. 7-8: abort the most recent transaction in the circle.
            if self.txn_index(victim).is_some() {
                self.abort_transaction(victim, AbortReason::Deadlock);
            } else if let Some(&coord) = self.txn_coord.get(&victim) {
                let _ = self.net.send(self.site, coord, Message::AbortVictim { txn: victim });
            } else {
                // Coordinator unknown here: tell everyone; the coordinator
                // will recognize its transaction.
                for &s in &sites {
                    let _ = self.net.send(self.site, s, Message::AbortVictim { txn: victim });
                }
            }
        }
    }

    // -----------------------------------------------------------------
    // Message handling (shared by the main loop and nested pumps)
    // -----------------------------------------------------------------

    fn pump_until(&mut self, deadline: Instant, pred: impl Fn(&Self) -> bool) -> bool {
        loop {
            if pred(self) {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let timeout = deadline.duration_since(now).min(Duration::from_millis(1));
            match self.endpoint.recv_timeout(timeout) {
                Ok(Some(env)) => self.handle_message(env),
                Ok(None) => {}
                Err(_) => return false,
            }
        }
    }

    fn handle_message(&mut self, env: Envelope<Message>) {
        match env.payload {
            Message::ExecRemote { txn, coordinator, op_seq, op, attempt, update_txn } => {
                self.txn_coord.insert(txn, coordinator);
                let mode = if update_txn { TxnMode::Updating } else { TxnMode::ReadOnly };
                let done = self.participant_execute(txn, op_seq, &op, mode);
                let _ = self.net.send(
                    self.site,
                    coordinator,
                    Message::RemoteDone {
                        txn,
                        op_seq,
                        attempt,
                        site: self.site,
                        acquired: done.acquired,
                        executed: done.executed,
                        failed: done.failed,
                        deadlock: done.deadlock,
                        result: done.result,
                    },
                );
            }
            Message::RemoteDone { txn, op_seq, attempt, site, acquired, executed, failed, deadlock, result } => {
                if let Some(map) = self.pending_done.get_mut(&(txn, op_seq, attempt)) {
                    map.insert(site, DoneInfo { acquired, executed, failed, deadlock, result });
                }
                // Stale (undone attempt / aborted txn) responses are dropped.
            }
            Message::UndoOp { txn, op_seq } => {
                self.lockmgr.undo_op(txn, op_seq);
            }
            Message::Commit { txn } => {
                let ok = self.lockmgr.commit_local(txn).is_ok();
                self.txn_coord.remove(&txn);
                let _ = self.net.send(self.site, env.from, Message::CommitAck { txn, site: self.site, ok });
            }
            Message::CommitAck { txn, site, ok } => {
                if let Some(map) = self.pending_commit.get_mut(&txn) {
                    map.insert(site, ok);
                }
            }
            Message::Abort { txn } => {
                self.lockmgr.abort_local(txn);
                self.txn_coord.remove(&txn);
                let _ = self.net.send(self.site, env.from, Message::AbortAck { txn, site: self.site, ok: true });
            }
            Message::AbortAck { txn, site, ok } => {
                if let Some(map) = self.pending_abort.get_mut(&txn) {
                    map.insert(site, ok);
                }
            }
            Message::Fail { txn } => {
                self.lockmgr.abort_local(txn);
                self.txn_coord.remove(&txn);
            }
            Message::WfgRequest { from, round } => {
                let _ = self.net.send(
                    self.site,
                    from,
                    Message::WfgReply { site: self.site, round, graph: self.lockmgr.wfg().clone() },
                );
            }
            Message::WfgReply { site, round, graph } => {
                if round == self.wfg_round {
                    self.wfg_replies.insert(site, graph);
                }
            }
            Message::AbortVictim { txn } => {
                if self.txn_index(txn).is_some() {
                    self.abort_transaction(txn, AbortReason::Deadlock);
                }
            }
        }
    }
}
