//! Binary codecs for [`Message`] and the control plane — the
//! `Message`-specific half of the wire format.
//!
//! The generic layer (varints, bounds-checked readers, the 12-byte frame
//! header) lives in [`dtx_net::wire`]; this module assigns every
//! [`Message`] variant its wire **tag** (see [`MESSAGE_TAGS`]) and
//! serializes each variant's fields in declaration order, per the
//! normative spec in `WIRE.md` §4–5. The serde shims in
//! `crates/compat` are no-op markers and no serialization registry is
//! reachable, so these codecs are written by hand — like
//! `DataGuide::to_wire`, but length-prefixed binary instead of
//! line-oriented text.
//!
//! Three invariants, pinned by tests here and in `tests/wire_props.rs`:
//!
//! * **Round trip**: `encode(decode(encode(m))) == encode(m)` for every
//!   variant, including maximal payloads (64 KiB `ExecRemote` fragments).
//!   (`Message` deliberately has no `PartialEq` — re-encoded bytes are
//!   the equality witness.)
//! * **Decode never panics**: any truncation or bit flip of a valid
//!   encoding decodes to `Err`, never a panic (mirrors the PR 3
//!   malformed-XML fuzz).
//! * **Tag stability**: [`MESSAGE_TAGS`] matches both the codec and the
//!   table in `WIRE.md` §4 (the doc is parsed by a test; it cannot
//!   drift).

use crate::gossip::CatalogDelta;
use crate::msg::{Decision, Message};
use crate::op::{AbortReason, OpKind, OpResult, OpSpec, TxnSpec, TxnStatus};
use dtx_locks::{TxnId, WaitForGraph};
use dtx_net::wire::{WireCodec, WireError, WireReader, WireWriter};
use dtx_net::SiteId;
use dtx_xml::document::{Fragment, InsertPos};
use dtx_xpath::{Query, UpdateOp};

/// Every [`Message`] variant's wire tag, in tag order — the first body
/// byte of a `Msg` frame. Names equal [`dtx_net::Wire::wire_label`]
/// strings; values are frozen by `WIRE.md` §4 (new variants append, old
/// tags are never reused — see the compat policy in `WIRE.md` §6).
pub const MESSAGE_TAGS: [(&str, u8); 16] = [
    ("ExecRemote", 0),
    ("RemoteDone", 1),
    ("UndoOp", 2),
    ("TerminateBatch", 3),
    ("TerminateBatchAck", 4),
    ("Fail", 5),
    ("WfgRequest", 6),
    ("WfgReply", 7),
    ("AbortVictim", 8),
    ("Wake", 9),
    ("ClearWaits", 10),
    ("Prepare", 11),
    ("PrepareAck", 12),
    ("DecisionRequest", 13),
    ("DecisionReply", 14),
    ("InDoubtQuery", 15),
];

/// Deepest [`Fragment`] nesting the decoder accepts. Legitimate
/// fragments are shallow (XMark depth ≲ 12); a hostile length-crafted
/// body must not be able to recurse the decoder off the stack.
const MAX_FRAGMENT_DEPTH: usize = 256;

// ---------------------------------------------------------------------
// Field helpers (free functions, not trait impls: `WireCodec` is foreign
// to the substrate crates' types, so coherence forbids implementing it
// for them here).
// ---------------------------------------------------------------------

fn put_txn(w: &mut WireWriter, t: TxnId) {
    w.put_varint(t.0);
}

fn read_txn(r: &mut WireReader<'_>) -> Result<TxnId, WireError> {
    Ok(TxnId(r.varint()?))
}

fn put_site(w: &mut WireWriter, s: SiteId) {
    w.put_varint(s.0 as u64);
}

fn read_site(r: &mut WireReader<'_>) -> Result<SiteId, WireError> {
    match r.varint()? {
        v if v <= u16::MAX as u64 => Ok(SiteId(v as u16)),
        v => Err(WireError::BadTag {
            what: "SiteId",
            tag: v,
        }),
    }
}

fn put_usize(w: &mut WireWriter, v: usize) {
    w.put_varint(v as u64);
}

fn read_usize(r: &mut WireReader<'_>) -> Result<usize, WireError> {
    let v = r.varint()?;
    usize::try_from(v).map_err(|_| WireError::BadLength(v))
}

/// Queries travel as their `Display` text and re-`parse` on decode: the
/// grammar is the stable surface (it already round-trips — PR 1 pinned
/// `parse(display(q)) == q`), and it stays human-readable in captures.
fn put_query(w: &mut WireWriter, q: &Query) {
    w.put_str(&q.to_string());
}

fn read_query(r: &mut WireReader<'_>) -> Result<Query, WireError> {
    Query::parse(&r.str()?).map_err(|_| WireError::Malformed("unparsable query"))
}

fn put_insert_pos(w: &mut WireWriter, p: &InsertPos) {
    w.put_u8(match p {
        InsertPos::Into => 0,
        InsertPos::FirstInto => 1,
        InsertPos::Before => 2,
        InsertPos::After => 3,
    });
}

fn read_insert_pos(r: &mut WireReader<'_>) -> Result<InsertPos, WireError> {
    match r.u8()? {
        0 => Ok(InsertPos::Into),
        1 => Ok(InsertPos::FirstInto),
        2 => Ok(InsertPos::Before),
        3 => Ok(InsertPos::After),
        t => Err(WireError::BadTag {
            what: "InsertPos",
            tag: t as u64,
        }),
    }
}

fn put_fragment(w: &mut WireWriter, f: &Fragment) {
    match f {
        Fragment::Element { label, children } => {
            w.put_u8(0);
            w.put_str(label);
            put_usize(w, children.len());
            for c in children {
                put_fragment(w, c);
            }
        }
        Fragment::Attribute { label, value } => {
            w.put_u8(1);
            w.put_str(label);
            w.put_str(value);
        }
        Fragment::Text { value } => {
            w.put_u8(2);
            w.put_str(value);
        }
    }
}

fn read_fragment(r: &mut WireReader<'_>, depth: usize) -> Result<Fragment, WireError> {
    if depth > MAX_FRAGMENT_DEPTH {
        return Err(WireError::Malformed("fragment nested too deep"));
    }
    match r.u8()? {
        0 => {
            let label = r.str()?;
            let count = read_usize(r)?;
            // A child costs ≥ 2 bytes (tag + empty string's length), so
            // a count beyond half the remaining input is a lie — reject
            // before reserving anything.
            if count > r.remaining() / 2 {
                return Err(WireError::BadLength(count as u64));
            }
            let mut children = Vec::with_capacity(count);
            for _ in 0..count {
                children.push(read_fragment(r, depth + 1)?);
            }
            Ok(Fragment::Element { label, children })
        }
        1 => Ok(Fragment::Attribute {
            label: r.str()?,
            value: r.str()?,
        }),
        2 => Ok(Fragment::Text { value: r.str()? }),
        t => Err(WireError::BadTag {
            what: "Fragment",
            tag: t as u64,
        }),
    }
}

fn put_update_op(w: &mut WireWriter, u: &UpdateOp) {
    match u {
        UpdateOp::Insert {
            target,
            fragment,
            pos,
        } => {
            w.put_u8(0);
            put_query(w, target);
            put_fragment(w, fragment);
            put_insert_pos(w, pos);
        }
        UpdateOp::Remove { target } => {
            w.put_u8(1);
            put_query(w, target);
        }
        UpdateOp::Rename { target, new_label } => {
            w.put_u8(2);
            put_query(w, target);
            w.put_str(new_label);
        }
        UpdateOp::Change { target, new_value } => {
            w.put_u8(3);
            put_query(w, target);
            w.put_str(new_value);
        }
        UpdateOp::Transpose { a, b } => {
            w.put_u8(4);
            put_query(w, a);
            put_query(w, b);
        }
    }
}

fn read_update_op(r: &mut WireReader<'_>) -> Result<UpdateOp, WireError> {
    match r.u8()? {
        0 => Ok(UpdateOp::Insert {
            target: read_query(r)?,
            fragment: read_fragment(r, 0)?,
            pos: read_insert_pos(r)?,
        }),
        1 => Ok(UpdateOp::Remove {
            target: read_query(r)?,
        }),
        2 => Ok(UpdateOp::Rename {
            target: read_query(r)?,
            new_label: r.str()?,
        }),
        3 => Ok(UpdateOp::Change {
            target: read_query(r)?,
            new_value: r.str()?,
        }),
        4 => Ok(UpdateOp::Transpose {
            a: read_query(r)?,
            b: read_query(r)?,
        }),
        t => Err(WireError::BadTag {
            what: "UpdateOp",
            tag: t as u64,
        }),
    }
}

fn put_op_spec(w: &mut WireWriter, op: &OpSpec) {
    w.put_str(&op.doc);
    match &op.kind {
        OpKind::Query(q) => {
            w.put_u8(0);
            put_query(w, q);
        }
        OpKind::Update(u) => {
            w.put_u8(1);
            put_update_op(w, u);
        }
    }
}

fn read_op_spec(r: &mut WireReader<'_>) -> Result<OpSpec, WireError> {
    let doc = r.str()?;
    let kind = match r.u8()? {
        0 => OpKind::Query(read_query(r)?),
        1 => OpKind::Update(read_update_op(r)?),
        t => {
            return Err(WireError::BadTag {
                what: "OpKind",
                tag: t as u64,
            })
        }
    };
    Ok(OpSpec { doc, kind })
}

fn put_op_result(w: &mut WireWriter, res: &OpResult) {
    match res {
        OpResult::Query { values } => {
            w.put_u8(0);
            put_usize(w, values.len());
            for v in values {
                w.put_str(v);
            }
        }
        OpResult::Update { affected } => {
            w.put_u8(1);
            put_usize(w, *affected);
        }
    }
}

fn read_op_result(r: &mut WireReader<'_>) -> Result<OpResult, WireError> {
    match r.u8()? {
        0 => {
            let count = read_usize(r)?;
            if count > r.remaining() {
                return Err(WireError::BadLength(count as u64));
            }
            let mut values = Vec::with_capacity(count);
            for _ in 0..count {
                values.push(r.str()?);
            }
            Ok(OpResult::Query { values })
        }
        1 => Ok(OpResult::Update {
            affected: read_usize(r)?,
        }),
        t => Err(WireError::BadTag {
            what: "OpResult",
            tag: t as u64,
        }),
    }
}

fn put_txn_vec(w: &mut WireWriter, v: &[TxnId]) {
    put_usize(w, v.len());
    for &t in v {
        put_txn(w, t);
    }
}

fn read_txn_vec(r: &mut WireReader<'_>) -> Result<Vec<TxnId>, WireError> {
    let count = read_usize(r)?;
    if count > r.remaining() {
        return Err(WireError::BadLength(count as u64));
    }
    let mut v = Vec::with_capacity(count);
    for _ in 0..count {
        v.push(read_txn(r)?);
    }
    Ok(v)
}

fn put_ack_vec(w: &mut WireWriter, v: &[(TxnId, bool)]) {
    put_usize(w, v.len());
    for &(t, ok) in v {
        put_txn(w, t);
        w.put_bool(ok);
    }
}

fn read_ack_vec(r: &mut WireReader<'_>) -> Result<Vec<(TxnId, bool)>, WireError> {
    let count = read_usize(r)?;
    if count > r.remaining() / 2 {
        return Err(WireError::BadLength(count as u64));
    }
    let mut v = Vec::with_capacity(count);
    for _ in 0..count {
        v.push((read_txn(r)?, r.bool()?));
    }
    Ok(v)
}

fn put_site_vec(w: &mut WireWriter, v: &[SiteId]) {
    put_usize(w, v.len());
    for &s in v {
        put_site(w, s);
    }
}

fn read_site_vec(r: &mut WireReader<'_>) -> Result<Vec<SiteId>, WireError> {
    let count = read_usize(r)?;
    if count > r.remaining() {
        return Err(WireError::BadLength(count as u64));
    }
    let mut v = Vec::with_capacity(count);
    for _ in 0..count {
        v.push(read_site(r)?);
    }
    Ok(v)
}

/// The graph travels as its sorted `(waiter, holder)` edge list
/// ([`WaitForGraph::edges`]) and is rebuilt through `add_edge` — the
/// canonical form, so decode∘encode is byte-stable.
fn put_wfg(w: &mut WireWriter, g: &WaitForGraph) {
    let edges = g.edges();
    put_usize(w, edges.len());
    for (waiter, holder) in edges {
        put_txn(w, waiter);
        put_txn(w, holder);
    }
}

fn read_wfg(r: &mut WireReader<'_>) -> Result<WaitForGraph, WireError> {
    let count = read_usize(r)?;
    if count > r.remaining() / 2 {
        return Err(WireError::BadLength(count as u64));
    }
    let mut g = WaitForGraph::new();
    for _ in 0..count {
        let waiter = read_txn(r)?;
        let holder = read_txn(r)?;
        g.add_edge(waiter, holder);
    }
    Ok(g)
}

fn put_decision(w: &mut WireWriter, d: Decision) {
    w.put_u8(match d {
        Decision::Commit => 0,
        Decision::Abort => 1,
        Decision::Uncertain => 2,
    });
}

fn read_decision(r: &mut WireReader<'_>) -> Result<Decision, WireError> {
    match r.u8()? {
        0 => Ok(Decision::Commit),
        1 => Ok(Decision::Abort),
        2 => Ok(Decision::Uncertain),
        t => Err(WireError::BadTag {
            what: "Decision",
            tag: t as u64,
        }),
    }
}

impl WireCodec for Message {
    fn encode_body(&self, w: &mut WireWriter) {
        match self {
            Message::ExecRemote {
                txn,
                coordinator,
                op_seq,
                op,
                corr,
                update_txn,
                doc_version,
                fragment,
            } => {
                w.put_u8(0);
                put_txn(w, *txn);
                put_site(w, *coordinator);
                put_usize(w, *op_seq);
                put_op_spec(w, op);
                w.put_varint(*corr);
                w.put_bool(*update_txn);
                w.put_varint(*doc_version);
                w.put_bool(*fragment);
            }
            Message::RemoteDone {
                txn,
                op_seq,
                corr,
                site,
                acquired,
                executed,
                failed,
                deadlock,
                stale,
                result,
            } => {
                w.put_u8(1);
                put_txn(w, *txn);
                put_usize(w, *op_seq);
                w.put_varint(*corr);
                put_site(w, *site);
                w.put_bool(*acquired);
                w.put_bool(*executed);
                w.put_bool(*failed);
                w.put_bool(*deadlock);
                w.put_bool(*stale);
                match result {
                    Some(res) => {
                        w.put_bool(true);
                        put_op_result(w, res);
                    }
                    None => w.put_bool(false),
                }
            }
            Message::UndoOp { txn, op_seq } => {
                w.put_u8(2);
                put_txn(w, *txn);
                put_usize(w, *op_seq);
            }
            Message::TerminateBatch { commits, aborts } => {
                w.put_u8(3);
                put_txn_vec(w, commits);
                put_txn_vec(w, aborts);
            }
            Message::TerminateBatchAck {
                site,
                commits,
                aborts,
            } => {
                w.put_u8(4);
                put_site(w, *site);
                put_ack_vec(w, commits);
                put_ack_vec(w, aborts);
            }
            Message::Fail { txn } => {
                w.put_u8(5);
                put_txn(w, *txn);
            }
            Message::WfgRequest { from, round } => {
                w.put_u8(6);
                put_site(w, *from);
                w.put_varint(*round);
            }
            Message::WfgReply { site, round, graph } => {
                w.put_u8(7);
                put_site(w, *site);
                w.put_varint(*round);
                put_wfg(w, graph);
            }
            Message::AbortVictim { txn } => {
                w.put_u8(8);
                put_txn(w, *txn);
            }
            Message::Wake { txn } => {
                w.put_u8(9);
                put_txn(w, *txn);
            }
            Message::ClearWaits { txn } => {
                w.put_u8(10);
                put_txn(w, *txn);
            }
            Message::Prepare {
                txn,
                corr,
                participants,
            } => {
                w.put_u8(11);
                put_txn(w, *txn);
                w.put_varint(*corr);
                put_site_vec(w, participants);
            }
            Message::PrepareAck {
                txn,
                corr,
                site,
                ok,
            } => {
                w.put_u8(12);
                put_txn(w, *txn);
                w.put_varint(*corr);
                put_site(w, *site);
                w.put_bool(*ok);
            }
            Message::DecisionRequest { txn, from } => {
                w.put_u8(13);
                put_txn(w, *txn);
                put_site(w, *from);
            }
            Message::DecisionReply { txn, decision } => {
                w.put_u8(14);
                put_txn(w, *txn);
                put_decision(w, *decision);
            }
            Message::InDoubtQuery { txn, from } => {
                w.put_u8(15);
                put_txn(w, *txn);
                put_site(w, *from);
            }
        }
    }

    fn decode_body(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(Message::ExecRemote {
                txn: read_txn(r)?,
                coordinator: read_site(r)?,
                op_seq: read_usize(r)?,
                op: read_op_spec(r)?,
                corr: r.varint()?,
                update_txn: r.bool()?,
                doc_version: r.varint()?,
                fragment: r.bool()?,
            }),
            1 => Ok(Message::RemoteDone {
                txn: read_txn(r)?,
                op_seq: read_usize(r)?,
                corr: r.varint()?,
                site: read_site(r)?,
                acquired: r.bool()?,
                executed: r.bool()?,
                failed: r.bool()?,
                deadlock: r.bool()?,
                stale: r.bool()?,
                result: if r.bool()? {
                    Some(read_op_result(r)?)
                } else {
                    None
                },
            }),
            2 => Ok(Message::UndoOp {
                txn: read_txn(r)?,
                op_seq: read_usize(r)?,
            }),
            3 => Ok(Message::TerminateBatch {
                commits: read_txn_vec(r)?,
                aborts: read_txn_vec(r)?,
            }),
            4 => Ok(Message::TerminateBatchAck {
                site: read_site(r)?,
                commits: read_ack_vec(r)?,
                aborts: read_ack_vec(r)?,
            }),
            5 => Ok(Message::Fail { txn: read_txn(r)? }),
            6 => Ok(Message::WfgRequest {
                from: read_site(r)?,
                round: r.varint()?,
            }),
            7 => Ok(Message::WfgReply {
                site: read_site(r)?,
                round: r.varint()?,
                graph: read_wfg(r)?,
            }),
            8 => Ok(Message::AbortVictim { txn: read_txn(r)? }),
            9 => Ok(Message::Wake { txn: read_txn(r)? }),
            10 => Ok(Message::ClearWaits { txn: read_txn(r)? }),
            11 => Ok(Message::Prepare {
                txn: read_txn(r)?,
                corr: r.varint()?,
                participants: read_site_vec(r)?,
            }),
            12 => Ok(Message::PrepareAck {
                txn: read_txn(r)?,
                corr: r.varint()?,
                site: read_site(r)?,
                ok: r.bool()?,
            }),
            13 => Ok(Message::DecisionRequest {
                txn: read_txn(r)?,
                from: read_site(r)?,
            }),
            14 => Ok(Message::DecisionReply {
                txn: read_txn(r)?,
                decision: read_decision(r)?,
            }),
            15 => Ok(Message::InDoubtQuery {
                txn: read_txn(r)?,
                from: read_site(r)?,
            }),
            t => Err(WireError::BadTag {
                what: "Message",
                tag: t as u64,
            }),
        }
    }
}

// ---------------------------------------------------------------------
// Control plane
// ---------------------------------------------------------------------

fn put_status(w: &mut WireWriter, s: &TxnStatus) {
    match s {
        TxnStatus::Committed => w.put_u8(0),
        TxnStatus::Aborted(reason) => {
            w.put_u8(1);
            match reason {
                AbortReason::Deadlock => w.put_u8(0),
                AbortReason::OperationFailed(detail) => {
                    w.put_u8(1);
                    w.put_str(detail);
                }
                AbortReason::RemoteTimeout => w.put_u8(2),
                AbortReason::StaleCatalog => w.put_u8(3),
                AbortReason::CommitFailed => w.put_u8(4),
                AbortReason::Shutdown => w.put_u8(5),
            }
        }
        TxnStatus::Failed(detail) => {
            w.put_u8(2);
            w.put_str(detail);
        }
    }
}

fn read_status(r: &mut WireReader<'_>) -> Result<TxnStatus, WireError> {
    match r.u8()? {
        0 => Ok(TxnStatus::Committed),
        1 => Ok(TxnStatus::Aborted(match r.u8()? {
            0 => AbortReason::Deadlock,
            1 => AbortReason::OperationFailed(r.str()?),
            2 => AbortReason::RemoteTimeout,
            3 => AbortReason::StaleCatalog,
            4 => AbortReason::CommitFailed,
            5 => AbortReason::Shutdown,
            t => {
                return Err(WireError::BadTag {
                    what: "AbortReason",
                    tag: t as u64,
                })
            }
        })),
        2 => Ok(TxnStatus::Failed(r.str()?)),
        t => Err(WireError::BadTag {
            what: "TxnStatus",
            tag: t as u64,
        }),
    }
}

fn put_delta(w: &mut WireWriter, d: &CatalogDelta) {
    w.put_str(&d.doc);
    w.put_varint(d.version);
    put_site_vec(w, &d.sites);
    w.put_bool(d.fragmented);
    put_site(w, d.origin);
}

fn read_delta(r: &mut WireReader<'_>) -> Result<CatalogDelta, WireError> {
    Ok(CatalogDelta {
        doc: r.str()?,
        version: r.varint()?,
        sites: read_site_vec(r)?,
        fragmented: r.bool()?,
        origin: read_site(r)?,
    })
}

/// Control-plane traffic between a driver and `dtx-site` processes (and
/// between site processes, for gossip): carried in `Ctrl` frames, tagged
/// like [`Message`] (tag table in `WIRE.md` §5). The scheduler never
/// sees these — a [`crate::process::SiteHost`] control thread decodes
/// them and calls the same `DtxInstance` surface a local caller would.
#[derive(Debug, Clone, PartialEq)]
pub enum CtrlMsg {
    /// Driver → node: the cluster shape — total site count (for strided
    /// txn-id allocation) and every site's host address.
    Peers {
        /// Total number of scheduler sites in the cluster.
        total_sites: u16,
        /// `(site, "host:port")` for every site in the cluster.
        peers: Vec<(SiteId, String)>,
    },
    /// Node → driver: peer connections are up, schedulers are running.
    Ready {
        /// Lowest site id hosted by the reporting process.
        node: SiteId,
    },
    /// Driver → node: register a document's placement (applied to the
    /// node's local catalog; identical sequences on every node mint
    /// identical versions).
    Register {
        /// Correlation id, echoed in the [`CtrlMsg::Ack`].
        corr: u64,
        /// Document (or logical fragmented document) name.
        doc: String,
        /// Placement sites.
        sites: Vec<SiteId>,
        /// Fragmented (disjoint per-site parts) vs replicated.
        fragmented: bool,
    },
    /// Driver → node: load a document (or one fragment of it) into the
    /// destination site's store.
    LoadDoc {
        /// Correlation id, echoed in the [`CtrlMsg::Ack`].
        corr: u64,
        /// Name the data is stored under.
        doc: String,
        /// Raw XML of the document or fragment.
        xml: String,
    },
    /// Node → driver: a `Register`/`LoadDoc` completed.
    Ack {
        /// Correlation id of the request this acknowledges.
        corr: u64,
        /// Success flag; `detail` explains a failure.
        ok: bool,
        /// Error detail (empty on success).
        detail: String,
    },
    /// Driver → node: submit a transaction at the destination site.
    Submit {
        /// Correlation id, echoed in the [`CtrlMsg::Outcome`].
        corr: u64,
        /// The transaction.
        spec: TxnSpec,
    },
    /// Node → driver: a submitted transaction terminated.
    Outcome {
        /// Correlation id of the submission.
        corr: u64,
        /// Assigned transaction id.
        txn: TxnId,
        /// Terminal status (full fidelity, including abort reasons).
        status: TxnStatus,
        /// Submission-to-termination latency in microseconds.
        response_us: u64,
        /// Per-operation results (empty unless committed).
        results: Vec<OpResult>,
    },
    /// Node ↔ node: anti-entropy catalog gossip (see [`crate::gossip`]).
    Gossip {
        /// The sender's full delta set.
        deltas: Vec<CatalogDelta>,
    },
    /// Driver → node: report transport counters.
    StatsRequest {
        /// Correlation id, echoed in the [`CtrlMsg::StatsReply`].
        corr: u64,
    },
    /// Node → driver: transport counters (real bytes on the wire).
    StatsReply {
        /// Correlation id of the request.
        corr: u64,
        /// Framed bytes written to sockets by this process.
        bytes_out: u64,
        /// Framed bytes read from sockets by this process.
        bytes_in: u64,
        /// Frames sent.
        frames_out: u64,
        /// Frames received.
        frames_in: u64,
    },
    /// Driver → node: shut the schedulers down and exit.
    Shutdown,
}

/// Every [`CtrlMsg`] variant's wire tag (first body byte of a `Ctrl`
/// frame), mirroring [`MESSAGE_TAGS`]; frozen by `WIRE.md` §5.
pub const CTRL_TAGS: [(&str, u8); 10] = [
    ("Peers", 0),
    ("Ready", 1),
    ("Register", 2),
    ("LoadDoc", 3),
    ("Ack", 4),
    ("Submit", 5),
    ("Outcome", 6),
    ("Gossip", 7),
    ("StatsRequest", 8),
    ("StatsReply", 9),
];

impl CtrlMsg {
    /// The variant's name in [`CTRL_TAGS`] (and `WIRE.md` §5).
    pub fn label(&self) -> &'static str {
        match self {
            CtrlMsg::Peers { .. } => "Peers",
            CtrlMsg::Ready { .. } => "Ready",
            CtrlMsg::Register { .. } => "Register",
            CtrlMsg::LoadDoc { .. } => "LoadDoc",
            CtrlMsg::Ack { .. } => "Ack",
            CtrlMsg::Submit { .. } => "Submit",
            CtrlMsg::Outcome { .. } => "Outcome",
            CtrlMsg::Gossip { .. } => "Gossip",
            CtrlMsg::StatsRequest { .. } => "StatsRequest",
            CtrlMsg::StatsReply { .. } => "StatsReply",
            CtrlMsg::Shutdown => "Shutdown",
        }
    }
}

impl WireCodec for CtrlMsg {
    fn encode_body(&self, w: &mut WireWriter) {
        match self {
            CtrlMsg::Peers { total_sites, peers } => {
                w.put_u8(0);
                w.put_varint(*total_sites as u64);
                put_usize(w, peers.len());
                for (site, addr) in peers {
                    put_site(w, *site);
                    w.put_str(addr);
                }
            }
            CtrlMsg::Ready { node } => {
                w.put_u8(1);
                put_site(w, *node);
            }
            CtrlMsg::Register {
                corr,
                doc,
                sites,
                fragmented,
            } => {
                w.put_u8(2);
                w.put_varint(*corr);
                w.put_str(doc);
                put_site_vec(w, sites);
                w.put_bool(*fragmented);
            }
            CtrlMsg::LoadDoc { corr, doc, xml } => {
                w.put_u8(3);
                w.put_varint(*corr);
                w.put_str(doc);
                w.put_str(xml);
            }
            CtrlMsg::Ack { corr, ok, detail } => {
                w.put_u8(4);
                w.put_varint(*corr);
                w.put_bool(*ok);
                w.put_str(detail);
            }
            CtrlMsg::Submit { corr, spec } => {
                w.put_u8(5);
                w.put_varint(*corr);
                put_usize(w, spec.ops.len());
                for op in &spec.ops {
                    put_op_spec(w, op);
                }
            }
            CtrlMsg::Outcome {
                corr,
                txn,
                status,
                response_us,
                results,
            } => {
                w.put_u8(6);
                w.put_varint(*corr);
                put_txn(w, *txn);
                put_status(w, status);
                w.put_varint(*response_us);
                put_usize(w, results.len());
                for res in results {
                    put_op_result(w, res);
                }
            }
            CtrlMsg::Gossip { deltas } => {
                w.put_u8(7);
                put_usize(w, deltas.len());
                for d in deltas {
                    put_delta(w, d);
                }
            }
            CtrlMsg::StatsRequest { corr } => {
                w.put_u8(8);
                w.put_varint(*corr);
            }
            CtrlMsg::StatsReply {
                corr,
                bytes_out,
                bytes_in,
                frames_out,
                frames_in,
            } => {
                w.put_u8(9);
                w.put_varint(*corr);
                w.put_varint(*bytes_out);
                w.put_varint(*bytes_in);
                w.put_varint(*frames_out);
                w.put_varint(*frames_in);
            }
            CtrlMsg::Shutdown => w.put_u8(10),
        }
    }

    fn decode_body(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => {
                let total = r.varint()?;
                let total_sites = u16::try_from(total).map_err(|_| WireError::BadTag {
                    what: "Peers.total_sites",
                    tag: total,
                })?;
                let count = read_usize(r)?;
                if count > r.remaining() {
                    return Err(WireError::BadLength(count as u64));
                }
                let mut peers = Vec::with_capacity(count);
                for _ in 0..count {
                    peers.push((read_site(r)?, r.str()?));
                }
                Ok(CtrlMsg::Peers { total_sites, peers })
            }
            1 => Ok(CtrlMsg::Ready {
                node: read_site(r)?,
            }),
            2 => Ok(CtrlMsg::Register {
                corr: r.varint()?,
                doc: r.str()?,
                sites: read_site_vec(r)?,
                fragmented: r.bool()?,
            }),
            3 => Ok(CtrlMsg::LoadDoc {
                corr: r.varint()?,
                doc: r.str()?,
                xml: r.str()?,
            }),
            4 => Ok(CtrlMsg::Ack {
                corr: r.varint()?,
                ok: r.bool()?,
                detail: r.str()?,
            }),
            5 => {
                let corr = r.varint()?;
                let count = read_usize(r)?;
                if count > r.remaining() {
                    return Err(WireError::BadLength(count as u64));
                }
                let mut ops = Vec::with_capacity(count);
                for _ in 0..count {
                    ops.push(read_op_spec(r)?);
                }
                Ok(CtrlMsg::Submit {
                    corr,
                    spec: TxnSpec { ops },
                })
            }
            6 => {
                let corr = r.varint()?;
                let txn = read_txn(r)?;
                let status = read_status(r)?;
                let response_us = r.varint()?;
                let count = read_usize(r)?;
                if count > r.remaining() {
                    return Err(WireError::BadLength(count as u64));
                }
                let mut results = Vec::with_capacity(count);
                for _ in 0..count {
                    results.push(read_op_result(r)?);
                }
                Ok(CtrlMsg::Outcome {
                    corr,
                    txn,
                    status,
                    response_us,
                    results,
                })
            }
            7 => {
                let count = read_usize(r)?;
                if count > r.remaining() {
                    return Err(WireError::BadLength(count as u64));
                }
                let mut deltas = Vec::with_capacity(count);
                for _ in 0..count {
                    deltas.push(read_delta(r)?);
                }
                Ok(CtrlMsg::Gossip { deltas })
            }
            8 => Ok(CtrlMsg::StatsRequest { corr: r.varint()? }),
            9 => Ok(CtrlMsg::StatsReply {
                corr: r.varint()?,
                bytes_out: r.varint()?,
                bytes_in: r.varint()?,
                frames_out: r.varint()?,
                frames_in: r.varint()?,
            }),
            10 => Ok(CtrlMsg::Shutdown),
            t => Err(WireError::BadTag {
                what: "CtrlMsg",
                tag: t as u64,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtx_net::Wire;

    /// One sample of every `Message` variant, in tag order, with every
    /// field populated non-trivially.
    pub(crate) fn sample_messages() -> Vec<Message> {
        let q = Query::parse("/site/people/person[id=7]").unwrap();
        let mut g = WaitForGraph::new();
        g.add_edge(TxnId(3), TxnId(9));
        g.add_edge(TxnId(9), TxnId(12));
        g.add_edge(TxnId(12), TxnId(3));
        vec![
            Message::ExecRemote {
                txn: TxnId(41),
                coordinator: SiteId(2),
                op_seq: 3,
                op: OpSpec::update(
                    "xmark",
                    UpdateOp::Insert {
                        target: q.clone(),
                        fragment: Fragment::elem(
                            "watch",
                            vec![
                                Fragment::attr("open", "yes"),
                                Fragment::elem_text("item", "umbrella"),
                            ],
                        ),
                        pos: InsertPos::After,
                    },
                ),
                corr: 901,
                update_txn: true,
                doc_version: 17,
                fragment: true,
            },
            Message::RemoteDone {
                txn: TxnId(41),
                op_seq: 3,
                corr: 901,
                site: SiteId(1),
                acquired: true,
                executed: true,
                failed: false,
                deadlock: false,
                stale: false,
                result: Some(OpResult::Query {
                    values: vec!["a".into(), "héllo".into(), String::new()],
                }),
            },
            Message::UndoOp {
                txn: TxnId(41),
                op_seq: 2,
            },
            Message::TerminateBatch {
                commits: vec![TxnId(1), TxnId(5), TxnId(130)],
                aborts: vec![TxnId(7)],
            },
            Message::TerminateBatchAck {
                site: SiteId(3),
                commits: vec![(TxnId(1), true), (TxnId(5), false)],
                aborts: vec![(TxnId(7), true)],
            },
            Message::Fail { txn: TxnId(99) },
            Message::WfgRequest {
                from: SiteId(0),
                round: 4,
            },
            Message::WfgReply {
                site: SiteId(2),
                round: 4,
                graph: g,
            },
            Message::AbortVictim { txn: TxnId(12) },
            Message::Wake { txn: TxnId(3) },
            Message::ClearWaits { txn: TxnId(9) },
            Message::Prepare {
                txn: TxnId(41),
                corr: 902,
                participants: vec![SiteId(1), SiteId(3)],
            },
            Message::PrepareAck {
                txn: TxnId(41),
                corr: 902,
                site: SiteId(3),
                ok: true,
            },
            Message::DecisionRequest {
                txn: TxnId(41),
                from: SiteId(1),
            },
            Message::DecisionReply {
                txn: TxnId(41),
                decision: Decision::Uncertain,
            },
            Message::InDoubtQuery {
                txn: TxnId(41),
                from: SiteId(3),
            },
        ]
    }

    /// `Message` has no `PartialEq` by design; byte-stability of
    /// `encode ∘ decode` is the round-trip witness.
    #[test]
    fn every_variant_round_trips_to_identical_bytes() {
        let samples = sample_messages();
        assert_eq!(samples.len(), MESSAGE_TAGS.len(), "one sample per tag");
        for m in &samples {
            let bytes = m.encode();
            let decoded = Message::decode(&bytes)
                .unwrap_or_else(|e| panic!("decode {} failed: {e}", m.wire_label()));
            assert_eq!(
                decoded.encode(),
                bytes,
                "re-encode of {} differs",
                m.wire_label()
            );
        }
    }

    #[test]
    fn tag_table_matches_the_codec_and_the_labels() {
        let samples = sample_messages();
        for (m, &(name, tag)) in samples.iter().zip(MESSAGE_TAGS.iter()) {
            assert_eq!(m.wire_label(), name, "sample order matches tag table");
            let bytes = m.encode();
            assert_eq!(bytes[0], tag, "first body byte of {name} is its tag");
        }
        // Tags are dense and in declaration order.
        for (i, &(_, tag)) in MESSAGE_TAGS.iter().enumerate() {
            assert_eq!(tag as usize, i);
        }
    }

    #[test]
    fn a_64kib_exec_remote_round_trips() {
        let blob = "x".repeat(64 * 1024);
        let m = Message::ExecRemote {
            txn: TxnId(7),
            coordinator: SiteId(0),
            op_seq: 0,
            op: OpSpec::update(
                "xmark",
                UpdateOp::Insert {
                    target: Query::parse("/site/regions").unwrap(),
                    fragment: Fragment::elem_text("blob", blob),
                    pos: InsertPos::Into,
                },
            ),
            corr: 1,
            update_txn: true,
            doc_version: 1,
            fragment: false,
        };
        let bytes = m.encode();
        assert!(bytes.len() > 64 * 1024, "payload dominates the encoding");
        let decoded = Message::decode(&bytes).expect("decodes");
        assert_eq!(decoded.encode(), bytes);
        // Compactness sanity: framing overhead over the raw payload is
        // under 1 % at this size.
        assert!(bytes.len() < 64 * 1024 + 650);
    }

    #[test]
    fn ctrl_round_trips_every_variant() {
        let q = Query::parse("/site/people/person").unwrap();
        let samples = vec![
            CtrlMsg::Peers {
                total_sites: 4,
                peers: vec![
                    (SiteId(0), "127.0.0.1:4100".into()),
                    (SiteId(1), "127.0.0.1:4101".into()),
                ],
            },
            CtrlMsg::Ready { node: SiteId(2) },
            CtrlMsg::Register {
                corr: 5,
                doc: "xmark".into(),
                sites: vec![SiteId(0), SiteId(1)],
                fragmented: true,
            },
            CtrlMsg::LoadDoc {
                corr: 6,
                doc: "xmark".into(),
                xml: "<site><people/></site>".into(),
            },
            CtrlMsg::Ack {
                corr: 6,
                ok: false,
                detail: "no such site".into(),
            },
            CtrlMsg::Submit {
                corr: 7,
                spec: TxnSpec::new(vec![
                    OpSpec::query("xmark", q.clone()),
                    OpSpec::update(
                        "xmark",
                        UpdateOp::Change {
                            target: q,
                            new_value: "42".into(),
                        },
                    ),
                ]),
            },
            CtrlMsg::Outcome {
                corr: 7,
                txn: TxnId(19),
                status: TxnStatus::Aborted(AbortReason::OperationFailed("boom".into())),
                response_us: 1234,
                results: vec![OpResult::Update { affected: 2 }],
            },
            CtrlMsg::Gossip {
                deltas: vec![CatalogDelta {
                    doc: "xmark".into(),
                    version: 9,
                    sites: vec![SiteId(0), SiteId(3)],
                    fragmented: true,
                    origin: SiteId(0),
                }],
            },
            CtrlMsg::StatsRequest { corr: 8 },
            CtrlMsg::StatsReply {
                corr: 8,
                bytes_out: 1,
                bytes_in: 2,
                frames_out: 3,
                frames_in: 4,
            },
            CtrlMsg::Shutdown,
        ];
        assert_eq!(samples.len(), CTRL_TAGS.len() + 1, "Shutdown has tag 10");
        for c in &samples {
            let bytes = c.encode();
            let decoded = CtrlMsg::decode(&bytes)
                .unwrap_or_else(|e| panic!("decode {} failed: {e}", c.label()));
            assert_eq!(&decoded, c, "{} round trips", c.label());
        }
    }

    #[test]
    fn unknown_tags_error_cleanly() {
        assert!(matches!(
            Message::decode(&[200]),
            Err(WireError::BadTag {
                what: "Message",
                ..
            })
        ));
        assert!(matches!(
            CtrlMsg::decode(&[200]),
            Err(WireError::BadTag {
                what: "CtrlMsg",
                ..
            })
        ));
        assert!(matches!(Message::decode(&[]), Err(WireError::Truncated)));
    }

    #[test]
    fn deep_fragment_nesting_is_rejected_not_overflowed() {
        // Build bytes for a fragment nested past the depth cap by hand:
        // each level is Element(tag 0) + empty label + child count 1.
        let mut w = WireWriter::new();
        for _ in 0..(MAX_FRAGMENT_DEPTH + 8) {
            w.put_u8(0);
            w.put_str("");
            w.put_varint(1);
        }
        w.put_u8(2);
        w.put_str("leaf");
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert_eq!(
            read_fragment(&mut r, 0),
            Err(WireError::Malformed("fragment nested too deep"))
        );
    }

    /// Pulls the `(tag, variant)` rows out of one of `WIRE.md`'s
    /// normative tables: rows look like ``| `3` | `TerminateBatch` | …``.
    fn spec_table(section: &str) -> Vec<(u8, String)> {
        let mut rows = Vec::new();
        for line in section.lines() {
            let mut cells = line.split('|').map(str::trim).skip(1);
            let (Some(tag), Some(name)) = (cells.next(), cells.next()) else {
                continue;
            };
            let (Some(tag), Some(name)) = (
                tag.strip_prefix('`').and_then(|t| t.strip_suffix('`')),
                name.strip_prefix('`').and_then(|n| n.strip_suffix('`')),
            ) else {
                continue;
            };
            let Ok(tag) = tag.parse::<u8>() else { continue };
            rows.push((tag, name.to_string()));
        }
        rows
    }

    /// `WIRE.md` §4–5 are normative: the spec's tag tables must equal
    /// the frozen constants (which the codec tests above tie to the
    /// actual first body byte). Editing the doc or the code alone
    /// fails here.
    #[test]
    fn wire_md_tag_tables_match_the_codec() {
        let spec = include_str!("../../../WIRE.md");
        let s4 = spec
            .split("## 4.")
            .nth(1)
            .expect("WIRE.md has a section 4")
            .split("## 5.")
            .next()
            .unwrap()
            .to_string();
        let s5 = spec
            .split("## 5.")
            .nth(1)
            .expect("WIRE.md has a section 5")
            .split("## 6.")
            .next()
            .unwrap()
            .to_string();

        let msg_rows = spec_table(&s4);
        assert_eq!(
            msg_rows.len(),
            MESSAGE_TAGS.len(),
            "WIRE.md §4 lists every Message variant"
        );
        for ((spec_tag, spec_name), &(name, tag)) in msg_rows.iter().zip(MESSAGE_TAGS.iter()) {
            assert_eq!(spec_name, name, "WIRE.md §4 row order matches MESSAGE_TAGS");
            assert_eq!(*spec_tag, tag, "WIRE.md §4 tag for {name}");
        }

        // §5 is CTRL_TAGS plus the Shutdown row (tag 10, no fields).
        let ctrl_rows = spec_table(&s5);
        assert_eq!(
            ctrl_rows.len(),
            CTRL_TAGS.len() + 1,
            "WIRE.md §5 lists every CtrlMsg variant incl. Shutdown"
        );
        for ((spec_tag, spec_name), &(name, tag)) in ctrl_rows.iter().zip(CTRL_TAGS.iter()) {
            assert_eq!(spec_name, name, "WIRE.md §5 row order matches CTRL_TAGS");
            assert_eq!(*spec_tag, tag, "WIRE.md §5 tag for {name}");
        }
        let last = ctrl_rows.last().unwrap();
        assert_eq!(
            (last.0, last.1.as_str()),
            (CTRL_TAGS.len() as u8, "Shutdown"),
            "Shutdown closes the §5 table at the next free tag"
        );

        // Header constants quoted in §2 stay honest too.
        assert!(spec.contains("`0xD7 0x58`"), "§2 quotes MAGIC");
        assert!(
            spec.contains(&format!(
                "`{}` (this document)",
                dtx_net::wire::WIRE_VERSION
            )),
            "§2 quotes WIRE_VERSION"
        );
    }
}
