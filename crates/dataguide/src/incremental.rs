//! Incremental DataGuide maintenance under the five update operations.
//!
//! The paper's motivating idea is keeping the structural summary
//! **consistent under updates** instead of rebuilding it: "Because it
//! uses an optimized structure to represent locks, XDGL is more efficient
//! in managing the locks" — which only holds while the guide tracks the
//! document without per-update rebuild cost. The lock manager calls
//! [`note_applied`] after applying an update and [`note_undone`] before
//! rolling one back, so guide **extents** follow the document exactly
//! (and new label paths are ensured), at O(changed subtree) cost instead
//! of O(document).
//!
//! Guide nodes are never removed — a DataGuide is a conservative summary
//! and keeping a path whose extent dropped to zero is always safe for
//! locking. The workspace property tests assert that after arbitrary
//! committed update sequences the maintained guide agrees with a fresh
//! [`DataGuide::build`] on every live path (and carries only
//! zero-extent extras).

use crate::{DataGuide, GuideId};
use dtx_xml::document::Fragment;
use dtx_xml::{Document, NodeId};
use dtx_xpath::UndoRecord;

/// Adjusts `guide` for an update that was just applied to `doc`.
///
/// Call with the document in its **post-apply** state and the
/// [`UndoRecord`] the application returned. Unknown paths (a node whose
/// ancestry the guide has never seen) are skipped — the guide stays a
/// conservative summary either way.
pub fn note_applied(guide: &mut DataGuide, doc: &Document, record: &UndoRecord) {
    match record {
        UndoRecord::Insert(ids) => {
            for &id in ids {
                absorb_subtree(guide, doc, id);
            }
        }
        UndoRecord::Remove(records) => {
            for rec in records {
                if let Some(pgid) = classify_live(guide, doc, rec.parent) {
                    retract_fragment(guide, pgid, &rec.fragment);
                }
            }
        }
        UndoRecord::Rename(olds) => {
            for (id, old_label) in olds {
                move_labelled(guide, doc, *id, Some(old_label), None);
            }
        }
        UndoRecord::Change(_) => {
            // Value-only change: no structural effect.
        }
        UndoRecord::Transpose(a, b) => {
            note_transpose(guide, doc, *a, *b);
        }
    }
}

/// Adjusts `guide` for an update that is **about to be undone** on `doc`.
///
/// Call with the document still in its applied state (i.e. *before*
/// `undo_update` runs), mirroring [`note_applied`].
pub fn note_undone(guide: &mut DataGuide, doc: &Document, record: &UndoRecord) {
    match record {
        UndoRecord::Insert(ids) => {
            for &id in ids {
                // The insert may already have been undone (abort after a
                // partial distributed operation); skip dead ids.
                if doc.is_live(id) {
                    retract_subtree(guide, doc, id);
                }
            }
        }
        UndoRecord::Remove(records) => {
            for rec in records {
                if let Some(pgid) = classify_live(guide, doc, rec.parent) {
                    absorb_fragment(guide, pgid, &rec.fragment);
                }
            }
        }
        UndoRecord::Rename(olds) => {
            for (id, old_label) in olds {
                // The node currently carries the new label; it is about to
                // get `old_label` back.
                move_labelled(guide, doc, *id, None, Some(old_label));
            }
        }
        UndoRecord::Change(_) => {}
        UndoRecord::Transpose(a, b) => {
            // The document is still in its post-swap state, but the undo
            // will swap *back*: extents move in the reverse direction of
            // [`note_applied`]'s bookkeeping.
            note_untranspose(guide, doc, *a, *b);
        }
    }
}

/// Whether applying (or undoing) `record` moves DataGuide extents at all.
///
/// Value-only [`UndoRecord::Change`] records are structurally inert —
/// [`note_applied`] and [`note_undone`] are no-ops for them — so a commit
/// consisting only of such records can republish its snapshot sharing the
/// previous version's guide `Arc` unchanged (the COW fast path of
/// [`crate::snapshot::SnapshotStore`]).
pub fn mutates_extents(record: &UndoRecord) -> bool {
    !matches!(record, UndoRecord::Change(_))
}

fn classify_live(guide: &DataGuide, doc: &Document, node: NodeId) -> Option<GuideId> {
    if doc.is_live(node) {
        guide.classify(doc, node)
    } else {
        None
    }
}

/// Ensures + increments the guide along the live subtree rooted at
/// `node` (classified via its parent's path).
fn absorb_subtree(guide: &mut DataGuide, doc: &Document, node: NodeId) {
    let Ok(Some(parent)) = doc.parent(node) else {
        return;
    };
    let Some(pgid) = classify_live(guide, doc, parent) else {
        return;
    };
    absorb_under(guide, doc, node, pgid, None);
}

fn absorb_under(
    guide: &mut DataGuide,
    doc: &Document,
    node: NodeId,
    parent_gid: GuideId,
    label_as: Option<&str>,
) {
    let Ok(n) = doc.node(node) else { return };
    let Some(sym) = n.kind.label() else {
        // Text nodes are summarized by the parent element's guide node.
        return;
    };
    let label = label_as.unwrap_or_else(|| doc.interner().resolve(sym));
    let gid = guide.ensure_child(parent_gid, label, n.is_attribute());
    guide.add_extent(gid, 1);
    if let Ok(children) = doc.children(node) {
        for &c in children {
            absorb_under(guide, doc, c, gid, None);
        }
    }
}

/// Decrements the guide along the live subtree rooted at `node` — the
/// exact mirror of [`absorb_subtree`]: classify the parent, then resolve
/// the node's own guide child by label *and kind* (`classify` on the
/// node itself would prefer a same-label element over an attribute, and
/// would resolve text nodes to their parent).
fn retract_subtree(guide: &mut DataGuide, doc: &Document, node: NodeId) {
    let Ok(n) = doc.node(node) else { return };
    let Some(sym) = n.kind.label() else {
        // Text nodes are summarized by the parent element's guide node.
        return;
    };
    let Ok(Some(parent)) = doc.parent(node) else {
        return;
    };
    let Some(pgid) = classify_live(guide, doc, parent) else {
        return;
    };
    let label = doc.interner().resolve(sym).to_owned();
    if let Some(gid) = guide.child(pgid, &label, n.is_attribute()) {
        retract_at(guide, doc, node, gid);
    }
}

fn retract_at(guide: &mut DataGuide, doc: &Document, node: NodeId, gid: GuideId) {
    guide.add_extent(gid, -1);
    let Ok(children) = doc.children(node) else {
        return;
    };
    for &c in children {
        let Ok(n) = doc.node(c) else { continue };
        let Some(sym) = n.kind.label() else { continue };
        let label = doc.interner().resolve(sym).to_owned();
        if let Some(cg) = guide.child(gid, &label, n.is_attribute()) {
            retract_at(guide, doc, c, cg);
        }
    }
}

/// Ensures + increments the guide for a detached fragment re-attached
/// under `parent_gid` (undo of a removal).
fn absorb_fragment(guide: &mut DataGuide, parent_gid: GuideId, fragment: &Fragment) {
    match fragment {
        Fragment::Element { label, children } => {
            let gid = guide.ensure_child(parent_gid, label, false);
            guide.add_extent(gid, 1);
            for c in children {
                absorb_fragment(guide, gid, c);
            }
        }
        Fragment::Attribute { label, .. } => {
            let gid = guide.ensure_child(parent_gid, label, true);
            guide.add_extent(gid, 1);
        }
        Fragment::Text { .. } => {}
    }
}

/// Decrements the guide for a fragment that was removed from under
/// `parent_gid`.
fn retract_fragment(guide: &mut DataGuide, parent_gid: GuideId, fragment: &Fragment) {
    match fragment {
        Fragment::Element { label, children } => {
            if let Some(gid) = guide.child(parent_gid, label, false) {
                guide.add_extent(gid, -1);
                for c in children {
                    retract_fragment(guide, gid, c);
                }
            }
        }
        Fragment::Attribute { label, .. } => {
            if let Some(gid) = guide.child(parent_gid, label, true) {
                guide.add_extent(gid, -1);
            }
        }
        Fragment::Text { .. } => {}
    }
}

/// Moves the extents of `node`'s subtree between two labels under the
/// same parent: the node currently carries one label in the document,
/// and its extents must move from the path under `from_label` (defaults
/// to the current label) to the path under `to_label` (defaults to the
/// current label). Exactly one of the two overrides is given.
fn move_labelled(
    guide: &mut DataGuide,
    doc: &Document,
    node: NodeId,
    from_label: Option<&str>,
    to_label: Option<&str>,
) {
    let Ok(Some(parent)) = doc.parent(node) else {
        return;
    };
    let Some(pgid) = classify_live(guide, doc, parent) else {
        return;
    };
    let Ok(n) = doc.node(node) else { return };
    let Some(sym) = n.kind.label() else { return };
    let current = doc.interner().resolve(sym).to_owned();
    let from = from_label.unwrap_or(&current).to_owned();
    if let Some(old_gid) = guide.child(pgid, &from, n.is_attribute()) {
        retract_at(guide, doc, node, old_gid);
    }
    absorb_under(guide, doc, node, pgid, to_label.or(Some(&current)));
}

/// Transpose bookkeeping: `a` and `b` have just swapped positions. With
/// the same parent the label paths are unchanged; across parents each
/// subtree's extents move from its old path (under the *other* node's
/// current parent) to its new one.
fn note_transpose(guide: &mut DataGuide, doc: &Document, a: NodeId, b: NodeId) {
    let (Ok(pa), Ok(pb)) = (doc.parent(a), doc.parent(b)) else {
        return;
    };
    let (Some(pa), Some(pb)) = (pa, pb) else {
        return;
    };
    if pa == pb {
        return;
    }
    // `a` now sits under `pa`; its pre-swap parent is `pb` (where `b` now
    // sits), and vice versa.
    move_between(guide, doc, a, pb, pa);
    move_between(guide, doc, b, pa, pb);
}

/// Reverse of [`note_transpose`]: the document is still post-swap, and
/// the imminent undo returns each node to the *other* node's current
/// parent.
fn note_untranspose(guide: &mut DataGuide, doc: &Document, a: NodeId, b: NodeId) {
    let (Ok(pa), Ok(pb)) = (doc.parent(a), doc.parent(b)) else {
        return;
    };
    let (Some(pa), Some(pb)) = (pa, pb) else {
        return;
    };
    if pa == pb {
        return;
    }
    move_between(guide, doc, a, pa, pb);
    move_between(guide, doc, b, pb, pa);
}

fn move_between(
    guide: &mut DataGuide,
    doc: &Document,
    node: NodeId,
    old_parent: NodeId,
    new_parent: NodeId,
) {
    let Ok(n) = doc.node(node) else { return };
    let Some(sym) = n.kind.label() else { return };
    let label = doc.interner().resolve(sym).to_owned();
    if let Some(old_pgid) = classify_live(guide, doc, old_parent) {
        if let Some(old_gid) = guide.child(old_pgid, &label, n.is_attribute()) {
            retract_at(guide, doc, node, old_gid);
        }
    }
    if let Some(new_pgid) = classify_live(guide, doc, new_parent) {
        absorb_under(guide, doc, node, new_pgid, None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtx_xml::document::InsertPos;
    use dtx_xml::parse;
    use dtx_xpath::{apply_update, undo_update, Query, UpdateOp};

    fn q(s: &str) -> Query {
        Query::parse(s).unwrap()
    }

    /// The maintained guide must agree with a fresh rebuild on every
    /// rebuilt path, and its extra (stale) paths must carry extent 0.
    fn assert_consistent(maintained: &DataGuide, doc: &Document) {
        let rebuilt = DataGuide::build(doc);
        for id in 0..rebuilt.len() {
            let gid = GuideId(id as u32);
            let n = rebuilt.node(gid);
            let path = rebuilt.label_path(gid);
            // Find the same path in the maintained guide.
            let mut cur = maintained.root();
            for (depth, label) in path.iter().enumerate().skip(1) {
                let is_attr = depth + 1 == path.len() && n.is_attr;
                cur = maintained
                    .child(cur, label, is_attr)
                    .unwrap_or_else(|| panic!("path {path:?} missing from maintained guide"));
            }
            assert_eq!(
                maintained.node(cur).extent,
                n.extent,
                "extent mismatch at {path:?}\nmaintained:\n{}\nrebuilt:\n{}",
                maintained.render(),
                rebuilt.render()
            );
        }
        // Total live extent matches; everything beyond is zero-extent.
        let total_m: u64 = (0..maintained.len())
            .map(|i| maintained.node(GuideId(i as u32)).extent)
            .sum();
        let total_r: u64 = (0..rebuilt.len())
            .map(|i| rebuilt.node(GuideId(i as u32)).extent)
            .sum();
        assert_eq!(total_m, total_r, "stale maintained paths must be extent 0");
    }

    fn doc() -> Document {
        parse(
            "<products>\
               <product><id>4</id><name>Monitor</name><price>120.00</price></product>\
               <product><id>14</id><name>Printer</name><price>55.50</price></product>\
             </products>",
        )
        .unwrap()
    }

    #[test]
    fn insert_bumps_extents_and_grows_paths() {
        let mut d = doc();
        let mut g = DataGuide::build(&d);
        let op = UpdateOp::Insert {
            target: q("/products/product[id=4]"),
            fragment: Fragment::elem(
                "stock",
                vec![
                    Fragment::elem_text("warehouse", "A"),
                    Fragment::attr("unit", "pcs"),
                ],
            ),
            pos: InsertPos::Into,
        };
        let rec = apply_update(&mut d, &op).unwrap();
        note_applied(&mut g, &d, &rec);
        assert_consistent(&g, &d);
        // Undo restores the old extents (stock path stays, extent 0).
        note_undone(&mut g, &d, &rec);
        undo_update(&mut d, &rec).unwrap();
        assert_consistent(&g, &d);
    }

    #[test]
    fn remove_decrements_without_dropping_paths() {
        let mut d = doc();
        let mut g = DataGuide::build(&d);
        let before_len = g.len();
        let op = UpdateOp::Remove {
            target: q("/products/product[id=14]"),
        };
        let rec = apply_update(&mut d, &op).unwrap();
        note_applied(&mut g, &d, &rec);
        assert_consistent(&g, &d);
        assert_eq!(g.len(), before_len, "guide nodes are never removed");
        note_undone(&mut g, &d, &rec);
        undo_update(&mut d, &rec).unwrap();
        assert_consistent(&g, &d);
    }

    #[test]
    fn remove_all_instances_reaches_zero_extent() {
        let mut d = doc();
        let mut g = DataGuide::build(&d);
        let op = UpdateOp::Remove {
            target: q("/products/product"),
        };
        let rec = apply_update(&mut d, &op).unwrap();
        note_applied(&mut g, &d, &rec);
        let product = g.child(g.root(), "product", false).unwrap();
        assert_eq!(g.node(product).extent, 0);
        assert_consistent(&g, &d);
    }

    #[test]
    fn rename_moves_subtree_extents() {
        let mut d = doc();
        let mut g = DataGuide::build(&d);
        let op = UpdateOp::Rename {
            target: q("/products/product/name"),
            new_label: "title".into(),
        };
        let rec = apply_update(&mut d, &op).unwrap();
        note_applied(&mut g, &d, &rec);
        assert_consistent(&g, &d);
        note_undone(&mut g, &d, &rec);
        undo_update(&mut d, &rec).unwrap();
        assert_consistent(&g, &d);
    }

    #[test]
    fn rename_whole_entities_moves_children_too() {
        let mut d = doc();
        let mut g = DataGuide::build(&d);
        let op = UpdateOp::Rename {
            target: q("/products/product[id=4]"),
            new_label: "item".into(),
        };
        let rec = apply_update(&mut d, &op).unwrap();
        note_applied(&mut g, &d, &rec);
        assert_consistent(&g, &d);
    }

    #[test]
    fn mutates_extents_flags_all_but_change() {
        let mut d = doc();
        let change = apply_update(
            &mut d,
            &UpdateOp::Change {
                target: q("/products/product/price"),
                new_value: "1".into(),
            },
        )
        .unwrap();
        assert!(!mutates_extents(&change));
        let remove = apply_update(
            &mut d,
            &UpdateOp::Remove {
                target: q("/products/product[id=14]"),
            },
        )
        .unwrap();
        assert!(mutates_extents(&remove));
        let insert = apply_update(
            &mut d,
            &UpdateOp::Insert {
                target: q("/products"),
                fragment: Fragment::elem_text("note", "hi"),
                pos: InsertPos::Into,
            },
        )
        .unwrap();
        assert!(mutates_extents(&insert));
    }

    #[test]
    fn change_is_structurally_inert() {
        let mut d = doc();
        let mut g = DataGuide::build(&d);
        let op = UpdateOp::Change {
            target: q("/products/product/price"),
            new_value: "0".into(),
        };
        let rec = apply_update(&mut d, &op).unwrap();
        note_applied(&mut g, &d, &rec);
        assert_consistent(&g, &d);
    }

    #[test]
    fn same_parent_transpose_is_inert() {
        let mut d = doc();
        let mut g = DataGuide::build(&d);
        let op = UpdateOp::Transpose {
            a: q("/products/product[id=4]"),
            b: q("/products/product[id=14]"),
        };
        let rec = apply_update(&mut d, &op).unwrap();
        note_applied(&mut g, &d, &rec);
        assert_consistent(&g, &d);
    }

    #[test]
    fn cross_parent_transpose_moves_extents() {
        let mut d = parse("<r><a><x><k>1</k></x></a><b><y/></b></r>").unwrap();
        let mut g = DataGuide::build(&d);
        let op = UpdateOp::Transpose {
            a: q("/r/a/x"),
            b: q("/r/b/y"),
        };
        let rec = apply_update(&mut d, &op).unwrap();
        note_applied(&mut g, &d, &rec);
        assert_consistent(&g, &d);
        note_undone(&mut g, &d, &rec);
        undo_update(&mut d, &rec).unwrap();
        assert_consistent(&g, &d);
    }
}
