//! # dtx-dataguide — strong DataGuide structural summaries
//!
//! DTX places its locks not on XML nodes but on nodes of a **DataGuide**
//! (Goldman & Widom, VLDB '97): a summary tree containing every *label
//! path* of the document exactly once. The paper motivates this choice —
//! "Because it uses an optimized structure to represent locks, XDGL is more
//! efficient in managing the locks" — and Fig. 5/6 of the paper show locks
//! attached to numbered DataGuide nodes.
//!
//! This crate provides:
//!
//! * [`DataGuide`] — the summary tree with per-node extents (how many
//!   document nodes map to each guide node), built from a
//!   [`dtx_xml::Document`] in one pass;
//! * incremental maintenance: [`DataGuide::ensure_path`] /
//!   [`DataGuide::ensure_fragment`] grow the guide when an insert creates a
//!   previously unseen label path (guide nodes are never removed — a
//!   DataGuide is a conservative summary, and keeping stale paths is always
//!   safe for locking);
//! * query matching: [`DataGuide::match_query`] maps a `dtx-xpath` query to
//!   the set of guide nodes its evaluation can touch, the input to XDGL's
//!   lock-placement rules.
//!
//! Guide nodes are identified by dense [`GuideId`]s; node 0 is always the
//! root. The paper's example numbers DataGuide nodes the same way (Fig. 5).

pub mod incremental;
pub mod snapshot;
pub mod stream;

pub use snapshot::{Snapshot, SnapshotStore};
pub use stream::GuideBuilder;

use dtx_xml::document::Fragment;
use dtx_xml::{Document, NodeId, Symbol};
use dtx_xpath::{Axis, NodeTest, Query};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a DataGuide node (dense index; 0 is the root).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GuideId(pub u32);

impl GuideId {
    /// Index form.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for GuideId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// One node of the DataGuide: a distinct label path of the document.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GuideNode {
    /// Label of the final step of this node's path.
    pub label: String,
    /// Whether the path ends in an attribute step.
    pub is_attr: bool,
    /// Parent guide node (`None` for the root).
    pub parent: Option<GuideId>,
    /// Children, in first-seen order.
    pub children: Vec<GuideId>,
    /// Number of document nodes currently classified under this path.
    /// Maintained approximately under updates (never below zero); a zero
    /// extent keeps the node alive as a conservative summary entry.
    pub extent: u64,
}

/// A strong DataGuide for one document.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DataGuide {
    nodes: Vec<GuideNode>,
    /// Fast child lookup: (parent, label, is_attr) → child.
    index: HashMap<(GuideId, String, bool), GuideId>,
}

impl DataGuide {
    /// Creates a guide containing only a root labelled `root_label`.
    pub fn new(root_label: &str) -> Self {
        DataGuide {
            nodes: vec![GuideNode {
                label: root_label.to_owned(),
                is_attr: false,
                parent: None,
                children: Vec::new(),
                extent: 1,
            }],
            index: HashMap::new(),
        }
    }

    /// Builds the strong DataGuide of `doc` in one pre-order pass.
    pub fn build(doc: &Document) -> Self {
        let root = doc.root();
        let root_label = doc.label_str(root).unwrap_or("").to_owned();
        let mut guide = DataGuide::new(&root_label);
        guide.absorb_subtree(doc, root, GuideId(0));
        guide
    }

    fn absorb_subtree(&mut self, doc: &Document, node: NodeId, gid: GuideId) {
        let Ok(children) = doc.children(node) else {
            return;
        };
        for &c in children {
            let Ok(n) = doc.node(c) else { continue };
            match n.kind.label() {
                Some(sym) => {
                    let label = doc.interner().resolve(sym).to_owned();
                    let child_gid = self.ensure_child(gid, &label, n.is_attribute());
                    self.nodes[child_gid.index()].extent += 1;
                    self.absorb_subtree(doc, c, child_gid);
                }
                None => {
                    // Text nodes are not represented in the guide; they are
                    // covered by their parent element's guide node.
                }
            }
        }
    }

    /// Merges another document of the same logical schema into this guide
    /// (used when a site hosts several fragments of one document).
    pub fn absorb(&mut self, doc: &Document) {
        self.absorb_subtree(doc, doc.root(), GuideId(0));
    }

    /// The root guide node.
    #[inline]
    pub fn root(&self) -> GuideId {
        GuideId(0)
    }

    /// Number of guide nodes (distinct label paths).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the guide has only its root.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Borrow a guide node.
    pub fn node(&self, id: GuideId) -> &GuideNode {
        &self.nodes[id.index()]
    }

    /// The child of `parent` with the given label/kind, if present.
    pub fn child(&self, parent: GuideId, label: &str, is_attr: bool) -> Option<GuideId> {
        self.index
            .get(&(parent, label.to_owned(), is_attr))
            .copied()
    }

    /// Finds-or-creates the child of `parent` for `label`.
    pub fn ensure_child(&mut self, parent: GuideId, label: &str, is_attr: bool) -> GuideId {
        if let Some(c) = self.child(parent, label, is_attr) {
            return c;
        }
        let id = GuideId(self.nodes.len() as u32);
        self.nodes.push(GuideNode {
            label: label.to_owned(),
            is_attr,
            parent: Some(parent),
            children: Vec::new(),
            extent: 0,
        });
        self.nodes[parent.index()].children.push(id);
        self.index.insert((parent, label.to_owned(), is_attr), id);
        id
    }

    /// Finds-or-creates the guide node for a label path starting *below*
    /// the root (the root label itself is implicit). Returns the final
    /// node; `ensure_path(&[])` is the root.
    pub fn ensure_path(&mut self, labels: &[&str]) -> GuideId {
        let mut cur = self.root();
        for label in labels {
            cur = self.ensure_child(cur, label, false);
        }
        cur
    }

    /// Ensures guide nodes exist for every path of `fragment` when rooted
    /// at `parent`; returns the guide node of the fragment root (or
    /// `parent` itself for text fragments, which the guide does not
    /// represent).
    pub fn ensure_fragment(&mut self, parent: GuideId, fragment: &Fragment) -> GuideId {
        match fragment {
            Fragment::Element { label, children } => {
                let gid = self.ensure_child(parent, label, false);
                for c in children {
                    self.ensure_fragment(gid, c);
                }
                gid
            }
            Fragment::Attribute { label, .. } => self.ensure_child(parent, label, true),
            Fragment::Text { .. } => parent,
        }
    }

    /// Total document-node extent of the subtree rooted at `id` (how many
    /// document nodes a *tree lock* at this guide node covers). Used by
    /// the cost model of tree-locking baselines, whose real
    /// implementations place one lock per covered document node.
    pub fn subtree_extent(&self, id: GuideId) -> u64 {
        self.descendants(id)
            .iter()
            .map(|g| self.nodes[g.index()].extent)
            .sum()
    }

    /// Adjusts extents after an applied update (best-effort bookkeeping;
    /// extents inform fragmentation heuristics and debugging, not
    /// correctness).
    pub fn add_extent(&mut self, id: GuideId, delta: i64) {
        let e = &mut self.nodes[id.index()].extent;
        *e = e.saturating_add_signed(delta);
    }

    /// All ancestors of `id`, nearest first (excluding `id`).
    pub fn ancestors(&self, id: GuideId) -> Vec<GuideId> {
        let mut out = Vec::new();
        let mut cur = self.nodes[id.index()].parent;
        while let Some(p) = cur {
            out.push(p);
            cur = self.nodes[p.index()].parent;
        }
        out
    }

    /// True when `anc` is a strict ancestor of `id`.
    pub fn is_ancestor(&self, anc: GuideId, id: GuideId) -> bool {
        let mut cur = self.nodes[id.index()].parent;
        while let Some(p) = cur {
            if p == anc {
                return true;
            }
            cur = self.nodes[p.index()].parent;
        }
        false
    }

    /// Pre-order traversal of the subtree rooted at `id`.
    pub fn descendants(&self, id: GuideId) -> Vec<GuideId> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(g) = stack.pop() {
            out.push(g);
            for &c in self.nodes[g.index()].children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// The label path of a guide node, root label first.
    pub fn label_path(&self, id: GuideId) -> Vec<&str> {
        let mut out = vec![self.nodes[id.index()].label.as_str()];
        let mut cur = self.nodes[id.index()].parent;
        while let Some(p) = cur {
            out.push(self.nodes[p.index()].label.as_str());
            cur = self.nodes[p.index()].parent;
        }
        out.reverse();
        out
    }

    /// Classifies a document node to its guide node by label path.
    /// Returns `None` when the path is not (yet) in the guide.
    pub fn classify(&self, doc: &Document, node: NodeId) -> Option<GuideId> {
        let path = doc.label_path(node).ok()?;
        let mut labels = path.iter();
        // The first label is the document root; verify it matches.
        let first: Option<&Symbol> = labels.next();
        match first {
            Some(&sym) if doc.interner().resolve(sym) == self.nodes[0].label => {}
            None => return Some(self.root()), // text child of root
            _ => return None,
        }
        let mut cur = self.root();
        for &sym in labels {
            let label = doc.interner().resolve(sym);
            // Attributes only occur as the final step; try element first.
            cur = self
                .child(cur, label, false)
                .or_else(|| self.child(cur, label, true))?;
        }
        Some(cur)
    }

    /// Matches a query against the guide: the set of guide nodes whose
    /// document nodes the query's *main path* can reach. Predicates are
    /// ignored here (they filter data, not structure); their paths are
    /// matched separately by the lock-placement rules via
    /// [`DataGuide::match_relative`].
    ///
    /// A `text()` step maps to its context node (text is summarized by the
    /// parent element's guide node).
    pub fn match_query(&self, query: &Query) -> Vec<GuideId> {
        self.match_steps(&query.steps)
    }

    /// Matches a sequence of steps from the virtual root; used by the
    /// lock-placement rules to obtain the context set of each prefix (the
    /// set a step's predicate is evaluated against).
    pub fn match_steps(&self, steps: &[dtx_xpath::Step]) -> Vec<GuideId> {
        let mut current: Vec<GuideId> = Vec::new();
        for (i, step) in steps.iter().enumerate() {
            current = if i == 0 {
                self.match_first_step(step)
            } else {
                self.match_step(&current, step)
            };
            if current.is_empty() {
                break;
            }
        }
        current
    }

    fn match_first_step(&self, step: &dtx_xpath::Step) -> Vec<GuideId> {
        match step.axis {
            Axis::Child => {
                if self.test_matches(self.root(), &step.test) {
                    vec![self.root()]
                } else {
                    vec![]
                }
            }
            Axis::Descendant => self
                .descendants(self.root())
                .into_iter()
                .filter(|&g| !self.nodes[g.index()].is_attr && self.test_matches(g, &step.test))
                .collect(),
            Axis::Attribute => vec![],
        }
    }

    /// Matches a relative query from given context guide nodes.
    pub fn match_relative(&self, context: &[GuideId], query: &Query) -> Vec<GuideId> {
        let mut current = context.to_vec();
        for step in &query.steps {
            current = self.match_step(&current, step);
            if current.is_empty() {
                break;
            }
        }
        current
    }

    fn match_step(&self, context: &[GuideId], step: &dtx_xpath::Step) -> Vec<GuideId> {
        let mut out = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for &ctx in context {
            match (&step.axis, &step.test) {
                (_, NodeTest::Text) => {
                    // Text steps lock the containing element's guide node.
                    if seen.insert(ctx) {
                        out.push(ctx);
                    }
                }
                (Axis::Child, _) => {
                    for &c in &self.nodes[ctx.index()].children {
                        if !self.nodes[c.index()].is_attr
                            && self.test_matches(c, &step.test)
                            && seen.insert(c)
                        {
                            out.push(c);
                        }
                    }
                }
                (Axis::Descendant, _) => {
                    for g in self.descendants(ctx).into_iter().skip(1) {
                        if !self.nodes[g.index()].is_attr
                            && self.test_matches(g, &step.test)
                            && seen.insert(g)
                        {
                            out.push(g);
                        }
                    }
                }
                (Axis::Attribute, _) => {
                    for &c in &self.nodes[ctx.index()].children {
                        if self.nodes[c.index()].is_attr
                            && self.test_matches(c, &step.test)
                            && seen.insert(c)
                        {
                            out.push(c);
                        }
                    }
                }
            }
        }
        out
    }

    fn test_matches(&self, id: GuideId, test: &NodeTest) -> bool {
        match test {
            NodeTest::Wildcard => true,
            NodeTest::Name(n) => self.nodes[id.index()].label == *n,
            NodeTest::Text => true,
        }
    }

    /// Pretty-prints the guide as an indented tree with node numbers, in
    /// the style of the paper's Fig. 5.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_node(self.root(), 0, &mut out);
        out
    }

    fn render_node(&self, id: GuideId, depth: usize, out: &mut String) {
        let n = &self.nodes[id.index()];
        for _ in 0..depth {
            out.push_str("  ");
        }
        let kind = if n.is_attr { "@" } else { "" };
        out.push_str(&format!(
            "[{}] {kind}{} (extent {})\n",
            id.0, n.label, n.extent
        ));
        for &c in &n.children {
            self.render_node(c, depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtx_xml::parse;

    fn people_doc() -> Document {
        parse(
            "<people>\
               <person><id>1</id><name>Ana</name></person>\
               <person><id>2</id><name>Bruno</name><phone>555</phone></person>\
               <person><id>3</id><name>Caio</name></person>\
             </people>",
        )
        .unwrap()
    }

    fn q(s: &str) -> Query {
        Query::parse(s).unwrap()
    }

    #[test]
    fn build_dedupes_label_paths() {
        let doc = people_doc();
        let g = DataGuide::build(&doc);
        // people, person, id, name, phone → 5 guide nodes for 12 elements.
        assert_eq!(g.len(), 5);
        let person = g.child(g.root(), "person", false).unwrap();
        assert_eq!(g.node(person).extent, 3);
        let phone = g.child(person, "phone", false).unwrap();
        assert_eq!(g.node(phone).extent, 1);
    }

    #[test]
    fn attributes_distinct_from_elements() {
        let doc = parse("<r><x id=\"a\"><id>5</id></x></r>").unwrap();
        let g = DataGuide::build(&doc);
        let x = g.child(g.root(), "x", false).unwrap();
        let attr = g.child(x, "id", true).unwrap();
        let elem = g.child(x, "id", false).unwrap();
        assert_ne!(attr, elem);
        assert!(g.node(attr).is_attr);
        assert!(!g.node(elem).is_attr);
    }

    #[test]
    fn classify_maps_doc_nodes_to_paths() {
        let doc = people_doc();
        let g = DataGuide::build(&doc);
        let persons = dtx_xpath::eval(&doc, &q("/people/person"));
        let person_gid = g.child(g.root(), "person", false).unwrap();
        for p in persons {
            assert_eq!(g.classify(&doc, p), Some(person_gid));
        }
        assert_eq!(g.classify(&doc, doc.root()), Some(g.root()));
    }

    #[test]
    fn classify_unknown_path_is_none() {
        let g = DataGuide::build(&people_doc());
        let mut doc2 = people_doc();
        let added = doc2
            .insert_element(doc2.root(), "company", dtx_xml::document::InsertPos::Into)
            .unwrap();
        assert_eq!(g.classify(&doc2, added), None);
    }

    #[test]
    fn match_simple_query() {
        let g = DataGuide::build(&people_doc());
        let hits = g.match_query(&q("/people/person/name"));
        assert_eq!(hits.len(), 1);
        assert_eq!(g.label_path(hits[0]), vec!["people", "person", "name"]);
    }

    #[test]
    fn match_descendant_query() {
        let g = DataGuide::build(&people_doc());
        assert_eq!(g.match_query(&q("//name")).len(), 1);
        assert_eq!(g.match_query(&q("//person")).len(), 1);
        // Wildcard under person: id, name, phone.
        assert_eq!(g.match_query(&q("/people/person/*")).len(), 3);
    }

    #[test]
    fn match_text_step_locks_parent() {
        let g = DataGuide::build(&people_doc());
        let name = g.match_query(&q("/people/person/name"));
        let text = g.match_query(&q("/people/person/name/text()"));
        assert_eq!(name, text);
    }

    #[test]
    fn match_attribute_step() {
        let doc = parse("<r><x id=\"a\"/></r>").unwrap();
        let g = DataGuide::build(&doc);
        let hits = g.match_query(&q("/r/x/@id"));
        assert_eq!(hits.len(), 1);
        assert!(g.node(hits[0]).is_attr);
        // Child steps do not see attributes.
        assert!(g.match_query(&q("/r/x/id")).is_empty());
    }

    #[test]
    fn match_nonexistent_path_is_empty() {
        let g = DataGuide::build(&people_doc());
        assert!(g.match_query(&q("/people/person/salary")).is_empty());
        assert!(g.match_query(&q("/wrong")).is_empty());
    }

    #[test]
    fn predicates_ignored_for_structure() {
        let g = DataGuide::build(&people_doc());
        assert_eq!(
            g.match_query(&q("/people/person[id=1]")),
            g.match_query(&q("/people/person"))
        );
    }

    #[test]
    fn ensure_path_grows_guide() {
        let mut g = DataGuide::build(&people_doc());
        let before = g.len();
        let gid = g.ensure_path(&["person", "email"]);
        assert_eq!(g.len(), before + 1);
        assert_eq!(g.label_path(gid), vec!["people", "person", "email"]);
        // Idempotent.
        assert_eq!(g.ensure_path(&["person", "email"]), gid);
        assert_eq!(g.len(), before + 1);
    }

    #[test]
    fn ensure_fragment_covers_subtree() {
        let mut g = DataGuide::new("products");
        let frag = Fragment::elem(
            "product",
            vec![
                Fragment::elem_text("id", "13"),
                Fragment::elem_text("price", "10.30"),
            ],
        );
        let gid = g.ensure_fragment(g.root(), &frag);
        assert_eq!(g.label_path(gid), vec!["products", "product"]);
        assert!(g.child(gid, "id", false).is_some());
        assert!(g.child(gid, "price", false).is_some());
        // Text fragment resolves to the parent.
        assert_eq!(g.ensure_fragment(gid, &Fragment::text("x")), gid);
    }

    #[test]
    fn ancestors_and_is_ancestor() {
        let g = DataGuide::build(&people_doc());
        let name = g.match_query(&q("/people/person/name"))[0];
        let person = g.match_query(&q("/people/person"))[0];
        assert_eq!(g.ancestors(name), vec![person, g.root()]);
        assert!(g.is_ancestor(g.root(), name));
        assert!(g.is_ancestor(person, name));
        assert!(!g.is_ancestor(name, person));
    }

    #[test]
    fn absorb_merges_fragments() {
        let mut g =
            DataGuide::build(&parse("<people><person><id>1</id></person></people>").unwrap());
        let frag2 = parse("<people><person><email>x@y</email></person></people>").unwrap();
        let before_person_extent = g.node(g.child(g.root(), "person", false).unwrap()).extent;
        g.absorb(&frag2);
        let person = g.child(g.root(), "person", false).unwrap();
        assert!(g.child(person, "email", false).is_some());
        assert_eq!(g.node(person).extent, before_person_extent + 1);
    }

    #[test]
    fn render_shows_numbered_tree() {
        let g = DataGuide::build(&people_doc());
        let r = g.render();
        assert!(r.contains("[0] people"));
        assert!(r.contains("person (extent 3)"));
    }

    #[test]
    fn descendants_preorder_includes_self() {
        let g = DataGuide::build(&people_doc());
        let all = g.descendants(g.root());
        assert_eq!(all.len(), g.len());
        assert_eq!(all[0], g.root());
    }

    #[test]
    fn extent_bookkeeping_saturates() {
        let mut g = DataGuide::new("r");
        let x = g.ensure_path(&["x"]);
        g.add_extent(x, 5);
        assert_eq!(g.node(x).extent, 5);
        g.add_extent(x, -10);
        assert_eq!(g.node(x).extent, 0);
    }

    #[test]
    fn guide_much_smaller_than_document() {
        // The "summarized data structure" claim: guide size is bounded by
        // distinct label paths, not by document size.
        let mut xml = String::from("<people>");
        for i in 0..500 {
            xml.push_str(&format!("<person><id>{i}</id><name>p{i}</name></person>"));
        }
        xml.push_str("</people>");
        let doc = parse(&xml).unwrap();
        let g = DataGuide::build(&doc);
        assert!(doc.node_count() > 2000);
        assert_eq!(g.len(), 4); // people, person, id, name
    }
}
