//! Versioned snapshot store for lock-free reads.
//!
//! Each commit that touched a document publishes a new **immutable
//! snapshot** of that document and its DataGuide, keyed by a per-document
//! commit sequence number. Read-only transactions pin the latest snapshot
//! at their first touch of the document and evaluate every query against
//! the pinned `Arc`s — no lock table, no wait-for graph, no interference
//! with XDGL writers.
//!
//! Copy-on-write structure sharing: the publisher passes fresh `Arc`s only
//! for the parts that changed. A commit whose updates were structurally
//! inert (value-only [`dtx_xpath::UndoRecord::Change`] records — see
//! [`crate::incremental::mutates_extents`]) republishes the *same* guide
//! `Arc`, so consecutive versions share the extent maps and the byte
//! accounting counts them once.
//!
//! Retention is bounded: [`SnapshotStore::publish`] and
//! [`SnapshotStore::unpin`] both garbage-collect every version that is
//! neither the latest nor pinned by a reader, so a drained read burst
//! always returns the store to one live version per document.

use crate::DataGuide;
use dtx_xml::Document;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Rough per-document-node footprint used by [`SnapshotStore::approx_bytes`]
/// (node struct + children-vec share + interned-label share).
const DOC_NODE_BYTES: u64 = 48;

/// Rough per-guide-node footprint used by [`SnapshotStore::approx_bytes`]
/// (node struct + label + child-index entry).
const GUIDE_NODE_BYTES: u64 = 64;

/// One pinned, immutable view of a document: the committed state as of
/// commit sequence `seq`.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Per-document commit sequence this snapshot captures.
    pub seq: u64,
    /// The document state.
    pub doc: Arc<Document>,
    /// The matching DataGuide (extents exact as of `seq`).
    pub guide: Arc<DataGuide>,
}

#[derive(Debug)]
struct Version {
    seq: u64,
    doc: Arc<Document>,
    guide: Arc<DataGuide>,
    /// Number of read transactions currently pinning this version.
    pins: u32,
}

#[derive(Debug, Default)]
struct DocVersions {
    next_seq: u64,
    /// Versions in ascending `seq` order; the last one is the latest.
    versions: Vec<Version>,
}

impl DocVersions {
    /// Drops every version that is neither the latest nor pinned.
    fn gc(&mut self) {
        let n = self.versions.len();
        if n <= 1 {
            return;
        }
        let last = self.versions[n - 1].seq;
        self.versions.retain(|v| v.pins > 0 || v.seq == last);
    }
}

/// Per-document version lists with pin-count based garbage collection.
///
/// The lock manager owns one store per site; every mutation happens on the
/// site's single scheduler thread, so no internal locking is needed.
#[derive(Debug, Default)]
pub struct SnapshotStore {
    docs: HashMap<String, DocVersions>,
}

impl SnapshotStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes a new latest version of `name` and returns its sequence
    /// number. Older unpinned versions are collected immediately. Callers
    /// share `Arc`s for unchanged parts (typically the guide) so
    /// consecutive versions stay cheap.
    pub fn publish(&mut self, name: &str, doc: Arc<Document>, guide: Arc<DataGuide>) -> u64 {
        let entry = self.docs.entry(name.to_owned()).or_default();
        let seq = entry.next_seq;
        entry.next_seq += 1;
        entry.versions.push(Version {
            seq,
            doc,
            guide,
            pins: 0,
        });
        entry.gc();
        seq
    }

    /// Pins the latest version of `name` for a read transaction. Returns
    /// `None` when the document has never been published.
    pub fn pin_latest(&mut self, name: &str) -> Option<Snapshot> {
        let entry = self.docs.get_mut(name)?;
        let v = entry.versions.last_mut()?;
        v.pins += 1;
        Some(Snapshot {
            seq: v.seq,
            doc: Arc::clone(&v.doc),
            guide: Arc::clone(&v.guide),
        })
    }

    /// Borrows the version of `name` at exactly `seq` without pinning it
    /// (test and audit hook; live readers go through [`Self::pin_latest`]).
    pub fn at(&self, name: &str, seq: u64) -> Option<Snapshot> {
        let entry = self.docs.get(name)?;
        let v = entry.versions.iter().find(|v| v.seq == seq)?;
        Some(Snapshot {
            seq: v.seq,
            doc: Arc::clone(&v.doc),
            guide: Arc::clone(&v.guide),
        })
    }

    /// Latest published sequence for `name`, if any.
    pub fn latest_seq(&self, name: &str) -> Option<u64> {
        self.docs.get(name)?.versions.last().map(|v| v.seq)
    }

    /// Releases one pin on `(name, seq)` and collects the version when it
    /// was superseded and no pins remain. Unknown pairs are ignored (the
    /// version may already be gone after an idempotent double-release).
    pub fn unpin(&mut self, name: &str, seq: u64) {
        if let Some(entry) = self.docs.get_mut(name) {
            if let Some(v) = entry.versions.iter_mut().find(|v| v.seq == seq) {
                v.pins = v.pins.saturating_sub(1);
            }
            entry.gc();
        }
    }

    /// Drops **every** version of `name`, pinned or not, and returns how
    /// many were live. Used when a replica is dropped from a site: the
    /// caller has already quiesced the document (no reader can still hold
    /// a pin), so unconditional removal is safe and frees the retained
    /// versions immediately.
    pub fn evict(&mut self, name: &str) -> usize {
        self.docs.remove(name).map_or(0, |e| e.versions.len())
    }

    /// Number of live versions of `name` (0 when never published).
    pub fn live(&self, name: &str) -> usize {
        self.docs.get(name).map_or(0, |e| e.versions.len())
    }

    /// Total live versions across all documents.
    pub fn total_live(&self) -> usize {
        self.docs.values().map(|e| e.versions.len()).sum()
    }

    /// Approximate resident bytes of all live versions. Structurally
    /// shared `Arc`s are counted **once** (that is the point of COW
    /// publication), using fixed per-node footprints — a heuristic for
    /// the retention gauge, not an allocator measurement.
    pub fn approx_bytes(&self) -> u64 {
        let mut seen_docs: HashSet<*const Document> = HashSet::new();
        let mut seen_guides: HashSet<*const DataGuide> = HashSet::new();
        let mut bytes = 0u64;
        for entry in self.docs.values() {
            for v in &entry.versions {
                if seen_docs.insert(Arc::as_ptr(&v.doc)) {
                    bytes += (v.doc.node_count() as u64) * DOC_NODE_BYTES;
                }
                if seen_guides.insert(Arc::as_ptr(&v.guide)) {
                    bytes += (v.guide.len() as u64) * GUIDE_NODE_BYTES;
                }
            }
        }
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtx_xml::parse;

    fn snap_parts(xml: &str) -> (Arc<Document>, Arc<DataGuide>) {
        let doc = parse(xml).unwrap();
        let guide = DataGuide::build(&doc);
        (Arc::new(doc), Arc::new(guide))
    }

    #[test]
    fn publish_assigns_monotonic_seqs() {
        let mut s = SnapshotStore::new();
        let (d, g) = snap_parts("<r><x/></r>");
        assert_eq!(s.publish("a", Arc::clone(&d), Arc::clone(&g)), 0);
        assert_eq!(s.publish("a", Arc::clone(&d), Arc::clone(&g)), 1);
        assert_eq!(s.publish("b", d, g), 0);
        assert_eq!(s.latest_seq("a"), Some(1));
        assert_eq!(s.latest_seq("b"), Some(0));
    }

    #[test]
    fn unpinned_old_versions_are_collected_on_publish() {
        let mut s = SnapshotStore::new();
        let (d, g) = snap_parts("<r/>");
        s.publish("a", Arc::clone(&d), Arc::clone(&g));
        s.publish("a", Arc::clone(&d), Arc::clone(&g));
        s.publish("a", d, g);
        assert_eq!(s.live("a"), 1, "only the latest survives with no pins");
        assert_eq!(s.latest_seq("a"), Some(2));
    }

    #[test]
    fn pinned_versions_survive_until_unpinned() {
        let mut s = SnapshotStore::new();
        let (d, g) = snap_parts("<r/>");
        s.publish("a", Arc::clone(&d), Arc::clone(&g));
        let snap = s.pin_latest("a").unwrap();
        assert_eq!(snap.seq, 0);
        s.publish("a", Arc::clone(&d), Arc::clone(&g));
        assert_eq!(s.live("a"), 2, "pinned v0 must survive publish of v1");
        assert!(s.at("a", 0).is_some());
        s.unpin("a", 0);
        assert_eq!(s.live("a"), 1, "drained pin releases the old version");
        assert!(s.at("a", 0).is_none());
        assert_eq!(s.latest_seq("a"), Some(1));
    }

    #[test]
    fn pin_latest_returns_latest_and_reads_are_stable() {
        let mut s = SnapshotStore::new();
        let (d1, g1) = snap_parts("<r><x/></r>");
        let (d2, g2) = snap_parts("<r><x/><y/></r>");
        s.publish("a", d1, g1);
        let old = s.pin_latest("a").unwrap();
        s.publish("a", d2, g2);
        let new = s.pin_latest("a").unwrap();
        assert_eq!(old.doc.node_count() + 1, new.doc.node_count());
        // The old pin still answers from its own version.
        assert_eq!(s.at("a", old.seq).unwrap().doc.node_count(), 2);
        s.unpin("a", old.seq);
        s.unpin("a", new.seq);
        assert_eq!(s.live("a"), 1);
    }

    #[test]
    fn pin_unknown_doc_is_none() {
        let mut s = SnapshotStore::new();
        assert!(s.pin_latest("nope").is_none());
        assert_eq!(s.live("nope"), 0);
        // Unpin of an unknown pair is a harmless no-op.
        s.unpin("nope", 7);
    }

    #[test]
    fn shared_guide_arcs_are_counted_once() {
        let mut s = SnapshotStore::new();
        let (d1, g) = snap_parts("<r><x/></r>");
        let (d2, _) = snap_parts("<r><x/><x/></r>");
        s.publish("a", Arc::clone(&d1), Arc::clone(&g));
        let pin = s.pin_latest("a").unwrap();
        // Value-only commit: new doc, same guide Arc.
        s.publish("a", d2, Arc::clone(&g));
        let both = s.approx_bytes();
        let guide_part = (g.len() as u64) * GUIDE_NODE_BYTES;
        let docs_part = (s.at("a", pin.seq).unwrap().doc.node_count() as u64
            + s.at("a", pin.seq + 1).unwrap().doc.node_count() as u64)
            * DOC_NODE_BYTES;
        assert_eq!(both, guide_part + docs_part, "shared guide counted once");
        s.unpin("a", pin.seq);
        assert!(s.approx_bytes() < both);
    }

    #[test]
    fn evict_drops_all_versions_even_pinned() {
        let mut s = SnapshotStore::new();
        let (d, g) = snap_parts("<r/>");
        s.publish("a", Arc::clone(&d), Arc::clone(&g));
        s.pin_latest("a").unwrap();
        s.publish("a", d, g);
        assert_eq!(s.live("a"), 2);
        assert_eq!(s.evict("a"), 2);
        assert_eq!(s.live("a"), 0);
        assert_eq!(s.approx_bytes(), 0);
        assert_eq!(s.evict("a"), 0, "second evict is a no-op");
    }

    #[test]
    fn total_live_spans_documents() {
        let mut s = SnapshotStore::new();
        let (d, g) = snap_parts("<r/>");
        s.publish("a", Arc::clone(&d), Arc::clone(&g));
        s.publish("b", d, g);
        assert_eq!(s.total_live(), 2);
    }
}
