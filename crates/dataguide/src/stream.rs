//! Streaming DataGuide construction and the guide wire format.
//!
//! [`GuideBuilder`] consumes the same [`XmlEvent`] stream every other
//! ingestion consumer uses and grows a [`DataGuide`] incrementally — one
//! `ensure_child` + extent bump per labelled event, O(depth) transient
//! state. Feeding it a document's events yields exactly
//! [`DataGuide::build`] of that document (asserted by the workspace
//! property tests), so a generator or tokenizer run can produce the
//! document tree *and* its guide in a single pass (via
//! [`dtx_xml::stream::Tee`]) instead of re-walking the finished tree.
//!
//! [`DataGuide::to_wire`] / [`DataGuide::from_wire`] are the textual wire
//! format used to ship a guide alongside a document during replica
//! bootstrap — the serde derives in this workspace are offline no-op
//! shims, so shipping needs an explicit codec. The format is
//! line-oriented and versioned: one header, then one `label-path` node
//! per line in id order.

use crate::{DataGuide, GuideId};
use dtx_xml::stream::{EventSink, XmlEvent};
use dtx_xml::{XmlError, XmlResult};

/// Builds a [`DataGuide`] from an XML event stream.
pub struct GuideBuilder {
    guide: Option<DataGuide>,
    stack: Vec<GuideId>,
}

impl Default for GuideBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl GuideBuilder {
    /// An empty builder; the guide root is created by the first
    /// `StartElement`.
    pub fn new() -> Self {
        GuideBuilder {
            guide: None,
            stack: Vec::new(),
        }
    }

    /// A builder that grows an existing guide (used when a site absorbs a
    /// second fragment of a document it already hosts). Events are
    /// classified against `guide`'s root: the incoming stream's root
    /// label must match.
    pub fn over(guide: DataGuide) -> Self {
        GuideBuilder {
            guide: Some(guide),
            stack: Vec::new(),
        }
    }

    /// Finishes the build.
    pub fn finish(self) -> XmlResult<DataGuide> {
        self.guide
            .ok_or_else(|| XmlError::InvalidTreeOp("event stream contained no root".into()))
    }
}

impl EventSink for GuideBuilder {
    fn event(&mut self, ev: &XmlEvent<'_>) -> XmlResult<()> {
        match ev {
            XmlEvent::StartElement { name } => match (&mut self.guide, self.stack.is_empty()) {
                (None, _) => {
                    let guide = DataGuide::new(name);
                    self.stack.push(guide.root());
                    self.guide = Some(guide);
                }
                (Some(guide), true) => {
                    // Re-entering the root of an absorbed stream: paths
                    // merge, the root extent stays 1 (one logical root).
                    if guide.node(guide.root()).label != name.as_ref() {
                        return Err(XmlError::InvalidTreeOp(format!(
                            "absorbed stream root {:?} does not match guide root {:?}",
                            name,
                            guide.node(guide.root()).label
                        )));
                    }
                    self.stack.push(guide.root());
                }
                (Some(guide), false) => {
                    let top = *self.stack.last().expect("non-empty");
                    let gid = guide.ensure_child(top, name, false);
                    guide.add_extent(gid, 1);
                    self.stack.push(gid);
                }
            },
            XmlEvent::Attribute { name, .. } => {
                let Some(guide) = &mut self.guide else {
                    return Err(XmlError::InvalidTreeOp("attribute before root".into()));
                };
                let top = *self
                    .stack
                    .last()
                    .ok_or_else(|| XmlError::InvalidTreeOp("attribute outside element".into()))?;
                let gid = guide.ensure_child(top, name, true);
                guide.add_extent(gid, 1);
            }
            XmlEvent::Text { .. } => {
                // Text is summarized by its parent element's guide node.
            }
            XmlEvent::EndElement { .. } => {
                self.stack
                    .pop()
                    .ok_or_else(|| XmlError::InvalidTreeOp("unbalanced EndElement".into()))?;
            }
        }
        Ok(())
    }
}

/// Magic header of the guide wire format (versioned so future layouts can
/// coexist with shipped snapshots).
const WIRE_HEADER: &str = "dataguide/1";

impl DataGuide {
    /// Builds a guide by pumping a tokenizer over `xml` — the streaming
    /// replacement for `DataGuide::build(&parse(xml))` when the tree is
    /// not otherwise needed (O(depth) transient memory).
    pub fn from_xml_stream(xml: &str) -> XmlResult<DataGuide> {
        let mut builder = GuideBuilder::new();
        dtx_xml::stream::pump(&mut dtx_xml::stream::XmlTokenizer::new(xml), &mut builder)?;
        builder.finish()
    }

    /// Serializes the guide for shipment (replica bootstrap). Line
    /// format, after the `dataguide/1` header: one node per line in id
    /// order — `parent-id kind extent label` with `kind` `e`/`a` and the
    /// root's parent written as `-`. Labels go last so embedded
    /// whitespace survives (labels cannot contain newlines: they are XML
    /// names plus interned strings, and [`DataGuide::from_wire`] rejects
    /// any line that would imply one).
    pub fn to_wire(&self) -> String {
        let mut out = String::with_capacity(self.len() * 24);
        out.push_str(WIRE_HEADER);
        out.push('\n');
        for id in 0..self.len() {
            let n = self.node(GuideId(id as u32));
            match n.parent {
                Some(p) => out.push_str(&p.0.to_string()),
                None => out.push('-'),
            }
            out.push(' ');
            out.push(if n.is_attr { 'a' } else { 'e' });
            out.push(' ');
            out.push_str(&n.extent.to_string());
            out.push(' ');
            out.push_str(&n.label);
            out.push('\n');
        }
        out
    }

    /// Reconstructs a guide from its wire form. Errors on malformed
    /// input (wrong header, dangling parents, non-root without parent).
    pub fn from_wire(wire: &str) -> Result<DataGuide, String> {
        let mut lines = wire.lines();
        match lines.next() {
            Some(WIRE_HEADER) => {}
            other => return Err(format!("bad guide wire header: {other:?}")),
        }
        let mut guide: Option<DataGuide> = None;
        for (i, line) in lines.enumerate() {
            let mut parts = line.splitn(4, ' ');
            let (Some(parent), Some(kind), Some(extent), Some(label)) =
                (parts.next(), parts.next(), parts.next(), parts.next())
            else {
                return Err(format!("guide wire line {i} malformed: {line:?}"));
            };
            let is_attr = match kind {
                "e" => false,
                "a" => true,
                other => return Err(format!("guide wire line {i}: bad kind {other:?}")),
            };
            let extent: u64 = extent
                .parse()
                .map_err(|_| format!("guide wire line {i}: bad extent {extent:?}"))?;
            match (&mut guide, parent) {
                (None, "-") => {
                    if is_attr {
                        return Err("guide root cannot be an attribute".into());
                    }
                    let mut g = DataGuide::new(label);
                    g.add_extent(g.root(), extent as i64 - 1);
                    guide = Some(g);
                }
                (None, _) => return Err("guide wire: first node must be the root".into()),
                (Some(_), "-") => {
                    return Err(format!("guide wire line {i}: second root {label:?}"))
                }
                (Some(g), parent) => {
                    let pid: u32 = parent
                        .parse()
                        .map_err(|_| format!("guide wire line {i}: bad parent {parent:?}"))?;
                    if pid as usize >= g.len() {
                        return Err(format!("guide wire line {i}: dangling parent {pid}"));
                    }
                    let gid = g.ensure_child(GuideId(pid), label, is_attr);
                    if gid.index() != i {
                        return Err(format!(
                            "guide wire line {i}: duplicate node under parent {pid}"
                        ));
                    }
                    g.add_extent(gid, extent as i64);
                }
            }
        }
        guide.ok_or_else(|| "guide wire contained no nodes".into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtx_xml::parse;
    use dtx_xml::stream::{pump, XmlTokenizer};

    const XML: &str = "<people>\
        <person status=\"a\"><id>1</id><name>Ana</name></person>\
        <person><id>2</id><name>Bruno</name><phone>555</phone></person>\
        </people>";

    fn guides_equal(a: &DataGuide, b: &DataGuide) -> bool {
        if a.len() != b.len() {
            return false;
        }
        (0..a.len()).all(|i| {
            let (na, nb) = (a.node(GuideId(i as u32)), b.node(GuideId(i as u32)));
            na.label == nb.label
                && na.is_attr == nb.is_attr
                && na.parent == nb.parent
                && na.extent == nb.extent
                && na.children == nb.children
        })
    }

    #[test]
    fn stream_build_matches_tree_build() {
        let tree_guide = DataGuide::build(&parse(XML).unwrap());
        let stream_guide = DataGuide::from_xml_stream(XML).unwrap();
        assert!(guides_equal(&tree_guide, &stream_guide));
    }

    #[test]
    fn builder_over_absorbs_second_fragment() {
        let mut g =
            DataGuide::from_xml_stream("<people><person><id>1</id></person></people>").unwrap();
        let mut b = GuideBuilder::over(g.clone());
        pump(
            &mut XmlTokenizer::new("<people><person><email>x</email></person></people>"),
            &mut b,
        )
        .unwrap();
        g.absorb(&parse("<people><person><email>x</email></person></people>").unwrap());
        let absorbed = b.finish().unwrap();
        assert!(guides_equal(&g, &absorbed));
    }

    #[test]
    fn mismatched_absorb_root_is_error() {
        let g = DataGuide::from_xml_stream("<people/>").unwrap();
        let mut b = GuideBuilder::over(g);
        let err = pump(&mut XmlTokenizer::new("<products/>"), &mut b);
        assert!(err.is_err());
    }

    #[test]
    fn wire_round_trip() {
        let g = DataGuide::from_xml_stream(XML).unwrap();
        let wire = g.to_wire();
        let back = DataGuide::from_wire(&wire).unwrap();
        assert!(guides_equal(&g, &back), "{wire}");
        // Shipped size is bounded by guide size, not document size.
        assert!(wire.len() < XML.len());
    }

    #[test]
    fn wire_rejects_malformed_input() {
        assert!(DataGuide::from_wire("").is_err());
        assert!(DataGuide::from_wire("nonsense/9\n").is_err());
        assert!(DataGuide::from_wire("dataguide/1\n").is_err());
        assert!(DataGuide::from_wire("dataguide/1\n0 e 1 notroot\n").is_err());
        assert!(DataGuide::from_wire("dataguide/1\n- e 1 r\n9 e 1 dangling\n").is_err());
        assert!(DataGuide::from_wire("dataguide/1\n- a 1 r\n").is_err());
        assert!(DataGuide::from_wire("dataguide/1\n- e x r\n").is_err());
    }

    #[test]
    fn wire_preserves_zero_extents_and_attrs() {
        let mut g = DataGuide::from_xml_stream("<r><x a=\"1\"/></r>").unwrap();
        let stale = g.ensure_path(&["gone"]);
        assert_eq!(g.node(stale).extent, 0);
        let back = DataGuide::from_wire(&g.to_wire()).unwrap();
        assert!(guides_equal(&g, &back));
    }
}
