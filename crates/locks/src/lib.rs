//! # dtx-locks — lock modes, lock table, wait-for graphs and protocols
//!
//! This crate implements the concurrency-control vocabulary of DTX:
//!
//! * [`LockMode`] — the eight XDGL lock modes (paper §2: SI, SA, SB, X,
//!   ST, XT, IS, IX) and their compatibility matrix;
//! * [`LockTable`] — per-site table of granted locks keyed by DataGuide
//!   node, with re-entrant acquisition, upgrades, and bulk release at
//!   commit/abort (strict 2PL);
//! * [`WaitForGraph`] — the per-site waits-for relation, with cycle
//!   detection, graph union (the distributed detector of Algorithm 4
//!   merges all sites' graphs), and newest-transaction victim selection;
//! * [`LockProtocol`] implementations:
//!   [`protocol::Xdgl`] — the paper's adapted XDGL rules;
//!   [`protocol::Node2Pl`] — the coarse tree-locking baseline the
//!   evaluation compares against ("DTX with locks in trees");
//!   [`protocol::DocLock`] — the "traditional technique which makes use
//!   \[of\] a complete lock on the document" mentioned in §3.2.
//!
//! The paper stresses DTX's flexibility — "other concurrency control
//! protocols can be employed" — which is exactly the [`LockProtocol`]
//! trait boundary here: the scheduler and lock manager in `dtx-core` are
//! protocol-agnostic.

#![deny(missing_docs)]

pub mod modes;
pub mod protocol;
pub mod table;
pub mod txn;
pub mod wfg;

pub use modes::LockMode;
pub use protocol::{DocLock, LockProtocol, LockRequest, Node2Pl, ProtocolKind, TxnMode, Xdgl};
pub use table::{LockOutcome, LockTable};
pub use txn::TxnId;
pub use wfg::WaitForGraph;
