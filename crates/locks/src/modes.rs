//! The eight XDGL lock modes and their compatibility matrix.
//!
//! Paper §2: "Locks in nodes and in trees have together eight types."
//!
//! * Node locks: [`LockMode::SI`] / [`LockMode::SA`] / [`LockMode::SB`]
//!   (shared *into/after/before*, protecting an insertion anchor from
//!   modification while permitting concurrent inserts), and
//!   [`LockMode::X`] (exclusive on the node to be modified).
//! * Tree locks: [`LockMode::ST`] (shared tree: protects a DataGuide
//!   subtree from updates) and [`LockMode::XT`] (exclusive tree: protects
//!   it from reads *and* updates).
//! * Intention locks: [`LockMode::IS`] on each ancestor of a node locked
//!   in a shared mode, [`LockMode::IX`] on each ancestor of a node locked
//!   in an exclusive mode.
//!
//! The paper defers the full compatibility matrix to the XDGL paper and a
//! thesis; DESIGN.md documents the reconstruction implemented here. The
//! matrix is validated against the paper's own worked example in
//! `scenario` tests: a transaction requesting IX on a node holding ST must
//! conflict (Fig. 6), and SI/SA/SB must be mutually compatible (that is
//! the insert-concurrency gain XDGL exists for).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A lock mode of the XDGL protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum LockMode {
    /// Intention shared — placed on each ancestor of a shared-locked node.
    IS = 0,
    /// Intention exclusive — placed on each ancestor of an
    /// exclusively-locked node.
    IX = 1,
    /// Shared *into*: protects an insertion anchor (child list tail).
    SI = 2,
    /// Shared *after*: protects the position after the anchor sibling.
    SA = 3,
    /// Shared *before*: protects the position before the anchor sibling.
    SB = 4,
    /// Shared tree: read-locks a whole DataGuide subtree against updates.
    ST = 5,
    /// Exclusive (node): the single node being modified.
    X = 6,
    /// Exclusive tree: locks a whole subtree against reads and updates.
    XT = 7,
}

impl LockMode {
    /// All modes, in matrix order.
    pub const ALL: [LockMode; 8] = [
        LockMode::IS,
        LockMode::IX,
        LockMode::SI,
        LockMode::SA,
        LockMode::SB,
        LockMode::ST,
        LockMode::X,
        LockMode::XT,
    ];

    /// True when a holder in `self` permits a concurrent `requested` lock
    /// by a *different* transaction (the same transaction is always
    /// compatible with itself).
    ///
    /// The matrix (row = held, column = requested):
    ///
    /// ```text
    ///       IS  IX  SI  SA  SB  ST  X   XT
    /// IS    ✓   ✓   ✓   ✓   ✓   ✓   ✗   ✗
    /// IX    ✓   ✓   ✓   ✓   ✓   ✗   ✗   ✗
    /// SI    ✓   ✓   ✓   ✓   ✓   ✓   ✗   ✗
    /// SA    ✓   ✓   ✓   ✓   ✓   ✓   ✗   ✗
    /// SB    ✓   ✓   ✓   ✓   ✓   ✓   ✗   ✗
    /// ST    ✓   ✗   ✓   ✓   ✓   ✓   ✗   ✗
    /// X     ✗   ✗   ✗   ✗   ✗   ✗   ✗   ✗
    /// XT    ✗   ✗   ✗   ✗   ✗   ✗   ✗   ✗
    /// ```
    #[inline]
    pub fn compatible(self, requested: LockMode) -> bool {
        COMPAT[self as usize][requested as usize]
    }

    /// True for the two exclusive modes (X, XT).
    pub fn is_exclusive(self) -> bool {
        matches!(self, LockMode::X | LockMode::XT)
    }

    /// True for intention modes (IS, IX).
    pub fn is_intention(self) -> bool {
        matches!(self, LockMode::IS | LockMode::IX)
    }

    /// True for tree-scoped modes (ST, XT).
    pub fn is_tree(self) -> bool {
        matches!(self, LockMode::ST | LockMode::XT)
    }

    /// The intention mode to place on ancestors of a node locked in
    /// `self`: IX for exclusive modes, IS for shared ones. Intention modes
    /// propagate themselves.
    pub fn intention(self) -> LockMode {
        match self {
            LockMode::X | LockMode::XT | LockMode::IX => LockMode::IX,
            _ => LockMode::IS,
        }
    }

    /// A partial strength order used for upgrade detection: `self` covers
    /// `other` when every conflict of `other` is also a conflict of
    /// `self`, so holding `self` makes requesting `other` redundant.
    pub fn covers(self, other: LockMode) -> bool {
        if self == other {
            return true;
        }
        match (self, other) {
            (LockMode::XT, _) => true,
            (LockMode::X, m) => m != LockMode::XT,
            (LockMode::ST, LockMode::IS) => true,
            (LockMode::IX, LockMode::IS) => true,
            (LockMode::SI | LockMode::SA | LockMode::SB, LockMode::IS) => true,
            _ => false,
        }
    }
}

/// Compatibility table; see [`LockMode::compatible`].
const T: bool = true;
const F: bool = false;
static COMPAT: [[bool; 8]; 8] = [
    //            IS IX SI SA SB ST X  XT
    /* IS */ [T, T, T, T, T, T, F, F],
    /* IX */ [T, T, T, T, T, F, F, F],
    /* SI */ [T, T, T, T, T, T, F, F],
    /* SA */ [T, T, T, T, T, T, F, F],
    /* SB */ [T, T, T, T, T, T, F, F],
    /* ST */ [T, F, T, T, T, T, F, F],
    /* X  */ [F, F, F, F, F, F, F, F],
    /* XT */ [F, F, F, F, F, F, F, F],
];

impl LockMode {
    /// The mode's short name (`"IS"`, `"XT"`, …) as a static string —
    /// what lock trace events are stamped with.
    pub fn name(self) -> &'static str {
        match self {
            LockMode::IS => "IS",
            LockMode::IX => "IX",
            LockMode::SI => "SI",
            LockMode::SA => "SA",
            LockMode::SB => "SB",
            LockMode::ST => "ST",
            LockMode::X => "X",
            LockMode::XT => "XT",
        }
    }
}

impl fmt::Display for LockMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use LockMode::*;

    #[test]
    fn matrix_is_symmetric() {
        // Lock compatibility must be symmetric: if held A admits B, held B
        // admits A.
        for a in LockMode::ALL {
            for b in LockMode::ALL {
                assert_eq!(
                    a.compatible(b),
                    b.compatible(a),
                    "asymmetry between {a} and {b}"
                );
            }
        }
    }

    #[test]
    fn exclusive_modes_conflict_with_everything() {
        for m in LockMode::ALL {
            assert!(!X.compatible(m), "X vs {m}");
            assert!(!XT.compatible(m), "XT vs {m}");
        }
    }

    #[test]
    fn paper_fig6_conflict_reproduced() {
        // Fig. 6: t1 needs IX on a node where t2 holds ST → incompatible.
        assert!(!ST.compatible(IX));
        // And symmetrically a reader arriving at an insert's ancestor.
        assert!(!IX.compatible(ST));
    }

    #[test]
    fn insert_modes_mutually_compatible() {
        // The concurrency XDGL buys: concurrent inserts at the same anchor.
        for a in [SI, SA, SB] {
            for b in [SI, SA, SB] {
                assert!(a.compatible(b), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn readers_do_not_block_readers() {
        assert!(ST.compatible(ST));
        assert!(ST.compatible(IS));
        assert!(IS.compatible(IS));
    }

    #[test]
    fn intention_propagation() {
        assert_eq!(X.intention(), IX);
        assert_eq!(XT.intention(), IX);
        assert_eq!(IX.intention(), IX);
        assert_eq!(ST.intention(), IS);
        assert_eq!(SI.intention(), IS);
        assert_eq!(IS.intention(), IS);
    }

    #[test]
    fn covers_is_consistent_with_matrix() {
        // If a covers b, then anything incompatible with b must be
        // incompatible with a.
        for a in LockMode::ALL {
            for b in LockMode::ALL {
                if a.covers(b) {
                    for c in LockMode::ALL {
                        if !b.compatible(c) {
                            assert!(
                                !a.compatible(c),
                                "{a} covers {b} but admits {c} which {b} does not"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn covers_reflexive() {
        for m in LockMode::ALL {
            assert!(m.covers(m));
        }
    }

    #[test]
    fn predicates_on_kinds() {
        assert!(X.is_exclusive() && XT.is_exclusive());
        assert!(IS.is_intention() && IX.is_intention());
        assert!(ST.is_tree() && XT.is_tree());
        assert!(!SI.is_tree() && !SI.is_exclusive() && !SI.is_intention());
    }
}
