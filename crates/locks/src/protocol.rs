//! Lock-placement rules: which locks each operation must acquire.
//!
//! The paper's rules for XDGL (§2):
//!
//! > "When an XPath expression is run, ST is applied to the target nodes
//! > and IS to its ancestors. While executing an insertion operation, X
//! > lock is used on the node to be inserted and IX is applied on its
//! > ancestors. On the node that connects to the target node, it is
//! > applied a SI lock and an IS one to its ancestors. On the target nodes
//! > of the path-expression predicate are used ST, and IS on its
//! > ancestors. While executing a removing operation, XT locks are applied
//! > to the target nodes and IX to their ancestors. In the nodes that are
//! > part of the path-expression predicate, ST locks are applied to them
//! > and IS locks to their ancestors."
//!
//! Rename/change are node modifications (X + IX ancestors); transpose
//! moves subtrees (XT on both + IX ancestors). Inserts *before*/*after* a
//! sibling use SB/SA on the sibling anchor with SI on the connecting
//! parent.
//!
//! The two baselines mirror §3's evaluation setup:
//!
//! * [`Node2Pl`] — "locks in trees": tree locks (ST/XT) placed on a
//!   *coarse ancestor* of the touched paths (by default the top-level
//!   section under the root), the behaviour of the tree-locking protocols
//!   the paper compares against. The coarseness depth is tunable for
//!   ablation.
//! * [`DocLock`] — the "traditional technique which makes use \[of\] a
//!   complete lock on the document": a single ST/XT on the DataGuide root.

use crate::modes::LockMode;
use dtx_dataguide::{DataGuide, GuideId};
use dtx_xml::document::InsertPos;
use dtx_xpath::{Query, UpdateOp};
use serde::{Deserialize, Serialize};

/// One lock to acquire: a mode on a DataGuide node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LockRequest {
    /// The DataGuide node to lock.
    pub node: GuideId,
    /// The mode to acquire.
    pub mode: LockMode,
}

impl LockRequest {
    /// Convenience constructor.
    pub fn new(node: GuideId, mode: LockMode) -> Self {
        LockRequest { node, mode }
    }
}

/// Whether the requesting transaction contains any update operation.
///
/// Coarse-granularity protocols use this the way document-lock systems do
/// in practice: an *updating* transaction takes exclusive locks from its
/// first touch, avoiding the shared→exclusive upgrade deadlocks that
/// read-then-write patterns cause at document granularity. This is what
/// makes those baselines "more restricted and less concurrent" (paper
/// §3.2.2). Fine-granularity XDGL ignores the hint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TxnMode {
    /// No update operation in the transaction.
    ReadOnly,
    /// At least one update operation.
    Updating,
}

/// A concurrency-control protocol: maps operations to lock requests.
///
/// Implementations receive a mutable guide because insert operations may
/// introduce new label paths that must exist (and be locked) before the
/// data is touched.
pub trait LockProtocol: Send + Sync {
    /// Protocol name for reports.
    fn name(&self) -> &'static str;

    /// Locks needed to evaluate a read-only query.
    fn query_requests(
        &self,
        guide: &mut DataGuide,
        query: &Query,
        mode: TxnMode,
    ) -> Vec<LockRequest>;

    /// Locks needed to execute an update.
    fn update_requests(
        &self,
        guide: &mut DataGuide,
        op: &UpdateOp,
        mode: TxnMode,
    ) -> Vec<LockRequest>;

    /// Lock-management work units for one request, charged by the
    /// operation cost model.
    ///
    /// XDGL's point is that a lock on a DataGuide node is **one** table
    /// entry regardless of how much data the path summarizes ("an
    /// optimized structure to represent locks"). Protocols that lock
    /// *document* trees pay per covered document node — "in DTX with
    /// locks in trees lock management is much greater, since the
    /// application of these locks is in trees and sub-trees of the
    /// document ... if the document grows, the number of locks also
    /// increases" (§3.2.3). The default is the XDGL behaviour: 1 unit.
    fn lock_weight(&self, _guide: &DataGuide, _req: &LockRequest) -> u64 {
        1
    }
}

/// Selector for the protocols shipped with DTX.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProtocolKind {
    /// The paper's adapted XDGL (DataGuide multi-granularity locking).
    Xdgl,
    /// Tree locking at a coarse ancestor ("DTX with locks in trees").
    Node2Pl,
    /// Whole-document locking (traditional 2PL + 2PC baseline).
    DocLock,
}

impl ProtocolKind {
    /// Instantiates the protocol.
    pub fn instantiate(self) -> Box<dyn LockProtocol> {
        match self {
            ProtocolKind::Xdgl => Box::new(Xdgl),
            ProtocolKind::Node2Pl => Box::new(Node2Pl::default()),
            ProtocolKind::DocLock => Box::new(DocLock),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::Xdgl => "XDGL",
            ProtocolKind::Node2Pl => "Node2PL",
            ProtocolKind::DocLock => "DocLock",
        }
    }
}

// ---------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------

/// Pushes `mode` on `node` plus the matching intention mode on every
/// ancestor, ancestors first (top-down multi-granularity order), skipping
/// exact duplicates already queued.
fn push_with_intentions(
    guide: &DataGuide,
    node: GuideId,
    mode: LockMode,
    out: &mut Vec<LockRequest>,
) {
    let intention = mode.intention();
    let mut ancestors = guide.ancestors(node);
    ancestors.reverse(); // root first
    for a in ancestors {
        push_unique(out, LockRequest::new(a, intention));
    }
    push_unique(out, LockRequest::new(node, mode));
}

fn push_unique(out: &mut Vec<LockRequest>, req: LockRequest) {
    if !out.contains(&req) {
        out.push(req);
    }
}

/// Locks the targets of every predicate of `query` with ST (+ IS on
/// ancestors): "On the target nodes of the path-expression predicate are
/// used ST, and IS on its ancestors."
fn predicate_requests(guide: &DataGuide, query: &Query, out: &mut Vec<LockRequest>) {
    for (step_idx, pred) in query.predicates() {
        // Context of the predicate: guide nodes matched by the step prefix
        // up to and including the predicate's step.
        let context = guide.match_steps(&query.steps[..=step_idx]);
        for path in pred.paths() {
            for target in guide.match_relative(&context, path) {
                push_with_intentions(guide, target, LockMode::ST, out);
            }
        }
    }
}

// ---------------------------------------------------------------------
// XDGL
// ---------------------------------------------------------------------

/// The paper's adapted XDGL protocol.
#[derive(Debug, Clone, Copy, Default)]
pub struct Xdgl;

impl LockProtocol for Xdgl {
    fn name(&self) -> &'static str {
        "XDGL"
    }

    fn query_requests(
        &self,
        guide: &mut DataGuide,
        query: &Query,
        _mode: TxnMode,
    ) -> Vec<LockRequest> {
        let mut out = Vec::new();
        for target in guide.match_query(query) {
            push_with_intentions(guide, target, LockMode::ST, &mut out);
        }
        predicate_requests(guide, query, &mut out);
        out
    }

    fn update_requests(
        &self,
        guide: &mut DataGuide,
        op: &UpdateOp,
        _mode: TxnMode,
    ) -> Vec<LockRequest> {
        let mut out = Vec::new();
        match op {
            UpdateOp::Insert {
                target,
                fragment,
                pos,
            } => {
                let anchors = guide.match_query(target);
                for anchor in anchors {
                    // The connecting node (future parent of the new node).
                    let (connect, sibling_mode) = match pos {
                        InsertPos::Into | InsertPos::FirstInto => (anchor, None),
                        InsertPos::Before => (
                            guide.node(anchor).parent.unwrap_or(anchor),
                            Some(LockMode::SB),
                        ),
                        InsertPos::After => (
                            guide.node(anchor).parent.unwrap_or(anchor),
                            Some(LockMode::SA),
                        ),
                    };
                    // SI on the connecting node, IS on its ancestors.
                    push_with_intentions(guide, connect, LockMode::SI, &mut out);
                    // SB/SA on the sibling anchor for positional inserts.
                    if let Some(mode) = sibling_mode {
                        push_with_intentions(guide, anchor, mode, &mut out);
                    }
                    // X on the node to be inserted (its guide path is
                    // created now if new), IX on its ancestors.
                    let new_node = guide.ensure_fragment(connect, fragment);
                    push_with_intentions(guide, new_node, LockMode::X, &mut out);
                }
                predicate_requests(guide, target, &mut out);
            }
            UpdateOp::Remove { target } => {
                for victim in guide.match_query(target) {
                    push_with_intentions(guide, victim, LockMode::XT, &mut out);
                }
                predicate_requests(guide, target, &mut out);
            }
            UpdateOp::Rename { target, new_label } => {
                for victim in guide.match_query(target) {
                    // The renamed path is a *new* label path; ensure and
                    // exclusively lock both old and new guide nodes.
                    push_with_intentions(guide, victim, LockMode::XT, &mut out);
                    if let Some(parent) = guide.node(victim).parent {
                        let is_attr = guide.node(victim).is_attr;
                        let renamed = guide.ensure_child(parent, new_label, is_attr);
                        push_with_intentions(guide, renamed, LockMode::X, &mut out);
                    }
                }
                predicate_requests(guide, target, &mut out);
            }
            UpdateOp::Change { target, .. } => {
                for victim in guide.match_query(target) {
                    push_with_intentions(guide, victim, LockMode::X, &mut out);
                }
                predicate_requests(guide, target, &mut out);
            }
            UpdateOp::Transpose { a, b } => {
                for q in [a, b] {
                    for victim in guide.match_query(q) {
                        push_with_intentions(guide, victim, LockMode::XT, &mut out);
                    }
                    predicate_requests(guide, q, &mut out);
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// Node2PL — coarse tree locking
// ---------------------------------------------------------------------

/// The tree-locking baseline: every operation locks the subtree rooted at
/// the target's ancestor at `depth`, shared for queries, exclusive for
/// updates.
///
/// This reproduces "DTX with locks in trees". The paper describes the
/// related works' strategy as locking "from the query starting point all
/// the way down to the end of the document" — and every query in the DTX
/// subset starts at the document root, so the faithful default is
/// `depth = 0`: document-level tree locks (the paper's §3.2 equally says
/// the related works "carry out the complete lock of the document").
/// Unlike [`DocLock`] (a single cheap document latch), Node2PL *pays per
/// covered document node* in [`LockProtocol::lock_weight`] — the
/// node-at-a-time lock placement of DOM-based protocols, which is what
/// makes its cost grow with document size (§3.2.3). `depth = 1`
/// (section-level subtree locks) is available for ablations.
#[derive(Debug, Clone, Copy, Default)]
pub struct Node2Pl {
    /// Guide depth at which tree locks are placed (0 = root, i.e.
    /// document-level; 1 = top-level sections).
    pub depth: usize,
}

impl Node2Pl {
    /// The ancestor of `node` at the protocol's lock depth.
    fn lock_root(&self, guide: &DataGuide, node: GuideId) -> GuideId {
        // ancestors() is nearest-first and ends at the root.
        let mut chain = vec![node];
        chain.extend(guide.ancestors(node));
        chain.reverse(); // root first: chain[0] = root, chain[d] = depth d
        let idx = self.depth.min(chain.len() - 1);
        chain[idx]
    }

    fn requests(&self, guide: &DataGuide, queries: &[&Query], mode: LockMode) -> Vec<LockRequest> {
        let mut out = Vec::new();
        for q in queries {
            let mut targets = guide.match_query(q);
            // Predicate paths are inside the same subtree for depth-1
            // locks except when they cross sections; lock them too.
            for (step_idx, pred) in q.predicates() {
                let context = guide.match_steps(&q.steps[..=step_idx]);
                for path in pred.paths() {
                    targets.extend(guide.match_relative(&context, path));
                }
            }
            for t in targets {
                let root = self.lock_root(guide, t);
                push_with_intentions(guide, root, mode, &mut out);
            }
        }
        out
    }
}

impl LockProtocol for Node2Pl {
    fn name(&self) -> &'static str {
        "Node2PL"
    }

    fn query_requests(
        &self,
        guide: &mut DataGuide,
        query: &Query,
        mode: TxnMode,
    ) -> Vec<LockRequest> {
        // Updating transactions tree-lock exclusively from the start
        // (upgrade-deadlock avoidance at coarse granularity).
        let lock = if mode == TxnMode::Updating {
            LockMode::XT
        } else {
            LockMode::ST
        };
        self.requests(guide, &[query], lock)
    }

    fn update_requests(
        &self,
        guide: &mut DataGuide,
        op: &UpdateOp,
        _mode: TxnMode,
    ) -> Vec<LockRequest> {
        // Make sure insert targets exist in the guide so future queries
        // classify them (parity with XDGL's ensure_fragment).
        if let UpdateOp::Insert {
            target,
            fragment,
            pos,
        } = op
        {
            let anchors = guide.match_query(target);
            for anchor in anchors {
                let connect = match pos {
                    InsertPos::Into | InsertPos::FirstInto => anchor,
                    InsertPos::Before | InsertPos::After => {
                        guide.node(anchor).parent.unwrap_or(anchor)
                    }
                };
                guide.ensure_fragment(connect, fragment);
            }
        }
        self.requests(guide, &op.queries(), LockMode::XT)
    }

    /// Tree locks in the document pay one unit per covered document node
    /// per path level: node-granularity protocols place a lock on every
    /// covered node *and* intention entries on each of its ancestors
    /// (taDOM-style), so the work per covered node scales with depth.
    /// Intention locks at the guide level are single entries.
    fn lock_weight(&self, guide: &DataGuide, req: &LockRequest) -> u64 {
        if req.mode.is_tree() {
            let depth = (guide.ancestors(req.node).len() + 2) as u64;
            guide.subtree_extent(req.node).max(1) * depth
        } else {
            1
        }
    }
}

// ---------------------------------------------------------------------
// DocLock — whole-document locking
// ---------------------------------------------------------------------

/// The traditional baseline: one shared/exclusive lock on the whole
/// document (the DataGuide root).
#[derive(Debug, Clone, Copy, Default)]
pub struct DocLock;

impl LockProtocol for DocLock {
    fn name(&self) -> &'static str {
        "DocLock"
    }

    fn query_requests(
        &self,
        guide: &mut DataGuide,
        _query: &Query,
        mode: TxnMode,
    ) -> Vec<LockRequest> {
        let lock = if mode == TxnMode::Updating {
            LockMode::XT
        } else {
            LockMode::ST
        };
        vec![LockRequest::new(guide.root(), lock)]
    }

    fn update_requests(
        &self,
        guide: &mut DataGuide,
        op: &UpdateOp,
        _mode: TxnMode,
    ) -> Vec<LockRequest> {
        if let UpdateOp::Insert {
            target,
            fragment,
            pos,
        } = op
        {
            let anchors = guide.match_query(target);
            for anchor in anchors {
                let connect = match pos {
                    InsertPos::Into | InsertPos::FirstInto => anchor,
                    InsertPos::Before | InsertPos::After => {
                        guide.node(anchor).parent.unwrap_or(anchor)
                    }
                };
                guide.ensure_fragment(connect, fragment);
            }
        }
        vec![LockRequest::new(guide.root(), LockMode::XT)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtx_xml::document::Fragment;
    use dtx_xml::parse;
    use LockMode::*;
    use TxnMode::{ReadOnly, Updating};

    /// Builds the paper's d2 DataGuide: products → product → {id,
    /// description, price} (Fig. 5).
    fn d2_guide() -> DataGuide {
        let doc = parse(
            "<products><product><id>4</id><description>Monitor</description>\
             <price>120.00</price></product></products>",
        )
        .unwrap();
        DataGuide::build(&doc)
    }

    fn q(s: &str) -> Query {
        Query::parse(s).unwrap()
    }

    fn modes_on(reqs: &[LockRequest], node: GuideId) -> Vec<LockMode> {
        reqs.iter()
            .filter(|r| r.node == node)
            .map(|r| r.mode)
            .collect()
    }

    #[test]
    fn query_locks_st_on_target_is_on_ancestors() {
        let mut g = d2_guide();
        let reqs = Xdgl.query_requests(&mut g, &q("/products/product"), ReadOnly);
        let product = g.child(g.root(), "product", false).unwrap();
        assert_eq!(modes_on(&reqs, product), vec![ST]);
        assert_eq!(modes_on(&reqs, g.root()), vec![IS]);
        // Ancestors come first (top-down MGL order).
        assert_eq!(reqs[0], LockRequest::new(g.root(), IS));
    }

    #[test]
    fn query_predicate_targets_get_st() {
        let mut g = d2_guide();
        let reqs = Xdgl.query_requests(&mut g, &q("/products/product[id=4]/price"), ReadOnly);
        let product = g.child(g.root(), "product", false).unwrap();
        let id = g.child(product, "id", false).unwrap();
        let price = g.child(product, "price", false).unwrap();
        assert_eq!(modes_on(&reqs, price), vec![ST]);
        assert_eq!(modes_on(&reqs, id), vec![ST]);
        // product is an ancestor of both targets → IS.
        assert_eq!(modes_on(&reqs, product), vec![IS]);
    }

    #[test]
    fn insert_follows_paper_rules() {
        // The paper's t1op2: insert a product into /products. X on the new
        // product node, IX on ancestors, SI on the connect node (products
        // root), IS on its ancestors (none beyond root here).
        let mut g = d2_guide();
        let frag = Fragment::elem(
            "product",
            vec![
                Fragment::elem_text("id", "13"),
                Fragment::elem_text("price", "10.30"),
            ],
        );
        let op = UpdateOp::Insert {
            target: q("/products"),
            fragment: frag,
            pos: dtx_xml::document::InsertPos::Into,
        };
        let reqs = Xdgl.update_requests(&mut g, &op, Updating);
        let product = g.child(g.root(), "product", false).unwrap();
        let root_modes = modes_on(&reqs, g.root());
        assert!(
            root_modes.contains(&SI),
            "connect node gets SI, got {root_modes:?}"
        );
        assert!(root_modes.contains(&IX), "ancestor of X gets IX");
        assert_eq!(modes_on(&reqs, product), vec![X]);
    }

    #[test]
    fn paper_fig6_incompatibility_reproduced() {
        // t2 queries all products: ST on product node + IS above.
        // t1 inserts a product: needs IX on the products root... and the
        // insert's X on `product` conflicts with t2's ST on `product`.
        let mut g = d2_guide();
        let query_reqs = Xdgl.query_requests(&mut g, &q("/products/product"), ReadOnly);
        let frag = Fragment::elem("product", vec![Fragment::elem_text("id", "13")]);
        let insert_reqs = Xdgl.update_requests(
            &mut g,
            &UpdateOp::Insert {
                target: q("/products"),
                fragment: frag,
                pos: dtx_xml::document::InsertPos::Into,
            },
            TxnMode::Updating,
        );
        // Simulate both acquiring via the table.
        let mut table = crate::table::LockTable::new();
        for r in &query_reqs {
            assert!(table
                .try_acquire(crate::TxnId(2), r.node, r.mode)
                .is_granted());
        }
        let mut conflicted = false;
        for r in &insert_reqs {
            if !table
                .try_acquire(crate::TxnId(1), r.node, r.mode)
                .is_granted()
            {
                conflicted = true;
                break;
            }
        }
        assert!(conflicted, "insert must conflict with a full-scan query");
    }

    #[test]
    fn concurrent_inserts_do_not_conflict() {
        // Two inserts of different products: SI+SI on the connect node,
        // X on the same `product` guide node — the guide summarizes both
        // products into one path, so same-type inserts DO serialize (the
        // price of path-granularity); inserts of *different element types*
        // proceed concurrently.
        let mut g = d2_guide();
        g.ensure_path(&["vendor"]); // second section
        let ins_product = Xdgl.update_requests(
            &mut g,
            &UpdateOp::Insert {
                target: q("/products"),
                fragment: Fragment::elem("product", vec![]),
                pos: dtx_xml::document::InsertPos::Into,
            },
            TxnMode::Updating,
        );
        let ins_vendor = Xdgl.update_requests(
            &mut g,
            &UpdateOp::Insert {
                target: q("/products"),
                fragment: Fragment::elem("vendor", vec![]),
                pos: dtx_xml::document::InsertPos::Into,
            },
            TxnMode::Updating,
        );
        let mut table = crate::table::LockTable::new();
        for r in &ins_product {
            assert!(table
                .try_acquire(crate::TxnId(1), r.node, r.mode)
                .is_granted());
        }
        for r in &ins_vendor {
            assert!(
                table
                    .try_acquire(crate::TxnId(2), r.node, r.mode)
                    .is_granted(),
                "different-type inserts must be concurrent (req {r:?})"
            );
        }
    }

    #[test]
    fn insert_before_uses_sb_on_anchor() {
        let mut g = d2_guide();
        let product = g.child(g.root(), "product", false).unwrap();
        let op = UpdateOp::Insert {
            target: q("/products/product"),
            fragment: Fragment::elem("banner", vec![]),
            pos: dtx_xml::document::InsertPos::Before,
        };
        let reqs = Xdgl.update_requests(&mut g, &op, Updating);
        assert!(modes_on(&reqs, product).contains(&SB));
        assert!(modes_on(&reqs, g.root()).contains(&SI)); // connect = parent
    }

    #[test]
    fn insert_after_uses_sa_on_anchor() {
        let mut g = d2_guide();
        let product = g.child(g.root(), "product", false).unwrap();
        let op = UpdateOp::Insert {
            target: q("/products/product"),
            fragment: Fragment::elem("banner", vec![]),
            pos: dtx_xml::document::InsertPos::After,
        };
        let reqs = Xdgl.update_requests(&mut g, &op, Updating);
        assert!(modes_on(&reqs, product).contains(&SA));
    }

    #[test]
    fn remove_locks_xt_on_target() {
        let mut g = d2_guide();
        let product = g.child(g.root(), "product", false).unwrap();
        let reqs = Xdgl.update_requests(
            &mut g,
            &UpdateOp::Remove {
                target: q("/products/product[id=14]"),
            },
            Updating,
        );
        // XT on the victim, plus IS as ancestor of the predicate target.
        assert!(modes_on(&reqs, product).contains(&XT));
        assert!(modes_on(&reqs, g.root()).contains(&IX));
        // Predicate path /id under product gets ST.
        let id = g.child(product, "id", false).unwrap();
        assert!(modes_on(&reqs, id).contains(&ST));
    }

    #[test]
    fn change_locks_x_on_target() {
        let mut g = d2_guide();
        let product = g.child(g.root(), "product", false).unwrap();
        let price = g.child(product, "price", false).unwrap();
        let reqs = Xdgl.update_requests(
            &mut g,
            &UpdateOp::Change {
                target: q("/products/product/price"),
                new_value: "1".into(),
            },
            TxnMode::Updating,
        );
        assert_eq!(modes_on(&reqs, price), vec![X]);
        assert!(modes_on(&reqs, product).contains(&IX));
    }

    #[test]
    fn rename_locks_old_and_new_paths() {
        let mut g = d2_guide();
        let product = g.child(g.root(), "product", false).unwrap();
        let reqs = Xdgl.update_requests(
            &mut g,
            &UpdateOp::Rename {
                target: q("/products/product/description"),
                new_label: "title".into(),
            },
            TxnMode::Updating,
        );
        let desc = g.child(product, "description", false).unwrap();
        let title = g.child(product, "title", false).expect("new path ensured");
        assert_eq!(modes_on(&reqs, desc), vec![XT]);
        assert_eq!(modes_on(&reqs, title), vec![X]);
    }

    #[test]
    fn transpose_locks_both_subtrees() {
        let mut g = d2_guide();
        let product = g.child(g.root(), "product", false).unwrap();
        let id = g.child(product, "id", false).unwrap();
        let price = g.child(product, "price", false).unwrap();
        let reqs = Xdgl.update_requests(
            &mut g,
            &UpdateOp::Transpose {
                a: q("/products/product/id"),
                b: q("/products/product/price"),
            },
            TxnMode::Updating,
        );
        assert_eq!(modes_on(&reqs, id), vec![XT]);
        assert_eq!(modes_on(&reqs, price), vec![XT]);
    }

    #[test]
    fn node2pl_default_locks_document_root() {
        let mut g = d2_guide();
        let n2pl = Node2Pl::default();
        let reqs = n2pl.query_requests(&mut g, &q("/products/product/price"), ReadOnly);
        assert_eq!(modes_on(&reqs, g.root()), vec![ST]);
        let upd = n2pl.update_requests(
            &mut g,
            &UpdateOp::Change {
                target: q("/products/product/price"),
                new_value: "0".into(),
            },
            TxnMode::Updating,
        );
        assert_eq!(modes_on(&upd, g.root()), vec![XT]);
    }

    #[test]
    fn node2pl_section_depth_locks_section_subtrees() {
        let mut g = d2_guide();
        let product = g.child(g.root(), "product", false).unwrap();
        let n2pl = Node2Pl { depth: 1 };
        // A deep query locks at depth 1 (the `product` child of the root).
        let reqs = n2pl.query_requests(&mut g, &q("/products/product/price"), ReadOnly);
        assert_eq!(modes_on(&reqs, product), vec![ST]);
        // Updates exclusive-tree-lock the same section → readers of ANY
        // product path block.
        let upd = n2pl.update_requests(
            &mut g,
            &UpdateOp::Change {
                target: q("/products/product/price"),
                new_value: "0".into(),
            },
            TxnMode::Updating,
        );
        assert_eq!(modes_on(&upd, product), vec![XT]);
    }

    #[test]
    fn node2pl_weight_scales_with_covered_extent() {
        // The node-at-a-time cost model: a tree lock pays per covered
        // document node (times depth), XDGL pays 1 per request.
        let mut g = d2_guide();
        let root_req = LockRequest::new(g.root(), XT);
        let n2pl = Node2Pl::default();
        assert!(n2pl.lock_weight(&g, &root_req) >= g.subtree_extent(g.root()));
        assert_eq!(Xdgl.lock_weight(&g, &root_req), 1);
        assert_eq!(DocLock.lock_weight(&g, &root_req), 1);
        // Intention locks are single entries for everyone.
        let is_req = LockRequest::new(g.root(), IS);
        assert_eq!(n2pl.lock_weight(&g, &is_req), 1);
        let _ = &mut g;
    }

    #[test]
    fn node2pl_coarser_than_xdgl() {
        // The whole point of the evaluation: XDGL admits a read of /id
        // concurrent with a change of /price; Node2PL does not.
        let mut table = crate::table::LockTable::new();
        let mut g = d2_guide();
        let n2pl = Node2Pl { depth: 1 };
        let read = n2pl.query_requests(&mut g, &q("/products/product/id"), ReadOnly);
        let write = n2pl.update_requests(
            &mut g,
            &UpdateOp::Change {
                target: q("/products/product/price"),
                new_value: "0".into(),
            },
            TxnMode::Updating,
        );
        for r in &read {
            assert!(table
                .try_acquire(crate::TxnId(1), r.node, r.mode)
                .is_granted());
        }
        let blocked = write.iter().any(|r| {
            !table
                .try_acquire(crate::TxnId(2), r.node, r.mode)
                .is_granted()
        });
        assert!(blocked, "Node2PL must block write vs read in same section");

        // XDGL grants the same pair.
        let mut table = crate::table::LockTable::new();
        let read = Xdgl.query_requests(&mut g, &q("/products/product/id"), ReadOnly);
        let write = Xdgl.update_requests(
            &mut g,
            &UpdateOp::Change {
                target: q("/products/product/price"),
                new_value: "0".into(),
            },
            TxnMode::Updating,
        );
        for r in &read {
            assert!(table
                .try_acquire(crate::TxnId(1), r.node, r.mode)
                .is_granted());
        }
        for r in &write {
            assert!(
                table
                    .try_acquire(crate::TxnId(2), r.node, r.mode)
                    .is_granted(),
                "XDGL must admit disjoint read/write (req {r:?})"
            );
        }
    }

    #[test]
    fn doclock_single_request() {
        let mut g = d2_guide();
        let reqs = DocLock.query_requests(&mut g, &q("/products/product"), ReadOnly);
        assert_eq!(reqs, vec![LockRequest::new(g.root(), ST)]);
        let upd = DocLock.update_requests(
            &mut g,
            &UpdateOp::Remove {
                target: q("/products/product"),
            },
            TxnMode::Updating,
        );
        assert_eq!(upd, vec![LockRequest::new(g.root(), XT)]);
    }

    #[test]
    fn request_counts_reflect_granularity() {
        // XDGL requests more, finer locks; DocLock exactly one.
        let mut g = d2_guide();
        let query = q("/products/product[id=4]/price");
        let xdgl = Xdgl.query_requests(&mut g, &query, ReadOnly).len();
        let doc = DocLock.query_requests(&mut g, &query, ReadOnly).len();
        assert!(xdgl > doc);
        assert_eq!(doc, 1);
    }

    #[test]
    fn protocol_kind_instantiation() {
        for (kind, name) in [
            (ProtocolKind::Xdgl, "XDGL"),
            (ProtocolKind::Node2Pl, "Node2PL"),
            (ProtocolKind::DocLock, "DocLock"),
        ] {
            assert_eq!(kind.instantiate().name(), name);
            assert_eq!(kind.name(), name);
        }
    }
}
