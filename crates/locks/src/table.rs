//! The per-site lock table.
//!
//! Locks are keyed by DataGuide node ([`GuideId`]). The table implements
//! the semantics DTX's lock manager (Algorithm 3) needs:
//!
//! * **re-entrancy** — a transaction is always compatible with its own
//!   locks; re-requesting a mode already covered is a no-op;
//! * **conflict reporting** — a denied request returns the set of holding
//!   transactions, which the caller turns into wait-for edges
//!   ("the transaction that maintains a lock on the required data is
//!   returned", Alg. 3 l. 4);
//! * **strict 2PL release** — all locks of a transaction are released in
//!   one call at commit/abort time (paper: "the transaction acquires and
//!   maintains blockages until their termination");
//! * **partial rollback** — locks acquired *by one operation* can be
//!   released when the operation fails to fully acquire (Alg. 3 l. 12
//!   undoes the operation's modifications); the table supports scoped
//!   acquisition for this.

use crate::modes::LockMode;
use crate::txn::TxnId;
use dtx_dataguide::GuideId;
use dtx_trace::{EventKind, TraceSink};
use std::collections::HashMap;

/// Outcome of a lock request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockOutcome {
    /// The lock was granted (or already covered).
    Granted,
    /// The lock conflicts with these transactions' holdings.
    Conflict(Vec<TxnId>),
}

impl LockOutcome {
    /// True for [`LockOutcome::Granted`].
    pub fn is_granted(&self) -> bool {
        matches!(self, LockOutcome::Granted)
    }
}

/// One granted lock entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Grant {
    txn: TxnId,
    mode: LockMode,
}

/// The lock table of one site.
#[derive(Debug, Default)]
pub struct LockTable {
    /// Granted locks per guide node.
    grants: HashMap<GuideId, Vec<Grant>>,
    /// Reverse index: guide nodes each transaction holds locks on.
    by_txn: HashMap<TxnId, Vec<(GuideId, LockMode)>>,
    /// Trace recording (disabled by default; [`LockTable::set_trace`]).
    trace: TraceSink,
}

impl LockTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms trace recording: grants, denials and releases stamp
    /// [`EventKind::LockGrant`] / [`EventKind::LockWait`] /
    /// [`EventKind::LockRelease`] events into `sink`'s ring. A grant
    /// event is emitted only when a new entry is recorded (covered
    /// re-requests change nothing and trace nothing), so per
    /// transaction, grant events minus release-entry counts balance to
    /// zero — the checker's strict-2PL law.
    pub fn set_trace(&mut self, sink: TraceSink) {
        self.trace = sink;
    }

    /// Attempts to acquire `mode` on `node` for `txn`.
    ///
    /// Grants when every lock held by *other* transactions on `node` is
    /// compatible with `mode`. Own locks never conflict; if an own lock
    /// already [`LockMode::covers`] the request, nothing is recorded.
    pub fn try_acquire(&mut self, txn: TxnId, node: GuideId, mode: LockMode) -> LockOutcome {
        let grants = self.grants.entry(node).or_default();
        let mut conflicts: Vec<TxnId> = Vec::new();
        let mut covered = false;
        for g in grants.iter() {
            if g.txn == txn {
                if g.mode.covers(mode) {
                    covered = true;
                }
            } else if !g.mode.compatible(mode) && !conflicts.contains(&g.txn) {
                conflicts.push(g.txn);
            }
        }
        if !conflicts.is_empty() {
            let first_holder = conflicts[0];
            self.trace.emit(|| EventKind::LockWait {
                txn: txn.0,
                node: node.0,
                holder: first_holder.0,
            });
            return LockOutcome::Conflict(conflicts);
        }
        if !covered {
            grants.push(Grant { txn, mode });
            self.by_txn.entry(txn).or_default().push((node, mode));
            self.trace.emit(|| EventKind::LockGrant {
                txn: txn.0,
                node: node.0,
                mode: mode.name(),
            });
        }
        LockOutcome::Granted
    }

    /// Releases every lock held by `txn` (commit/abort). Returns the guide
    /// nodes that had locks released, so the scheduler can wake waiters.
    pub fn release_all(&mut self, txn: TxnId) -> Vec<GuideId> {
        let Some(held) = self.by_txn.remove(&txn) else {
            return Vec::new();
        };
        let entries = held.len() as u32;
        self.trace.emit(|| EventKind::LockRelease {
            txn: txn.0,
            entries,
        });
        let mut nodes: Vec<GuideId> = Vec::with_capacity(held.len());
        for (node, _) in held {
            if let Some(grants) = self.grants.get_mut(&node) {
                grants.retain(|g| g.txn != txn);
                if grants.is_empty() {
                    self.grants.remove(&node);
                }
            }
            if !nodes.contains(&node) {
                nodes.push(node);
            }
        }
        nodes
    }

    /// Releases the specific `(node, mode)` pairs acquired by one failed
    /// operation (scoped rollback, Alg. 3 l. 12). Pairs not actually held
    /// are ignored.
    pub fn release_scoped(&mut self, txn: TxnId, acquired: &[(GuideId, LockMode)]) {
        let mut removed = 0u32;
        for &(node, mode) in acquired {
            if let Some(grants) = self.grants.get_mut(&node) {
                // Remove ONE matching grant (a txn may hold the same mode
                // from a different operation that must survive).
                if let Some(pos) = grants.iter().position(|g| g.txn == txn && g.mode == mode) {
                    grants.remove(pos);
                    removed += 1;
                }
                if grants.is_empty() {
                    self.grants.remove(&node);
                }
            }
            if let Some(held) = self.by_txn.get_mut(&txn) {
                if let Some(pos) = held.iter().position(|&(n, m)| n == node && m == mode) {
                    held.remove(pos);
                }
                if held.is_empty() {
                    self.by_txn.remove(&txn);
                }
            }
        }
        if removed > 0 {
            self.trace.emit(|| EventKind::LockRelease {
                txn: txn.0,
                entries: removed,
            });
        }
    }

    /// Transactions currently holding any lock on `node`.
    pub fn holders(&self, node: GuideId) -> Vec<TxnId> {
        let mut out = Vec::new();
        if let Some(grants) = self.grants.get(&node) {
            for g in grants {
                if !out.contains(&g.txn) {
                    out.push(g.txn);
                }
            }
        }
        out
    }

    /// The modes `txn` holds on `node`.
    pub fn modes_of(&self, txn: TxnId, node: GuideId) -> Vec<LockMode> {
        self.grants
            .get(&node)
            .map(|grants| {
                grants
                    .iter()
                    .filter(|g| g.txn == txn)
                    .map(|g| g.mode)
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Number of lock entries currently granted (a direct measure of the
    /// "lock management overhead" the paper attributes protocols' costs
    /// to).
    pub fn total_grants(&self) -> usize {
        self.grants.values().map(Vec::len).sum()
    }

    /// Number of guide nodes with at least one lock.
    pub fn locked_nodes(&self) -> usize {
        self.grants.len()
    }

    /// Transactions holding at least one lock.
    pub fn active_txns(&self) -> Vec<TxnId> {
        self.by_txn.keys().copied().collect()
    }

    /// True when `txn` holds no locks.
    pub fn is_lock_free(&self, txn: TxnId) -> bool {
        !self.by_txn.contains_key(&txn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use LockMode::*;

    fn g(n: u32) -> GuideId {
        GuideId(n)
    }

    #[test]
    fn grant_and_conflict() {
        let mut t = LockTable::new();
        assert!(t.try_acquire(TxnId(1), g(5), ST).is_granted());
        // Reader vs reader: fine.
        assert!(t.try_acquire(TxnId(2), g(5), ST).is_granted());
        // Writer intention vs readers: conflict with both.
        match t.try_acquire(TxnId(3), g(5), IX) {
            LockOutcome::Conflict(who) => {
                assert_eq!(who.len(), 2);
                assert!(who.contains(&TxnId(1)) && who.contains(&TxnId(2)));
            }
            other => panic!("expected conflict, got {other:?}"),
        }
    }

    #[test]
    fn reentrant_and_covered_requests() {
        let mut t = LockTable::new();
        assert!(t.try_acquire(TxnId(1), g(2), X).is_granted());
        // Own conflicting mode is fine (re-entrancy).
        assert!(t.try_acquire(TxnId(1), g(2), ST).is_granted());
        // X covers ST, so no extra grant was recorded for ST.
        assert_eq!(t.modes_of(TxnId(1), g(2)), vec![X]);
        // A covered re-request of the same mode records nothing.
        assert!(t.try_acquire(TxnId(1), g(2), X).is_granted());
        assert_eq!(t.total_grants(), 1);
    }

    #[test]
    fn upgrade_blocked_by_other_holders() {
        let mut t = LockTable::new();
        assert!(t.try_acquire(TxnId(1), g(7), ST).is_granted());
        assert!(t.try_acquire(TxnId(2), g(7), ST).is_granted());
        // t1 wants to upgrade to XT but t2 reads → conflict with t2 only.
        match t.try_acquire(TxnId(1), g(7), XT) {
            LockOutcome::Conflict(who) => assert_eq!(who, vec![TxnId(2)]),
            other => panic!("expected conflict, got {other:?}"),
        }
    }

    #[test]
    fn release_all_frees_everything() {
        let mut t = LockTable::new();
        t.try_acquire(TxnId(1), g(1), IS);
        t.try_acquire(TxnId(1), g(2), ST);
        t.try_acquire(TxnId(2), g(2), ST);
        let released = t.release_all(TxnId(1));
        assert_eq!(released.len(), 2);
        assert!(t.is_lock_free(TxnId(1)));
        assert!(!t.is_lock_free(TxnId(2)));
        // Now an exclusive by t3 conflicts only with t2.
        match t.try_acquire(TxnId(3), g(2), XT) {
            LockOutcome::Conflict(who) => assert_eq!(who, vec![TxnId(2)]),
            other => panic!("{other:?}"),
        }
        // Releasing an unknown txn is a no-op.
        assert!(t.release_all(TxnId(99)).is_empty());
    }

    #[test]
    fn scoped_release_removes_one_grant() {
        let mut t = LockTable::new();
        t.try_acquire(TxnId(1), g(3), IS);
        // Same node, second op also takes IS — but covered, so only one
        // grant exists; scoped release of that op removes nothing extra.
        t.try_acquire(TxnId(1), g(3), IS);
        assert_eq!(t.total_grants(), 1);
        t.release_scoped(TxnId(1), &[(g(3), IS)]);
        assert!(t.is_lock_free(TxnId(1)));
        assert_eq!(t.total_grants(), 0);
    }

    #[test]
    fn scoped_release_keeps_other_modes() {
        let mut t = LockTable::new();
        t.try_acquire(TxnId(1), g(3), IS);
        t.try_acquire(TxnId(1), g(3), IX);
        assert_eq!(t.total_grants(), 2);
        t.release_scoped(TxnId(1), &[(g(3), IX)]);
        assert_eq!(t.modes_of(TxnId(1), g(3)), vec![IS]);
    }

    #[test]
    fn holders_and_metrics() {
        let mut t = LockTable::new();
        t.try_acquire(TxnId(1), g(1), IS);
        t.try_acquire(TxnId(2), g(1), IS);
        t.try_acquire(TxnId(2), g(2), ST);
        assert_eq!(t.holders(g(1)).len(), 2);
        assert_eq!(t.locked_nodes(), 2);
        assert_eq!(t.total_grants(), 3);
        let mut active = t.active_txns();
        active.sort();
        assert_eq!(active, vec![TxnId(1), TxnId(2)]);
    }

    #[test]
    fn insert_anchor_concurrency() {
        // Two concurrent inserts at the same anchor: SI + SI grants.
        let mut t = LockTable::new();
        assert!(t.try_acquire(TxnId(1), g(10), SI).is_granted());
        assert!(t.try_acquire(TxnId(2), g(10), SI).is_granted());
        // But a rename (X) of the anchor must wait for both.
        match t.try_acquire(TxnId(3), g(10), X) {
            LockOutcome::Conflict(who) => assert_eq!(who.len(), 2),
            other => panic!("{other:?}"),
        }
    }
}
