//! Transaction identity.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Globally unique, monotonically increasing transaction identifier.
///
/// DTX's deadlock policy aborts "the most recent transaction involved in
/// the circle" (paper, Algorithm 4). Recency is the transaction's *start
/// order*, so the id doubles as the start timestamp: larger id = started
/// later = preferred victim. In the real system ids would embed site +
/// local counter with a loosely synchronized clock; in this single-process
/// reproduction a shared atomic counter gives the same total order without
/// clock skew, which only sharpens victim selection determinism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TxnId(pub u64);

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Allocator of transaction ids (one per cluster).
#[derive(Debug, Default)]
pub struct TxnIdGen {
    next: AtomicU64,
}

impl TxnIdGen {
    /// Creates a generator starting at id 1.
    pub fn new() -> Self {
        TxnIdGen {
            next: AtomicU64::new(1),
        }
    }

    /// Allocates the next id. Thread-safe; ids are strictly increasing.
    pub fn next(&self) -> TxnId {
        TxnId(self.next.fetch_add(1, Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_monotonic() {
        let g = TxnIdGen::new();
        let a = g.next();
        let b = g.next();
        assert!(b > a);
        assert_eq!(a, TxnId(1));
    }

    #[test]
    fn ids_unique_across_threads() {
        let g = std::sync::Arc::new(TxnIdGen::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let g = g.clone();
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| g.next()).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<TxnId> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let n = all.len();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), n);
    }

    #[test]
    fn display() {
        assert_eq!(TxnId(9).to_string(), "t9");
    }
}
