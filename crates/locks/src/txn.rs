//! Transaction identity.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Globally unique, monotonically increasing transaction identifier.
///
/// DTX's deadlock policy aborts "the most recent transaction involved in
/// the circle" (paper, Algorithm 4). Recency is the transaction's *start
/// order*, so the id doubles as the start timestamp: larger id = started
/// later = preferred victim. In the real system ids would embed site +
/// local counter with a loosely synchronized clock; in this single-process
/// reproduction a shared atomic counter gives the same total order without
/// clock skew, which only sharpens victim selection determinism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TxnId(pub u64);

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Allocator of transaction ids (one per cluster).
#[derive(Debug)]
pub struct TxnIdGen {
    next: AtomicU64,
    stride: u64,
}

impl Default for TxnIdGen {
    fn default() -> Self {
        Self::new()
    }
}

impl TxnIdGen {
    /// Creates a generator starting at id 1 with stride 1 (the
    /// single-process case: one shared allocator, densely increasing).
    pub fn new() -> Self {
        Self::strided(1, 1)
    }

    /// Creates a generator that allocates `start, start+stride,
    /// start+2·stride, …` — the multi-process partition of the id space.
    /// With `stride` = total sites and `start` = 1 + lowest hosted site
    /// id, every process draws from a disjoint residue class, so ids stay
    /// globally unique without coordination while remaining *approximately*
    /// start-ordered (deadlock victim selection prefers larger ids; a
    /// cross-process skew of at most one stride does not change which
    /// transaction is "most recent" in any contended cycle that matters).
    pub fn strided(start: u64, stride: u64) -> Self {
        TxnIdGen {
            next: AtomicU64::new(start),
            stride: stride.max(1),
        }
    }

    /// Allocates the next id. Thread-safe; ids are strictly increasing.
    pub fn next(&self) -> TxnId {
        TxnId(self.next.fetch_add(self.stride, Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_monotonic() {
        let g = TxnIdGen::new();
        let a = g.next();
        let b = g.next();
        assert!(b > a);
        assert_eq!(a, TxnId(1));
    }

    #[test]
    fn ids_unique_across_threads() {
        let g = std::sync::Arc::new(TxnIdGen::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let g = g.clone();
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| g.next()).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<TxnId> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let n = all.len();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), n);
    }

    #[test]
    fn display() {
        assert_eq!(TxnId(9).to_string(), "t9");
    }
}
