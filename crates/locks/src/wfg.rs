//! Wait-for graphs and deadlock detection.
//!
//! Each DTX site maintains a local [`WaitForGraph`]: an edge `t → u` means
//! transaction `t` waits for a lock held by `u` (added in Algorithm 3 l. 8
//! when a lock request conflicts). Local cycles are detected immediately on
//! edge insertion; **distributed** deadlocks are found by the periodic
//! process of Algorithm 4, which requests every site's graph, unions them
//! ([`WaitForGraph::union`]) and checks the union for cycles — "verifies if
//! a circle is present at the union of the wait-for graphs".
//!
//! Victim selection follows the paper: "the most recent transaction
//! involved in the circle is rolled back"
//! ([`WaitForGraph::newest_in_cycle`]); recency is the transaction id's
//! start order (see [`crate::txn::TxnId`]).

use crate::txn::TxnId;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// A directed waits-for graph over transactions.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct WaitForGraph {
    edges: HashMap<TxnId, HashSet<TxnId>>,
}

impl WaitForGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds edge `waiter → holder`. Self-edges are ignored (a transaction
    /// never waits for itself; re-entrant locks are granted).
    pub fn add_edge(&mut self, waiter: TxnId, holder: TxnId) {
        if waiter != holder {
            self.edges.entry(waiter).or_default().insert(holder);
        }
    }

    /// Adds edges from `waiter` to each of `holders`.
    pub fn add_edges(&mut self, waiter: TxnId, holders: &[TxnId]) {
        for &h in holders {
            self.add_edge(waiter, h);
        }
    }

    /// Removes all edges out of `waiter` (it stopped waiting).
    pub fn clear_waits_of(&mut self, waiter: TxnId) {
        self.edges.remove(&waiter);
    }

    /// Removes a transaction entirely: its outgoing edges and every edge
    /// pointing at it (it committed or aborted).
    pub fn remove_txn(&mut self, txn: TxnId) {
        self.edges.remove(&txn);
        self.remove_edges_into(txn);
    }

    /// Removes every edge pointing at `txn` (it released the locks others
    /// were waiting on — e.g. a distributed operation was undone). Keeping
    /// such stale edges would let the detector see "cycles" between
    /// transactions that are merely retrying, aborting victims that are
    /// not actually deadlocked.
    pub fn remove_edges_into(&mut self, txn: TxnId) {
        for targets in self.edges.values_mut() {
            targets.remove(&txn);
        }
        self.edges.retain(|_, v| !v.is_empty());
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.values().map(HashSet::len).sum()
    }

    /// True when no transaction waits.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The transactions `waiter` currently waits for.
    pub fn waits_for(&self, waiter: TxnId) -> Vec<TxnId> {
        self.edges
            .get(&waiter)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// The transactions currently waiting on `holder` (sorted): the set a
    /// lock release by `holder` may unblock, used to wake waiters eagerly
    /// instead of letting their retry timers expire.
    pub fn waiters_of(&self, holder: TxnId) -> Vec<TxnId> {
        let mut v: Vec<TxnId> = self
            .edges
            .iter()
            .filter(|(_, holders)| holders.contains(&holder))
            .map(|(&w, _)| w)
            .collect();
        v.sort();
        v
    }

    /// Every edge as a `(waiter, holder)` pair, sorted — the canonical
    /// form the wire codec serializes (a decoded graph rebuilt through
    /// [`WaitForGraph::add_edge`] re-encodes to identical bytes).
    pub fn edges(&self) -> Vec<(TxnId, TxnId)> {
        let mut v: Vec<(TxnId, TxnId)> = self
            .edges
            .iter()
            .flat_map(|(&w, holders)| holders.iter().map(move |&h| (w, h)))
            .collect();
        v.sort();
        v
    }

    /// Merges `other` into `self` (Algorithm 4 l. 5:
    /// `result_graph.union(graph)`).
    pub fn union(&mut self, other: &WaitForGraph) {
        for (&waiter, holders) in &other.edges {
            self.edges
                .entry(waiter)
                .or_default()
                .extend(holders.iter().copied());
        }
    }

    /// Finds a cycle, returning its transactions (in cycle order) if one
    /// exists — "is_circle" in the paper's pseudocode.
    pub fn find_cycle(&self) -> Option<Vec<TxnId>> {
        // Iterative DFS with colour marking; returns the first cycle found.
        #[derive(Clone, Copy, PartialEq)]
        enum Colour {
            White,
            Grey,
            Black,
        }
        let mut colour: HashMap<TxnId, Colour> = HashMap::new();
        let mut parent: HashMap<TxnId, TxnId> = HashMap::new();
        let mut starts: Vec<TxnId> = self.edges.keys().copied().collect();
        starts.sort(); // deterministic traversal
        for &start in &starts {
            if *colour.get(&start).unwrap_or(&Colour::White) != Colour::White {
                continue;
            }
            // stack of (node, next-neighbour-index)
            let mut stack: Vec<(TxnId, Vec<TxnId>, usize)> = Vec::new();
            let mut neigh: Vec<TxnId> = self
                .edges
                .get(&start)
                .map(|s| s.iter().copied().collect())
                .unwrap_or_default();
            neigh.sort();
            colour.insert(start, Colour::Grey);
            stack.push((start, neigh, 0));
            while let Some((node, neighbours, idx)) = stack.last_mut() {
                if *idx >= neighbours.len() {
                    colour.insert(*node, Colour::Black);
                    stack.pop();
                    continue;
                }
                let next = neighbours[*idx];
                *idx += 1;
                match *colour.get(&next).unwrap_or(&Colour::White) {
                    Colour::White => {
                        parent.insert(next, *node);
                        let mut nn: Vec<TxnId> = self
                            .edges
                            .get(&next)
                            .map(|s| s.iter().copied().collect())
                            .unwrap_or_default();
                        nn.sort();
                        colour.insert(next, Colour::Grey);
                        stack.push((next, nn, 0));
                    }
                    Colour::Grey => {
                        // Found a back edge node → next: reconstruct cycle.
                        let mut cycle = vec![next];
                        let mut cur = *node;
                        while cur != next {
                            cycle.push(cur);
                            cur = *parent.get(&cur).expect("path to cycle head");
                        }
                        cycle.reverse();
                        return Some(cycle);
                    }
                    Colour::Black => {}
                }
            }
        }
        None
    }

    /// True when the graph contains a cycle.
    pub fn has_cycle(&self) -> bool {
        self.find_cycle().is_some()
    }

    /// Finds a cycle passing through `txn` (a path from `txn` back to
    /// itself), returning its transactions if one exists. Unlike
    /// [`WaitForGraph::find_cycle`] this ignores cycles `txn` is not part
    /// of — the question a lock manager asks when `txn`'s new wait edges
    /// may have closed a circle.
    pub fn cycle_containing(&self, txn: TxnId) -> Option<Vec<TxnId>> {
        // Iterative DFS from `txn`; sorted neighbours for determinism.
        let mut visited: HashSet<TxnId> = HashSet::new();
        let mut parent: HashMap<TxnId, TxnId> = HashMap::new();
        let mut stack: Vec<TxnId> = vec![txn];
        while let Some(node) = stack.pop() {
            if !visited.insert(node) {
                continue;
            }
            let mut neigh: Vec<TxnId> = self
                .edges
                .get(&node)
                .map(|s| s.iter().copied().collect())
                .unwrap_or_default();
            neigh.sort();
            for next in neigh {
                if next == txn {
                    // Path txn → ... → node → txn: reconstruct it.
                    let mut cycle = vec![node];
                    let mut cur = node;
                    while cur != txn {
                        cur = *parent.get(&cur).expect("path back to start");
                        cycle.push(cur);
                    }
                    cycle.reverse();
                    return Some(cycle);
                }
                if !visited.contains(&next) {
                    parent.insert(next, node);
                    stack.push(next);
                }
            }
        }
        None
    }

    /// The newest (largest-id, i.e. most recently started) transaction in
    /// the first cycle found — DTX's deadlock victim (Alg. 4 l. 7).
    pub fn newest_in_cycle(&self) -> Option<TxnId> {
        self.find_cycle()
            .map(|c| c.into_iter().max().expect("cycles are non-empty"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> TxnId {
        TxnId(n)
    }

    #[test]
    fn no_cycle_in_dag() {
        let mut g = WaitForGraph::new();
        g.add_edge(t(1), t(2));
        g.add_edge(t(2), t(3));
        g.add_edge(t(1), t(3));
        assert!(!g.has_cycle());
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn two_cycle_detected() {
        let mut g = WaitForGraph::new();
        g.add_edge(t(1), t(2));
        g.add_edge(t(2), t(1));
        let cycle = g.find_cycle().unwrap();
        assert_eq!(cycle.len(), 2);
        assert_eq!(g.newest_in_cycle(), Some(t(2)));
    }

    #[test]
    fn self_edges_ignored() {
        let mut g = WaitForGraph::new();
        g.add_edge(t(1), t(1));
        assert!(g.is_empty());
        assert!(!g.has_cycle());
    }

    #[test]
    fn long_cycle_victim_is_newest() {
        let mut g = WaitForGraph::new();
        g.add_edge(t(3), t(7));
        g.add_edge(t(7), t(5));
        g.add_edge(t(5), t(3));
        // A tail that is not part of the cycle, with a larger id.
        g.add_edge(t(9), t(3));
        let cycle = g.find_cycle().unwrap();
        assert_eq!(cycle.len(), 3);
        assert!(!cycle.contains(&t(9)), "tail node must not be in the cycle");
        assert_eq!(g.newest_in_cycle(), Some(t(7)));
    }

    #[test]
    fn union_reveals_distributed_cycle() {
        // Site A knows t1 → t2, site B knows t2 → t1; neither sees a cycle
        // alone — exactly the paper's Fig. 6 situation.
        let mut a = WaitForGraph::new();
        a.add_edge(t(1), t(2));
        let mut b = WaitForGraph::new();
        b.add_edge(t(2), t(1));
        assert!(!a.has_cycle());
        assert!(!b.has_cycle());
        let mut merged = WaitForGraph::new();
        merged.union(&a);
        merged.union(&b);
        assert!(merged.has_cycle());
        assert_eq!(merged.newest_in_cycle(), Some(t(2)));
    }

    #[test]
    fn remove_txn_breaks_cycle() {
        let mut g = WaitForGraph::new();
        g.add_edge(t(1), t(2));
        g.add_edge(t(2), t(1));
        g.remove_txn(t(2));
        assert!(!g.has_cycle());
        assert!(g.is_empty());
    }

    #[test]
    fn clear_waits_only_removes_outgoing() {
        let mut g = WaitForGraph::new();
        g.add_edge(t(1), t(2));
        g.add_edge(t(3), t(1));
        g.clear_waits_of(t(1));
        assert_eq!(g.waits_for(t(1)), vec![]);
        assert_eq!(g.waits_for(t(3)), vec![t(1)]);
    }

    #[test]
    fn deterministic_cycle_detection() {
        // With several cycles present, detection is deterministic (sorted
        // traversal), so the same victim is chosen every run.
        let build = || {
            let mut g = WaitForGraph::new();
            g.add_edge(t(1), t(2));
            g.add_edge(t(2), t(1));
            g.add_edge(t(5), t(6));
            g.add_edge(t(6), t(5));
            g
        };
        let v1 = build().newest_in_cycle();
        let v2 = build().newest_in_cycle();
        assert_eq!(v1, v2);
    }

    #[test]
    fn cycle_containing_ignores_unrelated_cycles() {
        let mut g = WaitForGraph::new();
        // Cycle {1,2}; txn 5 waits on it but is in no cycle.
        g.add_edge(t(1), t(2));
        g.add_edge(t(2), t(1));
        g.add_edge(t(5), t(1));
        let c = g.cycle_containing(t(2)).unwrap();
        assert!(c.contains(&t(1)) && c.contains(&t(2)));
        assert!(g.cycle_containing(t(5)).is_none());
        assert!(g.cycle_containing(t(9)).is_none());
        // A disjoint cycle {6,7} is invisible from txn 1's perspective...
        g.add_edge(t(6), t(7));
        g.add_edge(t(7), t(6));
        let c1 = g.cycle_containing(t(1)).unwrap();
        assert!(!c1.contains(&t(6)) && !c1.contains(&t(7)));
        // ...but found from its own members.
        assert!(g.cycle_containing(t(7)).is_some());
    }

    #[test]
    fn waiters_of_lists_incoming_edges_sorted() {
        let mut g = WaitForGraph::new();
        g.add_edge(t(5), t(2));
        g.add_edge(t(1), t(2));
        g.add_edge(t(2), t(3));
        assert_eq!(g.waiters_of(t(2)), vec![t(1), t(5)]);
        assert_eq!(g.waiters_of(t(9)), vec![]);
    }

    #[test]
    fn remove_edges_into_keeps_outgoing() {
        let mut g = WaitForGraph::new();
        g.add_edge(t(1), t(2));
        g.add_edge(t(2), t(3));
        g.remove_edges_into(t(2));
        assert!(g.waits_for(t(1)).is_empty());
        assert_eq!(g.waits_for(t(2)), vec![t(3)]);
    }

    #[test]
    fn union_is_idempotent() {
        let mut g = WaitForGraph::new();
        g.add_edge(t(1), t(2));
        g.add_edge(t(2), t(3));
        let mut copy = WaitForGraph::new();
        copy.union(&g);
        copy.union(&g);
        assert_eq!(copy.edge_count(), g.edge_count());
    }
}
