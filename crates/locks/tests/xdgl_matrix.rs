//! Exhaustive XDGL lock-mode compatibility checks and distributed
//! wait-for-graph cycle detection.
//!
//! The compatibility matrix is the heart of XDGL's concurrency gain; this
//! test pins **every** pairwise entry (8 × 8, including both exclusive
//! modes) against an independently written expectation table, and then
//! verifies the [`LockTable`] enforces exactly that table end-to-end. The
//! wait-for-graph tests exercise the distributed detector's core case: a
//! cycle that only appears in the union of three sites' graphs.

use dtx_dataguide::GuideId;
use dtx_locks::{LockMode, LockOutcome, LockTable, TxnId, WaitForGraph};
use LockMode::{IS, IX, SA, SB, SI, ST, X, XT};

/// Independent statement of the XDGL compatibility matrix (row = held,
/// column = requested, order IS IX SI SA SB ST X XT), reconstructed from
/// the mode semantics rather than copied from the implementation table:
///
/// * intention modes admit everything but exclusives (IS additionally
///   admits ST; IX does not — an ST subtree read must exclude pending
///   subtree writes);
/// * the insert anchors SI/SA/SB admit each other (concurrent inserts at
///   one anchor are XDGL's point), all intentions, and subtree reads;
/// * ST admits readers and insert anchors but no IX below it;
/// * X and XT admit nothing.
const EXPECTED: [(LockMode, [bool; 8]); 8] = [
    //         IS     IX     SI     SA     SB     ST     X      XT
    (IS, [true, true, true, true, true, true, false, false]),
    (IX, [true, true, true, true, true, false, false, false]),
    (SI, [true, true, true, true, true, true, false, false]),
    (SA, [true, true, true, true, true, true, false, false]),
    (SB, [true, true, true, true, true, true, false, false]),
    (ST, [true, false, true, true, true, true, false, false]),
    (X, [false, false, false, false, false, false, false, false]),
    (XT, [false, false, false, false, false, false, false, false]),
];

#[test]
fn full_pairwise_compatibility_table() {
    for (held, row) in EXPECTED {
        for (j, requested) in LockMode::ALL.into_iter().enumerate() {
            assert_eq!(
                held.compatible(requested),
                row[j],
                "held {held}, requested {requested}: expected {}",
                row[j]
            );
        }
    }
}

#[test]
fn lock_table_enforces_every_pair() {
    // For each (held, requested) pair: t1 takes `held`, t2 requests
    // `requested` on the same node. Grant/deny must follow the matrix,
    // and every denial must name t1 as the conflicting holder.
    for (i, held) in LockMode::ALL.into_iter().enumerate() {
        for (j, requested) in LockMode::ALL.into_iter().enumerate() {
            let mut table = LockTable::new();
            let node = GuideId(7);
            assert!(table.try_acquire(TxnId(1), node, held).is_granted());
            let outcome = table.try_acquire(TxnId(2), node, requested);
            let expected = EXPECTED[i].1[j];
            match (expected, &outcome) {
                (true, LockOutcome::Granted) => {}
                (false, LockOutcome::Conflict(holders)) => {
                    assert_eq!(holders, &vec![TxnId(1)], "held {held}, requested {requested}");
                }
                _ => panic!("held {held}, requested {requested}: expected grant={expected}, got {outcome:?}"),
            }
        }
    }
}

#[test]
fn same_transaction_never_self_conflicts() {
    for held in LockMode::ALL {
        for requested in LockMode::ALL {
            let mut table = LockTable::new();
            let node = GuideId(1);
            assert!(table.try_acquire(TxnId(1), node, held).is_granted());
            assert!(
                table.try_acquire(TxnId(1), node, requested).is_granted(),
                "re-entrant {held} then {requested} must always be granted"
            );
        }
    }
}

#[test]
fn three_site_distributed_cycle_only_in_union() {
    // The distributed detector's core case (Algorithm 4): t1 → t2 on site
    // A, t2 → t3 on site B, t3 → t1 on site C. No single site sees a
    // cycle; the union does, and the newest transaction is the victim.
    let mut site_a = WaitForGraph::new();
    site_a.add_edge(TxnId(1), TxnId(2));
    let mut site_b = WaitForGraph::new();
    site_b.add_edge(TxnId(2), TxnId(3));
    let mut site_c = WaitForGraph::new();
    site_c.add_edge(TxnId(3), TxnId(1));

    for (name, g) in [("A", &site_a), ("B", &site_b), ("C", &site_c)] {
        assert!(!g.has_cycle(), "site {name} alone must not see a cycle");
    }
    // Partial unions (any two sites) still show no cycle.
    for (g1, g2) in [(&site_a, &site_b), (&site_b, &site_c), (&site_a, &site_c)] {
        let mut partial = WaitForGraph::new();
        partial.union(g1);
        partial.union(g2);
        assert!(
            !partial.has_cycle(),
            "two-site union must not close the cycle"
        );
    }
    let mut merged = WaitForGraph::new();
    merged.union(&site_a);
    merged.union(&site_b);
    merged.union(&site_c);
    let cycle = merged
        .find_cycle()
        .expect("three-site union closes the cycle");
    assert_eq!(cycle.len(), 3);
    assert_eq!(
        merged.newest_in_cycle(),
        Some(TxnId(3)),
        "newest transaction is the victim"
    );
    // Aborting the victim (removing it everywhere) breaks the deadlock.
    merged.remove_txn(TxnId(3));
    assert!(!merged.has_cycle());
}

#[test]
fn distributed_cycle_with_local_noise_picks_cycle_victim() {
    // Sites also hold waits that are *not* part of the distributed cycle;
    // the victim must still come from the cycle, not from the noise — even
    // when the noise has a larger (newer) transaction id.
    let mut site_a = WaitForGraph::new();
    site_a.add_edge(TxnId(1), TxnId(2));
    site_a.add_edge(TxnId(9), TxnId(1)); // newest txn overall, not in cycle
    let mut site_b = WaitForGraph::new();
    site_b.add_edge(TxnId(2), TxnId(3));
    site_b.add_edge(TxnId(8), TxnId(2));
    let mut site_c = WaitForGraph::new();
    site_c.add_edge(TxnId(3), TxnId(1));

    let mut merged = WaitForGraph::new();
    merged.union(&site_a);
    merged.union(&site_b);
    merged.union(&site_c);
    let cycle = merged.find_cycle().expect("cycle present");
    assert!(
        !cycle.contains(&TxnId(8)) && !cycle.contains(&TxnId(9)),
        "noise not in cycle"
    );
    assert_eq!(merged.newest_in_cycle(), Some(TxnId(3)));
}
