//! # dtx-net — simulated site-to-site transport
//!
//! The paper's testbed was "a cluster of eight PCs connected through an
//! Ethernet hub ... 100 Mbit/s full-duplex" (§3.1). This crate replaces
//! the physical network with an in-process simulation that preserves what
//! the concurrency-control experiments depend on: **message ordering,
//! blocking round-trips, and size-dependent latency**.
//!
//! * [`Network`] — a cloneable handle to a simulated broadcast domain.
//!   Every site [`Network::register`]s an [`Endpoint`]; messages are
//!   routed through a hub thread that delays each message according to
//!   the [`LatencyModel`] before delivering it to the destination's
//!   channel (FIFO per sender-receiver pair, like TCP).
//! * [`LatencyModel`] — fixed + per-KiB + seeded jitter; the default is
//!   calibrated to a 100 Mbit/s switched LAN. Tests use
//!   [`LatencyModel::zero`], which delivers synchronously.
//! * [`NetStats`] — message/byte counters for the experiment reports
//!   (the paper attributes part of total-replication's cost to
//!   "communication and synchronization overhead in all the sites").
//!
//! The transport is generic over the payload type `M`; `dtx-core` provides
//! its `Message` enum and implements [`Wire`] to give payloads a size.

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Mutex, RwLock};
use std::collections::{BinaryHeap, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Identifier of a site (system node) in the cluster.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct SiteId(pub u16);

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Payloads must report an approximate wire size for the latency model.
pub trait Wire: Send + 'static {
    /// Approximate serialized size in bytes (default: one small frame).
    fn wire_size(&self) -> usize {
        128
    }
}

/// Latency model: `fixed + per_kib * size + U(0, jitter)`.
#[derive(Debug, Clone, Copy)]
pub struct LatencyModel {
    /// Propagation + protocol-stack cost per message.
    pub fixed: Duration,
    /// Serialization cost per KiB (bandwidth).
    pub per_kib: Duration,
    /// Upper bound of uniform jitter added per message.
    pub jitter: Duration,
    /// Seed for the jitter PRNG (deterministic runs).
    pub seed: u64,
}

impl LatencyModel {
    /// Synchronous delivery (tests).
    pub fn zero() -> Self {
        LatencyModel {
            fixed: Duration::ZERO,
            per_kib: Duration::ZERO,
            jitter: Duration::ZERO,
            seed: 0,
        }
    }

    /// 100 Mbit/s LAN through a hub: ~150 µs fixed, ~80 µs/KiB
    /// (12.5 MB/s), 50 µs jitter.
    pub fn lan(seed: u64) -> Self {
        LatencyModel {
            fixed: Duration::from_micros(150),
            per_kib: Duration::from_micros(80),
            jitter: Duration::from_micros(50),
            seed,
        }
    }

    /// True when every component is zero (fast path: no hub thread delay).
    pub fn is_zero(&self) -> bool {
        self.fixed.is_zero() && self.per_kib.is_zero() && self.jitter.is_zero()
    }

    fn delay(&self, bytes: usize, rng_state: &mut u64) -> Duration {
        let mut d = self.fixed + self.per_kib * ((bytes / 1024) as u32);
        if !self.jitter.is_zero() {
            // xorshift64* — tiny, deterministic, good enough for jitter.
            let mut x = *rng_state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            *rng_state = x;
            let r = x.wrapping_mul(0x2545F4914F6CDD1D) >> 33;
            let frac = (r as f64) / ((1u64 << 31) as f64);
            d += Duration::from_nanos((self.jitter.as_nanos() as f64 * frac) as u64);
        }
        d
    }
}

/// A routed message.
#[derive(Debug)]
pub struct Envelope<M> {
    /// Sending site.
    pub from: SiteId,
    /// Destination site.
    pub to: SiteId,
    /// Payload.
    pub payload: M,
}

/// Transport errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// Destination site was never registered (or already shut down).
    UnknownSite(SiteId),
    /// The network has been shut down.
    Closed,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnknownSite(s) => write!(f, "no endpoint registered for site {s}"),
            NetError::Closed => write!(f, "network is shut down"),
        }
    }
}

impl std::error::Error for NetError {}

/// Message/byte counters.
#[derive(Debug, Default)]
pub struct NetStats {
    messages: AtomicU64,
    bytes: AtomicU64,
}

impl NetStats {
    /// Messages sent so far.
    pub fn messages(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }

    /// Payload bytes sent so far (per [`Wire::wire_size`]).
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }
}

struct Delayed<M> {
    deliver_at: Instant,
    seq: u64,
    envelope: Envelope<M>,
}

impl<M> PartialEq for Delayed<M> {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.seq == other.seq
    }
}
impl<M> Eq for Delayed<M> {}
impl<M> PartialOrd for Delayed<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Delayed<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse order: BinaryHeap is a max-heap, we want earliest first;
        // ties broken by send sequence to keep FIFO.
        other
            .deliver_at
            .cmp(&self.deliver_at)
            .then(other.seq.cmp(&self.seq))
    }
}

struct Inner<M> {
    endpoints: RwLock<HashMap<SiteId, Sender<Envelope<M>>>>,
    latency: LatencyModel,
    stats: NetStats,
    hub_tx: Mutex<Option<Sender<Delayed<M>>>>,
    seq: AtomicU64,
    /// Per (sender, receiver) message counter. Jitter for the k-th message
    /// of a pair is derived from (seed, from, to, k) alone, so the random
    /// delay stream of every link is reproducible from the seed no matter
    /// how concurrent senders interleave globally.
    pair_seq: Mutex<HashMap<(SiteId, SiteId), u64>>,
}

/// A handle to the simulated network (cloneable; all clones share state).
pub struct Network<M: Send + 'static> {
    inner: Arc<Inner<M>>,
}

impl<M: Send + 'static> Clone for Network<M> {
    fn clone(&self) -> Self {
        Network {
            inner: self.inner.clone(),
        }
    }
}

/// A site's receive side.
pub struct Endpoint<M> {
    /// This endpoint's site id.
    pub site: SiteId,
    rx: Receiver<Envelope<M>>,
}

impl<M> Endpoint<M> {
    /// Blocking receive.
    pub fn recv(&self) -> Result<Envelope<M>, NetError> {
        self.rx.recv().map_err(|_| NetError::Closed)
    }

    /// Receive with timeout; `Ok(None)` on timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Option<Envelope<M>>, NetError> {
        match self.rx.recv_timeout(timeout) {
            Ok(e) => Ok(Some(e)),
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => Ok(None),
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => Err(NetError::Closed),
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Envelope<M>> {
        self.rx.try_recv().ok()
    }

    /// Non-blocking batch drain: returns up to `limit` queued envelopes
    /// without ever blocking. Event-driven consumers (the scheduler's
    /// single-threaded state machine) use this to interleave network
    /// intake with dispatch work in bounded slices, so a message flood
    /// cannot starve transaction progress.
    pub fn drain(&self, limit: usize) -> Vec<Envelope<M>> {
        self.rx.try_iter().take(limit).collect()
    }
}

impl<M: Wire> Network<M> {
    /// Creates a network with the given latency model. A hub thread is
    /// spawned only when the model actually delays messages.
    pub fn new(latency: LatencyModel) -> Self {
        let inner = Arc::new(Inner {
            endpoints: RwLock::new(HashMap::new()),
            latency,
            stats: NetStats::default(),
            hub_tx: Mutex::new(None),
            seq: AtomicU64::new(0),
            pair_seq: Mutex::new(HashMap::new()),
        });
        if !latency.is_zero() {
            let (tx, rx) = unbounded::<Delayed<M>>();
            *inner.hub_tx.lock() = Some(tx);
            let hub_inner = Arc::downgrade(&inner);
            std::thread::Builder::new()
                .name("dtx-net-hub".into())
                .spawn(move || hub_loop(rx, hub_inner))
                .expect("spawn hub thread");
        }
        Network { inner }
    }

    /// Registers `site`, returning its endpoint. Re-registering replaces
    /// the previous endpoint (old receiver disconnects).
    pub fn register(&self, site: SiteId) -> Endpoint<M> {
        let (tx, rx) = unbounded();
        self.inner.endpoints.write().insert(site, tx);
        Endpoint { site, rx }
    }

    /// Sends `payload` from `from` to `to`, applying the latency model.
    pub fn send(&self, from: SiteId, to: SiteId, payload: M) -> Result<(), NetError> {
        let bytes = payload.wire_size();
        self.inner.stats.messages.fetch_add(1, Ordering::Relaxed);
        self.inner
            .stats
            .bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
        let envelope = Envelope { from, to, payload };
        let hub = self.inner.hub_tx.lock();
        match hub.as_ref() {
            Some(hub_tx) => {
                // Jitter is a pure function of (seed, from, to, k-th message
                // of this pair): every link's delay stream is reproducible
                // from the seed regardless of global thread interleaving.
                let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed);
                let k = {
                    let mut pairs = self.inner.pair_seq.lock();
                    let c = pairs.entry((from, to)).or_insert(0);
                    let k = *c;
                    *c += 1;
                    k
                };
                let mut rng = mix64(
                    self.inner.latency.seed ^ ((from.0 as u64) << 48) ^ ((to.0 as u64) << 32) ^ k,
                );
                let delay = self.inner.latency.delay(bytes, &mut rng);
                hub_tx
                    .send(Delayed {
                        deliver_at: Instant::now() + delay,
                        seq,
                        envelope,
                    })
                    .map_err(|_| NetError::Closed)
            }
            None => {
                let endpoints = self.inner.endpoints.read();
                let dest = endpoints.get(&to).ok_or(NetError::UnknownSite(to))?;
                dest.send(envelope).map_err(|_| NetError::UnknownSite(to))
            }
        }
    }

    /// Registered site ids (sorted).
    pub fn sites(&self) -> Vec<SiteId> {
        let mut v: Vec<SiteId> = self.inner.endpoints.read().keys().copied().collect();
        v.sort();
        v
    }

    /// Counters.
    pub fn stats(&self) -> &NetStats {
        &self.inner.stats
    }

    /// Shuts the network down: endpoints disconnect, the hub thread exits.
    pub fn shutdown(&self) {
        *self.inner.hub_tx.lock() = None;
        self.inner.endpoints.write().clear();
    }
}

/// splitmix64 finalizer: spreads structured seeds (pair ids, counters)
/// into well-mixed PRNG states.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    (z ^ (z >> 31)) | 1
}

fn hub_loop<M: Send + 'static>(rx: Receiver<Delayed<M>>, inner: std::sync::Weak<Inner<M>>) {
    let mut queue: BinaryHeap<Delayed<M>> = BinaryHeap::new();
    // Per-pair FIFO clamp: a later message of the same (from, to) pair is
    // never scheduled before an earlier one, even when size-dependent
    // latency or jitter would say otherwise — the link behaves like one
    // TCP stream. The schedulers' termination protocol relies on this
    // (e.g. an `Abort` must not overtake the `ExecRemote` it cancels).
    let mut pair_last: HashMap<(SiteId, SiteId), Instant> = HashMap::new();
    loop {
        // Deliver everything due.
        let now = Instant::now();
        while queue.peek().map(|d| d.deliver_at <= now).unwrap_or(false) {
            let d = queue.pop().expect("peeked");
            if let Some(inner) = inner.upgrade() {
                let endpoints = inner.endpoints.read();
                if let Some(dest) = endpoints.get(&d.envelope.to) {
                    let _ = dest.send(d.envelope);
                }
            } else {
                return; // network dropped
            }
        }
        // Wait for the next due time or a new message.
        let wait = queue
            .peek()
            .map(|d| d.deliver_at.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_millis(50));
        match rx.recv_timeout(wait.max(Duration::from_micros(10))) {
            Ok(mut d) => {
                let pair = (d.envelope.from, d.envelope.to);
                if let Some(&last) = pair_last.get(&pair) {
                    d.deliver_at = d.deliver_at.max(last);
                }
                pair_last.insert(pair, d.deliver_at);
                queue.push(d);
            }
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                if inner.upgrade().is_none() {
                    return;
                }
            }
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                // Drain remaining queue then exit.
                let now_final = Instant::now() + Duration::from_secs(1);
                while let Some(d) = queue.pop() {
                    std::thread::sleep(d.deliver_at.saturating_duration_since(Instant::now()));
                    if Instant::now() > now_final {
                        return;
                    }
                    if let Some(inner) = inner.upgrade() {
                        let endpoints = inner.endpoints.read();
                        if let Some(dest) = endpoints.get(&d.envelope.to) {
                            let _ = dest.send(d.envelope);
                        }
                    }
                }
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Msg(u32);
    impl Wire for Msg {
        fn wire_size(&self) -> usize {
            64
        }
    }

    #[test]
    fn zero_latency_delivers_synchronously() {
        let net: Network<Msg> = Network::new(LatencyModel::zero());
        let a = net.register(SiteId(0));
        let _b = net.register(SiteId(1));
        net.send(SiteId(1), SiteId(0), Msg(7)).unwrap();
        let e = a.try_recv().expect("synchronous delivery");
        assert_eq!(e.payload, Msg(7));
        assert_eq!(e.from, SiteId(1));
        assert_eq!(net.stats().messages(), 1);
        assert_eq!(net.stats().bytes(), 64);
    }

    #[test]
    fn unknown_destination_is_an_error() {
        let net: Network<Msg> = Network::new(LatencyModel::zero());
        let _a = net.register(SiteId(0));
        assert_eq!(
            net.send(SiteId(0), SiteId(9), Msg(1)),
            Err(NetError::UnknownSite(SiteId(9)))
        );
    }

    #[test]
    fn fifo_order_preserved_same_pair() {
        let net: Network<Msg> = Network::new(LatencyModel::zero());
        let a = net.register(SiteId(0));
        let _b = net.register(SiteId(1));
        for i in 0..100 {
            net.send(SiteId(1), SiteId(0), Msg(i)).unwrap();
        }
        for i in 0..100 {
            assert_eq!(a.recv().unwrap().payload, Msg(i));
        }
    }

    #[test]
    fn latency_delays_delivery() {
        let model = LatencyModel {
            fixed: Duration::from_millis(20),
            per_kib: Duration::ZERO,
            jitter: Duration::ZERO,
            seed: 1,
        };
        let net: Network<Msg> = Network::new(model);
        let a = net.register(SiteId(0));
        let _b = net.register(SiteId(1));
        let t0 = Instant::now();
        net.send(SiteId(1), SiteId(0), Msg(1)).unwrap();
        // Not there immediately.
        assert!(a.try_recv().is_none());
        let e = a
            .recv_timeout(Duration::from_millis(500))
            .unwrap()
            .expect("delivered");
        assert_eq!(e.payload, Msg(1));
        assert!(
            t0.elapsed() >= Duration::from_millis(18),
            "elapsed {:?}",
            t0.elapsed()
        );
        net.shutdown();
    }

    #[test]
    fn delayed_messages_keep_order_with_equal_delay() {
        let model = LatencyModel {
            fixed: Duration::from_millis(5),
            per_kib: Duration::ZERO,
            jitter: Duration::ZERO,
            seed: 1,
        };
        let net: Network<Msg> = Network::new(model);
        let a = net.register(SiteId(0));
        let _b = net.register(SiteId(1));
        for i in 0..20 {
            net.send(SiteId(1), SiteId(0), Msg(i)).unwrap();
        }
        for i in 0..20 {
            let e = a
                .recv_timeout(Duration::from_millis(500))
                .unwrap()
                .expect("delivered");
            assert_eq!(e.payload, Msg(i));
        }
        net.shutdown();
    }

    #[derive(Debug, PartialEq)]
    struct SizedMsg(u32, usize);
    impl Wire for SizedMsg {
        fn wire_size(&self) -> usize {
            self.1
        }
    }

    #[test]
    fn fifo_preserved_despite_size_dependent_latency() {
        // A large message followed by a small one on the same link: the
        // small one's computed delay is shorter, but the per-pair FIFO
        // clamp must keep delivery in send order.
        let model = LatencyModel {
            fixed: Duration::from_millis(1),
            per_kib: Duration::from_millis(10),
            jitter: Duration::from_micros(500),
            seed: 3,
        };
        let net: Network<SizedMsg> = Network::new(model);
        let a = net.register(SiteId(0));
        let _b = net.register(SiteId(1));
        net.send(SiteId(1), SiteId(0), SizedMsg(0, 64 * 1024))
            .unwrap();
        net.send(SiteId(1), SiteId(0), SizedMsg(1, 16)).unwrap();
        for i in 0..2 {
            let e = a
                .recv_timeout(Duration::from_secs(5))
                .unwrap()
                .expect("delivered");
            assert_eq!(e.payload.0, i, "messages must arrive in send order");
        }
        net.shutdown();
    }

    #[test]
    fn drain_returns_batch_without_blocking() {
        let net: Network<Msg> = Network::new(LatencyModel::zero());
        let a = net.register(SiteId(0));
        let _b = net.register(SiteId(1));
        assert!(a.drain(16).is_empty(), "empty queue drains to nothing");
        for i in 0..10 {
            net.send(SiteId(1), SiteId(0), Msg(i)).unwrap();
        }
        let batch = a.drain(4);
        assert_eq!(
            batch.iter().map(|e| e.payload.0).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        assert_eq!(a.drain(100).len(), 6, "remainder drains in order");
    }

    #[test]
    fn recv_timeout_returns_none_when_idle() {
        let net: Network<Msg> = Network::new(LatencyModel::zero());
        let a = net.register(SiteId(0));
        assert!(a.recv_timeout(Duration::from_millis(5)).unwrap().is_none());
    }

    #[test]
    fn sites_listing() {
        let net: Network<Msg> = Network::new(LatencyModel::zero());
        let _e0 = net.register(SiteId(2));
        let _e1 = net.register(SiteId(0));
        assert_eq!(net.sites(), vec![SiteId(0), SiteId(2)]);
    }

    #[test]
    fn shutdown_disconnects_endpoints() {
        let net: Network<Msg> = Network::new(LatencyModel::zero());
        let a = net.register(SiteId(0));
        net.shutdown();
        assert!(matches!(a.recv(), Err(NetError::Closed)));
        assert!(net.send(SiteId(0), SiteId(0), Msg(1)).is_err());
    }
}
