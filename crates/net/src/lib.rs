//! # dtx-net — simulated site-to-site transport
//!
//! The paper's testbed is "a cluster of eight PCs connected through an
//! Ethernet hub ... 100 Mbit/s full-duplex" (§3.1). This crate replaces
//! the physical network with an in-process simulation that preserves what
//! the concurrency-control experiments depend on: **message ordering,
//! blocking round-trips, and size-dependent latency**.
//!
//! * [`Network`] — a cloneable handle to a simulated broadcast domain.
//!   Every site [`Network::register`]s an [`Endpoint`]; messages are
//!   delayed according to the [`LatencyModel`] before being delivered to
//!   the destination's channel (FIFO per sender-receiver pair, like TCP).
//! * [`Topology`] — how delayed delivery is driven. The default,
//!   [`Topology::Switched`], models a switched full-duplex fabric: every
//!   ordered `(from, to)` pair is an independent **link** with its own
//!   FIFO queue and delivery worker, so independent links deliver
//!   concurrently and a burst on one link never head-of-line blocks
//!   another. [`Topology::SharedHub`] keeps the legacy single-threaded
//!   hub (one global timer heap) — all traffic funnels through one
//!   sleeper, which is exactly the scaling bottleneck `bench_net`
//!   measures against.
//! * [`LatencyModel`] — fixed + per-KiB + seeded jitter; the default is
//!   calibrated to a 100 Mbit/s switched LAN. Tests use
//!   [`LatencyModel::zero`], which delivers synchronously.
//! * [`NetStats`] — message/byte/link counters for the experiment reports
//!   (the paper attributes part of total-replication's cost to
//!   "communication and synchronization overhead in all the sites").
//!
//! ## Ordering and determinism guarantees
//!
//! Both topologies guarantee, per ordered `(from, to)` pair:
//!
//! 1. **FIFO** — delivery order equals send order, even when
//!    size-dependent latency or jitter computes a shorter delay for a
//!    later message (the clamp happens at send time: a message's delivery
//!    instant is never earlier than its link predecessor's).
//! 2. **Seed-deterministic jitter** — the random delay of the k-th
//!    message of a pair is a pure function of `(seed, from, to, k)`, so
//!    every link's delay stream is reproducible from the seed no matter
//!    how concurrent senders interleave globally.
//! 3. **Drain on shutdown** — [`Network::shutdown`] delivers every
//!    in-flight delayed message (per-link FIFO order preserved) before
//!    endpoints disconnect; nothing vanishes.
//!
//! The transport is generic over the payload type `M`; `dtx-core` provides
//! its `Message` enum and implements [`Wire`] to give payloads a size.

#![deny(missing_docs)]

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Mutex, RwLock};
use std::collections::{BinaryHeap, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Identifier of a site (system node) in the cluster.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct SiteId(pub u16);

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Payloads must report an approximate wire size for the latency model.
pub trait Wire: Send + 'static {
    /// Approximate serialized size in bytes (default: one small frame).
    fn wire_size(&self) -> usize {
        128
    }
}

/// How delayed delivery is driven (irrelevant under [`LatencyModel::zero`],
/// where delivery is synchronous and no threads exist).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Topology {
    /// Switched full-duplex fabric (default): each ordered `(from, to)`
    /// pair is an independent link with its own FIFO queue and delivery
    /// worker. Independent links deliver concurrently, like port-to-port
    /// paths through a switch.
    #[default]
    Switched,
    /// Legacy shared hub: one global delivery thread with a single timer
    /// heap. All traffic serializes behind one sleeper — kept as the
    /// baseline the `bench_net` microbench quantifies sharding against.
    SharedHub,
}

/// Latency model: `fixed + per_kib * size + U(0, jitter)`.
#[derive(Debug, Clone, Copy)]
pub struct LatencyModel {
    /// Propagation + protocol-stack cost per message.
    pub fixed: Duration,
    /// Serialization cost per KiB (bandwidth).
    pub per_kib: Duration,
    /// Upper bound of uniform jitter added per message.
    pub jitter: Duration,
    /// Seed for the jitter PRNG (deterministic runs).
    pub seed: u64,
}

impl LatencyModel {
    /// Synchronous delivery (tests).
    pub fn zero() -> Self {
        LatencyModel {
            fixed: Duration::ZERO,
            per_kib: Duration::ZERO,
            jitter: Duration::ZERO,
            seed: 0,
        }
    }

    /// 100 Mbit/s LAN: ~150 µs fixed, ~80 µs/KiB (12.5 MB/s), 50 µs
    /// jitter.
    pub fn lan(seed: u64) -> Self {
        LatencyModel {
            fixed: Duration::from_micros(150),
            per_kib: Duration::from_micros(80),
            jitter: Duration::from_micros(50),
            seed,
        }
    }

    /// True when every component is zero (fast path: no delivery threads).
    pub fn is_zero(&self) -> bool {
        self.fixed.is_zero() && self.per_kib.is_zero() && self.jitter.is_zero()
    }

    fn delay(&self, bytes: usize, rng_state: &mut u64) -> Duration {
        let mut d = self.fixed + self.per_kib * ((bytes / 1024) as u32);
        if !self.jitter.is_zero() {
            // xorshift64* — tiny, deterministic, good enough for jitter.
            let mut x = *rng_state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            *rng_state = x;
            let r = x.wrapping_mul(0x2545F4914F6CDD1D) >> 33;
            let frac = (r as f64) / ((1u64 << 31) as f64);
            d += Duration::from_nanos((self.jitter.as_nanos() as f64 * frac) as u64);
        }
        d
    }
}

/// The delay of the `k`-th message on the ordered link `from → to` under
/// `model`, for a payload of `bytes`: a **pure function** of its inputs.
/// This is the function [`Network::send`] applies (before the per-link
/// FIFO clamp), exposed so tests can pin the seed-determinism contract
/// directly.
pub fn link_delay(
    model: &LatencyModel,
    from: SiteId,
    to: SiteId,
    k: u64,
    bytes: usize,
) -> Duration {
    let mut rng = mix64(model.seed ^ ((from.0 as u64) << 48) ^ ((to.0 as u64) << 32) ^ k);
    model.delay(bytes, &mut rng)
}

/// A routed message.
#[derive(Debug)]
pub struct Envelope<M> {
    /// Sending site.
    pub from: SiteId,
    /// Destination site.
    pub to: SiteId,
    /// Payload.
    pub payload: M,
}

/// Transport errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// Destination site was never registered (or already shut down).
    UnknownSite(SiteId),
    /// The network has been shut down.
    Closed,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnknownSite(s) => write!(f, "no endpoint registered for site {s}"),
            NetError::Closed => write!(f, "network is shut down"),
        }
    }
}

impl std::error::Error for NetError {}

/// Message/byte/link counters.
#[derive(Debug, Default)]
pub struct NetStats {
    messages: AtomicU64,
    bytes: AtomicU64,
    links: AtomicU64,
}

impl NetStats {
    /// Messages sent so far.
    pub fn messages(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }

    /// Payload bytes sent so far (per [`Wire::wire_size`]).
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Delivery links spawned so far: the number of distinct ordered
    /// `(from, to)` pairs that carried delayed traffic under
    /// [`Topology::Switched`] (each owns a worker). Zero under
    /// [`Topology::SharedHub`] (one global thread instead) and under
    /// [`LatencyModel::zero`] (no threads at all).
    pub fn links_active(&self) -> u64 {
        self.links.load(Ordering::Relaxed)
    }
}

struct Delayed<M> {
    deliver_at: Instant,
    seq: u64,
    envelope: Envelope<M>,
}

impl<M> PartialEq for Delayed<M> {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.seq == other.seq
    }
}
impl<M> Eq for Delayed<M> {}
impl<M> PartialOrd for Delayed<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Delayed<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse order: BinaryHeap is a max-heap, we want earliest first;
        // ties broken by send sequence to keep FIFO.
        other
            .deliver_at
            .cmp(&self.deliver_at)
            .then(other.seq.cmp(&self.seq))
    }
}

/// Per-ordered-pair link bookkeeping, updated at send time under the
/// links lock: the jitter stream position, the FIFO clamp, and (switched
/// topology) the link worker's queue.
struct LinkBook<M> {
    /// Messages sent on this link so far (the `k` of the jitter stream).
    sent: u64,
    /// Delivery instant of the link's latest message — the FIFO clamp: a
    /// later message is never scheduled before an earlier one, even when
    /// size-dependent latency or jitter would say otherwise. The link
    /// behaves like one TCP stream; the schedulers' termination protocol
    /// relies on this (an `Abort` must not overtake the `ExecRemote` it
    /// cancels).
    last: Instant,
    /// The link worker's queue ([`Topology::Switched`] only).
    tx: Option<Sender<Delayed<M>>>,
}

struct Inner<M> {
    endpoints: RwLock<HashMap<SiteId, Sender<Envelope<M>>>>,
    latency: LatencyModel,
    topology: Topology,
    stats: NetStats,
    /// Per ordered `(from, to)` pair: jitter position, FIFO clamp, and
    /// (switched) the link worker's queue.
    links: Mutex<HashMap<(SiteId, SiteId), LinkBook<M>>>,
    /// Legacy hub queue ([`Topology::SharedHub`] only).
    hub_tx: Mutex<Option<Sender<Delayed<M>>>>,
    seq: AtomicU64,
    /// Set by [`Network::shutdown`]: delivery workers stop sleeping and
    /// flush their remaining queue immediately.
    flushing: AtomicBool,
    /// Delivery worker handles, joined at shutdown so the drain is
    /// complete before endpoints disconnect.
    workers: Mutex<Vec<JoinHandle<()>>>,
}

/// A handle to the simulated network (cloneable; all clones share state).
pub struct Network<M: Send + 'static> {
    inner: Arc<Inner<M>>,
}

impl<M: Send + 'static> Clone for Network<M> {
    fn clone(&self) -> Self {
        Network {
            inner: self.inner.clone(),
        }
    }
}

/// A site's receive side.
pub struct Endpoint<M> {
    /// This endpoint's site id.
    pub site: SiteId,
    rx: Receiver<Envelope<M>>,
}

impl<M> Endpoint<M> {
    /// Blocking receive.
    pub fn recv(&self) -> Result<Envelope<M>, NetError> {
        self.rx.recv().map_err(|_| NetError::Closed)
    }

    /// Receive with timeout; `Ok(None)` on timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Option<Envelope<M>>, NetError> {
        match self.rx.recv_timeout(timeout) {
            Ok(e) => Ok(Some(e)),
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => Ok(None),
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => Err(NetError::Closed),
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Envelope<M>> {
        self.rx.try_recv().ok()
    }

    /// Non-blocking batch drain: returns up to `limit` queued envelopes
    /// without ever blocking. Event-driven consumers (the scheduler's
    /// single-threaded state machine) use this to interleave network
    /// intake with dispatch work in bounded slices, so a message flood
    /// cannot starve transaction progress.
    pub fn drain(&self, limit: usize) -> Vec<Envelope<M>> {
        self.rx.try_iter().take(limit).collect()
    }
}

impl<M: Wire> Network<M> {
    /// Creates a network with the given latency model and the default
    /// [`Topology::Switched`] delivery. Delivery threads are spawned
    /// lazily, and only when the model actually delays messages.
    pub fn new(latency: LatencyModel) -> Self {
        Self::with_topology(latency, Topology::default())
    }

    /// Creates a network with an explicit delivery [`Topology`].
    pub fn with_topology(latency: LatencyModel, topology: Topology) -> Self {
        let inner = Arc::new(Inner {
            endpoints: RwLock::new(HashMap::new()),
            latency,
            topology,
            stats: NetStats::default(),
            links: Mutex::new(HashMap::new()),
            hub_tx: Mutex::new(None),
            seq: AtomicU64::new(0),
            flushing: AtomicBool::new(false),
            workers: Mutex::new(Vec::new()),
        });
        if !latency.is_zero() && topology == Topology::SharedHub {
            let (tx, rx) = unbounded::<Delayed<M>>();
            *inner.hub_tx.lock() = Some(tx);
            let hub_inner = Arc::downgrade(&inner);
            let handle = std::thread::Builder::new()
                .name("dtx-net-hub".into())
                .spawn(move || hub_loop(rx, hub_inner))
                .expect("spawn hub thread");
            inner.workers.lock().push(handle);
        }
        Network { inner }
    }

    /// The delivery topology this network was created with.
    pub fn topology(&self) -> Topology {
        self.inner.topology
    }

    /// Registers `site`, returning its endpoint. Re-registering replaces
    /// the previous endpoint (old receiver disconnects).
    pub fn register(&self, site: SiteId) -> Endpoint<M> {
        let (tx, rx) = unbounded();
        self.inner.endpoints.write().insert(site, tx);
        Endpoint { site, rx }
    }

    /// Sends `payload` from `from` to `to`, applying the latency model.
    pub fn send(&self, from: SiteId, to: SiteId, payload: M) -> Result<(), NetError> {
        let bytes = payload.wire_size();
        self.inner.stats.messages.fetch_add(1, Ordering::Relaxed);
        self.inner
            .stats
            .bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
        let envelope = Envelope { from, to, payload };
        if self.inner.latency.is_zero() {
            let endpoints = self.inner.endpoints.read();
            let dest = endpoints.get(&to).ok_or(NetError::UnknownSite(to))?;
            return dest.send(envelope).map_err(|_| NetError::UnknownSite(to));
        }
        // Delayed path. Under the links lock: advance the link's jitter
        // stream (delay = pure function of (seed, from, to, k) — see
        // [`link_delay`]), apply the FIFO clamp, and hand the message to
        // the link's worker (switched) or the hub (legacy).
        let now = Instant::now();
        let mut links = self.inner.links.lock();
        // The global tie-break seq is drawn under the same lock that
        // assigns the link position k: the hub heap breaks equal
        // deliver_at (the clamp's doing) by seq, so seq order and k order
        // must agree per link or concurrent same-pair senders could have
        // a clamped later message pop first.
        let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed);
        let book = links.entry((from, to)).or_insert_with(|| LinkBook {
            sent: 0,
            last: now,
            tx: None,
        });
        let k = book.sent;
        book.sent += 1;
        let delay = link_delay(&self.inner.latency, from, to, k, bytes);
        // FIFO clamp: never earlier than the link's previous message.
        let deliver_at = (now + delay).max(book.last);
        book.last = deliver_at;
        let delayed = Delayed {
            deliver_at,
            seq,
            envelope,
        };
        match self.inner.topology {
            Topology::Switched => {
                if book.tx.is_none() {
                    if self.inner.flushing.load(Ordering::Relaxed) {
                        return Err(NetError::Closed);
                    }
                    let (tx, rx) = unbounded::<Delayed<M>>();
                    let weak = Arc::downgrade(&self.inner);
                    let handle = std::thread::Builder::new()
                        .name(format!("dtx-net-link-{from}-{to}"))
                        .spawn(move || link_loop(rx, weak))
                        .expect("spawn link worker");
                    self.inner.workers.lock().push(handle);
                    self.inner.stats.links.fetch_add(1, Ordering::Relaxed);
                    book.tx = Some(tx);
                }
                let tx = book.tx.as_ref().expect("just ensured");
                tx.send(delayed).map_err(|_| NetError::Closed)
            }
            Topology::SharedHub => {
                let hub = self.inner.hub_tx.lock();
                match hub.as_ref() {
                    Some(hub_tx) => hub_tx.send(delayed).map_err(|_| NetError::Closed),
                    None => Err(NetError::Closed),
                }
            }
        }
    }

    /// Registered site ids (sorted).
    pub fn sites(&self) -> Vec<SiteId> {
        let mut v: Vec<SiteId> = self.inner.endpoints.read().keys().copied().collect();
        v.sort();
        v
    }

    /// Counters.
    pub fn stats(&self) -> &NetStats {
        &self.inner.stats
    }

    /// Shuts the network down **after draining**: every delayed message
    /// already accepted by [`Network::send`] is delivered (per-link FIFO
    /// order preserved; remaining sleeps are skipped, so the flush is
    /// prompt) before endpoints disconnect. Sends racing the shutdown
    /// either make it into a queue — and are then delivered — or get
    /// [`NetError::Closed`]; nothing vanishes silently.
    pub fn shutdown(&self) {
        // 1. Flag workers to stop sleeping; queued messages flush.
        self.inner.flushing.store(true, Ordering::SeqCst);
        // 2. Disconnect the queues: each worker drains what is buffered
        //    and exits on the hangup.
        for book in self.inner.links.lock().values_mut() {
            book.tx = None;
        }
        *self.inner.hub_tx.lock() = None;
        // 3. Join the workers — the drain is complete when this returns.
        let workers = std::mem::take(&mut *self.inner.workers.lock());
        for h in workers {
            let _ = h.join();
        }
        // 4. Only now do endpoints disconnect.
        self.inner.endpoints.write().clear();
    }
}

/// splitmix64 finalizer: spreads structured seeds (pair ids, counters)
/// into well-mixed PRNG states.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    (z ^ (z >> 31)) | 1
}

/// Delivers `d` to its destination endpoint (drops it when the endpoint
/// is gone — exactly what a real network does to a dead host's traffic).
fn deliver<M: Send + 'static>(inner: &Inner<M>, d: Delayed<M>) {
    let endpoints = inner.endpoints.read();
    if let Some(dest) = endpoints.get(&d.envelope.to) {
        let _ = dest.send(d.envelope);
    }
}

/// One link's delivery worker ([`Topology::Switched`]): messages arrive
/// already FIFO-clamped (monotone `deliver_at`), so the worker sleeps
/// until each message's instant and hands it to the endpoint — queue
/// order **is** delivery order. When the network flushes (shutdown) the
/// sleep is skipped and the backlog drains immediately; the worker exits
/// when its queue disconnects.
fn link_loop<M: Send + 'static>(rx: Receiver<Delayed<M>>, inner: std::sync::Weak<Inner<M>>) {
    while let Ok(d) = rx.recv() {
        let Some(inner) = inner.upgrade() else {
            return; // network dropped without shutdown: nobody listens
        };
        sleep_until_or_flush(&inner, d.deliver_at);
        deliver(&inner, d);
    }
}

/// Sleeps until `deadline`, waking early when the network starts
/// flushing. Sliced so a shutdown never waits out a long in-progress
/// delay; experiment delays (µs–ms) fit in one slice.
fn sleep_until_or_flush<M>(inner: &Inner<M>, deadline: Instant) {
    const SLICE: Duration = Duration::from_millis(5);
    while !inner.flushing.load(Ordering::Relaxed) {
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        std::thread::sleep((deadline - now).min(SLICE));
    }
}

/// The legacy shared hub ([`Topology::SharedHub`]): one global timer heap
/// ordered by `(deliver_at, seq)` — per-link FIFO holds because send-time
/// clamping makes `deliver_at` monotone per link and `seq` breaks ties in
/// send order. Every delivery funnels through this single thread, which
/// is the head-of-line bottleneck the switched topology removes. On
/// disconnect (shutdown) the heap flushes in order without sleeping.
fn hub_loop<M: Send + 'static>(rx: Receiver<Delayed<M>>, inner: std::sync::Weak<Inner<M>>) {
    let mut queue: BinaryHeap<Delayed<M>> = BinaryHeap::new();
    loop {
        // Deliver everything due.
        let now = Instant::now();
        while queue.peek().map(|d| d.deliver_at <= now).unwrap_or(false) {
            let d = queue.pop().expect("peeked");
            if let Some(inner) = inner.upgrade() {
                deliver(&inner, d);
            } else {
                return; // network dropped
            }
        }
        // Wait for the next due time or a new message.
        let wait = queue
            .peek()
            .map(|d| d.deliver_at.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_millis(50));
        match rx.recv_timeout(wait.max(Duration::from_micros(10))) {
            Ok(d) => queue.push(d),
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                if inner.upgrade().is_none() {
                    return;
                }
            }
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                // Shutdown: flush the backlog in heap order, no sleeps.
                while let Some(d) = queue.pop() {
                    let Some(inner) = inner.upgrade() else { return };
                    deliver(&inner, d);
                }
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Msg(u32);
    impl Wire for Msg {
        fn wire_size(&self) -> usize {
            64
        }
    }

    #[test]
    fn zero_latency_delivers_synchronously() {
        let net: Network<Msg> = Network::new(LatencyModel::zero());
        let a = net.register(SiteId(0));
        let _b = net.register(SiteId(1));
        net.send(SiteId(1), SiteId(0), Msg(7)).unwrap();
        let e = a.try_recv().expect("synchronous delivery");
        assert_eq!(e.payload, Msg(7));
        assert_eq!(e.from, SiteId(1));
        assert_eq!(net.stats().messages(), 1);
        assert_eq!(net.stats().bytes(), 64);
        assert_eq!(net.stats().links_active(), 0, "no threads at zero latency");
    }

    #[test]
    fn unknown_destination_is_an_error() {
        let net: Network<Msg> = Network::new(LatencyModel::zero());
        let _a = net.register(SiteId(0));
        assert_eq!(
            net.send(SiteId(0), SiteId(9), Msg(1)),
            Err(NetError::UnknownSite(SiteId(9)))
        );
    }

    #[test]
    fn fifo_order_preserved_same_pair() {
        let net: Network<Msg> = Network::new(LatencyModel::zero());
        let a = net.register(SiteId(0));
        let _b = net.register(SiteId(1));
        for i in 0..100 {
            net.send(SiteId(1), SiteId(0), Msg(i)).unwrap();
        }
        for i in 0..100 {
            assert_eq!(a.recv().unwrap().payload, Msg(i));
        }
    }

    #[test]
    fn latency_delays_delivery() {
        let model = LatencyModel {
            fixed: Duration::from_millis(20),
            per_kib: Duration::ZERO,
            jitter: Duration::ZERO,
            seed: 1,
        };
        let net: Network<Msg> = Network::new(model);
        let a = net.register(SiteId(0));
        let _b = net.register(SiteId(1));
        let t0 = Instant::now();
        net.send(SiteId(1), SiteId(0), Msg(1)).unwrap();
        // Not there immediately.
        assert!(a.try_recv().is_none());
        let e = a
            .recv_timeout(Duration::from_millis(500))
            .unwrap()
            .expect("delivered");
        assert_eq!(e.payload, Msg(1));
        assert!(
            t0.elapsed() >= Duration::from_millis(18),
            "elapsed {:?}",
            t0.elapsed()
        );
        assert_eq!(net.stats().links_active(), 1);
        net.shutdown();
    }

    #[test]
    fn delayed_messages_keep_order_with_equal_delay() {
        let model = LatencyModel {
            fixed: Duration::from_millis(5),
            per_kib: Duration::ZERO,
            jitter: Duration::ZERO,
            seed: 1,
        };
        let net: Network<Msg> = Network::new(model);
        let a = net.register(SiteId(0));
        let _b = net.register(SiteId(1));
        for i in 0..20 {
            net.send(SiteId(1), SiteId(0), Msg(i)).unwrap();
        }
        for i in 0..20 {
            let e = a
                .recv_timeout(Duration::from_millis(500))
                .unwrap()
                .expect("delivered");
            assert_eq!(e.payload, Msg(i));
        }
        net.shutdown();
    }

    #[derive(Debug, PartialEq)]
    struct SizedMsg(u32, usize);
    impl Wire for SizedMsg {
        fn wire_size(&self) -> usize {
            self.1
        }
    }

    #[test]
    fn fifo_preserved_despite_size_dependent_latency() {
        // A large message followed by a small one on the same link: the
        // small one's computed delay is shorter, but the per-pair FIFO
        // clamp must keep delivery in send order.
        let model = LatencyModel {
            fixed: Duration::from_millis(1),
            per_kib: Duration::from_millis(10),
            jitter: Duration::from_micros(500),
            seed: 3,
        };
        for topology in [Topology::Switched, Topology::SharedHub] {
            let net: Network<SizedMsg> = Network::with_topology(model, topology);
            let a = net.register(SiteId(0));
            let _b = net.register(SiteId(1));
            net.send(SiteId(1), SiteId(0), SizedMsg(0, 64 * 1024))
                .unwrap();
            net.send(SiteId(1), SiteId(0), SizedMsg(1, 16)).unwrap();
            for i in 0..2 {
                let e = a
                    .recv_timeout(Duration::from_secs(5))
                    .unwrap()
                    .expect("delivered");
                assert_eq!(
                    e.payload.0, i,
                    "messages must arrive in send order ({topology:?})"
                );
            }
            net.shutdown();
        }
    }

    #[test]
    fn independent_links_deliver_concurrently() {
        // A backlog on link 1→0 must not delay link 2→0: the fast
        // message overtakes the other link's queue (cross-link ordering
        // is not promised; per-link FIFO is).
        let model = LatencyModel {
            fixed: Duration::from_millis(30),
            per_kib: Duration::ZERO,
            jitter: Duration::ZERO,
            seed: 7,
        };
        let net: Network<SizedMsg> = Network::new(model);
        let a = net.register(SiteId(0));
        let _b = net.register(SiteId(1));
        let _c = net.register(SiteId(2));
        for i in 0..5 {
            net.send(SiteId(1), SiteId(0), SizedMsg(i, 64)).unwrap();
        }
        net.send(SiteId(2), SiteId(0), SizedMsg(100, 64)).unwrap();
        let mut got = Vec::new();
        for _ in 0..6 {
            got.push(
                a.recv_timeout(Duration::from_secs(5))
                    .unwrap()
                    .expect("delivered")
                    .payload
                    .0,
            );
        }
        assert_eq!(net.stats().links_active(), 2);
        // Per-link FIFO: 0..5 appear in order regardless of interleaving.
        let link1: Vec<u32> = got.iter().copied().filter(|&v| v < 100).collect();
        assert_eq!(link1, vec![0, 1, 2, 3, 4]);
        assert!(got.contains(&100));
        net.shutdown();
    }

    #[test]
    fn shutdown_flushes_in_flight_messages() {
        // The fix pinned here: in-flight delayed messages must NOT vanish
        // on shutdown — every accepted message is delivered, in link FIFO
        // order, before endpoints disconnect.
        let model = LatencyModel {
            fixed: Duration::from_millis(200),
            per_kib: Duration::ZERO,
            jitter: Duration::ZERO,
            seed: 5,
        };
        for topology in [Topology::Switched, Topology::SharedHub] {
            let net: Network<Msg> = Network::with_topology(model, topology);
            let a = net.register(SiteId(0));
            let _b = net.register(SiteId(1));
            let _c = net.register(SiteId(2));
            for i in 0..10 {
                net.send(SiteId(1), SiteId(0), Msg(i)).unwrap();
                net.send(SiteId(2), SiteId(0), Msg(100 + i)).unwrap();
            }
            let t0 = Instant::now();
            net.shutdown();
            assert!(
                t0.elapsed() < Duration::from_millis(150),
                "flush skips remaining sleeps ({topology:?}: {:?})",
                t0.elapsed()
            );
            let got: Vec<u32> = a.drain(100).iter().map(|e| e.payload.0).collect();
            assert_eq!(got.len(), 20, "nothing vanished ({topology:?})");
            let link1: Vec<u32> = got.iter().copied().filter(|&v| v < 100).collect();
            let link2: Vec<u32> = got.iter().copied().filter(|&v| v >= 100).collect();
            assert_eq!(link1, (0..10).collect::<Vec<_>>(), "{topology:?}");
            assert_eq!(link2, (100..110).collect::<Vec<_>>(), "{topology:?}");
            // After the drain, the endpoint reports closure.
            assert!(matches!(a.recv(), Err(NetError::Closed)));
        }
    }

    #[test]
    fn drain_returns_batch_without_blocking() {
        let net: Network<Msg> = Network::new(LatencyModel::zero());
        let a = net.register(SiteId(0));
        let _b = net.register(SiteId(1));
        assert!(a.drain(16).is_empty(), "empty queue drains to nothing");
        for i in 0..10 {
            net.send(SiteId(1), SiteId(0), Msg(i)).unwrap();
        }
        let batch = a.drain(4);
        assert_eq!(
            batch.iter().map(|e| e.payload.0).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        assert_eq!(a.drain(100).len(), 6, "remainder drains in order");
    }

    #[test]
    fn recv_timeout_returns_none_when_idle() {
        let net: Network<Msg> = Network::new(LatencyModel::zero());
        let a = net.register(SiteId(0));
        assert!(a.recv_timeout(Duration::from_millis(5)).unwrap().is_none());
    }

    #[test]
    fn sites_listing() {
        let net: Network<Msg> = Network::new(LatencyModel::zero());
        let _e0 = net.register(SiteId(2));
        let _e1 = net.register(SiteId(0));
        assert_eq!(net.sites(), vec![SiteId(0), SiteId(2)]);
    }

    #[test]
    fn shutdown_disconnects_endpoints() {
        let net: Network<Msg> = Network::new(LatencyModel::zero());
        let a = net.register(SiteId(0));
        net.shutdown();
        assert!(matches!(a.recv(), Err(NetError::Closed)));
        assert!(net.send(SiteId(0), SiteId(0), Msg(1)).is_err());
    }

    #[test]
    fn link_delay_is_a_pure_function_of_seed_link_and_k() {
        let model = LatencyModel::lan(42);
        for k in 0..50 {
            let d1 = link_delay(&model, SiteId(1), SiteId(2), k, 128);
            let d2 = link_delay(&model, SiteId(1), SiteId(2), k, 128);
            assert_eq!(d1, d2, "same inputs, same delay (k={k})");
        }
        // Different links and different seeds draw different streams.
        let other_link = link_delay(&model, SiteId(2), SiteId(1), 0, 128);
        let other_seed = link_delay(&LatencyModel::lan(43), SiteId(1), SiteId(2), 0, 128);
        let base = link_delay(&model, SiteId(1), SiteId(2), 0, 128);
        assert!(base != other_link || base != other_seed);
    }
}
